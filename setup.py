"""Setuptools shim.

The offline build environment has no ``wheel`` package, so PEP 517 editable
installs (which go through ``bdist_wheel``) are not available.  This shim
lets ``pip install -e . --no-use-pep517`` (and plain ``python setup.py
develop``) work; all project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
