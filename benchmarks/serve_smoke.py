#!/usr/bin/env python3
"""CI smoke for the ``python -m repro serve`` daemon.

Boots the daemon on an ephemeral port with a warmed compile cache, pushes
a small mixed workload through the HTTP front end via
:class:`repro.serve.ServeClient`, then scrapes ``/healthz`` and
``/metrics`` and fails loudly if anything is off:

* any endpoint answers non-2xx, or a workload row comes back ``ok=False``;
* required metrics counters are missing, or accepted != completed;
* the warm resubmit does not show up as compile-cache hits
  (``hit_rate`` must be positive after the second submit);
* the daemon does not exit 0 on SIGTERM (graceful drain).

The scraped metrics snapshot is persisted to
``benchmarks/results/serve_smoke.json`` so the CI artifact upload
(``benchmarks/results/*.json``) keeps it for inspection.

Usage::

    PYTHONPATH=src python benchmarks/serve_smoke.py          # full
    PYTHONPATH=src python benchmarks/serve_smoke.py --quick  # CI smoke

``--quick`` only trims the request count; every assertion still runs.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from _harness import emit_json

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve import ServeClient

SPEC = {
    "requests": [
        {"kind": "synthesize", "strategy": "mct", "d": 3, "k": 4},
        {"kind": "estimate", "strategy": "mct", "d": 3, "k": 5},
        {"kind": "simulate", "strategy": "mct", "d": 3, "k": 4,
         "states": [[0, 0, 0, 0, 1], [1, 0, 0, 0, 1]]},
    ]
}

REQUIRED_COUNTERS = (
    "requests", "queue_depth", "in_flight", "cache", "latency", "queue_wait",
)


def boot_daemon(cache_dir: pathlib.Path, workdir: pathlib.Path) -> tuple:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--cache-dir", str(cache_dir)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        cwd=str(workdir),
    )
    line = process.stdout.readline()
    if not line.startswith("serving on "):
        stderr = process.stderr.read()
        raise SystemExit(f"daemon failed to start: {line!r}\n{stderr}")
    client = ServeClient(line.split()[-1], timeout=120.0)
    client.wait_ready()
    return process, client


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SystemExit(f"serve smoke FAILED: {message}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="single submit pass per phase (CI smoke)")
    args = parser.parse_args()
    resubmits = 1 if args.quick else 3

    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as tmp:
        tmp_path = pathlib.Path(tmp)
        process, client = boot_daemon(tmp_path / "cache", tmp_path)
        try:
            status, health = client.healthz()
            check(status == 200, f"/healthz answered {status}")
            check(health.get("status") == "ok", f"unhealthy: {health}")

            # Cold submit compiles; warm resubmits must hit the cache.
            for attempt in range(1 + resubmits):
                status, payload = client.submit(SPEC)
                check(status == 200,
                      f"submit #{attempt} answered {status}: {payload}")
                check(payload.get("ok") is True,
                      f"submit #{attempt} had failed rows: {payload}")
                check(len(payload["rows"]) == len(SPEC["requests"]),
                      f"submit #{attempt} returned {len(payload['rows'])} rows")

            status, metrics = client.metrics()
            check(status == 200, f"/metrics answered {status}")
            for counter in REQUIRED_COUNTERS:
                check(counter in metrics, f"/metrics missing {counter!r}")
            requests = metrics["requests"]
            expected = (1 + resubmits) * len(SPEC["requests"])
            check(requests["accepted"] == expected,
                  f"accepted {requests['accepted']} != {expected}")
            check(requests["completed"] == expected,
                  f"completed {requests['completed']} != accepted {expected}")
            check(requests["failed"] == 0, f"failed rows: {requests}")
            hit_rate = metrics["cache"].get("hit_rate")
            check(hit_rate is not None and hit_rate > 0.0,
                  f"warm resubmits produced no cache hits: {metrics['cache']}")

            process.send_signal(signal.SIGTERM)
            returncode = process.wait(timeout=60)
            stderr = process.stderr.read()
            check(returncode == 0,
                  f"SIGTERM drain exited {returncode}: {stderr}")
            check("drained cleanly" in stderr,
                  f"no drain confirmation on stderr: {stderr!r}")
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)

    payload = {
        "quick": args.quick,
        "requests": requests,
        "cache": metrics["cache"],
        "queue_wait_count": metrics["queue_wait"]["count"],
        "drain_returncode": returncode,
    }
    stem = "serve_smoke_quick" if args.quick else "serve_smoke"
    emit_json(stem, payload)
    print(f"serve smoke OK: {expected} requests, "
          f"hit_rate={hit_rate:.3f}, drained cleanly")


if __name__ == "__main__":
    main()
