"""E5 — comparison against prior work (the paper's introduction table).

Measured rows for this paper and the clean-ancilla ladder baseline, analytic
rows for Di & Wei [20], Yeh & van de Wetering [24] and the exponential
ancilla-free synthesis [25].
"""

from __future__ import annotations

import pytest

from repro.baselines import synthesize_mct_clean_ladder, synthesize_mcu_exponential
from repro.bench import baseline_comparison_rows, render_table

from _harness import emit_table


def test_table_e5_baseline_comparison(benchmark):
    def build():
        rows = []
        for dim in (3, 4, 5):
            rows.extend(baseline_comparison_rows(dim, [2, 4, 6, 8, 10]))
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table = render_table(
        rows, title="E5: k-Toffoli cost, this paper vs prior work (measured + analytic models)"
    )
    emit_table("E5_vs_baselines", table)
    ours = [r for r in rows if r["method"].startswith("this paper (measured)")]
    exponential = [r for r in rows if "exponential" in r["method"]]
    assert all(r["ancillas"] <= 1 for r in ours)
    big_k = [r for r in exponential if r["k"] == 10]
    assert all(r["two_qudit_gates"] >= 1024 for r in big_k)


@pytest.mark.parametrize("k", [4, 6, 8])
def test_benchmark_clean_ladder(benchmark, k):
    benchmark(lambda: synthesize_mct_clean_ladder(3, k))


@pytest.mark.parametrize("k", [4, 6, 8])
def test_benchmark_exponential_baseline(benchmark, k):
    benchmark(lambda: synthesize_mcu_exponential(3, k))
