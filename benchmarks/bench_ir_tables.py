#!/usr/bin/env python3
"""Columnar-IR vs object-IR wall clock on lower + optimize + count.

Benchmarks the two lowering engines behind ``lower_to_g_gates`` on
``synthesize_mct(3, k)``:

* ``object`` — the pass pipeline over per-op Python objects (the PR-2 path);
* ``table``  — template expansion straight into the struct-of-arrays
  :class:`~repro.ir.table.GateTable` plus the columnar cancel/drop kernels,
  counting (G-gates, two-qudit gates, depth) directly on the columns.

Both engines must produce gate-for-gate identical circuits (same G-counts,
same depth; op-sequence equality is asserted on the smallest case).  The
full run requires a >= 5x table-vs-object speedup at k >= 64 and reports the
peak traced allocation of each path (the payload pools intern each repeated
gate form once, so the table path's footprint is dramatically smaller).

Usage::

    PYTHONPATH=src python benchmarks/bench_ir_tables.py          # full cases
    PYTHONPATH=src python benchmarks/bench_ir_tables.py --quick  # CI smoke

Results are printed as a table and persisted to
``benchmarks/results/ir_tables.json`` (``ir_tables_quick.json`` for smoke
runs, so committed full-case numbers are never overwritten by CI).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
import tracemalloc

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from _harness import RESULTS_DIR, emit_json, emit_table

from repro import lower_to_g_gates, synthesize_mct
from repro.bench import render_table
from repro.ir import lowering as ir_lowering

#: Required table-vs-object speedup at k >= SPEEDUP_K (full runs only).
SPEEDUP_FLOOR = 5.0
SPEEDUP_K = 64


def lower_and_count(circuit, engine):
    lowered = lower_to_g_gates(circuit, engine=engine)
    counts = {
        "g_gates": lowered.g_gate_count(),
        "two_qudit_gates": lowered.two_qudit_count(),
        "depth": lowered.depth(),
    }
    return lowered, counts


def timed_with_peak(fn):
    """(result, wall seconds, peak traced bytes) for one lowering run.

    Timing and allocation tracing are two separate runs: tracemalloc slows
    allocation-heavy code down by multiples, which would unfairly inflate the
    object path's wall clock.
    """
    start = time.perf_counter()
    result = fn()
    seconds = time.perf_counter() - start
    tracemalloc.start()
    tracemalloc.reset_peak()
    fn()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, seconds, peak


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small case for CI smoke runs (no speedup floor enforced)",
    )
    args = parser.parse_args()

    dim = 3
    ks = (8,) if args.quick else (16, 64, 128)
    rows = []
    cases = []
    failures = []
    for index, k in enumerate(ks):
        result = synthesize_mct(dim, k)
        circuit = result.circuit
        # Cold-start the table engine: forget expansion templates cached by
        # earlier cases so every measurement includes template construction.
        ir_lowering._TEMPLATE_OPS_CACHE.clear()

        (object_circuit, object_counts), object_seconds, object_peak = timed_with_peak(
            lambda: lower_and_count(circuit, "object")
        )
        (table_circuit, table_counts), table_seconds, table_peak = timed_with_peak(
            lambda: lower_and_count(circuit, "table")
        )
        speedup = object_seconds / table_seconds
        if object_counts != table_counts:
            failures.append(f"k={k}: counts diverge: {object_counts} vs {table_counts}")
        if index == 0:
            for i, (a, b) in enumerate(zip(object_circuit.ops, table_circuit.ops)):
                if (
                    type(a) is not type(b)
                    or a.target != b.target
                    or a.controls != b.controls
                    or getattr(a, "gate", None) != getattr(b, "gate", None)
                    or getattr(a, "sign", None) != getattr(b, "sign", None)
                ):
                    failures.append(f"k={k}: op sequences diverge at position {i}")
                    break
        rows.append(
            {
                "k": k,
                "g_gates": table_counts["g_gates"],
                "depth": table_counts["depth"],
                "object_s": round(object_seconds, 3),
                "table_s": round(table_seconds, 4),
                "speedup": f"{speedup:.1f}x",
                "object_peak_mb": round(object_peak / 1e6, 1),
                "table_peak_mb": round(table_peak / 1e6, 1),
                "mem_ratio": f"{object_peak / table_peak:.1f}x",
            }
        )
        cases.append(
            {
                "dim": dim,
                "k": k,
                "counts": table_counts,
                "object_seconds": object_seconds,
                "table_seconds": table_seconds,
                "speedup": speedup,
                "object_peak_bytes": object_peak,
                "table_peak_bytes": table_peak,
            }
        )

    table = render_table(
        rows,
        title=(
            f"Columnar IR: lower+optimize+count on synthesize_mct(d={dim}, k) — "
            "table engine vs object engine (identical outputs)"
        ),
    )
    stem = "ir_tables_quick" if args.quick else "ir_tables"
    emit_table(stem, table)

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "quick": args.quick,
        "cases": cases,
        "speedup_floor": None if args.quick else SPEEDUP_FLOOR,
        "speedup_floor_k": SPEEDUP_K,
    }
    emit_json(stem, payload)

    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        return 1
    if not args.quick:
        for case in cases:
            if case["k"] >= SPEEDUP_K and case["speedup"] < SPEEDUP_FLOOR:
                print(
                    f"FAIL: k={case['k']} speedup {case['speedup']:.1f}x is below "
                    f"the {SPEEDUP_FLOOR:.0f}x floor"
                )
                return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
