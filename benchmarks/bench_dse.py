#!/usr/bin/env python3
"""Design-space exploration: batch estimation and tuning-DB select speedups.

Two measurements over the PR-7 ``repro.dse`` subsystem:

* **batch estimation** — one ``estimate_batch`` call over a large k grid vs.
  the same grid through scalar ``estimate`` calls (both warm: the affine
  calibration is measured once either way).  The batch path amortises the
  per-point Python dispatch into a handful of numpy expressions per residue
  class; equality is asserted row-for-row on a random sample.  Floor: ≥50x
  at 10^5 points.
* **tuning-DB select** — sweep a (strategy × d × k) region once, build the
  sorted/indexed :class:`~repro.dse.tuning.TuningDB`, then answer warm
  ``auto_select`` queries from it vs. live estimation.  Every swept
  ``(d, k, budget)`` must pick the **same strategy with the same resources**
  both ways (the DB falls back to live whenever it cannot guarantee that, so
  parity is exact by construction — and asserted here anyway).  Floor: ≥20x
  warm.

Usage::

    PYTHONPATH=src python benchmarks/bench_dse.py          # full
    PYTHONPATH=src python benchmarks/bench_dse.py --quick  # CI smoke

Results are printed and persisted to ``benchmarks/results/dse.json``
(``dse_quick.json`` for smoke runs); ``check_floors.py`` guards the
``batch_estimate_speedup`` and ``db_select_speedup`` fields in both modes.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from _harness import emit_json, emit_table

from repro.bench import render_table
from repro.dse import SweepSpec, TuningDB, run_sweep
from repro.synth import AncillaBudget, registry

#: CI-guarded floors (mirrored in benchmarks/results/floors.json).
BATCH_SPEEDUP_FLOOR = 50.0
DB_SELECT_SPEEDUP_FLOOR = 20.0

#: Equality-sample size for the batch-vs-scalar check.
SAMPLE_ROWS = 200


def bench_batch_estimate(points: int, *, seed: int) -> dict:
    """One estimate_batch call vs. a scalar-estimate loop over the same grid."""
    strategy = registry.get("mct")
    dim = 3
    ks = np.arange(1, points + 1, dtype=np.int64)

    # Warm the calibration either path would use, then time both.
    strategy.estimate(dim, int(ks[0]))
    batch = strategy.estimate_batch(dim, ks)
    start = time.perf_counter()
    batch = strategy.estimate_batch(dim, ks)
    batch_seconds = time.perf_counter() - start

    start = time.perf_counter()
    scalar_two_qudit = np.fromiter(
        (strategy.estimate(dim, int(k)).two_qudit_gates for k in ks),
        dtype=np.int64,
        count=points,
    )
    scalar_seconds = time.perf_counter() - start

    if not np.array_equal(batch.metrics["two_qudit_gates"], scalar_two_qudit):
        raise AssertionError("batch two_qudit_gates diverged from the scalar loop")
    rng = np.random.default_rng(seed)
    sample = rng.choice(points, size=min(SAMPLE_ROWS, points), replace=False)
    for index in sample:
        if batch.row(int(index)) != strategy.estimate(dim, int(ks[index])):
            raise AssertionError(
                f"batch row {index} (k={int(ks[index])}) diverged from scalar estimate"
            )
    return {
        "strategy": strategy.name,
        "d": dim,
        "points": points,
        "batch_seconds": batch_seconds,
        "scalar_seconds": scalar_seconds,
        "speedup": scalar_seconds / batch_seconds,
        "rows_checked": int(sample.size) + points,  # sampled full rows + one column
    }


def bench_db_select(k_stop: int, *, repeats: int) -> dict:
    """Warm DB-backed auto_select vs. live estimation over a swept grid."""
    spec = SweepSpec(dims=(3, 4), k_stop=k_stop)
    store = run_sweep(spec)
    db = TuningDB.from_sweep(store)
    budgets = (None, AncillaBudget(clean=0), AncillaBudget(total=0))
    grid = [
        (dim, k, budget)
        for dim in spec.dims
        for k in spec.ks().tolist()  # Python ints: live estimation must not wrap
        for budget in budgets
    ]

    # Exact-parity gate first: same strategy, same resources, every point.
    fallbacks = 0
    for dim, k, budget in grid:
        db_choice = db.select(dim, k, budget=budget)
        live_choice = registry.auto_select(dim, k, budget=budget)
        if db_choice is None:
            fallbacks += 1
            continue
        if (
            db_choice.strategy.name != live_choice.strategy.name
            or db_choice.resources != live_choice.resources
        ):
            raise AssertionError(
                f"DB pick diverged at d={dim}, k={k}, budget={budget}: "
                f"{db_choice.strategy.name} vs {live_choice.strategy.name}"
            )

    # Both paths warm (select memo populated above, calibrations measured).
    start = time.perf_counter()
    for _ in range(repeats):
        for dim, k, budget in grid:
            registry.auto_select(dim, k, budget=budget, tuning_db=db)
    db_seconds = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(repeats):
        for dim, k, budget in grid:
            registry.auto_select(dim, k, budget=budget)
    live_seconds = time.perf_counter() - start

    selects = len(grid) * repeats
    return {
        "dims": list(spec.dims),
        "k_stop": k_stop,
        "swept_points": store.counts()["points"],
        "grid_queries": len(grid),
        "parity_checked": len(grid),
        "fallbacks": fallbacks,
        "repeats": repeats,
        "db_seconds": db_seconds,
        "live_seconds": live_seconds,
        "db_us_per_select": 1e6 * db_seconds / selects,
        "live_us_per_select": 1e6 * live_seconds / selects,
        "speedup": live_seconds / db_seconds,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small cases for CI smoke runs"
    )
    args = parser.parse_args()

    if args.quick:
        points, k_stop, repeats = 20_000, 32, 5
    else:
        points, k_stop, repeats = 100_000, 64, 10

    batch = bench_batch_estimate(points, seed=20260808)
    select = bench_db_select(k_stop, repeats=repeats)

    failures = []
    if batch["speedup"] < BATCH_SPEEDUP_FLOOR:
        failures.append(
            f"batch estimation speedup {batch['speedup']:.1f}x is below the "
            f"{BATCH_SPEEDUP_FLOOR:.0f}x floor"
        )
    if select["speedup"] < DB_SELECT_SPEEDUP_FLOOR:
        failures.append(
            f"DB select speedup {select['speedup']:.1f}x is below the "
            f"{DB_SELECT_SPEEDUP_FLOOR:.0f}x floor"
        )

    batch_table = render_table(
        [
            {
                "points": batch["points"],
                "batch_s": round(batch["batch_seconds"], 4),
                "scalar_s": round(batch["scalar_seconds"], 3),
                "speedup": f"{batch['speedup']:.0f}x",
            }
        ],
        title=(
            f"Batch estimation: one estimate_batch call vs scalar loop "
            f"({batch['strategy']}, d={batch['d']})"
        ),
    )
    select_table = render_table(
        [
            {
                "grid": select["grid_queries"],
                "repeats": select["repeats"],
                "db_us": round(select["db_us_per_select"], 2),
                "live_us": round(select["live_us_per_select"], 2),
                "speedup": f"{select['speedup']:.0f}x",
                "parity": f"{select['parity_checked']}/{select['parity_checked']}",
                "fallbacks": select["fallbacks"],
            }
        ],
        title=(
            f"Tuning-DB auto_select vs live estimation "
            f"(d∈{select['dims']}, k≤{select['k_stop']}, 3 budgets, warm)"
        ),
    )
    stem = "dse_quick" if args.quick else "dse"
    emit_table(stem, batch_table + "\n\n" + select_table)
    emit_json(
        stem,
        {
            "quick": args.quick,
            "batch_estimate_speedup": batch["speedup"],
            "db_select_speedup": select["speedup"],
            "batch": batch,
            "db_select": select,
            "floors": {
                "batch_estimate_speedup": BATCH_SPEEDUP_FLOOR,
                "db_select_speedup": DB_SELECT_SPEEDUP_FLOOR,
            },
        },
    )

    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
