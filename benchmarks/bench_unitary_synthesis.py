"""E7 — unitary synthesis with one clean ancilla (Theorem IV.1)."""

from __future__ import annotations

import pytest

from repro.applications import random_unitary, synthesize_unitary
from repro.bench import render_table, unitary_synthesis_rows

from _harness import emit_table

CASES = [(3, 1, 11), (3, 2, 12), (3, 3, 13), (4, 1, 14), (4, 2, 15), (5, 2, 16)]


def test_table_e7_unitary_synthesis(benchmark):
    rows = benchmark.pedantic(lambda: unitary_synthesis_rows(CASES), rounds=1, iterations=1)
    table = render_table(
        rows,
        title="E7: n-qudit unitary synthesis — gate count vs d^{2n}, ancillas ours (1) vs Bullock ⌈(n−2)/(d−2)⌉",
    )
    emit_table("E7_unitary_synthesis", table)
    assert all(row["clean_ancillas_ours"] <= 1 for row in rows)
    assert all(
        row["clean_ancillas_ours"] <= max(row["clean_ancillas_bullock"], 1) for row in rows
    )


@pytest.mark.parametrize("dim,n", [(3, 2), (4, 2)])
def test_benchmark_unitary_synthesis(benchmark, dim, n):
    unitary = random_unitary(dim**n, seed=7)
    benchmark(lambda: synthesize_unitary(unitary, dim, n))
