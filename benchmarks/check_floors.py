#!/usr/bin/env python3
"""Benchmark regression guard: compare result JSONs against committed floors.

``benchmarks/results/floors.json`` maps a result stem (the JSON filename
without extension) to either the minimum acceptable speedup ratio (a bare
number, read from the result's headline ``speedup``) or an object of
``{metric: minimum}`` pairs checked against the result's top-level fields
(e.g. the streaming benchmark guards both ``fusion_speedup`` and
``dense_over_streaming_rss``).  After the smoke benchmarks run in CI, this
script fails the job if any produced ratio regressed below its floor::

    PYTHONPATH=src python benchmarks/bench_ir_tables.py --quick
    PYTHONPATH=src python benchmarks/bench_sim_backends.py --quick
    python benchmarks/check_floors.py

Stems whose result file is absent are skipped with a note (pass ``--strict``
to fail on them instead), so the guard works for any subset of benchmarks.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
FLOORS_PATH = RESULTS_DIR / "floors.json"


def extract_speedup(data: dict) -> float:
    """The headline ratio of one result JSON (multi-case files use the best)."""
    if "cases" in data:
        return max(case["speedup"] for case in data["cases"])
    return float(data["speedup"])


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--strict", action="store_true", help="fail when a guarded result file is missing"
    )
    args = parser.parse_args()

    floors = json.loads(FLOORS_PATH.read_text(encoding="utf-8"))
    failures = []
    for stem, floor in sorted(floors.items()):
        path = RESULTS_DIR / f"{stem}.json"
        if not path.exists():
            message = f"{stem}: no result file at {path}"
            if args.strict:
                failures.append(message)
            else:
                print(f"skip: {message}")
            continue
        data = json.loads(path.read_text(encoding="utf-8"))
        if isinstance(floor, dict):
            # Multi-metric guard: every named metric must be present and
            # at (or above) its committed minimum.
            for metric, minval in sorted(floor.items()):
                if metric not in data:
                    failures.append(f"{stem}: result has no {metric!r} field")
                    print(f"REGRESSION: {stem}: missing metric {metric!r}")
                    continue
                value = float(data[metric])
                status = "ok" if value >= minval else "REGRESSION"
                print(f"{status}: {stem}: {metric} {value:.1f}x (floor {minval:.1f}x)")
                if value < minval:
                    failures.append(f"{stem}: {metric} {value:.1f}x < floor {minval:.1f}x")
            continue
        speedup = extract_speedup(data)
        status = "ok" if speedup >= floor else "REGRESSION"
        print(f"{status}: {stem}: speedup {speedup:.1f}x (floor {floor:.1f}x)")
        if speedup < floor:
            failures.append(f"{stem}: {speedup:.1f}x < floor {floor:.1f}x")

    if failures:
        print("\nFAIL: benchmark speedups regressed below committed floors:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
