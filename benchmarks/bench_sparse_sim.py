#!/usr/bin/env python3
"""Sparse amplitude-map engine and batched-verification benchmark (PR-8).

Three guarded measurements on a lowered multi-controlled Toffoli embedded
in a register of ``>= 10^7`` basis states with at most a handful of live
amplitudes:

* **sparse_wall_speedup** — evolving the state through the ``sparse``
  engine (O(rows * nnz) stride arithmetic on live indices only) vs the
  ``dense`` engine's composed-gather ``apply_table``.  The dense side is
  timed *warm* — the segment gather is composed and interned before the
  timed pass — so the ratio understates the cold-start gap.  Floor: 10x.
* **dense_over_sparse_rss** — peak resident-set growth of the same
  evolution, one fresh subprocess per engine (``ru_maxrss`` is a
  process-lifetime high-water mark).  The dense engine must materialise
  the full statevector plus an output array; the sparse engine touches
  O(nnz) bytes.  The sparse denominator is clamped to 1 MiB to keep the
  ratio conservative.  Floor: 10x.
* **verify_sampled_speedup** — the sampled verification fast path: one
  batched ``GateTable.apply_to_indices`` call over all sampled basis
  states vs the pre-PR-8 per-state scalar ``apply_to_basis`` walk.
  Floor: 10x.

The sparse and dense results are additionally checked **bit-for-bit**:
on a permutation circuit both paths move amplitudes without arithmetic,
so the sparse engine's (index, amplitude) pairs must equal the dense
output's nonzero entries exactly, not merely to tolerance.

Usage::

    PYTHONPATH=src python benchmarks/bench_sparse_sim.py          # full case
    PYTHONPATH=src python benchmarks/bench_sparse_sim.py --quick  # CI smoke

Results are printed as a table and persisted to
``benchmarks/results/sparse_sim[_quick].json`` with the committed floors
in ``benchmarks/results/floors.json`` enforced by ``check_floors.py``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from _harness import emit_json, emit_table, peak_rss_bytes

from repro import lower_to_g_gates, synthesize_mct
from repro.bench import render_table
from repro.qudit.circuit import QuditCircuit
from repro.sim import SparseState, get_backend
from repro.sim.permutation import apply_to_basis
from repro.sim.verify import sample_basis_states
from repro.utils.indexing import indices_to_digits

SPARSE_WALL_FLOOR = 10.0
RSS_RATIO_FLOOR = 10.0
VERIFY_FLOOR = 10.0

# The sparse engine's measured growth is allocator noise (a few KB of live
# indices); clamping the denominator keeps the RSS ratio conservative.
RSS_DENOMINATOR_CLAMP = 1 << 20


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


# ----------------------------------------------------------------------
# Case construction: a lowered mct embedded in a wide register
# ----------------------------------------------------------------------
def sparse_case(quick: bool) -> dict:
    # 3^13 = 1,594,323 (quick) / 3^15 = 14,348,907 basis states; the
    # circuit acts on the low wires, the embedding only widens the basis.
    return {
        "dim": 3,
        "num_controls": 2,
        "num_wires": 13 if quick else 15,
        "nnz": 8,
        "seed": 11,
    }


def build_case(case: dict):
    """Return (embedded circuit, table, initial indices, initial amplitudes)."""
    lowered = lower_to_g_gates(synthesize_mct(case["dim"], case["num_controls"]).circuit)
    circuit = QuditCircuit(case["num_wires"], case["dim"], name="sparse-probe")
    circuit.extend(lowered.ops)
    table = circuit.to_table()
    size = case["dim"] ** case["num_wires"]
    rng = np.random.default_rng(case["seed"])
    indices = np.sort(rng.choice(size, size=case["nnz"], replace=False)).astype(np.int64)
    amplitudes = rng.normal(size=case["nnz"]) + 1j * rng.normal(size=case["nnz"])
    amplitudes /= np.linalg.norm(amplitudes)
    return circuit, table, indices, amplitudes


def measure_wall(case: dict) -> dict:
    _, table, indices, amplitudes = build_case(case)
    size = case["dim"] ** case["num_wires"]
    dense = get_backend("dense")
    sparse = get_backend("sparse")

    data = np.zeros(size, dtype=complex)
    data[indices] = amplitudes
    # Cold dense pass composes (and interns) the segment gather; the warm
    # pass is what every later request pays, and is still the baseline the
    # floor is enforced against.
    _, dense_cold = timed(lambda: dense.apply_table(data.copy(), table))
    dense_out, dense_warm = timed(lambda: dense.apply_table(data.copy(), table))

    state = SparseState(case["num_wires"], case["dim"], indices, amplitudes)
    sparse.apply_table_sparse(state, table)  # warm the unique-op row cache
    evolved, sparse_seconds = timed(lambda: sparse.apply_table_sparse(state, table))

    # Bit-for-bit: a permutation circuit moves amplitudes without touching
    # their values, so sparse (index, amplitude) pairs must equal the dense
    # output's nonzero entries exactly.
    dense_live = np.nonzero(dense_out)[0]
    if not np.array_equal(dense_live, evolved.indices):
        raise SystemExit("FAIL: sparse and dense engines disagree on live indices")
    if not np.array_equal(dense_out[dense_live], evolved.amplitudes):
        raise SystemExit("FAIL: sparse amplitudes are not bit-for-bit equal to dense")

    return {
        **case,
        "basis_states": size,
        "g_gates": len(table),
        "dense_cold_seconds": dense_cold,
        "dense_warm_seconds": dense_warm,
        "sparse_seconds": sparse_seconds,
        "sparse_wall_speedup": dense_warm / sparse_seconds,
        "sparse_cold_speedup": dense_cold / sparse_seconds,
    }


# ----------------------------------------------------------------------
# Memory: dense vs sparse peak RSS growth, one subprocess per engine
# ----------------------------------------------------------------------
def reset_peak_rss() -> None:
    """Reset the kernel's peak-RSS watermark (Linux ``clear_refs``).

    ``ru_maxrss`` survives fork+exec, so a worker forked from a large
    parent starts with the *parent's* high-water mark and small workloads
    measure as zero growth.  Resetting ``VmHWM`` at the baseline point
    attributes only the worker's own allocations.
    """
    try:
        with open("/proc/self/clear_refs", "w") as fh:
            fh.write("5")
    except OSError:
        pass


def vm_hwm_bytes() -> int:
    """Peak RSS from ``/proc/self/status`` (respects ``clear_refs`` resets)."""
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        return peak_rss_bytes()
    return peak_rss_bytes()


def run_worker(engine_name: str, case: dict) -> int:
    """Evolve the case state; print the engine's peak RSS growth (bytes).

    The table, the composed segment gathers (dense side), and the unique-op
    row cache are all warmed *before* the baseline watermark, so the
    reported growth is the engine's own working set: the full statevector
    plus output array for dense, the O(nnz) index/amplitude pairs for
    sparse.  The dense input state is allocated inside the measured region
    on purpose — never materialising it is exactly the sparse engine's
    claim.
    """
    from repro.ir.segment import segment_table

    _, table, indices, amplitudes = build_case(case)
    size = case["dim"] ** case["num_wires"]
    if engine_name == "dense":
        engine = get_backend("dense")
        for segment in segment_table(table):  # compose + intern before baseline
            if segment.kind == "perm":
                segment.index_table()
        reset_peak_rss()
        rss0 = vm_hwm_bytes()
        data = np.zeros(size, dtype=complex)
        data[indices] = amplitudes
        result = engine.apply_table(data, table)
        live = np.nonzero(result)[0]
        checksum = complex(result[live].sum())
    else:
        engine = get_backend("sparse")
        table.unique_ops()  # warm the row cache before baseline
        reset_peak_rss()
        rss0 = vm_hwm_bytes()
        state = SparseState(case["num_wires"], case["dim"], indices, amplitudes)
        evolved = engine.apply_table_sparse(state, table)
        checksum = complex(evolved.amplitudes.sum())
    growth = vm_hwm_bytes() - rss0
    print(json.dumps({"rss_growth_bytes": growth, "checksum": [checksum.real, checksum.imag]}))
    return 0


def measure_memory(case: dict) -> dict:
    growth = {}
    checksums = {}
    for engine_name in ("dense", "sparse"):
        process = subprocess.run(
            [
                sys.executable,
                str(pathlib.Path(__file__).resolve()),
                "--worker",
                engine_name,
                "--case",
                json.dumps(case),
            ],
            capture_output=True,
            text=True,
            check=True,
        )
        payload = json.loads(process.stdout.strip().splitlines()[-1])
        growth[engine_name] = payload["rss_growth_bytes"]
        checksums[engine_name] = payload["checksum"]
    if not np.allclose(checksums["dense"], checksums["sparse"], atol=1e-12):
        raise SystemExit("FAIL: dense and sparse workers disagree on the state")
    return {
        **case,
        "state_bytes": (case["dim"] ** case["num_wires"]) * 16,
        "dense_rss_growth_bytes": growth["dense"],
        "sparse_rss_growth_bytes": growth["sparse"],
        "dense_over_sparse_rss": growth["dense"]
        / max(growth["sparse"], RSS_DENOMINATOR_CLAMP),
    }


# ----------------------------------------------------------------------
# Verification: batched index propagation vs the per-state scalar walk
# ----------------------------------------------------------------------
def verify_case(quick: bool) -> dict:
    # A deeper lowering (mct with more controls) so the per-row cost
    # dominates; the sampled verifier pays it once per *batch*, the old
    # path once per *state*.
    return {
        "dim": 3,
        "num_controls": 4 if quick else 6,
        "num_wires": 13 if quick else 15,
        "samples": 400 if quick else 500,
        "seed": 7,
    }


def measure_verify(case: dict) -> dict:
    lowered = lower_to_g_gates(synthesize_mct(case["dim"], case["num_controls"]).circuit)
    circuit = QuditCircuit(case["num_wires"], case["dim"], name="verify-probe")
    circuit.extend(lowered.ops)
    table = circuit.to_table()
    states = sample_basis_states(case["dim"], case["num_wires"], case["samples"], case["seed"])
    strides = np.array(
        [case["dim"] ** e for e in range(case["num_wires"] - 1, -1, -1)], dtype=np.int64
    )
    indices = np.asarray(states, dtype=np.int64) @ strides
    table.apply_to_indices(indices[:1])  # warm the unique-op row cache

    scalar_rows, scalar_seconds = timed(
        lambda: [apply_to_basis(circuit, state) for state in states]
    )
    batched, batched_seconds = timed(lambda: table.apply_to_indices(indices))
    decoded = indices_to_digits(batched, case["dim"], case["num_wires"])
    if [tuple(row) for row in decoded.tolist()] != [tuple(row) for row in scalar_rows]:
        raise SystemExit("FAIL: batched index propagation differs from the scalar walk")

    return {
        **case,
        "g_gates": len(table),
        "scalar_seconds": scalar_seconds,
        "batched_seconds": batched_seconds,
        "verify_sampled_speedup": scalar_seconds / batched_seconds,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small case for CI smoke runs")
    parser.add_argument("--worker", help=argparse.SUPPRESS)
    parser.add_argument("--case", help=argparse.SUPPRESS)
    args = parser.parse_args()
    if args.worker:
        return run_worker(args.worker, json.loads(args.case))

    wall = measure_wall(sparse_case(args.quick))
    memory = measure_memory(sparse_case(args.quick))
    verify = measure_verify(verify_case(args.quick))

    rows = [
        {
            "measurement": f"dense apply_table (warm, {wall['basis_states']:,} basis)",
            "seconds": round(wall["dense_warm_seconds"], 4),
        },
        {
            "measurement": f"sparse apply_table_sparse (nnz {wall['nnz']})",
            "seconds": round(wall["sparse_seconds"], 6),
        },
        {
            "measurement": "dense RSS growth",
            "bytes": memory["dense_rss_growth_bytes"],
        },
        {
            "measurement": "sparse RSS growth",
            "bytes": memory["sparse_rss_growth_bytes"],
        },
        {
            "measurement": f"scalar verify walk ({verify['samples']} samples)",
            "seconds": round(verify["scalar_seconds"], 4),
        },
        {
            "measurement": "batched apply_to_indices",
            "seconds": round(verify["batched_seconds"], 6),
        },
    ]
    title = (
        f"Sparse simulation: wall {wall['sparse_wall_speedup']:.0f}x, "
        f"dense/sparse RSS {memory['dense_over_sparse_rss']:.0f}x, "
        f"verify batch {verify['verify_sampled_speedup']:.1f}x"
    )
    stem = "sparse_sim_quick" if args.quick else "sparse_sim"
    emit_table(stem, render_table(rows, title=title))
    emit_json(
        stem,
        {
            "wall": wall,
            "memory": memory,
            "verify": verify,
            "sparse_wall_speedup": wall["sparse_wall_speedup"],
            "dense_over_sparse_rss": memory["dense_over_sparse_rss"],
            "verify_sampled_speedup": verify["verify_sampled_speedup"],
            "floors": {
                "sparse_wall_speedup": SPARSE_WALL_FLOOR,
                "dense_over_sparse_rss": RSS_RATIO_FLOOR,
                "verify_sampled_speedup": VERIFY_FLOOR,
            },
        },
    )

    failures = []
    if wall["sparse_wall_speedup"] < SPARSE_WALL_FLOOR:
        failures.append(
            f"sparse wall speedup {wall['sparse_wall_speedup']:.1f}x < {SPARSE_WALL_FLOOR}x"
        )
    if memory["dense_over_sparse_rss"] < RSS_RATIO_FLOOR:
        failures.append(
            f"dense/sparse RSS {memory['dense_over_sparse_rss']:.1f}x < {RSS_RATIO_FLOOR}x"
        )
    if verify["verify_sampled_speedup"] < VERIFY_FLOOR:
        failures.append(
            f"verify sampled speedup {verify['verify_sampled_speedup']:.1f}x < {VERIFY_FLOOR}x"
        )
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
