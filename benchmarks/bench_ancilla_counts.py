"""E11 — ancilla usage: ours (≤1, borrowed/clean) vs ⌈(k−2)/(d−2)⌉ clean."""

from __future__ import annotations

from repro import synthesize_mct
from repro.bench import ancilla_count_rows, render_table

from _harness import emit_table


def test_table_e11_ancilla_counts(benchmark):
    rows = benchmark.pedantic(
        lambda: ancilla_count_rows([3, 4, 5, 6], [2, 4, 8, 12, 16]), rounds=1, iterations=1
    )
    table = render_table(
        rows,
        title="E11: ancilla usage — this paper vs the clean-ancilla ladder [5,23] and Bullock et al. [5]",
    )
    emit_table("E11_ancilla_counts", table)
    assert all(row["ours_ancillas"] <= 1 for row in rows)
    big_k = [row for row in rows if row["k"] == 16]
    assert all(row["baseline_clean_ancillas"] >= row["ours_ancillas"] for row in big_k)


def test_benchmark_large_k_synthesis(benchmark):
    benchmark(lambda: synthesize_mct(3, 16))
