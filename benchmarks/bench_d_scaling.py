"""E4 — k-Toffoli size vs the qudit dimension d (poly(d) factor of the bound)."""

from __future__ import annotations

from repro.bench import render_table, toffoli_scaling_rows

from _harness import emit_table


def test_table_e4_dimension_scaling(benchmark):
    rows = benchmark.pedantic(
        lambda: toffoli_scaling_rows([3, 4, 5, 6, 7, 8, 9], [6]), rounds=1, iterations=1
    )
    table = render_table(
        [
            {key: row[key] for key in ("d", "parity", "k", "g_gates", "macro_ops")}
            for row in rows
        ],
        title="E4: k = 6 Toffoli G-gate count vs dimension d (O(k·d^3) bound)",
    )
    emit_table("E4_d_scaling", table)
    odd = {row["d"]: row["g_gates"] for row in rows if row["parity"] == "odd"}
    # poly(d) growth: going from d=3 to d=9 must stay far below exponential 3^(9-3).
    assert odd[9] < odd[3] * (9 / 3) ** 5


def test_benchmark_d7_synthesis(benchmark):
    from repro import synthesize_mct

    benchmark(lambda: synthesize_mct(7, 6))
