"""E8/E9 — classical reversible functions (Theorem IV.2) and the Lemma IV.3
lower bound."""

from __future__ import annotations

import pytest

from repro.applications import random_reversible_function, synthesize_reversible_function
from repro.baselines import reversible_function_models
from repro.bench import render_table, reversible_rows

from _harness import emit_table


def test_table_e8_e9_reversible_functions(benchmark):
    rows = benchmark.pedantic(
        lambda: reversible_rows([3, 4, 5], [1, 2, 3], lower=False), rounds=1, iterations=1
    )
    # Attach the analytic comparison models (Yeh & vdW, lower bound constant).
    for row in rows:
        models = reversible_function_models(row["d"], row["n"])
        row["yeh_vdw_model"] = int(models["Yeh & vdW O(d^n n^3.585)"])
    table = render_table(
        rows,
        title=(
            "E8/E9: n-variable d-ary reversible functions — measured size vs the "
            "n·d^n bound and the Lemma IV.3 lower bound (ancilla-free for odd d)"
        ),
    )
    emit_table("E8_E9_reversible", table)
    odd_rows = [r for r in rows if r["d"] % 2 == 1]
    assert all(r["ancillas"] == 0 for r in odd_rows)
    even_rows = [r for r in rows if r["d"] % 2 == 0 and r["n"] >= 3]
    assert all(r["ancillas"] == 1 for r in even_rows)


@pytest.mark.parametrize("dim,n", [(3, 3), (4, 3)])
def test_benchmark_reversible_synthesis(benchmark, dim, n):
    table = random_reversible_function(dim, n, seed=1)
    benchmark(lambda: synthesize_reversible_function(dim, n, table))
