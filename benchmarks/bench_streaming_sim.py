#!/usr/bin/env python3
"""Segment fusion and streaming-memory benchmark (PR-6).

Two guarded measurements:

* **fusion_speedup** — applying a lowered multi-controlled Toffoli through
  the segment-fused ``dense.apply_table`` (the whole permutation circuit
  collapses to a single composed gather) vs the pre-fusion per-op walk
  (one gather per table row, reproduced verbatim below).  Floor: 3x.
* **dense_over_streaming_rss** — peak resident-set growth of evolving a
  batched statevector through ``dense`` vs ``streaming`` under a small
  byte budget.  Each side runs in a fresh subprocess (``--worker``) because
  ``ru_maxrss`` is a process-lifetime high-water mark; the input state is
  allocated and touched *before* the baseline sample so only the engine's
  own working set is attributed.  Floor: dense grows at least 2x more.

Usage::

    PYTHONPATH=src python benchmarks/bench_streaming_sim.py          # full case
    PYTHONPATH=src python benchmarks/bench_streaming_sim.py --quick  # CI smoke

Results are printed as a table and persisted to
``benchmarks/results/streaming_sim[_quick].json`` with the committed floors
in ``benchmarks/results/floors.json`` enforced by ``check_floors.py``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from _harness import emit_json, emit_table, peak_rss_bytes

from repro import lower_to_g_gates, synthesize_mct
from repro.bench import render_table
from repro.qudit.circuit import QuditCircuit
from repro.qudit.gates import XPlus
from repro.sim import StreamingBackend, get_backend

FUSION_SPEEDUP_FLOOR = 3.0
RSS_RATIO_FLOOR = 2.0


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


# ----------------------------------------------------------------------
# Fusion: fused apply_table vs the pre-fusion per-row gather walk
# ----------------------------------------------------------------------
def per_op_apply_table(data, table):
    """The pre-PR-6 dense ``apply_table`` inner loop: one gather per row."""
    ops, row_map = table.unique_ops()
    tables = [op.permutation_table(table.dim, table.num_wires) for op in ops]
    for row in range(len(table)):
        out = np.empty_like(data)
        out[tables[row_map[row]]] = data
        data = out
    return data


def measure_fusion(quick: bool) -> dict:
    dim, num_controls = (3, 4) if quick else (3, 6)
    lowered = lower_to_g_gates(synthesize_mct(dim, num_controls).circuit)
    table = lowered.to_table()
    size = dim**lowered.num_wires
    rng = np.random.default_rng(0)
    data = rng.normal(size=size) + 1j * rng.normal(size=size)

    dense = get_backend("dense")
    # Cold fused pass composes (and interns) the segment gather; the warm
    # pass is the serving scenario every later request hits.
    _, cold_seconds = timed(lambda: dense.apply_table(data.copy(), table))
    fused, fused_seconds = timed(lambda: dense.apply_table(data.copy(), table))
    unfused, unfused_seconds = timed(lambda: per_op_apply_table(data.copy(), table))
    if not np.array_equal(fused, unfused):
        raise SystemExit("FAIL: fused apply_table differs from the per-op walk")
    return {
        "dim": dim,
        "num_controls": num_controls,
        "g_gates": lowered.num_ops(),
        "basis_states": size,
        "per_op_seconds": unfused_seconds,
        "fused_cold_seconds": cold_seconds,
        "fused_warm_seconds": fused_seconds,
        "fusion_speedup": unfused_seconds / fused_seconds,
    }


# ----------------------------------------------------------------------
# Memory: dense vs streaming peak RSS growth, one subprocess per engine
# ----------------------------------------------------------------------
def memory_case(quick: bool) -> dict:
    # Few distinct (gate, target) forms: the per-op permutation tables the
    # composition walks are shared cache entries on both sides, so the RSS
    # difference isolates the engines' own scratch arrays.
    return {
        "dim": 3,
        "num_wires": 10 if quick else 12,
        "layers": 6,
        "batch": 8,
        "budget": 1 * 1024 * 1024 if quick else 8 * 1024 * 1024,
    }


def build_memory_circuit(case: dict) -> QuditCircuit:
    circuit = QuditCircuit(case["num_wires"], case["dim"], name="rss-probe")
    for _ in range(case["layers"]):
        circuit.add_gate(XPlus(case["dim"], 1), 0)
        circuit.add_gate(XPlus(case["dim"], 2), 1)
    return circuit


def run_worker(engine_name: str, case: dict) -> int:
    """Apply the probe circuit; print the engine's peak RSS growth (bytes).

    Everything both engines share — the composed segment gathers, the
    per-op permutation tables, the input state — is allocated and touched
    *before* the baseline watermark, and the input is filled in place
    (``standard_normal(out=...)``, no float temporaries), so the reported
    growth is the engine's own scratch: the full output array for dense,
    the tile working set for streaming.
    """
    from repro.ir.segment import segment_table

    circuit = build_memory_circuit(case)
    table = circuit.to_table()
    for segment in segment_table(table):  # shared composition cost
        if segment.kind == "perm":
            segment.index_table()
            segment.inverse_index_table()
    size = case["dim"] ** case["num_wires"]
    rng = np.random.default_rng(1)
    data = np.empty((size, case["batch"]), dtype=complex)
    rng.standard_normal(out=data.view(np.float64))
    if engine_name == "streaming":
        engine = StreamingBackend(case["budget"])
    else:
        engine = get_backend(engine_name)
    rss0 = peak_rss_bytes()  # engine work starts here
    result = engine.apply_table_batch(data, table)
    checksum = complex(np.asarray(result[0]).sum())
    growth = peak_rss_bytes() - rss0
    print(json.dumps({"rss_growth_bytes": growth, "checksum": [checksum.real, checksum.imag]}))
    return 0


def measure_memory(case: dict) -> dict:
    growth = {}
    checksums = {}
    for engine_name in ("dense", "streaming"):
        process = subprocess.run(
            [
                sys.executable,
                str(pathlib.Path(__file__).resolve()),
                "--worker",
                engine_name,
                "--case",
                json.dumps(case),
            ],
            capture_output=True,
            text=True,
            check=True,
        )
        payload = json.loads(process.stdout.strip().splitlines()[-1])
        growth[engine_name] = payload["rss_growth_bytes"]
        checksums[engine_name] = payload["checksum"]
    if not np.allclose(checksums["dense"], checksums["streaming"], atol=1e-9):
        raise SystemExit("FAIL: dense and streaming workers disagree on the state")
    # Streaming's measured growth can undershoot its budget (dropped pages,
    # allocator headroom); clamping the denominator to the budget — the
    # residency bound the engine claims — keeps the ratio conservative.
    return {
        **case,
        "state_bytes": (case["dim"] ** case["num_wires"]) * case["batch"] * 16,
        "dense_rss_growth_bytes": growth["dense"],
        "streaming_rss_growth_bytes": growth["streaming"],
        "dense_over_streaming_rss": growth["dense"] / max(growth["streaming"], case["budget"]),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small case for CI smoke runs")
    parser.add_argument("--worker", help=argparse.SUPPRESS)
    parser.add_argument("--case", help=argparse.SUPPRESS)
    args = parser.parse_args()
    if args.worker:
        return run_worker(args.worker, json.loads(args.case))

    fusion = measure_fusion(args.quick)
    memory = measure_memory(memory_case(args.quick))

    rows = [
        {
            "measurement": "per-op gather walk",
            "seconds": round(fusion["per_op_seconds"], 4),
        },
        {
            "measurement": "fused apply_table (warm)",
            "seconds": round(fusion["fused_warm_seconds"], 6),
        },
        {
            "measurement": "dense RSS growth",
            "bytes": memory["dense_rss_growth_bytes"],
        },
        {
            "measurement": f"streaming RSS growth (budget {memory['budget']})",
            "bytes": memory["streaming_rss_growth_bytes"],
        },
    ]
    title = (
        f"Streaming simulation: fusion {fusion['fusion_speedup']:.1f}x, "
        f"dense/streaming RSS {memory['dense_over_streaming_rss']:.1f}x"
    )
    stem = "streaming_sim_quick" if args.quick else "streaming_sim"
    emit_table(stem, render_table(rows, title=title))
    emit_json(
        stem,
        {
            "fusion": fusion,
            "memory": memory,
            "fusion_speedup": fusion["fusion_speedup"],
            "dense_over_streaming_rss": memory["dense_over_streaming_rss"],
            "floors": {
                "fusion_speedup": FUSION_SPEEDUP_FLOOR,
                "dense_over_streaming_rss": RSS_RATIO_FLOOR,
            },
        },
    )

    failures = []
    if fusion["fusion_speedup"] < FUSION_SPEEDUP_FLOOR:
        failures.append(
            f"fusion speedup {fusion['fusion_speedup']:.1f}x < {FUSION_SPEEDUP_FLOOR}x"
        )
    if memory["dense_over_streaming_rss"] < RSS_RATIO_FLOOR:
        failures.append(
            f"dense/streaming RSS {memory['dense_over_streaming_rss']:.1f}x "
            f"< {RSS_RATIO_FLOOR}x"
        )
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
