#!/usr/bin/env python3
"""Batched execution service: cold-vs-warm cache and batched-vs-looped sim.

Two measurements over the PR-5 ``repro.exec`` subsystem:

* **compile cache** — a workload of repeated ``mct`` requests runs twice
  against one cache directory.  The cold run synthesises + lowers each
  unique scenario once (the planner dedupes repeats); the warm run must
  serve every compile from disk without any synthesis.  Full runs enforce a
  ≥10x cold/warm wall-clock floor; every run asserts the warm pass
  performed **zero** synthesis calls (instrumented, not inferred).
* **batched simulation** — B random superposition states through a lowered
  ``mct`` table: ``apply_table_batch`` (one composed gather for the whole
  batch) vs. B independent ``apply_table`` calls on the dense engine, with
  bit-for-bit equality required.  Full runs enforce a ≥3x floor at B ≥ 32
  (measured well above 100x in practice).

Usage::

    PYTHONPATH=src python benchmarks/bench_batch_exec.py          # full
    PYTHONPATH=src python benchmarks/bench_batch_exec.py --quick  # CI smoke

Results are printed and persisted to ``benchmarks/results/batch_exec.json``
(``batch_exec_quick.json`` for smoke runs).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from _harness import RESULTS_DIR, emit_json, emit_table

from repro import lower_to_g_gates, synthesize_mct
from repro.bench import render_table
from repro.exec import WorkloadSpec, run_workload
from repro.ir import lowering as ir_lowering
from repro.sim import get_backend
from repro.synth import registry

#: Full-run floors (quick runs only assert semantics, not wall clock).
CACHE_SPEEDUP_FLOOR = 10.0
BATCH_SPEEDUP_FLOOR = 3.0
BATCH_SIZE_FLOOR = 32


def _count_synthesis_calls(strategy_name: str):
    """Context manager counting ``synthesize`` calls on one strategy."""
    import contextlib

    @contextlib.contextmanager
    def patched():
        strategy = registry.get(strategy_name)
        original = strategy.synthesize
        calls = [0]

        def counting(*args, **kwargs):
            calls[0] += 1
            return original(*args, **kwargs)

        strategy.synthesize = counting
        try:
            yield calls
        finally:
            strategy.synthesize = original

    return patched()


def bench_cache(ks, repeats, quick) -> dict:
    """Cold vs. warm workload runs over one persistent cache directory."""
    spec = WorkloadSpec.from_dict(
        {
            "requests": [
                {"kind": "synthesize", "strategy": "mct", "d": 3, "k": k}
                for _ in range(repeats)
                for k in ks
            ]
        }
    )
    with tempfile.TemporaryDirectory() as cache_dir:
        # Cold-start the lowering templates too, so the cold run pays the
        # full first-compile price a fresh process would.
        ir_lowering._TEMPLATE_OPS_CACHE.clear()
        start = time.perf_counter()
        cold = run_workload(spec, jobs=1, cache_dir=cache_dir)
        cold_seconds = time.perf_counter() - start
        assert cold.ok, cold.rows

        with _count_synthesis_calls("mct") as calls:
            start = time.perf_counter()
            warm = run_workload(spec, jobs=1, cache_dir=cache_dir)
            warm_seconds = time.perf_counter() - start
        assert warm.ok, warm.rows
        synthesis_calls_warm = calls[0]

    speedup = cold_seconds / warm_seconds
    return {
        "ks": list(ks),
        "requests": len(spec.requests),
        "unique_compiles": cold.unique_compiles,
        "dedup_savings": cold.dedup_savings,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": speedup,
        "warm_hits": warm.warm_hits,
        "warm_puts": warm.cache_stats["puts"],
        "synthesis_calls_warm": synthesis_calls_warm,
    }


def bench_batched_sim(k, batch_sizes) -> list:
    """Batched vs. looped dense simulation on a lowered mct table."""
    lowered = lower_to_g_gates(synthesize_mct(3, k).circuit)
    table = lowered.cached_table
    dense = get_backend("dense")
    size = 3 ** lowered.num_wires
    rng = np.random.default_rng(20260726)
    rows = []
    for batch in batch_sizes:
        data = rng.normal(size=(size, batch)) + 1j * rng.normal(size=(size, batch))
        data /= np.linalg.norm(data, axis=0, keepdims=True)
        dense.apply_table_batch(data.copy(), table)  # warm the composed gather
        start = time.perf_counter()
        batched = dense.apply_table_batch(data.copy(), table)
        batched_seconds = time.perf_counter() - start
        start = time.perf_counter()
        columns = [
            dense.apply_table(np.ascontiguousarray(data[:, b]), table)
            for b in range(batch)
        ]
        looped_seconds = time.perf_counter() - start
        looped = np.stack(columns, axis=1)
        rows.append(
            {
                "k": k,
                "gates": lowered.num_ops(),
                "batch": batch,
                "batched_seconds": batched_seconds,
                "looped_seconds": looped_seconds,
                "speedup": looped_seconds / batched_seconds,
                "bit_for_bit": bool(np.array_equal(batched, looped)),
            }
        )
    return rows


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small cases for CI smoke runs (floors asserted on semantics only)",
    )
    args = parser.parse_args()

    if args.quick:
        ks, repeats = (8,), 4
        sim_k, batch_sizes = 5, (8,)
    else:
        ks, repeats = (16, 32), 6
        sim_k, batch_sizes = 7, (32, 64)

    cache = bench_cache(ks, repeats, args.quick)
    sim_rows = bench_batched_sim(sim_k, batch_sizes)

    failures = []
    # Semantics floors hold in every mode: a warm cache must skip synthesis.
    if cache["synthesis_calls_warm"] != 0:
        failures.append(
            f"warm run performed {cache['synthesis_calls_warm']} synthesis calls"
        )
    if cache["warm_puts"] != 0:
        failures.append(f"warm run wrote {cache['warm_puts']} new cache entries")
    if cache["warm_hits"] != cache["unique_compiles"]:
        failures.append(
            f"warm run hit {cache['warm_hits']}/{cache['unique_compiles']} compiles"
        )
    for row in sim_rows:
        if not row["bit_for_bit"]:
            failures.append(f"B={row['batch']}: batched result diverged from looped")
    if not args.quick:
        if cache["speedup"] < CACHE_SPEEDUP_FLOOR:
            failures.append(
                f"warm-cache speedup {cache['speedup']:.1f}x is below the "
                f"{CACHE_SPEEDUP_FLOOR:.0f}x floor"
            )
        for row in sim_rows:
            if row["batch"] >= BATCH_SIZE_FLOOR and row["speedup"] < BATCH_SPEEDUP_FLOOR:
                failures.append(
                    f"B={row['batch']} batched speedup {row['speedup']:.1f}x is below "
                    f"the {BATCH_SPEEDUP_FLOOR:.0f}x floor"
                )

    cache_table = render_table(
        [
            {
                "requests": cache["requests"],
                "unique": cache["unique_compiles"],
                "deduped": cache["dedup_savings"],
                "cold_s": round(cache["cold_seconds"], 3),
                "warm_s": round(cache["warm_seconds"], 4),
                "speedup": f"{cache['speedup']:.1f}x",
                "warm_synth_calls": cache["synthesis_calls_warm"],
            }
        ],
        title=(
            f"Compile cache: repeated mct workload (d=3, k∈{cache['ks']}) — "
            "cold vs warm over one cache directory"
        ),
    )
    sim_table = render_table(
        [
            {
                "batch": row["batch"],
                "gates": row["gates"],
                "batched_s": round(row["batched_seconds"], 4),
                "looped_s": round(row["looped_seconds"], 3),
                "speedup": f"{row['speedup']:.0f}x",
                "bit_for_bit": row["bit_for_bit"],
            }
            for row in sim_rows
        ],
        title=(
            f"Batched dense simulation: apply_table_batch vs per-state loop "
            f"(lowered mct d=3 k={sim_k})"
        ),
    )
    stem = "batch_exec_quick" if args.quick else "batch_exec"
    emit_table(stem, cache_table + "\n\n" + sim_table)

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "quick": args.quick,
        "cache": cache,
        "batched_sim": sim_rows,
        "floors": None
        if args.quick
        else {
            "cache_speedup": CACHE_SPEEDUP_FLOOR,
            "batch_speedup": BATCH_SPEEDUP_FLOOR,
            "batch_size": BATCH_SIZE_FLOOR,
        },
    }
    emit_json(stem, payload)

    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
