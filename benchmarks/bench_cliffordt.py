"""E10 — fault-tolerant (Clifford+T) cost on qutrits: O(k) vs O(k^3.585)."""

from __future__ import annotations

import pytest

from repro import synthesize_mct
from repro.bench import cliffordt_rows, render_table
from repro.resources import clifford_t_cost, yeh_vdw_reversible_model

from _harness import emit_table


def test_table_e10_cliffordt_toffoli(benchmark):
    rows = benchmark.pedantic(
        lambda: cliffordt_rows([2, 3, 4, 6, 8, 10, 14, 20]), rounds=1, iterations=1
    )
    table = render_table(
        rows,
        title="E10: qutrit k-Toffoli Clifford+T cost — this paper (measured, O(k)) vs Yeh & vdW model (O(k^3.585))",
    )
    emit_table("E10_cliffordt", table)
    # The paper's improvement is asymptotic: our measured cost grows linearly
    # while the [24] model grows like k^3.585, so the model/ours ratio rises
    # monotonically (past the small-k transient) and crosses 1 — with this
    # implementation's constants the crossover lands before k = 20.
    ratios = [row["ratio_model/ours"] for row in rows[2:]]
    assert all(b >= a for a, b in zip(ratios, ratios[1:]))
    assert rows[-1]["yeh_vdw_model_total"] > rows[-1]["ours_total"]


def test_table_e10_reversible_cliffordt():
    rows = []
    for n in (1, 2, 3):
        from repro.applications import random_reversible_function, synthesize_reversible_function

        table_fn = random_reversible_function(3, n, seed=n)
        result = synthesize_reversible_function(3, n, table_fn)
        cost = clifford_t_cost(result.circuit)
        rows.append(
            {
                "n": n,
                "ours_total": cost.total(),
                "ours_T": cost.t_count,
                "yeh_vdw_model": int(yeh_vdw_reversible_model(n)),
                "ancillas": result.ancilla_count(),
            }
        )
    table = render_table(
        rows,
        title="E10 (cont.): ternary reversible functions — ancilla-free Clifford+T, ours vs O(3^n n^3.585) model",
    )
    emit_table("E10_cliffordt_reversible", table)
    assert all(row["ancillas"] == 0 for row in rows)


@pytest.mark.parametrize("k", [4, 8])
def test_benchmark_cliffordt_costing(benchmark, k):
    result = synthesize_mct(3, k)
    benchmark(lambda: clifford_t_cost(result.circuit))
