"""E12 — d-ary Grover search built from the paper's multi-controlled gates."""

from __future__ import annotations

import pytest

from repro.applications import grover_circuit, run_grover
from repro.bench import render_table

from _harness import emit_table

CASES = [(3, 2, (2, 1)), (3, 3, (1, 0, 2)), (5, 2, (4, 3))]


def test_table_e12_grover(benchmark):
    def build():
        rows = []
        for dim, n, marked in CASES:
            outcome = run_grover(dim, n, marked)
            circuit = grover_circuit(dim, n, marked).circuit
            row = outcome.as_row()
            row["circuit_ops"] = circuit.num_ops()
            rows.append(row)
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table = render_table(
        rows,
        title="E12: d-ary Grover with the paper's MCT oracle — success probability after ⌊π/4·√N⌋ iterations",
    )
    emit_table("E12_grover", table)
    assert all(row["P(success)"] > 3 * row["P(uniform guess)"] for row in rows)


@pytest.mark.parametrize("dim,n,marked", [(3, 2, (2, 1))])
@pytest.mark.parametrize("backend", ["dense", "tensor"])
def test_benchmark_grover_simulation(benchmark, dim, n, marked, backend):
    benchmark(lambda: run_grover(dim, n, marked, backend=backend))
