#!/usr/bin/env python3
"""Estimator scaling sweep: exact resource counts up to k = 10^6, no circuits.

Every registered strategy with an exact analytic estimator is swept over
k ∈ {10, 10^2, ..., 10^6}; the counts come from the calibrated affine
recurrences in ``repro.resources.estimator`` (calibration materialises a
handful of small circuits once; every later query is O(1) integer math).

The run also:

* cross-validates the estimator gate-for-gate against materialised+lowered
  circuits at points strictly beyond the calibration window;
* enforces the acceptance criterion that a warm k = 10^6 qutrit MCT
  estimate completes in under 50 ms (the JSON records the measured time);
* writes both a plain-text table and a JSON payload under
  ``benchmarks/results/``.

Usage::

    PYTHONPATH=src python benchmarks/bench_estimator_scaling.py          # full
    PYTHONPATH=src python benchmarks/bench_estimator_scaling.py --quick  # CI
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from _harness import RESULTS_DIR, emit_json, emit_table

from repro.bench import render_table
from repro.bench.formatting import ancilla_kind_label, json_safe
from repro.core.gate_counts import count_gates
from repro.synth import registry

#: Acceptance criterion: warm k = 10^6 qutrit MCT estimate under 50 ms.
ACCEPTANCE_SECONDS = 0.05

KS = [10, 100, 1_000, 10_000, 100_000, 1_000_000]

#: (strategy, d) pairs swept in the full run; --quick keeps the first three.
FULL_CASES = [
    ("mct", 3),
    ("mct-clean-ladder", 3),
    ("mcu-exponential", 3),
    ("pk", 3),
    ("mcu", 3),
    ("mct", 4),
]
QUICK_CASES = FULL_CASES[:3]

#: Extrapolation points re-checked against materialised circuits
#: (strictly beyond every calibration window, which ends at k = 15/16).
VALIDATION_POINTS = {False: [("mct", 3, 17), ("mct", 4, 17), ("pk", 3, 18)],
                     True: [("mct", 3, 17)]}


def sweep(cases, ks):
    rows = []
    calibration_seconds = {}
    for name, dim in cases:
        strategy = registry.get(name)
        start = time.perf_counter()
        strategy.estimate(dim, max(k for k in ks if strategy.supports(dim, k)))
        calibration_seconds[f"{name}/d={dim}"] = round(time.perf_counter() - start, 3)
        for k in ks:
            if not strategy.supports(dim, k):
                continue
            begin = time.perf_counter()
            resources = strategy.estimate(dim, k)
            seconds = time.perf_counter() - begin
            rows.append(
                {
                    "strategy": name,
                    "d": dim,
                    "k": k,
                    "g_gates": resources.g_gates,
                    "two_qudit_gates": resources.two_qudit_gates,
                    "depth": resources.depth,
                    "ancillas": ancilla_kind_label(resources.ancillas)
                    + (f" x{resources.ancilla_count()}" if resources.ancillas else ""),
                    "estimate_seconds": round(seconds, 6),
                }
            )
    return rows, calibration_seconds


def validate(points):
    """Exact cross-check of extrapolated estimates vs materialised circuits."""
    results = []
    for name, dim, k in points:
        strategy = registry.get(name)
        estimated = strategy.estimate(dim, k)
        report = count_gates(strategy.synthesize(dim, k), lower=True)
        checks = {
            "g_gates": (estimated.g_gates, report.g_gates),
            "two_qudit_gates": (estimated.two_qudit_gates, report.two_qudit_gates),
            "depth": (estimated.depth, report.depth),
            "macro_ops": (estimated.macro_ops, report.macro_ops),
        }
        ok = all(a == b for a, b in checks.values())
        results.append(
            {
                "strategy": name,
                "d": dim,
                "k": k,
                "ok": ok,
                **{key: f"{a} vs {b}" for key, (a, b) in checks.items()},
            }
        )
    return results


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke subset")
    args = parser.parse_args()

    cases = QUICK_CASES if args.quick else FULL_CASES
    rows, calibration_seconds = sweep(cases, KS)

    # ------------------------------------------------------------------
    # Acceptance: warm million-control qutrit MCT estimate under 50 ms.
    # ------------------------------------------------------------------
    mct = registry.get("mct")
    mct.estimate(3, 10**6)  # ensure calibration is warm
    warm = min(
        _timed(lambda: mct.estimate(3, 10**6)) for _ in range(5)
    )
    headline = mct.estimate(3, 10**6)
    acceptance = {
        "case": "mct d=3 k=10^6",
        "g_gates": headline.g_gates,
        "depth": headline.depth,
        "warm_estimate_seconds": warm,
        "threshold_seconds": ACCEPTANCE_SECONDS,
        "ok": warm < ACCEPTANCE_SECONDS,
    }

    validation = validate(VALIDATION_POINTS[args.quick])

    stem = "estimator_scaling_quick" if args.quick else "estimator_scaling"
    table = render_table(
        rows,
        title=(
            "Analytic estimator scaling (no circuits built); "
            f"k=10^6 qutrit MCT warm estimate: {warm * 1e6:.0f} µs"
        ),
    )
    table += "\n\n" + render_table(
        validation, title="Extrapolation vs materialised circuits (beyond calibration)"
    )
    emit_table(stem, table)

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "quick": args.quick,
        "ks": KS,
        "rows": json_safe(rows),
        "calibration_seconds": calibration_seconds,
        "validation": validation,
        "acceptance": acceptance,
    }
    emit_json(stem, payload)

    failed = [row for row in validation if not row["ok"]]
    if failed:
        print(f"FAIL: estimator diverges from materialised circuits: {failed}")
        return 1
    if not acceptance["ok"]:
        print(
            f"FAIL: warm k=10^6 estimate took {warm:.4f}s "
            f"(threshold {ACCEPTANCE_SECONDS}s)"
        )
        return 1
    return 0


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


if __name__ == "__main__":
    sys.exit(main())
