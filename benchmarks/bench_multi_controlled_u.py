"""E6 — |0^k⟩-U with one clean ancilla (Fig. 1(b))."""

from __future__ import annotations

import pytest

from repro import random_unitary_gate, synthesize_mcu
from repro.bench import mcu_rows, render_table

from _harness import emit_table


def test_table_e6_mcu(benchmark):
    rows = benchmark.pedantic(
        lambda: mcu_rows([3, 4], [2, 3, 4, 5, 6, 8]), rounds=1, iterations=1
    )
    table = render_table(
        rows, title="E6: |0^k⟩-U synthesis — size and the single clean ancilla (Fig. 1b)"
    )
    emit_table("E6_multi_controlled_u", table)
    assert all(row["clean_ancillas"] == 1 for row in rows)


@pytest.mark.parametrize("dim,k", [(3, 6), (4, 6)])
def test_benchmark_mcu(benchmark, dim, k):
    gate = random_unitary_gate(dim, seed=k)
    benchmark(lambda: synthesize_mcu(dim, k, gate))
