"""E1/E2/E3 — k-Toffoli size vs k for odd and even d (Theorems III.2, III.6).

Regenerates the paper's headline claim as a measured table: the G-gate count
of the k-controlled Toffoli grows linearly in k, with zero ancillas for odd
d and exactly one borrowed ancilla for even d.
"""

from __future__ import annotations

import pytest

from repro import synthesize_mct
from repro.bench import linearity_summary, render_table, toffoli_scaling_rows

from _harness import emit_table

ODD_DIMS = [3, 5]
EVEN_DIMS = [4, 6]
KS = list(range(2, 9))


def test_table_e1_e2_toffoli_scaling(benchmark):
    rows = benchmark.pedantic(
        lambda: toffoli_scaling_rows(ODD_DIMS + EVEN_DIMS, KS), rounds=1, iterations=1
    )
    table = render_table(
        [
            {key: row[key] for key in ("d", "parity", "k", "g_gates", "two_qudit_gates", "macro_ops", "depth")}
            for row in rows
        ],
        title="E1/E2: k-Toffoli G-gate count vs k (odd d: 0 ancillas, even d: 1 borrowed)",
    )
    summary = render_table(
        linearity_summary(rows), title="E3: per-step growth (flat increments = linear size)"
    )
    emit_table("E1_E2_toffoli_scaling", table + "\n\n" + summary)
    assert all(row["g_gates"] > 0 for row in rows)


@pytest.mark.parametrize("dim,k", [(3, 8), (4, 8), (5, 6)])
def test_benchmark_synthesis_time(benchmark, dim, k):
    """Wall-clock time of the macro-level synthesis itself."""
    result = benchmark(lambda: synthesize_mct(dim, k))
    assert result.circuit.num_ops() > 0
