"""Shared helpers for the benchmark harness.

Each benchmark module regenerates one of the reproduction experiments
(E1-E12 in DESIGN.md): it times the synthesis with ``pytest-benchmark`` and
writes the measured table both to stdout and to ``benchmarks/results/``.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit_table(name: str, text: str) -> None:
    """Print a reproduction table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[table written to {path}]")
