"""Shared helpers for the benchmark harness.

Each benchmark module regenerates one of the reproduction experiments
(E1-E12 in DESIGN.md): it times the synthesis with ``pytest-benchmark`` and
writes the measured table both to stdout and to ``benchmarks/results/``.
"""

from __future__ import annotations

import json
import pathlib
import resource
import sys

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit_table(name: str, text: str) -> None:
    """Print a reproduction table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[table written to {path}]")


def peak_rss_bytes() -> int:
    """This process's lifetime peak resident set size, in bytes.

    ``ru_maxrss`` is kibibytes on Linux but bytes on macOS; normalising here
    keeps every result JSON comparable across the two CI platforms.  Note it
    is a high-water mark — a benchmark that wants the footprint of one phase
    must measure it in a fresh subprocess (see ``bench_streaming_sim.py``).
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return int(peak if sys.platform == "darwin" else peak * 1024)


def emit_json(name: str, payload: dict) -> pathlib.Path:
    """Persist one result JSON, stamping the shared harness block.

    Every benchmark result carries ``payload["harness"]["peak_rss_bytes"]``
    so memory regressions are visible in CI artifacts alongside the timing
    numbers the floors guard.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = dict(payload)
    payload["harness"] = {"peak_rss_bytes": peak_rss_bytes()}
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"[json written to {path}]")
    return path
