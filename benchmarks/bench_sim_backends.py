#!/usr/bin/env python3
"""Old-vs-new simulation engine wall-clock comparison.

Verifies a lowered multi-controlled Toffoli three ways and times each:

* ``legacy`` — the seed simulator reproduced verbatim below: every gate is
  applied to every one of the ``d^n`` basis states in a pure-Python loop;
* ``dense``  — the vectorized flat-index engine (cached gather tables);
* ``tensor`` — the vectorized axis-wise engine on the ``(d,)*n`` view.

Both new engines must produce bit-identical permutation tables, identical
statevector amplitudes, and pass the same ``verify.assert_*`` checks; the
legacy-vs-vectorized speedup for the default case (``synthesize_mct(dim=3,
num_controls=6)`` lowered to G-gates) is required to be at least 10x.

Usage::

    PYTHONPATH=src python benchmarks/bench_sim_backends.py          # full case
    PYTHONPATH=src python benchmarks/bench_sim_backends.py --quick  # CI smoke

Results are printed as a table and persisted to
``benchmarks/results/sim_backends.json``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from _harness import RESULTS_DIR, emit_json, emit_table

from repro import lower_to_g_gates, synthesize_mct
from repro.bench import render_table
from repro.sim import (
    Statevector,
    assert_mct_spec,
    assert_unitary_equiv_with_clean_ancillas,
    available_backends,
    circuit_unitary,
    multi_controlled_unitary_matrix,
    permutation_index_table,
)
from repro.core.multi_controlled_unitary import random_unitary_gate, synthesize_mcu
from repro.utils.indexing import digits_to_index, iterate_basis

#: Required legacy-vs-vectorized speedup for the full (non --quick) case.
SPEEDUP_FLOOR = 10.0


def legacy_permutation_table(circuit):
    """The seed verifier's inner loop: push every basis state through every
    gate one Python call at a time (kept verbatim for the comparison)."""
    table = []
    for state in iterate_basis(circuit.dim, circuit.num_wires):
        working = list(state)
        for op in circuit:
            op.apply_to_basis(working, circuit.dim)
        table.append(digits_to_index(working, circuit.dim))
    return table


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small case for CI smoke runs (no speedup floor enforced)",
    )
    args = parser.parse_args()

    dim, num_controls = (3, 4) if args.quick else (3, 6)
    result = synthesize_mct(dim, num_controls)
    lowered = lower_to_g_gates(result.circuit)
    size = dim**lowered.num_wires
    print(
        f"case: synthesize_mct(dim={dim}, num_controls={num_controls}) -> "
        f"{lowered.num_ops()} G-gates on {lowered.num_wires} wires ({size} basis states)"
    )

    # ------------------------------------------------------------------
    # Whole-basis verification: legacy python loop vs vectorized tables.
    # ------------------------------------------------------------------
    legacy_table, legacy_seconds = timed(lambda: legacy_permutation_table(lowered))
    new_table, cold_seconds = timed(lambda: permutation_index_table(lowered))
    _, warm_seconds = timed(lambda: permutation_index_table(lowered))
    if legacy_table != new_table.tolist():
        print("FAIL: vectorized permutation table differs from the legacy simulator")
        return 1
    speedup = legacy_seconds / cold_seconds

    # ------------------------------------------------------------------
    # Statevector sweep through the lowered circuit on every backend.
    # ------------------------------------------------------------------
    amplitudes = {}
    backend_rows = []
    for backend in available_backends():
        state = Statevector.uniform(lowered.num_wires, dim, backend=backend)
        _, seconds = timed(lambda: state.apply_circuit(lowered))
        amplitudes[backend] = state.data
        backend_rows.append({"engine": f"statevector[{backend}]", "seconds": round(seconds, 4)})
    reference = amplitudes[available_backends()[0]]
    for backend, data in amplitudes.items():
        if not np.allclose(data, reference, atol=1e-10):
            print(f"FAIL: backend {backend!r} amplitudes diverge")
            return 1

    # ------------------------------------------------------------------
    # The verify.assert_* checks must pass identically on every backend.
    # ------------------------------------------------------------------
    assert_mct_spec(lowered, result.controls, result.target)
    gate = random_unitary_gate(3, seed=5)
    mcu = synthesize_mcu(dim=3, num_controls=2, gate=gate)
    expected = multi_controlled_unitary_matrix(3, 2, gate.matrix())
    unitaries = {}
    for backend in available_backends():
        assert_unitary_equiv_with_clean_ancillas(
            mcu.circuit,
            expected,
            list(range(3)),
            mcu.clean_wires(),
            atol=1e-7,
            backend=backend,
        )
        unitaries[backend] = circuit_unitary(mcu.circuit, backend=backend)
    names = list(unitaries)
    for backend in names[1:]:
        if not np.allclose(unitaries[backend], unitaries[names[0]], atol=1e-10):
            print(f"FAIL: circuit_unitary differs between {names[0]!r} and {backend!r}")
            return 1
    print(f"verify checks passed identically on backends: {', '.join(names)}")

    rows = [
        {"engine": "legacy (seed per-index loop)", "seconds": round(legacy_seconds, 4)},
        {"engine": "vectorized table (cold cache)", "seconds": round(cold_seconds, 4)},
        {"engine": "vectorized table (warm cache)", "seconds": round(warm_seconds, 6)},
        *backend_rows,
    ]
    table = render_table(
        rows,
        title=(
            f"Simulation engines: verify lowered MCT d={dim} k={num_controls} "
            f"(legacy/vectorized speedup: {speedup:.1f}x)"
        ),
    )
    # Quick smoke runs persist to their own files so the committed full-case
    # numbers are never overwritten by a CI-sized case.
    stem = "sim_backends_quick" if args.quick else "sim_backends"
    emit_table(stem, table)

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "case": {"dim": dim, "num_controls": num_controls, "quick": args.quick},
        "g_gates": lowered.num_ops(),
        "basis_states": size,
        "legacy_seconds": legacy_seconds,
        "vectorized_cold_seconds": cold_seconds,
        "vectorized_warm_seconds": warm_seconds,
        "statevector_seconds": {
            row["engine"].split("[")[1].rstrip("]"): row["seconds"] for row in backend_rows
        },
        "speedup": speedup,
        "speedup_floor": None if args.quick else SPEEDUP_FLOOR,
    }
    emit_json(stem, payload)

    if not args.quick and speedup < SPEEDUP_FLOOR:
        print(f"FAIL: speedup {speedup:.1f}x is below the {SPEEDUP_FLOOR:.0f}x floor")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
