#!/usr/bin/env python3
"""Implementing classical reversible functions as qudit circuits (Theorem IV.2).

The example builds two oracles:

* a random 2-variable ternary reversible function, implemented ancilla-free;
* a modular-multiplication permutation ``x -> 3x mod 16`` on two ququarts
  (an invertible map because gcd(3, 16) = 1), implemented with one borrowed
  ancilla — the even-``d`` case of the theorem.

Both circuits are verified exhaustively against the original function, and
their sizes are compared with the ``n·d^n`` bound and the Lemma IV.3 lower
bound.

Run with ``python examples/reversible_oracle.py``.
"""

from __future__ import annotations

from repro import count_gates
from repro.applications import (
    random_reversible_function,
    reversible_lower_bound,
    synthesize_reversible_function,
)
from repro.sim import assert_permutation_equals_function
from repro.utils.indexing import digits_to_index, index_to_digits


def report(name: str, dim: int, n: int, table) -> None:
    result = synthesize_reversible_function(dim, n, table)
    assert_permutation_equals_function(
        result.circuit,
        lambda s: index_to_digits(table[digits_to_index(s, dim)], dim, n),
        list(range(n)),
    )
    counts = count_gates(result, lower=True)
    bound = reversible_lower_bound(dim, n)
    print(f"== {name} (d = {dim}, n = {n}) ==")
    print(f"  verified          : yes (exhaustive over {dim ** n} inputs)")
    print(f"  ancillas          : {result.ancilla_count()} "
          f"({'borrowed' if result.ancilla_count() else 'ancilla-free'})")
    print(f"  G-gates           : {counts.g_gates}")
    print(f"  n·d^n reference   : {n * dim ** n}")
    print(f"  Lemma IV.3 bound  : {bound.min_gates}")
    print()


def main() -> None:
    # A random ternary reversible function on two trits (odd d: ancilla-free).
    ternary = random_reversible_function(3, 2, seed=2023)
    report("random ternary oracle", 3, 2, ternary)

    # Modular multiplication on two ququarts (even d: one borrowed ancilla).
    dim, n = 4, 2
    size = dim**n
    mult = [(3 * x) % size for x in range(size)]
    report("x -> 3·x mod 16", dim, n, mult)

    # A three-trit cycling permutation: x -> x + 5 mod 27.
    dim, n = 3, 3
    size = dim**n
    shift = [(x + 5) % size for x in range(size)]
    report("x -> x + 5 mod 27", dim, n, shift)


if __name__ == "__main__":
    main()
