#!/usr/bin/env python3
"""Oracle truth-table extraction on a register no statevector can hold.

An 18-control ternary Toffoli acts on 19 qutrits — a basis of
``3^19 = 1,162,261,467`` states, i.e. a ~18.6 GB complex statevector that
neither the ``dense`` nor the ``streaming`` engine can realistically evolve.
The circuit is a *permutation*, though, and its action on any particular
input touches exactly one amplitude, so three O(nnz) paths run it instantly:

* ``GateTable.apply_to_indices`` — direct stride arithmetic propagates a
  whole batch of flat basis indices through the lowered G-gate rows
  (truth-table extraction: one batched call, no state at all);
* the ``sparse`` engine — a :class:`repro.sim.SparseState` holds the
  (index, amplitude) pairs and evolves in O(rows · nnz);
* the batched sampled verifier — ``assert_mct_spec`` pushes all its sampled
  states through one ``apply_to_indices`` batch and checks each against the
  semantic spec callback, so even this register is *verified*, not trusted.

Run with ``python examples/huge_register_oracle.py``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.lowering import lower_to_g_gates
from repro.sim import SparseState, assert_mct_spec, get_backend
from repro.synth import synthesize
from repro.utils.indexing import indices_to_digits

DIM, CONTROLS = 3, 18


def main() -> None:
    result = synthesize("mct", DIM, CONTROLS)
    macro = result.circuit
    lowered = lower_to_g_gates(macro)
    size = DIM**macro.num_wires
    print(f"== |0^{CONTROLS}>-X01 on {macro.num_wires} qutrits ==")
    print(f"  basis states      : {size:,} (statevector would need {16 * size / 1e9:.1f} GB)")
    print(f"  lowered G-gates   : {lowered.num_ops():,}")

    # -- truth-table extraction: batched index propagation ------------------
    table = lowered.to_table()
    probes = np.array([0, 1, 2, size // 2, size - 1], dtype=np.int64)
    start = time.perf_counter()
    images = table.apply_to_indices(probes)
    elapsed = time.perf_counter() - start
    print(f"  truth-table batch : {probes.size} probes in {elapsed * 1e3:.1f} ms")
    for src, dst in zip(probes.tolist(), images.tolist()):
        row = "".join(map(str, indices_to_digits(np.array([dst]), DIM, macro.num_wires)[0]))
        marker = " <- fired" if src != dst else ""
        print(f"    {src:>13,} -> {row}{marker}")

    # -- the sparse engine on a superposition --------------------------------
    engine = get_backend("sparse")
    state = SparseState(
        macro.num_wires,
        DIM,
        [0, size - 1],
        np.array([1.0, 1.0j]) / np.sqrt(2),
    )
    start = time.perf_counter()
    evolved = engine.apply_table_sparse(state, table)
    elapsed = time.perf_counter() - start
    print(f"  sparse engine     : nnz {state.nnz} -> {evolved.nnz} in {elapsed * 1e3:.1f} ms "
          f"({evolved.nbytes} bytes vs {16 * size / 1e9:.1f} GB dense)")

    # -- verified against the semantic spec, not trusted ---------------------
    start = time.perf_counter()
    assert_mct_spec(macro, result.controls, result.target, max_states=1000, samples=256)
    elapsed = time.perf_counter() - start
    print(f"  spec verification : 256 sampled states (batched) in {elapsed * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
