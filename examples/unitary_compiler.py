#!/usr/bin/env python3
"""Compiling arbitrary qudit unitaries with one clean ancilla (Theorem IV.1).

The example draws Haar-random unitaries on one and two qutrits, compiles
them through the two-level decomposition plus the paper's one-clean-ancilla
multi-controlled gates, verifies the result against the dense matrix, and
compares the ancilla count with the original Bullock et al. synthesis
(``⌈(n−2)/(d−2)⌉`` clean ancillas).

Run with ``python examples/unitary_compiler.py``.
"""

from __future__ import annotations

import numpy as np

from repro import count_gates
from repro.applications import bullock_ancilla_count, random_unitary, synthesize_unitary
from repro.sim import assert_unitary_equiv


def main() -> None:
    for dim, n, seed in [(3, 1, 1), (3, 2, 2), (4, 2, 3)]:
        unitary = random_unitary(dim**n, seed=seed)
        result = synthesize_unitary(unitary, dim, n)
        assert_unitary_equiv(result.circuit, unitary, atol=1e-7)
        counts = count_gates(result, lower=False)
        print(f"== Haar-random unitary on {n} qudit(s), d = {dim} ==")
        print(f"  matrix size             : {dim ** n} x {dim ** n}")
        print(f"  verified                : yes (max deviation < 1e-7)")
        print(f"  circuit operations      : {counts.macro_ops}")
        print(f"  d^(2n) reference        : {dim ** (2 * n)}")
        print(f"  clean ancillas (ours)   : {result.ancilla_count()}")
        print(f"  clean ancillas (Bullock): {bullock_ancilla_count(dim, n)}")
        print()

    # A structured 3-qutrit example exercising the clean ancilla: a two-level
    # rotation between |000⟩ and |222⟩.
    from repro.applications import TwoLevelUnitary

    block = np.array([[np.cos(0.3), -np.sin(0.3)], [np.sin(0.3), np.cos(0.3)]])
    unitary = TwoLevelUnitary(0, 26, block).embed(27)
    result = synthesize_unitary(unitary, 3, 3)
    print("== Two-level rotation between |000⟩ and |222⟩ (d = 3, n = 3) ==")
    print(f"  circuit operations      : {result.circuit.num_ops()}")
    print(f"  clean ancillas (ours)   : {result.ancilla_count()}  (Theorem IV.1: always 1)")
    print(f"  clean ancillas (Bullock): {bullock_ancilla_count(3, 3)}")


if __name__ == "__main__":
    main()
