#!/usr/bin/env python3
"""d-ary Grover search using the paper's multi-controlled gates.

Grover's algorithm over qudits is one of the applications the paper lists
for its synthesis (the oracle and the diffusion operator are both
multi-controlled gates).  The example runs the full algorithm on the dense
statevector simulator for a 2- and a 3-qutrit search space and reports the
success probability after the usual ``⌊π/4·√N⌋`` iterations, together with
the size of the compiled circuit.

Run with ``python examples/grover_search.py``.
"""

from __future__ import annotations

from repro import count_gates
from repro.applications import grover_circuit, optimal_iterations, run_grover


def main() -> None:
    for dim, n, marked in [(3, 2, (2, 1)), (3, 3, (1, 0, 2))]:
        outcome = run_grover(dim, n, marked)
        circuit = grover_circuit(dim, n, marked).circuit
        counts = count_gates(circuit, lower=False)
        print(f"== Grover search: d = {dim}, n = {n}, marked = {marked} ==")
        print(f"  search-space size      : {dim ** n}")
        print(f"  iterations             : {optimal_iterations(dim, n)}")
        print(f"  success probability    : {outcome.success_probability:.3f}")
        print(f"  random-guess probability: {outcome.uniform_probability:.3f}")
        print(f"  circuit operations     : {counts.macro_ops}")
        print(f"  clean ancillas         : {1 if n >= 3 else 0}")
        print()


if __name__ == "__main__":
    main()
