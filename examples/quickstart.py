#!/usr/bin/env python3
"""Quickstart: synthesise and verify multi-controlled qudit gates.

This example walks through the paper's headline results on a laptop scale:

1. an ancilla-free 4-controlled Toffoli on qutrits (Theorem III.6);
2. a 4-controlled Toffoli on ququarts with one borrowed ancilla
   (Theorem III.2);
3. a general multi-controlled unitary with one clean ancilla (Fig. 1(b));
4. lowering to the G-gate set and counting gates;
5. picking a simulation backend and inspecting the lowering pass pipeline;
6. the synthesis registry: capability lookup, cost-driven ``auto`` dispatch,
   and analytic estimates at a scale no circuit could be materialised;
7. the columnar IR: lowering through struct-of-arrays gate tables and how
   the table path compares to the object pipeline on wall clock;
8. differential fuzzing: a seeded block of random artifacts through every
   redundant engine pair (``python -m repro fuzz`` runs the same oracles
   on a wall-clock budget);
9. batch execution: the persistent content-addressed compile cache (warm
   compiles skip synthesis entirely) and batched simulation (B states per
   composed gather instead of one statevector at a time);
10. design-space exploration: vectorized batch estimation, Pareto frontier
    reports, and the persisted tuning DB behind ``auto_select``;
11. sparse amplitude maps: truth-table extraction and sparse-state
    evolution on a 19-qutrit register (``3^19`` basis states) that no
    dense statevector could hold, verified by batched index propagation.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

import time

from repro import (
    count_gates,
    draw,
    estimate,
    lower_to_g_gates,
    random_unitary_gate,
    synth,
    synthesize_mct,
    synthesize_mcu,
)
from repro.passes import default_lowering_pipeline
from repro.sim import Statevector, assert_mct_spec, available_backends


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Odd d: ancilla-free k-Toffoli (Theorem III.6).
    # ------------------------------------------------------------------
    odd = synthesize_mct(dim=3, num_controls=4)
    assert_mct_spec(odd.circuit, odd.controls, odd.target)
    print("== |0^4⟩-X01 on qutrits (d = 3) ==")
    print(odd.describe())
    print(f"macro operations : {odd.circuit.num_ops()}")
    print(f"ancillas         : {odd.ancilla_count()} (ancilla-free, as Theorem III.6 promises)")
    print()

    # ------------------------------------------------------------------
    # 2. Even d: one borrowed ancilla (Theorem III.2).
    # ------------------------------------------------------------------
    even = synthesize_mct(dim=4, num_controls=4)
    assert_mct_spec(even.circuit, even.controls, even.target)
    print("== |0^4⟩-X01 on ququarts (d = 4) ==")
    print(even.describe())
    print(f"borrowed ancilla wires: {even.borrowed_wires()}")
    print()

    # ------------------------------------------------------------------
    # 3. Arbitrary payload with one clean ancilla (Fig. 1(b)).
    # ------------------------------------------------------------------
    unitary = random_unitary_gate(3, seed=42)
    mcu = synthesize_mcu(dim=3, num_controls=3, gate=unitary)
    print("== |0^3⟩-U with a Haar-random payload (d = 3) ==")
    print(mcu.describe())
    print(f"clean ancilla wires: {mcu.clean_wires()}")
    print()

    # ------------------------------------------------------------------
    # 4. Lower to G-gates and count.
    # ------------------------------------------------------------------
    report = count_gates(odd)
    print("== G-gate counts for the qutrit 4-Toffoli ==")
    for key, value in report.as_row().items():
        print(f"  {key:>16}: {value}")
    print()

    # A tiny circuit drawing (the 2-controlled Fig. 5 gadget).
    tiny = synthesize_mct(dim=3, num_controls=2)
    print("== Fig. 5 gadget (|00⟩-X01, d = 3) ==")
    print(draw(tiny.circuit, wire_labels=["x1", "x2", "t"]))
    print()
    g_level = lower_to_g_gates(tiny.circuit)
    print(f"...and after lowering to the G-gate set: {g_level.num_ops()} gates")
    print()

    # ------------------------------------------------------------------
    # 5. Simulation backends and the lowering pass pipeline.
    # ------------------------------------------------------------------
    # Every dense simulation entry point takes a ``backend=`` name; the same
    # circuit gives the same amplitudes on every registered engine.
    print(f"== Simulation backends: {', '.join(available_backends())} ==")
    for backend in available_backends():
        state = Statevector(tiny.circuit.num_wires, tiny.circuit.dim, backend=backend)
        state.apply_circuit(tiny.circuit)
        print(f"  {backend:>7}: P(0,0 -> target=1) = {state.probability((0, 0, 1)):.3f}")
    print()

    # ``lower_to_g_gates`` (unchanged for callers) runs this pass pipeline
    # under the hood; running it by hand shows where gates are saved.
    pipeline = default_lowering_pipeline()
    pipeline.run(tiny.circuit)
    print("== Lowering pass pipeline ==")
    for record in pipeline.history:
        delta = record.ops_after - record.ops_before
        print(
            f"  {record.pass_name:>26}: {record.ops_before:>4} -> {record.ops_after:<4} ops"
            + (f" ({delta:+d})" if delta else "")
        )
    print()

    # ------------------------------------------------------------------
    # 6. The synthesis registry and the analytic estimator.
    # ------------------------------------------------------------------
    # Every construction is a registered strategy with capability metadata;
    # ``auto`` picks the cheapest applicable one for a scenario.
    print(f"== Synthesis registry: {', '.join(synth.names())} ==")
    tight = synth.AncillaBudget(clean=0)
    for k in (3, 20):  # Θ(2^k) wins at tiny k, the paper's O(k·d^3) beyond
        choice = synth.auto_select(3, k, budget=tight)
        print(
            f"  auto(d=3, k={k}, clean=0) -> {choice.strategy.name} "
            f"({choice.resources.two_qudit_gates} two-qudit gates)"
        )
    # The estimator counts *without building*: exact counts at sizes far
    # beyond anything materialisable (the clean-ladder family calibrates
    # from a handful of tiny circuits).
    huge = estimate("mct-clean-ladder", 3, 10**6)
    print(
        f"  estimate('mct-clean-ladder', 3, 10^6): {huge.g_gates} G-gates, "
        f"{huge.ancilla_count('clean')} clean ancillas (exact={huge.exact})"
    )
    print("  (python -m repro estimate 3 1000000 ranks the whole toffoli family)")
    print()

    # ------------------------------------------------------------------
    # 7. The columnar IR: gate tables vs per-op objects.
    # ------------------------------------------------------------------
    # ``lower_to_g_gates`` lowers through the struct-of-arrays GateTable by
    # default (cached expansion templates + columnar peephole kernels); the
    # object pipeline is still available via ``engine="object"`` and is
    # gate-for-gate identical — just much slower once circuits get big.
    big = synthesize_mct(dim=3, num_controls=12)
    timings = {}
    for engine in ("object", "table"):
        start = time.perf_counter()
        lowered = lower_to_g_gates(big.circuit, engine=engine)
        counts = (lowered.g_gate_count(), lowered.depth())
        timings[engine] = (time.perf_counter() - start, counts)
    print("== Columnar IR: lower+optimize+count on the 12-controlled qutrit Toffoli ==")
    for engine, (seconds, (g_count, depth)) in timings.items():
        print(f"  {engine:>7}: {seconds:7.3f} s   ({g_count} G-gates, depth {depth})")
    assert timings["object"][1] == timings["table"][1]
    speedup = timings["object"][0] / timings["table"][0]
    print(f"  table-path speedup: {speedup:.1f}x (identical gate counts and depth)")
    # The table form is live on the lowered circuit: counting, inversion and
    # simulation all run on numpy columns with interned payloads.
    table = lowered.cached_table  # the loop's last iteration is the table engine
    print(
        f"  {table.num_ops()} rows share {len(table.pools.perms)} interned payloads "
        f"and {len(table.pools.preds)} predicates"
    )
    print()

    # ------------------------------------------------------------------
    # 8. Differential fuzzing: every redundant engine pair agrees.
    # ------------------------------------------------------------------
    # The object/table engines, the simulation backends and the analytic
    # estimator are independent implementations of one semantics; the fuzz
    # subsystem generates seeded random circuits, synthesis instances and
    # pass pipelines and checks them against each other.  Any divergence is
    # shrunk to a few-op reproducer and reported with its case seed.
    from repro.fuzz import fuzz_run

    report = fuzz_run(seed=0, max_cases=5)
    print("== Differential fuzzing: 5 seeded cases through every oracle ==")
    for oracle, runs in sorted(report.oracle_runs.items()):
        print(f"  {oracle:>11}: {runs} runs")
    print(f"  divergences: {len(report.divergences)} (report.ok={report.ok})")
    print("  (python -m repro fuzz --time-budget 20 --json runs the CI smoke)")
    print()

    # ------------------------------------------------------------------
    # 9. Batch execution: compile cache + batched simulation.
    # ------------------------------------------------------------------
    # The compile cache content-addresses (strategy, d, k, pipeline, engine,
    # code-version salt) and stores the lowered GateTable as .npz; a warm
    # request never synthesises or lowers.  Here the second compile of the
    # same scenario comes straight from the in-process memo.
    import tempfile

    from repro.exec import CompileCache, compile_lowered
    from repro.sim import BatchedStatevector

    print("== Batch execution: compile cache + batched simulation ==")
    with tempfile.TemporaryDirectory() as cache_dir:
        cache = CompileCache(cache_dir)
        start = time.perf_counter()
        cold = compile_lowered("mct", 3, 10, cache=cache)
        cold_seconds = time.perf_counter() - start
        start = time.perf_counter()
        warm = compile_lowered("mct", 3, 10, cache=cache)
        warm_seconds = time.perf_counter() - start
        print(
            f"  compile mct(3, 10): cold {cold_seconds*1000:6.1f} ms ({cold.source}), "
            f"warm {warm_seconds*1000:6.3f} ms ({warm.source}, "
            f"{cold_seconds/max(warm_seconds, 1e-9):.0f}x)"
        )
        # Batched simulation: four basis states through one composed gather.
        circuit = warm.circuit
        rows = [
            [0] * circuit.num_wires,
            [0] * (circuit.num_wires - 1) + [1],
            [1] + [0] * (circuit.num_wires - 1),
            [0] * (circuit.num_wires - 1) + [2],
        ]
        batch = BatchedStatevector.from_basis_states(rows, 3)
        batch.apply_circuit(circuit)
        for digits, image in zip(rows, batch.most_probable()):
            print(f"  |{''.join(map(str, digits))}⟩ -> |{''.join(map(str, image))}⟩")
    print(
        "  (python -m repro batch --workload spec.json --jobs 4 --cache-dir ... "
        "runs whole request lists)"
    )
    print()

    # ------------------------------------------------------------------
    # 10. Design-space exploration: sweep, frontier, tuning DB.
    # ------------------------------------------------------------------
    # One estimate_batch call prices a whole k grid (numpy arithmetic per
    # residue class); run_sweep covers strategy × d × k, and the resulting
    # TuningDB answers auto_select from sorted arrays — bit-for-bit the
    # same pick as live estimation, which it falls back to off its region.
    import numpy as np

    from repro.dse import SweepSpec, TuningDB, frontier_report, run_sweep

    print("== Design-space exploration: batch estimation + tuning DB ==")
    mct = synth.get("mct")
    ks = np.arange(1, 10_001)
    mct.estimate_batch(3, ks)  # one-time calibration + small-k measurements
    start = time.perf_counter()
    batched = mct.estimate_batch(3, ks)
    batch_seconds = time.perf_counter() - start
    assert batched.row(9_999) == mct.estimate(3, 10_000)
    print(
        f"  estimate_batch(mct, d=3, {len(ks)} points, warm): "
        f"{batch_seconds*1000:.1f} ms ({batch_seconds/len(ks)*1e9:.0f} ns/point)"
    )

    store = run_sweep(SweepSpec(dims=(3,), k_stop=24))
    db = TuningDB.from_sweep(store)
    report = frontier_report(store)
    crossovers = report["dims"]["3"]["crossovers"]
    print(f"  swept {store.counts()['points']} points; d=3 winner crossovers:")
    for crossover in crossovers:
        print(f"    k={crossover['k']}: {crossover['from']} -> {crossover['to']}")
    live = synth.auto_select(3, 20)  # live estimation, before the DB is installed
    synth.use_tuning_db(db)
    try:
        choice = synth.auto_select(3, 20)
        print(
            f"  auto_select(3, 20) -> {choice.strategy.name} "
            f"(source: {choice.source}, two-qudit {choice.resources.two_qudit_gates})"
        )
        assert choice.source == "tuning-db"
        assert choice.resources == live.resources  # bit-for-bit the live pick
    finally:
        synth.use_tuning_db(None)
    print(
        "  (python -m repro dse --jobs 4 --db tuning.npz sweeps and persists; "
        "estimate/synthesize take --tuning-db)"
    )
    print()

    # ------------------------------------------------------------------
    # 11. Sparse amplitude maps: truth tables beyond any statevector.
    # ------------------------------------------------------------------
    # An 18-control ternary Toffoli lives on 19 qutrits: 3^19 ≈ 1.16e9
    # basis states, an ~18.6 GB statevector no dense engine holds.  The
    # circuit is a permutation, so its truth table is extracted by batched
    # index propagation (GateTable.apply_to_indices — no state at all) and
    # superpositions evolve through the sparse engine in O(rows · nnz).
    from repro.sim import SparseState, get_backend

    print("== Sparse amplitude maps: oracle truth tables at 3^19 ==")
    huge = synth.synthesize("mct", 3, 18)
    table = huge.circuit.to_table()
    size = 3**huge.circuit.num_wires
    probes = np.array([0, 1, size // 2, size - 1], dtype=np.int64)
    start = time.perf_counter()
    images = table.apply_to_indices(probes)  # truth-table rows, no amplitudes
    probe_ms = (time.perf_counter() - start) * 1e3
    fired = ", ".join(
        f"{src}->{dst}" + (" (fired)" if src != dst else "")
        for src, dst in zip(probes.tolist(), images.tolist())
    )
    print(f"  truth-table probes ({probe_ms:.1f} ms): {fired}")

    state = SparseState.from_basis_state([0] * huge.circuit.num_wires, 3)
    evolved = get_backend("sparse").apply_table_sparse(state, table)
    print(
        f"  sparse engine: nnz {state.nnz} -> {evolved.nnz}, "
        f"{evolved.nbytes} bytes vs {16 * size / 1e9:.1f} GB dense"
    )
    assert_mct_spec(huge.circuit, huge.controls, huge.target, max_states=1000, samples=128)
    print("  verified against the mct spec: 128 sampled states, one batched index pass")
    print("  (examples/huge_register_oracle.py runs the full tour)")


if __name__ == "__main__":
    main()
