"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError`, so callers can
catch a single type while still being able to distinguish configuration
errors (bad dimensions, bad wires) from synthesis and verification failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class DimensionError(ReproError):
    """Raised when a qudit dimension is invalid for the requested operation.

    Examples: ``d < 2`` anywhere, ``d < 3`` for the paper's constructions,
    an odd-``d`` routine called with even ``d`` or vice versa.
    """


class WireError(ReproError):
    """Raised when wire indices are out of range, repeated, or insufficient."""


class GateError(ReproError):
    """Raised when a gate is constructed from inconsistent data."""


class SynthesisError(ReproError):
    """Raised when a synthesis routine cannot produce a circuit.

    This signals a caller error (e.g. not enough borrowable wires) rather
    than an internal failure; internal failures surface as assertions in the
    test suite.
    """


class VerificationError(ReproError):
    """Raised by the verification helpers when a circuit does not implement
    its specification."""


class CacheError(ReproError):
    """Raised when a compile-cache artifact is malformed or unreadable —
    a corrupted or truncated ``.npz`` payload, an unknown serialization
    format version, or metadata that does not match the stored table."""


class WorkloadError(ReproError):
    """Raised when a batch workload spec is malformed: unknown request
    kind, missing fields, or values the referenced strategy rejects."""


class DSEError(ReproError):
    """Raised by the design-space exploration layer: a malformed sweep
    spec, a tuning database whose code-version salt or digest does not
    match, or a frontier query over objectives the store does not carry."""


class ServeError(ReproError):
    """Raised by the serving layer: a malformed submit body, a request
    rejected by admission control (queue full, oversized batch, daemon
    draining), or a daemon misconfiguration (e.g. a multi-process pool
    without a shared cache directory)."""

    #: HTTP status the daemon maps this error to (subclasses override).
    status = 400


class EstimationError(ReproError):
    """Raised when the analytic resource estimator cannot produce an exact
    count — an unsupported strategy/parameter combination, or a calibration
    whose measured finite differences are not affine (which would make
    extrapolation silently wrong, so it is refused instead)."""
