"""Concrete registered strategies wrapping every construction in the repo.

Importing this module populates the registry (:mod:`repro.synth.registry`)
with the paper's own constructions (Theorems III.2/III.6, ``P_k``,
Fig. 1(b)), the prior-work baselines, and the application-level builders.
The legacy ``synthesize_*`` module functions remain the implementation;
the strategies add capability metadata, analytic estimates and canonical
verification on top, and the unified dispatchers (``synthesize_mct``)
delegate back through the registry.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import SynthesisError
from repro.qudit.ancilla import AncillaKind, SynthesisResult
from repro.qudit.circuit import QuditCircuit
from repro.qudit.gates import Gate, XPerm
from repro.resources.estimator import (
    INT64_MAX,
    METRIC_FIELDS,
    AffineSpec,
    BatchEstimate,
    Resources,
    measure,
    sum_estimates,
)
from repro.synth.registry import register
from repro.synth.strategy import BOTH_PARITIES, Capabilities, EVEN, ODD, Synthesizer

from repro.core.toffoli import mct_ops
from repro.core.toffoli_even import synthesize_mct_even
from repro.core.toffoli_odd import synthesize_mct_odd
from repro.core.pk import pk_map, synthesize_pk
from repro.core.multi_controlled_unitary import synthesize_mcu
from repro.core.single_controlled import controlled_transposition_g_ops
from repro.baselines.ancilla_free_exponential import synthesize_mcu_exponential
from repro.baselines.clean_ancilla_ladder import (
    clean_ancilla_count,
    synthesize_mct_clean_ladder,
)
from repro.applications.arithmetic import increment_reference, synthesize_increment
from repro.applications.reversible import (
    random_reversible_function,
    synthesize_reversible_function,
)
from repro.applications.unitary_synthesis import random_unitary, synthesize_unitary
from repro.utils.indexing import digits_to_index, index_to_digits


def _verify_mct(result: SynthesisResult, budget=None, **kwargs):
    from repro.sim.verify import assert_mct_spec

    return assert_mct_spec(
        result.circuit,
        result.controls,
        result.target,
        clean_wires=result.clean_wires(),
        budget=budget,
        **kwargs,
    )


# ----------------------------------------------------------------------
# The paper's k-Toffoli (Theorems III.2 / III.6)
# ----------------------------------------------------------------------
class MctStrategy(Synthesizer):
    """Unified ``|0^k⟩-Xij``: odd-d ancilla-free / even-d one borrowed."""

    name = "mct"
    description = "paper k-Toffoli: Thm III.6 (odd d, ancilla-free) / Thm III.2 (even d, 1 borrowed)"
    capabilities = Capabilities(
        family="toffoli",
        parities=BOTH_PARITIES,
        ancilla_kind="borrowed",
        gates="O(k·d^3) G-gates",
        ancillas="0 (odd d) / 1 borrowed (even d, k ≥ 2)",
    )

    def estimator_spec(self, dim: int) -> AffineSpec:
        # The Fig. 4 / Fig. 9 halving makes the cost parity-dependent in k;
        # both residue classes are exactly affine from k = 11 on.
        return AffineSpec(period=2, stable_from=11)

    def synthesize(
        self,
        dim: int,
        k: int,
        *,
        control_values: Optional[Sequence[int]] = None,
        swap: Tuple[int, int] = (0, 1),
        **kwargs,
    ) -> SynthesisResult:
        if control_values is None and swap == (0, 1):
            if dim % 2 == 1:
                return synthesize_mct_odd(dim, k)
            return synthesize_mct_even(dim, k)
        controls = list(range(k))
        target = k
        needs_borrow = dim % 2 == 0 and k >= 2
        borrow = k + 1 if needs_borrow else None
        num_wires = k + (2 if needs_borrow else 1)
        circuit = QuditCircuit(num_wires, dim, name=f"MCT(k={k}, d={dim})")
        circuit.extend(
            mct_ops(
                dim,
                controls,
                target,
                borrow=borrow,
                control_values=control_values,
                swap=swap,
            )
        )
        ancillas = {borrow: AncillaKind.BORROWED} if needs_borrow else {}
        return SynthesisResult(
            circuit=circuit,
            controls=tuple(controls),
            target=target,
            ancillas=ancillas,
            notes="Theorems III.2 / III.6 with control-value conjugation",
        )

    def layout(self, dim: int, k: int) -> Tuple[int, Dict[str, int]]:
        if dim % 2 == 0 and k >= 2:
            return k + 2, {"borrowed": 1}
        return k + 1, {}

    def layout_batch(self, dim: int, ks: np.ndarray) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        ks = np.asarray(ks, dtype=np.int64)
        if dim % 2:
            return ks + 1, {}
        borrowed = (ks >= 2).astype(np.int64)
        return ks + 1 + borrowed, {"borrowed": borrowed}

    def verify(self, result: SynthesisResult, dim: int, k: int, budget=None, **kwargs):
        return _verify_mct(result, budget=budget, **kwargs)


class MctOddStrategy(MctStrategy):
    """Theorem III.6 directly (odd d only, ancilla-free)."""

    name = "mct-odd"
    description = "Thm III.6 k-Toffoli, odd d, ancilla-free (Fig. 10 / P_k detectors)"
    capabilities = Capabilities(
        family="toffoli",
        parities=frozenset({ODD}),
        gates="O(k·d^3) G-gates",
        ancillas="0",
        dispatchable=False,
    )

    def synthesize(self, dim: int, k: int, **kwargs) -> SynthesisResult:
        self._require(dim, k)
        return synthesize_mct_odd(dim, k, **kwargs)

    def layout(self, dim: int, k: int) -> Tuple[int, Dict[str, int]]:
        return k + 1, {}

    def layout_batch(self, dim: int, ks: np.ndarray) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        return np.asarray(ks, dtype=np.int64) + 1, {}


class MctEvenStrategy(MctStrategy):
    """Theorem III.2 directly (even d only, one borrowed ancilla)."""

    name = "mct-even"
    description = "Thm III.2 k-Toffoli, even d, one borrowed ancilla (Figs. 3-4)"
    capabilities = Capabilities(
        family="toffoli",
        parities=frozenset({EVEN}),
        min_dim=4,
        ancilla_kind="borrowed",
        gates="O(k·d^3) G-gates",
        ancillas="1 borrowed (k ≥ 2)",
        dispatchable=False,
    )

    def synthesize(self, dim: int, k: int, **kwargs) -> SynthesisResult:
        self._require(dim, k)
        return synthesize_mct_even(dim, k, **kwargs)


# ----------------------------------------------------------------------
# P_k (Lemma III.5, Figs. 8-9)
# ----------------------------------------------------------------------
class PkStrategy(Synthesizer):
    """The ``P_k`` workhorse gate of the odd-d construction."""

    name = "pk"
    description = "P_k last-nonzero-parity gate (Lemma III.5, Figs. 8-9), one borrowed ancilla"
    capabilities = Capabilities(
        family="pk",
        parities=frozenset({ODD}),
        min_k=1,
        ancilla_kind="borrowed",
        gates="O(k·d) G-gates",
        ancillas="1 borrowed (k ≥ 3)",
        payload="P_k",
    )

    def estimator_spec(self, dim: int) -> AffineSpec:
        return AffineSpec(period=2, stable_from=11)

    def synthesize(self, dim: int, k: int, *, one_ancilla: bool = True, **kwargs) -> SynthesisResult:
        self._require(dim, k)
        return synthesize_pk(dim, k, one_ancilla=one_ancilla)

    def layout(self, dim: int, k: int) -> Tuple[int, Dict[str, int]]:
        if k <= 2:
            return k, {}
        return k + 1, {"borrowed": 1}

    def layout_batch(self, dim: int, ks: np.ndarray) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        ks = np.asarray(ks, dtype=np.int64)
        borrowed = (ks > 2).astype(np.int64)
        return ks + borrowed, {"borrowed": borrowed}

    def verify(self, result: SynthesisResult, dim: int, k: int, budget=None, **kwargs):
        from repro.sim.verify import assert_permutation_equals_function

        return assert_permutation_equals_function(
            result.circuit,
            lambda digits: pk_map(dim, digits),
            wires=list(range(k)),
            budget=budget,
            **kwargs,
        )


# ----------------------------------------------------------------------
# Multi-controlled single-qudit gate |0^k⟩-U (Fig. 1(b))
# ----------------------------------------------------------------------
class McuStrategy(Synthesizer):
    """``|0^k⟩-U`` with one clean ancilla; cost family for the X01 payload."""

    name = "mcu"
    description = "Fig. 1(b) |0^k⟩-U: k-Toffoli onto a clean ancilla, |1⟩-U, un-compute"
    capabilities = Capabilities(
        family="mcu",
        parities=BOTH_PARITIES,
        ancilla_kind="clean",
        gates="O(k·d^3) two-qudit gates",
        ancillas="1 clean (k ≥ 2)",
        payload="any single-qudit U (estimates: X01)",
    )

    def estimator_spec(self, dim: int) -> AffineSpec:
        return AffineSpec(period=2, stable_from=11)

    def synthesize(
        self,
        dim: int,
        k: int,
        *,
        gate: Optional[Gate] = None,
        control_values: Optional[Sequence[int]] = None,
        **kwargs,
    ) -> SynthesisResult:
        self._require(dim, k)
        payload = gate if gate is not None else XPerm.transposition(dim, 0, 1)
        return synthesize_mcu(dim, k, payload, control_values=control_values)

    def layout(self, dim: int, k: int) -> Tuple[int, Dict[str, int]]:
        if k >= 2:
            return k + 2, {"clean": 1}
        return k + 1, {}

    def layout_batch(self, dim: int, ks: np.ndarray) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        ks = np.asarray(ks, dtype=np.int64)
        clean = (ks >= 2).astype(np.int64)
        return ks + 1 + clean, {"clean": clean}

    def verify(self, result: SynthesisResult, dim: int, k: int, budget=None, **kwargs):
        # Canonical payload is X01, so the spec is exactly the k-Toffoli's
        # (on the clean-ancilla subspace).
        return _verify_mct(result, budget=budget, **kwargs)


# ----------------------------------------------------------------------
# Baselines
# ----------------------------------------------------------------------
class CleanLadderStrategy(Synthesizer):
    """Standard counting-ladder baseline [5, 23] with clean ancillas."""

    name = "mct-clean-ladder"
    description = "baseline [5,23] k-Toffoli: counting ladder, ⌈(k−2)/(d−2)⌉ clean ancillas"
    capabilities = Capabilities(
        family="toffoli",
        parities=BOTH_PARITIES,
        ancilla_kind="clean",
        gates="O(k) two-qudit gates",
        ancillas="⌈(k−2)/(d−2)⌉ clean",
    )

    def estimator_spec(self, dim: int) -> AffineSpec:
        # One counting step per control; a fresh ancilla every d − 2
        # controls makes the residue period d − 2 (1 for qutrits).
        return AffineSpec(period=max(1, dim - 2), stable_from=4)

    def synthesize(self, dim: int, k: int, *, swap: Tuple[int, int] = (0, 1), **kwargs) -> SynthesisResult:
        self._require(dim, k)
        return synthesize_mct_clean_ladder(dim, k, swap=swap)

    def layout(self, dim: int, k: int) -> Tuple[int, Dict[str, int]]:
        ancillas = clean_ancilla_count(dim, k)
        histogram = {"clean": ancillas} if ancillas else {}
        return k + 1 + ancillas, histogram

    def layout_batch(self, dim: int, ks: np.ndarray) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        ks = np.asarray(ks, dtype=np.int64)
        # ⌈(k − 2)/(d − 2)⌉ clean ancillas for k > 2, none below.
        clean = np.where(ks > 2, -(-(ks - 2) // max(1, dim - 2)), 0)
        return ks + 1 + clean, {"clean": clean}

    def verify(self, result: SynthesisResult, dim: int, k: int, budget=None, **kwargs):
        return _verify_mct(result, budget=budget, **kwargs)


class McuExponentialStrategy(Synthesizer):
    """Ancilla-free commutator-recursion baseline [25]: Θ(2^k) gates.

    The macro circuit carries dense ``SU(d)`` payloads, so it is never
    lowered; the closed-form counts below reproduce ``count_gates`` on the
    macro level exactly (validated against materialised circuits the first
    time a dimension is estimated).
    """

    name = "mcu-exponential"
    description = "baseline [25]-style ancilla-free commutator recursion, Θ(2^k) two-qudit gates"
    capabilities = Capabilities(
        family="toffoli",
        parities=BOTH_PARITIES,
        gates="Θ(2^k) two-qudit gates",
        ancillas="0",
        payload="det-normalised X01 (e^{iπ/d}·X01)",
    )

    _validated_dims: set = set()

    def synthesize(self, dim: int, k: int, **kwargs) -> SynthesisResult:
        self._require(dim, k)
        return synthesize_mcu_exponential(dim, k)

    def layout(self, dim: int, k: int) -> Tuple[int, Dict[str, int]]:
        return k + 1, {}

    def estimate(self, dim: int, k: int) -> Resources:
        self._require(dim, k)
        if dim not in self._validated_dims:
            for small in range(0, 5):
                if self._closed_form(small) != measure(self, dim, small).metrics():
                    raise SynthesisError(
                        f"mcu-exponential closed form diverges from the "
                        f"materialised circuit at d={dim}, k={small}"
                    )
            self._validated_dims.add(dim)
        fields = dict(zip(METRIC_FIELDS, self._closed_form(k)))
        wires, ancillas = self.layout(dim, k)
        return Resources(
            strategy=self.name,
            dim=dim,
            k=k,
            num_wires=wires,
            ancillas=ancillas,
            exact=True,
            **fields,
        )

    @staticmethod
    def _closed_form(k: int) -> Tuple[int, ...]:
        # ops(k) = 2·ops(k−1) + 2, ops(0) = ops(1) = 1  ⇒  3·2^{k−1} − 2.
        # Arbitrary-precision Python ints on purpose: a numpy-integer k
        # (e.g. iterating a SweepSpec grid) would silently wrap past k = 62.
        k = int(k)
        ops = 1 if k == 0 else 3 * (1 << (k - 1)) - 2
        two_qudit = 0 if k == 0 else ops
        single = 1 if k == 0 else 0
        # Every op touches the target wire, so depth equals the op count;
        # dense payloads are not G-gates, so the G metrics are zero.
        return (ops, two_qudit, 0, ops, single, 0)

    def layout_batch(self, dim: int, ks: np.ndarray) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        return np.asarray(ks, dtype=np.int64) + 1, {}

    def estimate_batch(self, dim: int, ks) -> BatchEstimate:
        """Closed-form Θ(2^k) batch: saturates at int64 beyond k ≈ 62.

        The default affine path cannot represent an exponential family, and
        the scalar fallback would overflow numpy; instead the recurrence's
        closed form is evaluated with Python integers and clipped, flagging
        saturated rows ``offscale`` so rankings still order them last.
        """
        self.estimate(dim, 0)  # triggers the one-time closed-form validation
        from repro.resources.estimator import _check_batch_ks, _empty_batch

        ks = _check_batch_ks(self, dim, ks)
        batch = _empty_batch(self, dim, ks)
        batch.num_wires = ks + 1
        if not ks.size:
            return batch
        # ops fits int64 up to k = 62: 3·2^61 − 2 < 2^63 − 1 < 3·2^62 − 2.
        safe = ks <= 62
        batch.offscale = ~safe
        clipped = np.where(safe, ks, 62)
        ops = np.where(clipped == 0, 1, 3 * (1 << np.maximum(clipped - 1, 0)) - 2)
        ops = np.where(safe, ops, INT64_MAX)
        batch.metrics["macro_ops"] = ops.copy()
        batch.metrics["depth"] = ops.copy()
        batch.metrics["two_qudit_gates"] = np.where(ks == 0, 0, ops)
        batch.metrics["single_qudit_gates"] = (ks == 0).astype(np.int64)
        return batch

    #: The expected unitary has closed-form columns (identity outside the
    #: |0^k⟩ block), so the synth-spec oracle may request a sampled-column
    #: verify on bases too large for the dense matrix compare.
    supports_sampled_columns = True

    def verify(self, result: SynthesisResult, dim: int, k: int, budget=None, **kwargs):
        import numpy as np

        from repro.baselines.ancilla_free_exponential import toffoli_payload_su
        from repro.sim.unitary import multi_controlled_unitary_matrix
        from repro.sim.verify import assert_unitary_columns_equiv, assert_unitary_equiv

        payload = np.asarray(toffoli_payload_su(dim))
        # Column oracle: the expected matrix is the identity except for the
        # payload block at the all-zero control values (the circuit is
        # ancilla-free, so the block is columns 0..d-1), so each expected
        # column is written down directly — no basis² matrix.  The payload
        # block is always pinned into the sample.
        size = dim**result.circuit.num_wires

        def expected_column(col: int) -> np.ndarray:
            vector = np.zeros(size, dtype=complex)
            if col < dim:
                vector[:dim] = payload[:, col]
            else:
                vector[col] = 1.0
            return vector

        sampled_columns = kwargs.pop("sampled_columns", None)
        if sampled_columns is not None:
            return assert_unitary_columns_equiv(
                result.circuit,
                expected_column,
                samples=int(sampled_columns),
                required_columns=range(dim),
                up_to_global_phase=True,
                budget=budget,
                **kwargs,
            )
        if budget is not None:
            # Budget-driven: hand the verifier the cheap column oracle plus a
            # lazy factory for the basis² matrix, so the dense compare is only
            # materialised when the budget actually selects the dense tier.
            from repro.verify import TieredVerifier, resolve_budget

            report = TieredVerifier(resolve_budget(budget)).verify_unitary(
                result.circuit,
                expected_factory=lambda: np.asarray(
                    multi_controlled_unitary_matrix(dim, k, payload)
                ),
                expected_column=expected_column,
                required_columns=range(dim),
                up_to_global_phase=True,
                **kwargs,
            )
            return report.raise_if_failed()
        expected = multi_controlled_unitary_matrix(dim, k, payload)
        return assert_unitary_equiv(
            result.circuit, np.asarray(expected), up_to_global_phase=True, **kwargs
        )


# ----------------------------------------------------------------------
# Applications
# ----------------------------------------------------------------------
class IncrementStrategy(Synthesizer):
    """Ripple ``+1 mod d^n`` built from multi-controlled ``X+1`` gates."""

    name = "increment"
    description = "ripple increment: one |{d−1}^j⟩-X+1 block per register digit (k = n digits)"
    capabilities = Capabilities(
        family="arithmetic",
        parities=BOTH_PARITIES,
        min_k=1,
        ancilla_kind="clean",
        gates="O(n^2·d^3) G-gates",
        ancillas="1 clean (n ≥ 3)",
        payload="X+1",
        analytic=False,
    )

    #: Registers up to this size are estimated exactly by materialising.
    _EXACT_LIMIT = 8

    def synthesize(self, dim: int, k: int, **kwargs) -> SynthesisResult:
        self._require(dim, k)
        return synthesize_increment(dim, k)

    def layout(self, dim: int, k: int) -> Tuple[int, Dict[str, int]]:
        if k >= 3:
            return k + 1, {"clean": 1}
        return k, {}

    def estimate(self, dim: int, k: int) -> Resources:
        """Exact for small registers; a stacked-MCU model beyond.

        The increment is one multi-controlled block per digit, but adjacent
        blocks share conjugation layers that the peephole passes cancel, so
        the composed counts are an upper-bound *model* (``exact=False``) —
        the cross-block savings are payload-position dependent.
        """
        self._require(dim, k)
        if k <= self._EXACT_LIMIT:
            return measure(self, dim, k)
        mcu = _MCU_SINGLETON
        fields = dict(zip(METRIC_FIELDS, sum_estimates(mcu, dim, k)))
        wires, ancillas = self.layout(dim, k)
        return Resources(
            strategy=self.name,
            dim=dim,
            k=k,
            num_wires=wires,
            ancillas=ancillas,
            exact=False,
            **fields,
        )

    def verify(self, result: SynthesisResult, dim: int, k: int, budget=None, **kwargs):
        from repro.sim.verify import assert_permutation_equals_function

        return assert_permutation_equals_function(
            result.circuit,
            lambda digits: increment_reference(dim, k, digits),
            wires=list(range(k)),
            clean_wires=result.clean_wires(),
            budget=budget,
            **kwargs,
        )


class ReversibleStrategy(Synthesizer):
    """Theorem IV.2: arbitrary d-ary reversible functions (k = n variables)."""

    name = "reversible"
    description = "Thm IV.2 reversible function as 2-cycles (k = n variables); canonical: seed-0 random bijection"
    capabilities = Capabilities(
        family="reversible",
        parities=BOTH_PARITIES,
        min_k=1,
        ancilla_kind="borrowed",
        gates="O(n·d^n) G-gates",
        ancillas="0 (odd d) / 1 borrowed (even d, n ≥ 3)",
        payload="any bijection on [d]^n",
        analytic=False,
    )

    def synthesize(self, dim: int, k: int, *, function=None, **kwargs) -> SynthesisResult:
        self._require(dim, k)
        if function is None:
            function = random_reversible_function(dim, k, seed=0)
        return synthesize_reversible_function(dim, k, function)

    def layout(self, dim: int, k: int) -> Tuple[int, Dict[str, int]]:
        if dim % 2 == 0 and k >= 3:
            return k + 1, {"borrowed": 1}
        return k, {}

    def estimate(self, dim: int, k: int) -> Resources:
        """Worst-case model (``exact=False``): ``d^n − 1`` 2-cycles, each a
        relabelled value-controlled k-Toffoli (the O(n·d^n) bound)."""
        self._require(dim, k)
        cycles = dim**k - 1
        mct = _MCT_SINGLETON.estimate(dim, max(k - 1, 0))
        relabel = 2 * max(k - 1, 0)  # controlled transpositions per cycle, worst case
        per_op = _controlled_transposition_cost(dim)
        conj = 2 * max(k - 1, 0)  # value-conjugation Xij singles per cycle
        values = {
            "macro_ops": cycles * (mct.macro_ops + relabel + conj),
            "two_qudit_gates": cycles * (mct.two_qudit_gates + relabel * per_op[1]),
            "g_gates": cycles * (mct.g_gates + relabel * per_op[0] + conj),
            "depth": cycles * (mct.depth + relabel * per_op[0] + conj),
            "single_qudit_gates": cycles
            * (mct.single_qudit_gates + relabel * (per_op[0] - per_op[1]) + conj),
            "controlled_x01": cycles * (mct.controlled_x01 + relabel * per_op[1]),
        }
        wires, ancillas = self.layout(dim, k)
        return Resources(
            strategy=self.name,
            dim=dim,
            k=k,
            num_wires=wires,
            ancillas=ancillas,
            exact=False,
            **values,
        )

    def verify(self, result: SynthesisResult, dim: int, k: int, budget=None, **kwargs):
        from repro.sim.verify import assert_permutation_equals_function

        table = random_reversible_function(dim, k, seed=0)

        def reference(digits):
            return index_to_digits(table[digits_to_index(digits, dim)], dim, k)

        return assert_permutation_equals_function(
            result.circuit, reference, wires=list(range(k)), budget=budget, **kwargs
        )


class UnitaryStrategy(Synthesizer):
    """Theorem IV.1: arbitrary n-qudit unitaries with one clean ancilla."""

    name = "unitary"
    description = "Thm IV.1 exact unitary synthesis (k = n qudits); canonical: seed-0 Haar unitary"
    capabilities = Capabilities(
        family="unitary",
        parities=BOTH_PARITIES,
        min_k=1,
        ancilla_kind="clean",
        gates="O(d^{2n}) two-qudit gates",
        ancillas="1 clean (n ≥ 3)",
        payload="any U(d^n) matrix",
        analytic=False,
    )

    def synthesize(self, dim: int, k: int, *, unitary=None, **kwargs) -> SynthesisResult:
        self._require(dim, k)
        if unitary is None:
            unitary = random_unitary(dim**k, seed=0)
        return synthesize_unitary(unitary, dim, k)

    def layout(self, dim: int, k: int) -> Tuple[int, Dict[str, int]]:
        if k >= 3:
            return k + 1, {"clean": 1}
        return k, {}

    def estimate(self, dim: int, k: int) -> Resources:
        """Macro-level worst-case model (``exact=False``): one relabelled
        ``|0^{n−1}⟩-U`` block per two-level factor; dense payloads keep the
        circuit at the macro level, so the G-gate metrics are zero."""
        self._require(dim, k)
        size = dim**k
        factors = size * (size - 1) // 2
        mct = _MCT_SINGLETON.estimate(dim, max(k - 1, 0))
        relabel = 2 * max(k - 1, 0)
        per_factor_macros = 2 * mct.macro_ops + 1 + relabel
        values = {
            "macro_ops": factors * per_factor_macros,
            "two_qudit_gates": factors,  # the |1⟩-U fire gates
            "g_gates": 0,
            "depth": factors * per_factor_macros,
            "single_qudit_gates": 0,
            "controlled_x01": 0,
        }
        wires, ancillas = self.layout(dim, k)
        return Resources(
            strategy=self.name,
            dim=dim,
            k=k,
            num_wires=wires,
            ancillas=ancillas,
            exact=False,
            **values,
        )

    def verify(self, result: SynthesisResult, dim: int, k: int, budget=None, **kwargs):
        from repro.sim.verify import (
            assert_unitary_equiv,
            assert_unitary_equiv_with_clean_ancillas,
        )

        expected = random_unitary(dim**k, seed=0)
        clean = result.clean_wires()
        if clean:
            return assert_unitary_equiv_with_clean_ancillas(
                result.circuit,
                expected,
                list(range(k)),
                clean,
                atol=1e-7,
                budget=budget,
                **kwargs,
            )
        return assert_unitary_equiv(
            result.circuit, expected, atol=1e-7, budget=budget, **kwargs
        )


def _controlled_transposition_cost(dim: int) -> Tuple[int, int]:
    """(G-gates, controlled G-gates) of one lowered ``|v⟩-Xij`` relabel op."""
    ops = controlled_transposition_g_ops(dim, 0, 1, 1, 0, 2)
    controlled = sum(1 for op in ops if getattr(op, "num_controls", 0) == 1)
    return len(ops), controlled


# ----------------------------------------------------------------------
# Registration (import side effect of repro.synth)
# ----------------------------------------------------------------------
_MCT_SINGLETON = MctStrategy()
_MCU_SINGLETON = McuStrategy()

register(_MCT_SINGLETON)
register(MctOddStrategy())
register(MctEvenStrategy())
register(CleanLadderStrategy())
register(McuExponentialStrategy())
register(PkStrategy())
register(_MCU_SINGLETON)
register(IncrementStrategy())
register(ReversibleStrategy())
register(UnitaryStrategy())
