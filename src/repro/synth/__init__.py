"""Unified synthesis registry: strategies, capabilities, auto dispatch.

Every construction in the repository — the paper's theorems, the prior-work
baselines, and the application-level builders — is registered here as a
:class:`~repro.synth.strategy.Synthesizer` with capability metadata and an
analytic resource estimator, so callers can look constructions up by name,
rank them by cost without building circuits, and let ``auto`` pick the
cheapest applicable one:

>>> from repro import synth
>>> synth.names()                                    # doctest: +SKIP
>>> synth.estimate("mct", 3, 10**6).g_gates          # doctest: +SKIP
>>> choice = synth.auto_select(3, 20, budget=synth.AncillaBudget(clean=0))
... # doctest: +SKIP

``python -m repro list`` renders the registry as a capability table.
"""

from repro.synth.strategy import (
    AncillaBudget,
    BOTH_PARITIES,
    Capabilities,
    Synthesizer,
)
from repro.synth.registry import (
    AutoChoice,
    active_tuning_db,
    all_strategies,
    auto_select,
    available,
    estimate,
    get,
    names,
    register,
    synthesize,
    use_tuning_db,
)

# Importing the concrete strategies populates the registry.
import repro.synth.strategies  # noqa: E402,F401  (side effect: registration)

__all__ = [
    "AncillaBudget",
    "AutoChoice",
    "BOTH_PARITIES",
    "Capabilities",
    "Synthesizer",
    "active_tuning_db",
    "all_strategies",
    "auto_select",
    "available",
    "estimate",
    "get",
    "names",
    "register",
    "synthesize",
    "use_tuning_db",
]
