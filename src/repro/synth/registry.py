"""The strategy registry and the cost-model-driven ``auto`` dispatcher.

Strategies register themselves by name (see :mod:`repro.synth.strategies`);
callers look them up, enumerate the ones applicable to a scenario, or let
:func:`auto_select` pick the cheapest construction for a given
``(d, k, ancilla budget)`` using the analytic estimator — mirroring how
hardware synthesis flows pick a mapped implementation per target from a
library of characterised cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.exceptions import EstimationError, SynthesisError
from repro.qudit.ancilla import SynthesisResult
from repro.resources.estimator import Resources
from repro.synth.strategy import AncillaBudget, Synthesizer

_REGISTRY: Dict[str, Synthesizer] = {}

#: Metric used to rank strategies: the paper's universal cost unit is the
#: two-qudit gate count, which is defined both for lowered G-circuits and
#: for macro-level circuits with unitary payloads.
DEFAULT_METRIC = "two_qudit_gates"


def register(strategy: Synthesizer, *, replace: bool = False) -> Synthesizer:
    """Add a strategy to the registry (keyed by ``strategy.name``)."""
    if not replace and strategy.name in _REGISTRY:
        raise SynthesisError(f"strategy {strategy.name!r} is already registered")
    _REGISTRY[strategy.name] = strategy
    return strategy


def get(name: str) -> Synthesizer:
    """Look up a registered strategy by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise SynthesisError(f"unknown strategy {name!r}; registered: {known}") from None


def names() -> List[str]:
    """Registered strategy names, in registration order."""
    return list(_REGISTRY)


def all_strategies() -> List[Synthesizer]:
    return list(_REGISTRY.values())


def available(
    dim: int,
    k: int,
    *,
    family: Optional[str] = None,
    budget: Optional[AncillaBudget] = None,
    dispatchable_only: bool = False,
) -> List[Synthesizer]:
    """Strategies applicable to ``(d, k)`` under the given constraints."""
    out = []
    for strategy in _REGISTRY.values():
        if family is not None and strategy.capabilities.family != family:
            continue
        if dispatchable_only and not strategy.capabilities.dispatchable:
            continue
        if not strategy.supports(dim, k):
            continue
        if budget is not None and not budget.permits(strategy.layout(dim, k)[1]):
            continue
        out.append(strategy)
    return out


@dataclass
class AutoChoice:
    """Outcome of :func:`auto_select`: the winner plus the full ranking."""

    strategy: Synthesizer
    resources: Resources
    #: Every considered strategy: ``(name, resources-or-None, note)``.
    considered: List[Tuple[str, Optional[Resources], str]] = field(default_factory=list)
    #: Where the answer came from: ``"estimator"`` (live) or ``"tuning-db"``.
    source: str = "estimator"


#: Session-wide tuning database consulted by :func:`auto_select` (see
#: :func:`use_tuning_db`); ``None`` means every selection estimates live.
_ACTIVE_TUNING_DB = None


def use_tuning_db(db) -> Optional[object]:
    """Install ``db`` (a :class:`repro.dse.tuning.TuningDB` or ``None``) as
    the session's selection database; returns the previous one so callers
    can restore it."""
    global _ACTIVE_TUNING_DB
    previous = _ACTIVE_TUNING_DB
    _ACTIVE_TUNING_DB = db
    return previous


def active_tuning_db():
    return _ACTIVE_TUNING_DB


def auto_select(
    dim: int,
    k: int,
    *,
    family: str = "toffoli",
    budget: Optional[AncillaBudget] = None,
    metric: str = DEFAULT_METRIC,
    tuning_db=None,
) -> AutoChoice:
    """Pick the cheapest applicable strategy for ``(d, k, budget)``.

    Costs come from the analytic estimator, so the selection itself never
    materialises a large circuit; ties break towards earlier registration
    (i.e. the paper's own constructions).

    With a tuning database (``tuning_db=`` or session-wide via
    :func:`use_tuning_db`), in-region queries are answered from its arrays
    with zero estimator calls; the database itself falls back to this live
    path whenever it cannot reproduce the live comparison exactly, so the
    pick is bit-for-bit the same either way.
    """
    db = tuning_db if tuning_db is not None else _ACTIVE_TUNING_DB
    if db is not None:
        choice = db.select(dim, k, family=family, budget=budget, metric=metric)
        if choice is not None:
            return choice
    considered: List[Tuple[str, Optional[Resources], str]] = []
    best: Optional[Tuple[Synthesizer, Resources]] = None
    for strategy in _REGISTRY.values():
        if strategy.capabilities.family != family or not strategy.capabilities.dispatchable:
            continue
        if not strategy.supports(dim, k):
            considered.append((strategy.name, None, f"unsupported for d={dim}, k={k}"))
            continue
        if budget is not None and not budget.permits(strategy.layout(dim, k)[1]):
            considered.append((strategy.name, None, "over ancilla budget"))
            continue
        try:
            resources = strategy.estimate(dim, k)
        except (EstimationError, SynthesisError) as error:
            # e.g. the clean-ladder baseline at even d, k = 2: its macro
            # circuit has no idle wire to borrow during G-lowering, so no
            # lowered cost exists to rank.
            considered.append((strategy.name, None, f"no estimate: {error}"))
            continue
        note = "" if resources.exact else "model estimate"
        considered.append((strategy.name, resources, note))
        cost = getattr(resources, metric)
        if best is None or cost < getattr(best[1], metric):
            best = (strategy, resources)
    if best is None:
        raise SynthesisError(
            f"no registered {family!r} strategy is applicable to d={dim}, k={k} "
            f"within the given ancilla budget"
        )
    return AutoChoice(strategy=best[0], resources=best[1], considered=considered)


def synthesize(
    name: str,
    dim: int,
    k: int,
    *,
    budget: Optional[AncillaBudget] = None,
    cache=None,
    **kwargs,
) -> SynthesisResult:
    """Synthesise through the registry; ``name="auto"`` dispatches by cost.

    ``cache=`` (a :class:`repro.exec.cache.CompileCache`) opts into the
    persistent compile cache for the macro-level synthesis output: the
    circuit is stored as its columnar table under a content address over
    ``(strategy, d, k)`` plus the cache's code-version salt, and the wire
    roles (controls / target / ancillas) ride along in the metadata sidecar
    so the :class:`SynthesisResult` round-trips whole.  Requests carrying
    extra ``**kwargs`` (e.g. explicit unitary payloads) never touch the
    cache — their output is not determined by ``(strategy, d, k)`` alone.
    """
    if name == "auto":
        name = auto_select(dim, k, budget=budget).strategy.name
    strategy = get(name)
    if cache is None or kwargs:
        return strategy.synthesize(dim, k, **kwargs)

    from repro.exec.keys import cache_key
    from repro.qudit.ancilla import AncillaKind
    from repro.qudit.circuit import QuditCircuit

    key = cache_key(name, dim, k, stage="synth", engine="macro", salt=cache.salt)
    entry = cache.get(key)
    if entry is not None:
        meta = entry.meta
        target = meta.get("target")
        return SynthesisResult(
            circuit=QuditCircuit.from_table(entry.table),
            controls=tuple(meta.get("controls", ())),
            target=None if target is None else int(target),
            ancillas={
                int(w): AncillaKind(kind) for w, kind in meta.get("ancillas", {}).items()
            },
            notes=str(meta.get("notes", "")),
        )
    result = strategy.synthesize(dim, k)
    cache.put(
        key,
        result.circuit.to_table(),
        meta={
            "strategy": name,
            "d": dim,
            "k": k,
            "stage": "synth",
            "controls": list(result.controls),
            "target": result.target,
            "ancillas": {str(w): kind.value for w, kind in result.ancillas.items()},
            "notes": result.notes,
        },
    )
    return result


def estimate(name: str, dim: int, k: int) -> Resources:
    """Estimate through the registry; ``name="auto"`` dispatches by cost."""
    if name == "auto":
        return auto_select(dim, k).resources
    return get(name).estimate(dim, k)
