"""The synthesis-strategy interface of the registry.

A :class:`Synthesizer` packages one construction (a theorem of the paper, a
prior-work baseline, or an application-level builder) as a first-class
object with

* **capability metadata** (:class:`Capabilities`): which ``d`` parities it
  supports, what kind and how many ancillas it uses, and its asymptotic
  cost — the data the ``auto`` dispatcher and the CLI ``list`` command
  surface;
* a ``synthesize(d, k, **kwargs)`` entry point returning the usual
  :class:`~repro.qudit.ancilla.SynthesisResult`;
* an analytic ``estimate(d, k)`` returning exact
  :class:`~repro.resources.estimator.Resources` *without building the
  circuit* (strategies with payload-dependent costs return documented
  models flagged ``exact=False`` instead);
* an analytic ``layout(d, k)`` (wire count + ancilla histogram) and an
  optional ``verify(result)`` semantic check used by the CLI's
  ``synthesize --verify``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping, Optional, Tuple

import numpy as np

from repro.exceptions import DimensionError, SynthesisError
from repro.qudit.ancilla import SynthesisResult
from repro.resources.estimator import (
    AffineSpec,
    BatchEstimate,
    Resources,
    affine_estimate,
    affine_estimate_batch,
    batch_from_scalar,
)

#: The two parity classes the paper distinguishes.
ODD = "odd"
EVEN = "even"
BOTH_PARITIES: FrozenSet[str] = frozenset({ODD, EVEN})


@dataclass(frozen=True)
class Capabilities:
    """Static capability metadata of one synthesis strategy."""

    #: Workload family: "toffoli", "pk", "mcu", "arithmetic", "reversible",
    #: "unitary".  The ``auto`` dispatcher only ranks strategies of the
    #: requested family against each other.
    family: str
    #: Supported dimension parities ({"odd"}, {"even"} or both).
    parities: FrozenSet[str] = BOTH_PARITIES
    #: Smallest supported qudit dimension.
    min_dim: int = 3
    #: Smallest supported size parameter ``k``.
    min_k: int = 0
    #: Dominant ancilla kind ("none", "borrowed", "clean").
    ancilla_kind: str = "none"
    #: Asymptotic gate count, human-readable (e.g. "O(k·d^3) G-gates").
    gates: str = ""
    #: Asymptotic ancilla count (e.g. "1 borrowed (k ≥ 2)").
    ancillas: str = ""
    #: Payload the cost family refers to (e.g. "X01", "SU(d)").
    payload: str = "X01"
    #: True when ``estimate`` returns exact gate-for-gate counts.
    analytic: bool = True
    #: False for strategies subsumed by a dispatcher (mct-odd/mct-even are
    #: covered by "mct"), so ``auto`` does not rank duplicates.
    dispatchable: bool = True

    def supports_dim(self, dim: int) -> bool:
        if dim < self.min_dim:
            return False
        parity = ODD if dim % 2 else EVEN
        return parity in self.parities


@dataclass(frozen=True)
class AncillaBudget:
    """Per-kind caps on ancilla wires for the ``auto`` dispatcher.

    ``None`` means unconstrained.  ``AncillaBudget(clean=0)`` forbids clean
    ancillas; ``AncillaBudget(total=0)`` demands ancilla-free synthesis.
    """

    clean: Optional[int] = None
    borrowed: Optional[int] = None
    total: Optional[int] = None

    def permits(self, histogram: Mapping[str, int]) -> bool:
        if self.clean is not None and histogram.get("clean", 0) > self.clean:
            return False
        if self.borrowed is not None and histogram.get("borrowed", 0) > self.borrowed:
            return False
        if self.total is not None and sum(histogram.values()) > self.total:
            return False
        return True


class Synthesizer(abc.ABC):
    """Base class for registered synthesis strategies."""

    #: Registry key (kebab-case).
    name: str = "strategy"
    #: One-line description shown by ``python -m repro list``.
    description: str = ""
    #: Static capability metadata.
    capabilities: Capabilities

    def supports(self, dim: int, k: int) -> bool:
        """True when ``synthesize(dim, k)`` is defined."""
        return self.capabilities.supports_dim(dim) and k >= self.capabilities.min_k

    def _require(self, dim: int, k: int) -> None:
        if dim < self.capabilities.min_dim:
            raise DimensionError(
                f"strategy {self.name!r} requires d >= {self.capabilities.min_dim}, got {dim}"
            )
        if not self.capabilities.supports_dim(dim):
            raise DimensionError(
                f"strategy {self.name!r} supports {sorted(self.capabilities.parities)} "
                f"dimensions, got d={dim}"
            )
        if k < self.capabilities.min_k:
            raise SynthesisError(
                f"strategy {self.name!r} requires k >= {self.capabilities.min_k}, got {k}"
            )

    @abc.abstractmethod
    def synthesize(self, dim: int, k: int, **kwargs) -> SynthesisResult:
        """Build the circuit on a fresh register."""

    @abc.abstractmethod
    def layout(self, dim: int, k: int) -> Tuple[int, Dict[str, int]]:
        """Analytic register layout: ``(num_wires, ancilla_histogram)``."""

    def estimator_spec(self, dim: int) -> Optional[AffineSpec]:
        """Affine cost-family shape, or ``None`` when not calibrated."""
        return None

    def estimate(self, dim: int, k: int) -> Resources:
        """Exact resource counts at ``(d, k)`` without building the circuit.

        The default implementation uses the calibrated affine recurrence
        (:func:`repro.resources.estimator.affine_estimate`); strategies with
        payload-dependent or super-linear costs override this.
        """
        self._require(dim, k)
        return affine_estimate(self, dim, k)

    def supports_batch(self, dim: int, ks: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`supports`: boolean mask over a ``k`` array."""
        ks = np.asarray(ks, dtype=np.int64)
        if not self.capabilities.supports_dim(dim):
            return np.zeros(ks.shape, dtype=bool)
        return ks >= self.capabilities.min_k

    def estimate_batch(self, dim: int, ks) -> BatchEstimate:
        """Exact resource counts over a whole ``k`` array.

        Affine strategies answer via one calibration per residue class plus
        numpy array arithmetic (:func:`~repro.resources.estimator.
        affine_estimate_batch`); everything else falls back to a loop over
        :meth:`estimate` with the same columnar result contract.
        """
        if self.estimator_spec(dim) is not None:
            return affine_estimate_batch(self, dim, ks)
        return batch_from_scalar(self, dim, ks)

    def layout_batch(self, dim: int, ks: np.ndarray) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        """Vectorized :meth:`layout`: ``(wires array, {kind: count array})``.

        The default loops over :meth:`layout`; strategies with closed-form
        layouts override this with pure array arithmetic.
        """
        ks = np.asarray(ks, dtype=np.int64)
        wires = np.zeros(ks.shape, dtype=np.int64)
        ancillas: Dict[str, np.ndarray] = {}
        for index, k in enumerate(ks.tolist()):
            w, hist = self.layout(dim, int(k))
            wires[index] = w
            for kind, count in hist.items():
                column = ancillas.get(kind)
                if column is None:
                    column = ancillas[kind] = np.zeros(ks.shape, dtype=np.int64)
                column[index] = count
        return wires, ancillas

    def verify(self, result: SynthesisResult, dim: int, k: int, budget=None, **kwargs):
        """Semantic check of a synthesis produced by this strategy.

        ``budget`` is a :class:`repro.verify.VerificationBudget` (or a preset
        name like ``"smoke"``) bounding how much the check may spend; ``None``
        keeps each strategy's historical full-strength check.  Returns the
        :class:`repro.verify.VerificationReport` of the run — note a report
        may come back *undecided* under a tight budget, which is a skip, not
        a pass.  Raises :class:`~repro.exceptions.VerificationError` on
        failure and :class:`NotImplementedError` when the strategy has no
        canonical specification (payload-dependent strategies).
        """
        raise NotImplementedError(f"strategy {self.name!r} has no canonical verifier")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
