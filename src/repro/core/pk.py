"""The P_k gate of Section III-B (Figs. 8 and 9).

``P_k`` is the classical reversible operation on ``k`` qudits

    P_k |x_1, ..., x_{k-1}, x_k⟩ = |x_1, ..., x_{k-1}, h(x_1, ..., x_k)⟩

where ``h`` looks at the *last* non-zero entry ``x_{i*}`` of the control part
``x_1 ... x_{k-1}`` (``i* = ⊥`` if the controls are all zero):

* ``h = x_k``           if ``i* ≠ ⊥`` and ``x_{i*}`` is odd,
* ``h = x_k − 1 mod d`` otherwise (``i* = ⊥`` or ``x_{i*}`` even).

The odd-``d`` k-Toffoli of Fig. 10 is assembled from three ``|0⟩-X01`` gates
interleaved with ``P_k`` / ``P_k†`` and parity-class flips, so ``P_k`` is the
real workhorse of Theorem III.6.

This module provides the reference semantics (:func:`pk_map`), the Fig. 8
ladder (``k − 2`` borrowed ancillas) and the Fig. 9 halving construction
(one borrowed ancilla), plus a standalone :func:`synthesize_pk` entry point.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.exceptions import DimensionError, SynthesisError, WireError
from repro.qudit.ancilla import AncillaKind, SynthesisResult
from repro.qudit.circuit import QuditCircuit
from repro.qudit.controls import EvenNonZero, Value
from repro.qudit.gates import XPlus
from repro.qudit.operations import BaseOp, Operation, StarShiftOp
from repro.core.lambda_ladder import (
    multi_controlled_shift_ops,
    multi_controlled_star_ops,
)


# ----------------------------------------------------------------------
# Reference semantics
# ----------------------------------------------------------------------
def pk_h(dim: int, values: Sequence[int]) -> int:
    """The function ``h(x_1, ..., x_k)`` defining ``P_k``."""
    if len(values) < 1:
        raise SynthesisError("P_k needs at least one input")
    controls = values[:-1]
    target = values[-1]
    last_nonzero: Optional[int] = None
    for index in range(len(controls) - 1, -1, -1):
        if controls[index] != 0:
            last_nonzero = index
            break
    if last_nonzero is not None and controls[last_nonzero] % 2 == 1:
        return target
    return (target - 1) % dim


def pk_map(dim: int, values: Sequence[int]) -> Tuple[int, ...]:
    """Apply ``P_k`` to a basis tuple and return the image tuple."""
    output = list(values)
    output[-1] = pk_h(dim, values)
    return tuple(output)


# ----------------------------------------------------------------------
# Fig. 8: ladder with k − 2 borrowed ancillas
# ----------------------------------------------------------------------
def pk_ladder_garbage(
    dim: int, inputs: Sequence[int], ancillas: Sequence[int]
) -> List[BaseOp]:
    """The garbage-ancilla ladder of Fig. 8 (without the restoring tail).

    ``inputs[:-1]`` are the controls of ``P_k`` and ``inputs[-1]`` is its
    target; ``ancillas[r]`` is the target of the inner ``P_{r+2}`` layer.
    """
    if dim % 2 == 0:
        raise DimensionError("P_k is part of the odd-d construction")
    k = len(inputs)
    if k < 2:
        raise SynthesisError("the P_k ladder needs at least two inputs")
    if len(ancillas) < k - 2:
        raise SynthesisError(f"need {k - 2} ancillas for P_{k}, got {len(ancillas)}")
    wires = list(inputs) + list(ancillas[: max(k - 2, 0)])
    if len(set(wires)) != len(wires):
        raise WireError(f"P_k ladder wires must be distinct, got {wires}")

    minus_one = XPlus(dim, dim - 1)

    def layer(r: int) -> List[BaseOp]:
        """Ops implementing ``P_r`` on controls ``inputs[:r-1]`` and the
        layer target (``ancillas[r-2]`` for inner layers, ``inputs[-1]`` for
        the outermost)."""
        layer_target = inputs[-1] if r == k else ancillas[r - 2]
        control = inputs[r - 2]
        if r == 2:
            # P_2: subtract one from the target unless the control is odd.
            return [
                Operation(minus_one, layer_target, [(control, Value(0))]),
                Operation(minus_one, layer_target, [(control, EvenNonZero())]),
            ]
        inner_wire = ancillas[r - 3]
        return (
            [
                StarShiftOp(inner_wire, layer_target, -1, [(control, Value(0))]),
                Operation(minus_one, layer_target, [(control, EvenNonZero())]),
            ]
            + layer(r - 1)
            + [StarShiftOp(inner_wire, layer_target, +1, [(control, Value(0))])]
        )

    return layer(k)


def pk_ladder(dim: int, inputs: Sequence[int], ancillas: Sequence[int]) -> List[BaseOp]:
    """Fig. 8 ladder for ``P_k`` with *borrowed* ancillas.

    The garbage ladder is followed by the inverse of everything except the
    outermost three gates, which restores the ancillas.
    """
    k = len(inputs)
    if k == 1:
        # P_1: the control part is empty, so i* = ⊥ and h = x_1 − 1 always.
        return [Operation(XPlus(dim, dim - 1), inputs[0])]
    body = pk_ladder_garbage(dim, inputs, ancillas)
    if k == 2:
        return body
    # The outermost layer contributes the first two ops and the final op
    # ("the three at the bottom" in Lemma III.5); the rest is undone.
    inner = body[2:-1]
    restore = [op.inverse() for op in reversed(inner)]
    return body + restore


# ----------------------------------------------------------------------
# Fig. 9: one borrowed ancilla
# ----------------------------------------------------------------------
def pk_one_ancilla(
    dim: int, inputs: Sequence[int], ancilla: int
) -> List[BaseOp]:
    """``P_k`` using a single borrowed ancilla (Fig. 9).

    The control set is split in half: the left half is folded into the
    ancilla through ``P_{⌊k/2⌋+1}`` and transported onto the target with a
    ``|⋆⟩|0^{⌈k/2⌉−1}⟩-X∓⋆`` pair, while the right half is handled by a
    ``P_{⌈k/2⌉}`` gate (plus a compensating multi-controlled ``X+1``) acting
    directly on the target.  Each sub-gate borrows idle wires from the other
    half, so only the one explicit ancilla is needed overall.
    """
    k = len(inputs)
    if ancilla in set(inputs):
        raise WireError("the borrowed ancilla must be distinct from the P_k inputs")
    if k <= 3:
        # k − 2 <= 1: the plain ladder already needs at most one ancilla.
        return pk_ladder(dim, inputs, [ancilla])

    half = k // 2
    left = list(inputs[:half])                 # x_{1 : ⌊k/2⌋}
    right = list(inputs[half : k - 1])         # x_{⌊k/2⌋+1 : k−1}
    target = inputs[k - 1]                     # x_k

    left_pool = left                            # borrow pool for right-half gates
    right_pool = right + [target]               # borrow pool for left-half gates

    # P_{⌊k/2⌋+1} folding the left half into the ancilla (Fig. 8, borrowing
    # idle wires from the right half).
    fold = pk_ladder_with_pool(dim, left + [ancilla], right_pool)
    unfold = [op.inverse() for op in reversed(fold)]

    # |⋆⟩|0^m⟩-X∓⋆ transporting the ancilla's change onto the target.
    minus_star = multi_controlled_star_ops(dim, ancilla, right, target, -1, left_pool)
    plus_star = multi_controlled_star_ops(dim, ancilla, right, target, +1, left_pool)

    # |0^m⟩-X+1 compensation and the right-half P_{⌈k/2⌉}.
    compensate = multi_controlled_shift_ops(dim, right, target, left_pool + [ancilla], 1)
    right_pk = pk_ladder_with_pool(dim, right + [target], left_pool + [ancilla])

    return minus_star + fold + plus_star + unfold + compensate + right_pk


def pk_ladder_with_pool(
    dim: int, inputs: Sequence[int], borrow_pool: Sequence[int]
) -> List[BaseOp]:
    """Fig. 8 ladder, drawing its ``k − 2`` borrowed ancillas from a pool of
    idle wires."""
    k = len(inputs)
    needed = max(k - 2, 0)
    exclude = set(inputs)
    available = [w for w in borrow_pool if w not in exclude]
    if len(available) < needed:
        raise SynthesisError(
            f"P_{k} ladder needs {needed} borrowable wires, only {len(available)} available"
        )
    return pk_ladder(dim, inputs, available[:needed])


# ----------------------------------------------------------------------
# Standalone entry point
# ----------------------------------------------------------------------
def synthesize_pk(dim: int, k: int, *, one_ancilla: bool = True) -> SynthesisResult:
    """Synthesise ``P_k`` on a fresh register.

    Wires ``0 .. k-1`` are the ``P_k`` inputs (wire ``k-1`` is the target);
    one extra wire is appended as a borrowed ancilla when needed
    (``one_ancilla=True`` uses the Fig. 9 construction, otherwise the Fig. 8
    ladder with ``k − 2`` borrowed wires is used).

    .. note::
       Registered in :mod:`repro.synth` as the ``"pk"`` strategy, which adds
       capability metadata, canonical verification and an exact analytic
       estimator (``repro.synth.estimate("pk", d, k)``).
    """
    if dim % 2 == 0 or dim < 3:
        raise DimensionError("P_k is defined for odd d >= 3")
    if k < 1:
        raise SynthesisError("P_k needs k >= 1")
    inputs = list(range(k))
    ancillas_needed = 0 if k <= 2 else (1 if one_ancilla else k - 2)
    num_wires = k + ancillas_needed
    circuit = QuditCircuit(num_wires, dim, name=f"P_{k}(d={dim})")
    if ancillas_needed == 0:
        ops = pk_ladder(dim, inputs, [])
    elif one_ancilla:
        ops = pk_one_ancilla(dim, inputs, k)
    else:
        ops = pk_ladder(dim, inputs, list(range(k, num_wires)))
    circuit.extend(ops)
    ancillas = {w: AncillaKind.BORROWED for w in range(k, num_wires)}
    return SynthesisResult(
        circuit=circuit,
        controls=tuple(range(k - 1)),
        target=k - 1,
        ancillas=ancillas,
        notes="Lemma III.5 (Figs. 8-9)",
    )
