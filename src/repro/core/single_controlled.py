"""Helpers for singly-controlled gates and for conjugation tricks.

Section II of the paper observes that both ``|l⟩-Xij`` and ``|l⟩-X+y`` can be
synthesised from ``O(d)`` G-gates.  The constructions here implement that
observation and the conjugation tricks used throughout the synthesis:

* an uncontrolled permutation gate decomposes into ``Xij`` transpositions;
* ``|l⟩-Xij`` is obtained from the G-gate ``|0⟩-X01`` by conjugating the
  control with ``X0l`` and the target with a permutation sending ``i -> 0``
  and ``j -> 1``;
* ``|l⟩-P`` for a general permutation ``P`` decomposes into controlled
  transpositions;
* ``|o⟩-P`` / ``|e⟩-P`` / set-controls decompose into a product of
  ``|l⟩-P`` over the firing values (the firing value sets are disjoint, so
  at most one factor fires on any basis state).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.exceptions import GateError
from repro.qudit.controls import ControlPredicate, Value
from repro.qudit.gates import XPerm
from repro.qudit.operations import Operation
from repro.utils import permutations as perm_utils
from repro.utils.permutations import Permutation


def transposition_ops(dim: int, wire: int, perm: Sequence[int]) -> List[Operation]:
    """Decompose an uncontrolled permutation on ``wire`` into ``Xij`` gates."""
    ops: List[Operation] = []
    for i, j in perm_utils.transpositions_of(perm):
        ops.append(Operation(XPerm.transposition(dim, i, j), wire))
    return ops


def mapping_permutation(dim: int, i: int, j: int) -> Permutation:
    """Return a permutation ``P`` of ``[dim]`` with ``P(i) = 0`` and ``P(j) = 1``.

    Used to conjugate the target of a controlled transposition so that the
    core gate is always the G-gate ``|0⟩-X01``.
    """
    if i == j:
        raise GateError("mapping permutation needs two distinct points")
    values = list(range(dim))
    # Move value 0 to position i.
    pos_zero = values.index(0)
    values[pos_zero], values[i] = values[i], values[pos_zero]
    # Move value 1 to position j (position i already holds 0, and j != i).
    pos_one = values.index(1)
    values[pos_one], values[j] = values[j], values[pos_one]
    return tuple(values)


def controlled_transposition_g_ops(
    dim: int,
    control: int,
    control_value: int,
    target: int,
    i: int,
    j: int,
) -> List[Operation]:
    """Synthesise ``|control_value⟩-Xij`` from G-gates.

    Returns the literal G-gate sequence (a constant number of gates): the
    control is conjugated by ``X_{0,l}`` and the target by a permutation
    mapping ``{i, j}`` to ``{0, 1}``; the core is the G-gate ``|0⟩-X01``.
    """
    if i == j:
        raise GateError("a transposition requires two distinct points")
    ops: List[Operation] = []

    pre_control: List[Operation] = []
    if control_value != 0:
        pre_control.append(Operation(XPerm.transposition(dim, 0, control_value), control))

    conjugation = mapping_permutation(dim, i, j)
    pre_target = transposition_ops(dim, target, conjugation)
    post_target = transposition_ops(dim, target, perm_utils.invert(conjugation))

    ops.extend(pre_control)
    ops.extend(pre_target)
    ops.append(
        Operation(XPerm.transposition(dim, 0, 1), target, [(control, Value(0))])
    )
    ops.extend(post_target)
    ops.extend(pre_control)  # X_{0,l} is an involution, so pre == post.
    return ops


def controlled_permutation_g_ops(
    dim: int,
    control: int,
    predicate: ControlPredicate,
    target: int,
    perm: Sequence[int],
) -> List[Operation]:
    """Synthesise ``|predicate⟩-P`` (single control) from G-gates.

    The permutation is decomposed into transpositions, each of which is
    controlled on every firing value of the predicate in turn.  Because the
    firing values are distinct basis states of a single control qudit, at
    most one of the value-controlled factors fires for any input, so the
    factors may be emitted in any order.
    """
    perm = perm_utils.as_permutation(perm)
    if perm == perm_utils.identity_permutation(dim):
        return []
    firing_values = predicate.values(dim)
    if not firing_values:
        return []
    ops: List[Operation] = []
    transpositions: List[Tuple[int, int]] = perm_utils.transpositions_of(perm)
    for value in firing_values:
        for i, j in transpositions:
            ops.extend(controlled_transposition_g_ops(dim, control, value, target, i, j))
    return ops


def control_value_conjugation_ops(
    dim: int, controls: Sequence[int], control_values: Sequence[int]
) -> List[Operation]:
    """Return the ``X_{0,v}`` layer that maps control values onto ``0``.

    Multi-controlled gates with arbitrary control values (used by the
    reversible-function synthesis of Fig. 11 and by the unitary synthesis)
    are reduced to the ``|0^k⟩``-controlled case by surrounding the circuit
    with this involutory layer.
    """
    if len(controls) != len(control_values):
        raise GateError("controls and control_values must have the same length")
    ops: List[Operation] = []
    for wire, value in zip(controls, control_values):
        if not 0 <= value < dim:
            raise GateError(f"control value {value} out of range for dimension {dim}")
        if value != 0:
            ops.append(Operation(XPerm.transposition(dim, 0, value), wire))
    return ops
