"""Core synthesis algorithms of the paper (Section III)."""

from repro.core.gate_counts import GateCountReport, count_gates
from repro.core.lambda_ladder import (
    ladder_even,
    ladder_odd,
    multi_controlled_payload_even_ops,
    multi_controlled_shift_ops,
    multi_controlled_star_ops,
)
from repro.core.lowering import lower_to_g_gates
from repro.core.multi_controlled_unitary import (
    mcu_ops,
    random_unitary_gate,
    synthesize_mcu,
)
from repro.core.pk import (
    pk_h,
    pk_ladder,
    pk_map,
    pk_one_ancilla,
    synthesize_pk,
)
from repro.core.single_controlled import (
    controlled_permutation_g_ops,
    controlled_transposition_g_ops,
)
from repro.core.toffoli import mct_ops, synthesize_mct
from repro.core.toffoli_even import mct_even_ops, synthesize_mct_even
from repro.core.toffoli_odd import mct_odd_ops, synthesize_mct_odd
from repro.core.two_controlled import (
    even_two_controlled_transposition_ops,
    odd_two_controlled_x01_ops,
    two_controlled_permutation_ops,
    two_controlled_transposition_ops,
)

__all__ = [
    "GateCountReport",
    "count_gates",
    "ladder_even",
    "ladder_odd",
    "multi_controlled_payload_even_ops",
    "multi_controlled_shift_ops",
    "multi_controlled_star_ops",
    "lower_to_g_gates",
    "mcu_ops",
    "random_unitary_gate",
    "synthesize_mcu",
    "pk_h",
    "pk_ladder",
    "pk_map",
    "pk_one_ancilla",
    "synthesize_pk",
    "controlled_permutation_g_ops",
    "controlled_transposition_g_ops",
    "mct_ops",
    "synthesize_mct",
    "mct_even_ops",
    "synthesize_mct_even",
    "mct_odd_ops",
    "synthesize_mct_odd",
    "even_two_controlled_transposition_ops",
    "odd_two_controlled_x01_ops",
    "two_controlled_permutation_ops",
    "two_controlled_transposition_ops",
]
