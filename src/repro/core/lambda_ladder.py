"""The "Λ"-shaped ladders of Figs. 3 and 7.

Both the even-``d`` and the odd-``d`` syntheses first build the
multi-controlled gate with ``k − 2`` *garbage* ancillas using a ladder whose
layers peel off one control at a time, and then append the reverse of the
ladder body so that the garbage ancillas become *borrowed* ancillas:

* **odd d** (Fig. 7, Lemma III.4): layer ``r`` surrounds layer ``r − 1`` with
  a ``|⋆⟩|0⟩-X−⋆`` gate on the left and a ``|⋆⟩|0⟩-X+⋆`` gate on the right.
  The pair transfers exactly the increment that the inner layer applied to
  its target onto the next wire, and only when the newly added control is
  ``|0⟩``.  The base case is a two-controlled gate supplied by the caller
  (``|00⟩-X+1`` for Lemma III.4, ``|⋆⟩|0⟩-X±⋆`` for the multi-controlled
  star gates used in Fig. 9).

* **even d** (Fig. 3, Theorem III.2): layer ``r`` surrounds layer ``r − 1``
  with two identical ``|o⟩|0⟩-X^e_eo`` gates.  ``X^e_eo`` flips the parity of
  every basis state, so the two copies cancel unless the inner layer flipped
  the parity of the shared ancilla in between, which happens exactly when
  all inner controls are ``|0⟩``.  The bottom (outermost) pair uses the
  payload gate (``X01`` for the k-Toffoli, ``X^e_eo`` when the ladder itself
  is used to build a larger ladder as in Fig. 4).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.exceptions import DimensionError, SynthesisError, WireError
from repro.qudit.controls import ControlPredicate, Odd, Value
from repro.qudit.gates import Gate, XPerm, XPlus
from repro.qudit.operations import BaseOp, Operation, StarShiftOp

TopBuilder = Callable[[int, int, int], List[BaseOp]]


def _check_wires(controls: Sequence[int], target: int, ancillas: Sequence[int]) -> None:
    wires = list(controls) + [target] + list(ancillas)
    if len(set(wires)) != len(wires):
        raise WireError(f"ladder wires must be distinct, got {wires}")


# ----------------------------------------------------------------------
# Odd-d ladder (Fig. 7)
# ----------------------------------------------------------------------
def shift_top_builder(dim: int, shift: int = 1) -> TopBuilder:
    """Top gate ``|00⟩-X+shift`` used by Lemma III.4 (as a 2-controlled macro)."""

    def build(c1: int, c2: int, target: int) -> List[BaseOp]:
        return [
            Operation(XPlus(dim, shift), target, [(c1, Value(0)), (c2, Value(0))])
        ]

    return build


def star_top_builder(sign: int) -> TopBuilder:
    """Top gate ``|⋆⟩|0⟩-X±⋆`` used when the ladder synthesises a
    multi-controlled star gate (the first "control" is the star wire)."""

    def build(c1: int, c2: int, target: int) -> List[BaseOp]:
        return [StarShiftOp(c1, target, sign, [(c2, Value(0))])]

    return build


def ladder_odd_garbage(
    dim: int,
    controls: Sequence[int],
    target: int,
    ancillas: Sequence[int],
    top_builder: TopBuilder,
) -> List[BaseOp]:
    """The garbage-ancilla ladder of Fig. 7 (without the restoring tail).

    ``controls[0]`` and ``controls[1]`` feed the top gate; each further
    control adds one ``|⋆⟩|0⟩-X∓⋆`` / ``|⋆⟩|0⟩-X±⋆`` pair around the inner
    ladder.  Ancilla ``ancillas[r]`` is the target of layer ``r + 2``.
    """
    if dim % 2 == 0:
        raise DimensionError("the Fig. 7 ladder is the odd-d construction")
    k = len(controls)
    if k < 2:
        raise SynthesisError("the ladder needs at least two controls")
    if len(ancillas) < k - 2:
        raise SynthesisError(f"need {k - 2} ancillas for a {k}-control ladder, got {len(ancillas)}")
    _check_wires(controls, target, ancillas[: max(k - 2, 0)])

    def layer(r: int) -> List[BaseOp]:
        """Ops applying the payload to the layer-``r`` target iff
        ``controls[:r]`` are all ``|0⟩``."""
        layer_target = target if r == k else ancillas[r - 2]
        if r == 2:
            return list(top_builder(controls[0], controls[1], layer_target))
        inner_wire = ancillas[r - 3]
        before = StarShiftOp(
            inner_wire, layer_target, -1, [(controls[r - 1], Value(0))]
        )
        after = StarShiftOp(
            inner_wire, layer_target, +1, [(controls[r - 1], Value(0))]
        )
        return [before] + layer(r - 1) + [after]

    return layer(k)


def ladder_odd(
    dim: int,
    controls: Sequence[int],
    target: int,
    ancillas: Sequence[int],
    top_builder: Optional[TopBuilder] = None,
) -> List[BaseOp]:
    """Full Lemma III.4 ladder with *borrowed* ancillas.

    The garbage ladder is followed by the inverse of everything except the
    outermost pair of gates, which restores the ``k − 2`` ancillas to their
    initial values (so arbitrary idle wires can be borrowed).
    """
    if top_builder is None:
        top_builder = shift_top_builder(dim, 1)
    k = len(controls)
    if k < 2:
        raise SynthesisError("ladder_odd needs at least two controls; handle k <= 1 at the caller")
    body = ladder_odd_garbage(dim, controls, target, ancillas, top_builder)
    if k == 2:
        return body
    # The outermost layer consists of the first and last op; everything in
    # between ("the dashed box" of Fig. 7) must be undone.
    inner = body[1:-1]
    restore = [op.inverse() for op in reversed(inner)]
    return body + restore


def multi_controlled_shift_ops(
    dim: int,
    controls: Sequence[int],
    target: int,
    borrow_pool: Sequence[int],
    shift: int = 1,
) -> List[BaseOp]:
    """``|0^k⟩-X+shift`` (Lemma III.4) borrowing ``k − 2`` wires from
    ``borrow_pool``; ancilla-free for ``k <= 2``."""
    k = len(controls)
    if k == 0:
        return [Operation(XPlus(dim, shift), target)]
    if k == 1:
        return [Operation(XPlus(dim, shift), target, [(controls[0], Value(0))])]
    ancillas = _take_borrows(borrow_pool, k - 2, exclude=set(controls) | {target})
    return ladder_odd(dim, controls, target, ancillas, shift_top_builder(dim, shift))


def multi_controlled_star_ops(
    dim: int,
    star_wire: int,
    zero_controls: Sequence[int],
    target: int,
    sign: int,
    borrow_pool: Sequence[int],
) -> List[BaseOp]:
    """``|⋆⟩|0^m⟩-X±⋆`` (the generalised Fig. 6 gate used by Fig. 9).

    Built from the Fig. 7 ladder with the top gate replaced by the
    two-qudit-control star gate, exactly as described in Lemma III.5.
    """
    if not zero_controls:
        return [StarShiftOp(star_wire, target, sign)]
    if len(zero_controls) == 1:
        return [StarShiftOp(star_wire, target, sign, [(zero_controls[0], Value(0))])]
    controls = [star_wire] + list(zero_controls)
    ancillas = _take_borrows(
        borrow_pool, len(controls) - 2, exclude=set(controls) | {target}
    )
    return ladder_odd(dim, controls, target, ancillas, star_top_builder(sign))


# ----------------------------------------------------------------------
# Even-d ladder (Fig. 3)
# ----------------------------------------------------------------------
def ladder_even_garbage(
    dim: int,
    controls: Sequence[int],
    target: int,
    ancillas: Sequence[int],
    payload: Gate,
    first_predicate: Optional[ControlPredicate] = None,
) -> List[BaseOp]:
    """The garbage-ancilla ladder of Fig. 3 (without the restoring tail).

    The top gate is ``[first_predicate]|0⟩-X^e_eo`` on ``ancillas[0]``, each
    intermediate layer adds a ``|o⟩|0⟩-X^e_eo`` pair, and the bottom pair
    applies ``payload`` to ``target`` under an ``|o⟩|0⟩`` control.
    """
    if dim % 2 != 0:
        raise DimensionError("the Fig. 3 ladder is the even-d construction")
    k = len(controls)
    if k < 2:
        raise SynthesisError("the ladder needs at least two controls")
    if len(ancillas) < k - 2:
        raise SynthesisError(f"need {k - 2} ancillas for a {k}-control ladder, got {len(ancillas)}")
    _check_wires(controls, target, ancillas[: max(k - 2, 0)])
    first_pred = first_predicate if first_predicate is not None else Value(0)
    xeo = XPerm.even_odd_swap(dim)

    def layer(r: int) -> List[BaseOp]:
        layer_payload = payload if r == k else xeo
        layer_target = target if r == k else ancillas[r - 2]
        if r == 2:
            return [
                Operation(
                    layer_payload,
                    layer_target,
                    [(controls[0], first_pred), (controls[1], Value(0))],
                )
            ]
        side = Operation(
            layer_payload,
            layer_target,
            [(ancillas[r - 3], Odd()), (controls[r - 1], Value(0))],
        )
        return [side] + layer(r - 1) + [side]

    return layer(k)


def ladder_even(
    dim: int,
    controls: Sequence[int],
    target: int,
    ancillas: Sequence[int],
    payload: Gate,
    first_predicate: Optional[ControlPredicate] = None,
) -> List[BaseOp]:
    """Full Theorem III.2 ladder with *borrowed* ancillas (Fig. 3 plus the
    restoring tail)."""
    k = len(controls)
    first_pred = first_predicate if first_predicate is not None else Value(0)
    if k == 1:
        return [Operation(payload, target, [(controls[0], first_pred)])]
    body = ladder_even_garbage(dim, controls, target, ancillas, payload, first_pred)
    if k == 2:
        return body
    inner = body[1:-1]
    restore = [op.inverse() for op in reversed(inner)]
    return body + restore


def multi_controlled_payload_even_ops(
    dim: int,
    controls: Sequence[int],
    target: int,
    payload: Gate,
    borrow_pool: Sequence[int],
    first_predicate: Optional[ControlPredicate] = None,
) -> List[BaseOp]:
    """Even-``d`` multi-controlled payload built with borrowed wires from
    ``borrow_pool`` (used by Fig. 4 for both halves of the control set)."""
    k = len(controls)
    if k <= 1:
        return ladder_even(dim, controls, target, [], payload, first_predicate)
    ancillas = _take_borrows(borrow_pool, k - 2, exclude=set(controls) | {target})
    return ladder_even(dim, controls, target, ancillas, payload, first_predicate)


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _take_borrows(pool: Sequence[int], count: int, exclude: set) -> List[int]:
    """Pick ``count`` distinct borrowable wires from ``pool``."""
    if count <= 0:
        return []
    available = [w for w in pool if w not in exclude]
    if len(available) < count:
        raise SynthesisError(
            f"need {count} borrowable wires but only {len(available)} are available"
        )
    return available[:count]
