"""Multi-controlled single-qudit gates ``|0^k⟩-U`` (Fig. 1(b)).

Given the linear-size k-Toffoli of Section III, the general multi-controlled
gate is synthesised with one *clean* ancilla ``c``:

    k-Toffoli(x_1..x_k -> c) · |1⟩c-U(t) · k-Toffoli(x_1..x_k -> c)

The first Toffoli raises the clean ancilla from ``|0⟩`` to ``|1⟩`` exactly
when every control is ``|0⟩``; the controlled-``U`` then fires on the target;
the second Toffoli un-computes the ancilla back to ``|0⟩``.  For even ``d``
the Toffoli itself needs a borrowed ancilla — the target wire ``t`` is
borrowed (the Toffoli is a classical permutation circuit that restores every
borrowed wire on every basis state, so it acts as the identity on ``t`` even
when ``t`` carries arbitrary quantum data).

The payload ``U`` may be an arbitrary unitary (``SingleQuditUnitary``), a
permutation gate, or a cyclic shift; permutation payloads keep the whole
circuit classical, which the tests exploit for exhaustive verification.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import DimensionError, SynthesisError
from repro.qudit.ancilla import AncillaKind, SynthesisResult
from repro.qudit.circuit import QuditCircuit
from repro.qudit.controls import Value
from repro.qudit.gates import Gate, SingleQuditUnitary
from repro.qudit.operations import BaseOp, Operation
from repro.core.toffoli import mct_ops


def mcu_ops(
    dim: int,
    controls: Sequence[int],
    target: int,
    gate: Gate,
    clean_ancilla: Optional[int],
    *,
    control_values: Optional[Sequence[int]] = None,
) -> List[BaseOp]:
    """``|controls⟩-gate`` on explicit wires using one clean ancilla.

    For ``k <= 1`` the gate is emitted directly (no ancilla is needed); for
    ``k >= 2`` the Fig. 1(b) construction is used and ``clean_ancilla`` must
    be provided.
    """
    if gate.dim != dim:
        raise DimensionError("payload gate dimension does not match the circuit dimension")
    k = len(controls)
    if k == 0:
        return [Operation(gate, target)]
    if k == 1:
        value = 0 if control_values is None else control_values[0]
        return [Operation(gate, target, [(controls[0], Value(value))])]
    if clean_ancilla is None:
        raise SynthesisError("|0^k⟩-U with k >= 2 uses one clean ancilla (Fig. 1(b))")

    toffoli = mct_ops(
        dim,
        controls,
        clean_ancilla,
        borrow=target if dim % 2 == 0 else None,
        control_values=control_values,
    )
    fire = Operation(gate, target, [(clean_ancilla, Value(1))])
    return list(toffoli) + [fire] + list(toffoli)


def synthesize_mcu(
    dim: int,
    num_controls: int,
    gate: Gate,
    *,
    control_values: Optional[Sequence[int]] = None,
) -> SynthesisResult:
    """Synthesise ``|0^k⟩-U`` on a fresh register (Fig. 1(b)).

    Wires ``0 .. k-1`` are controls, wire ``k`` the target and, for
    ``k >= 2``, wire ``k+1`` is the clean ancilla.  The construction uses
    ``O(k · poly(d))`` two-qudit gates and exactly one clean ancilla,
    matching the headline result of Section III.

    .. note::
       Registered in :mod:`repro.synth` as the ``"mcu"`` strategy; its exact
       analytic estimator refers to the canonical ``X01`` payload
       (``repro.synth.estimate("mcu", d, k)``).
    """
    controls = list(range(num_controls))
    target = num_controls
    needs_ancilla = num_controls >= 2
    num_wires = num_controls + (2 if needs_ancilla else 1)
    ancilla = num_controls + 1 if needs_ancilla else None
    circuit = QuditCircuit(num_wires, dim, name=f"MCU(k={num_controls}, d={dim})")
    circuit.extend(
        mcu_ops(dim, controls, target, gate, ancilla, control_values=control_values)
    )
    ancillas = {ancilla: AncillaKind.CLEAN} if needs_ancilla else {}
    return SynthesisResult(
        circuit=circuit,
        controls=tuple(controls),
        target=target,
        ancillas=ancillas,
        notes="Fig. 1(b): k-Toffoli into a clean ancilla, |1⟩-U, un-compute",
    )


def random_unitary_gate(dim: int, seed: int = 0, label: str = "U") -> SingleQuditUnitary:
    """A Haar-random single-qudit unitary (utility for tests and benchmarks)."""
    rng = np.random.default_rng(seed)
    matrix = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    q, r = np.linalg.qr(matrix)
    phases = np.diag(r) / np.abs(np.diag(r))
    return SingleQuditUnitary(q * phases, label=label)
