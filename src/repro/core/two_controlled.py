"""Two-controlled gate gadgets (Lemmas III.1 and III.3).

These are the base cases of every ladder in the paper:

* **odd d** (Lemma III.3, Fig. 5): an ancilla-free synthesis of
  ``|00⟩-X01`` from five singly-controlled gates,

  ``|0⟩x1-X01(t) · |0⟩x1-X+1(x2) · |e⟩x2-X01(t) · |0⟩x1-X−1(x2) · |e⟩x2-X01(t)``

  The two control qudits are restored because ``X+1 X−1 = I``; the target is
  flipped exactly once iff ``x1 = x2 = 0`` (for ``x1 = 0, x2 ≠ 0`` exactly one
  of the two ``|e⟩``-controlled gates fires — which one depends on the parity
  of ``x2`` — and cancels the first gate).  The wrap-around of ``X+1`` at
  ``x2 = d − 1`` is harmless precisely because ``d`` is odd.

* **even d** (Lemma III.1, Fig. 2): one borrowed ancilla is necessary (the
  k-Toffoli is an odd permutation while every G-gate is even when ``d`` is
  even).  The exact gate sequence of Fig. 2 is not recoverable from the
  paper text, so we implement an equivalent gadget with the same interface
  and the same mechanism described in the proof — two *detector* gates
  controlled on the borrowed ancilla surround a block that moves the ancilla
  between a set ``S`` and its complement exactly when both controls fire:

  ``D(S) · σ · D(S) · σ†`` with
  ``σ = Π_blocks [pred1]c1-P · [pred2]c2-R · [pred1]c1-P · [pred2]c2-R``

  Each block is a commutator: if only one (or neither) control fires its net
  effect on the ancilla is the identity, and if both fire the blocks compose
  to a fixed permutation ``σ*`` chosen to have only even-length cycles, so
  that it maps an explicit set ``S`` onto its complement.  The detector
  ``D(S)`` applies the payload transposition to the target when the
  ancilla's current value lies in ``S``; the payload is therefore applied an
  odd number of times (exactly once) iff both controls fire, for *every*
  initial value of the borrowed ancilla, and the ancilla is restored by the
  trailing ``σ†``.  This substitution is documented in DESIGN.md §3.

Both gadgets accept arbitrary ``Value``/``Odd``/``EvenNonZero`` predicates on
the two controls and an arbitrary target transposition; the odd-``d`` gadget
reduces general value-controls to the ``(0, 0)`` case by conjugation.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.exceptions import DimensionError, GateError, SynthesisError
from repro.qudit.controls import ControlPredicate, EvenNonZero, InSet, Value
from repro.qudit.gates import XPerm, XPlus
from repro.qudit.operations import Operation
from repro.core.single_controlled import mapping_permutation, transposition_ops
from repro.utils import permutations as perm_utils


# ----------------------------------------------------------------------
# Odd d (Lemma III.3, Fig. 5)
# ----------------------------------------------------------------------
def odd_two_controlled_x01_ops(dim: int, c1: int, c2: int, target: int) -> List[Operation]:
    """The literal Fig. 5 circuit: ``|0⟩c1|0⟩c2-X01`` on ``target``, odd ``d``."""
    if dim % 2 == 0:
        raise DimensionError("Fig. 5 gadget requires odd dimension")
    if dim < 3:
        raise DimensionError("the paper's constructions require d >= 3")
    x01 = XPerm.transposition(dim, 0, 1)
    return [
        Operation(x01, target, [(c1, Value(0))]),
        Operation(XPlus(dim, 1), c2, [(c1, Value(0))]),
        Operation(x01, target, [(c2, EvenNonZero())]),
        Operation(XPlus(dim, dim - 1), c2, [(c1, Value(0))]),
        Operation(x01, target, [(c2, EvenNonZero())]),
    ]


def _odd_two_controlled_transposition_values(
    dim: int,
    c1: int,
    v1: int,
    c2: int,
    v2: int,
    target: int,
    i: int,
    j: int,
) -> List[Operation]:
    """``|v1⟩c1|v2⟩c2-Xij`` for odd ``d`` via conjugation of the Fig. 5 core."""
    pre: List[Operation] = []
    post: List[Operation] = []
    if v1 != 0:
        swap = Operation(XPerm.transposition(dim, 0, v1), c1)
        pre.append(swap)
        post.append(swap)
    if v2 != 0:
        swap = Operation(XPerm.transposition(dim, 0, v2), c2)
        pre.append(swap)
        post.append(swap)
    conjugation = mapping_permutation(dim, i, j)
    pre_target = transposition_ops(dim, target, conjugation)
    post_target = transposition_ops(dim, target, perm_utils.invert(conjugation))
    core = odd_two_controlled_x01_ops(dim, c1, c2, target)
    return pre + pre_target + core + post_target + post


# ----------------------------------------------------------------------
# Even d (Lemma III.1 replacement gadget)
# ----------------------------------------------------------------------
def _even_flip_permutation(dim: int) -> Tuple[int, ...]:
    """The target permutation ``σ*`` of the commutator block for even ``d``.

    ``σ*`` must be an *even* permutation all of whose cycles have even
    length (so that it maps a set onto its complement and is expressible as
    a product of commutators).  We use

    * ``d ≡ 0 (mod 4)``: the product of the ``d/2`` transpositions
      ``(0 1)(2 3)...(d−2 d−1)``;
    * ``d ≡ 2 (mod 4)``: one 4-cycle ``(0 1 2 3)`` followed by the
      transpositions ``(4 5)...(d−2 d−1)`` (an even permutation because the
      number of cycles is even).
    """
    if dim % 2 != 0:
        raise DimensionError("σ* is only defined for even dimensions")
    if dim < 4:
        raise DimensionError("the even-d gadget requires d >= 4")
    cycles: List[Tuple[int, ...]] = []
    start = 0
    if dim % 4 == 2:
        cycles.append((0, 1, 2, 3))
        start = 4
    for base in range(start, dim, 2):
        cycles.append((base, base + 1))
    return perm_utils.permutation_from_cycles(dim, cycles)


def _three_cycles_of(perm: Sequence[int]) -> List[Tuple[int, int, int]]:
    """Decompose an even permutation into 3-cycles, in circuit order."""
    transpositions = perm_utils.transpositions_of(perm)
    if len(transpositions) % 2 != 0:
        raise GateError("permutation is odd; cannot decompose into 3-cycles")
    three_cycles: List[Tuple[int, int, int]] = []
    for first, second in zip(transpositions[0::2], transpositions[1::2]):
        a, b = first
        c, e = second
        shared = set(first) & set(second)
        if len(shared) == 2:
            continue  # identical transpositions cancel
        if len(shared) == 1:
            # (a b)(b c) with the shared point written second in the first pair.
            pivot = shared.pop()
            x = a if b == pivot else b
            y = c if e == pivot else e
            # apply (x pivot) then (y pivot): x -> pivot -> pivot? compute directly
            # product maps x -> pivot? No: apply (x pivot) first: x->pivot, pivot->x.
            # then (y pivot): pivot->y. So overall: x->y, y? y->pivot? (first leaves y) then ->pivot? no (y pivot): y->pivot.
            # overall: x->y... recompute: after both: x->pivot->y, y->y->pivot, pivot->x->x.
            # That is the 3-cycle (x y pivot)? x->y, y->pivot, pivot->x. Yes.
            three_cycles.append((x, y, pivot))
        else:
            # Disjoint pair (A B)(C D) = apply (A C B) then (C B D).
            three_cycles.append((a, c, b))
            three_cycles.append((c, b, e))
    return three_cycles


def _commutator_block_ops(
    dim: int,
    c1: int,
    pred1: ControlPredicate,
    c2: int,
    pred2: ControlPredicate,
    ancilla: int,
    cycle: Tuple[int, int, int],
) -> List[Operation]:
    """Four controlled transpositions whose net effect on the ancilla is:

    * the 3-cycle ``x -> y -> z -> x`` when both controls fire,
    * the identity otherwise.
    """
    x, y, z = cycle
    p_gate = XPerm.transposition(dim, x, z)
    r_gate = XPerm.transposition(dim, x, y)
    return [
        Operation(p_gate, ancilla, [(c1, pred1)]),
        Operation(r_gate, ancilla, [(c2, pred2)]),
        Operation(p_gate, ancilla, [(c1, pred1)]),
        Operation(r_gate, ancilla, [(c2, pred2)]),
    ]


def even_two_controlled_transposition_ops(
    dim: int,
    c1: int,
    pred1: ControlPredicate,
    c2: int,
    pred2: ControlPredicate,
    target: int,
    i: int,
    j: int,
    borrow: int,
) -> List[Operation]:
    """``[pred1]c1 [pred2]c2 - Xij`` for even ``d`` with one borrowed ancilla."""
    if dim % 2 != 0:
        raise DimensionError("this gadget is for even dimensions")
    if dim < 4:
        raise DimensionError("the even-d gadget requires d >= 4")
    wires = {c1, c2, target, borrow}
    if len(wires) != 4:
        raise SynthesisError("the even-d gadget needs four distinct wires")

    sigma = _even_flip_permutation(dim)
    firing_set = frozenset(perm_utils.alternating_set(sigma))
    detector = Operation(
        XPerm.transposition(dim, i, j), target, [(borrow, InSet(firing_set))]
    )

    sigma_ops: List[Operation] = []
    for cycle in _three_cycles_of(sigma):
        sigma_ops.extend(_commutator_block_ops(dim, c1, pred1, c2, pred2, borrow, cycle))
    sigma_inverse = [op.inverse() for op in reversed(sigma_ops)]

    return [detector] + sigma_ops + [detector] + sigma_inverse


# ----------------------------------------------------------------------
# Dispatcher
# ----------------------------------------------------------------------
def two_controlled_transposition_ops(
    dim: int,
    c1: int,
    pred1: ControlPredicate,
    c2: int,
    pred2: ControlPredicate,
    target: int,
    i: int,
    j: int,
    borrow: int = None,
) -> List[Operation]:
    """Synthesise ``[pred1]c1 [pred2]c2 - Xij`` on ``target``.

    For odd ``d`` the synthesis is ancilla-free (Fig. 5, conjugated); for
    even ``d`` the caller must provide a ``borrow`` wire (Lemma III.1 needs
    one borrowed ancilla — this is unavoidable, see the parity argument after
    Theorem III.2).

    Non-``Value`` predicates are expanded into a product over their firing
    values; the firing values are distinct states of a single control qudit,
    so at most one factor fires for any input.
    """
    if dim < 3:
        raise DimensionError("the paper's constructions require d >= 3")
    if dim % 2 == 0:
        if borrow is None:
            raise SynthesisError(
                "a borrowed ancilla wire is required for two-controlled gates when d is even"
            )
        return even_two_controlled_transposition_ops(
            dim, c1, pred1, c2, pred2, target, i, j, borrow
        )

    ops: List[Operation] = []
    values1 = pred1.values(dim) if not isinstance(pred1, Value) else (pred1.value,)
    values2 = pred2.values(dim) if not isinstance(pred2, Value) else (pred2.value,)
    for v1 in values1:
        for v2 in values2:
            ops.extend(
                _odd_two_controlled_transposition_values(dim, c1, v1, c2, v2, target, i, j)
            )
    return ops


def two_controlled_permutation_ops(
    dim: int,
    c1: int,
    pred1: ControlPredicate,
    c2: int,
    pred2: ControlPredicate,
    target: int,
    perm: Sequence[int],
    borrow: int = None,
) -> List[Operation]:
    """Synthesise a two-controlled permutation gate by decomposing the
    permutation into transpositions (each transposition is an involution, as
    required by the even-``d`` detector construction)."""
    ops: List[Operation] = []
    for i, j in perm_utils.transpositions_of(perm):
        ops.extend(
            two_controlled_transposition_ops(dim, c1, pred1, c2, pred2, target, i, j, borrow)
        )
    return ops
