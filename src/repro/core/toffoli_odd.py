"""k-Toffoli synthesis for odd d (Theorem III.6, Fig. 10) — ancilla-free.

The construction interleaves three ``|0⟩-X01`` gates (all controlled by the
last control qudit ``x_k`` and targeting ``t``) with ``P_k`` / ``P_k†`` pairs
and with ``|0⟩x_k``-controlled ``X^o_eo`` layers on the other controls:

    |0⟩x_k-X01 · P_k · |0⟩x_k-X01 · P_k† · |0⟩x_k-(X^o_eo)^{⊗(k-1)}
    · P_k · |0⟩x_k-X01 · P_k† · |0⟩x_k-(X^o_eo)^{⊗(k-1)}

``P_k`` writes into ``x_k`` a value that depends on whether the last
non-zero control is odd or even; ``X^o_eo`` flips that parity class without
touching zeros, so the three detectors fire an odd number of times exactly
when every control is ``|0⟩``.  ``P_k`` itself needs one borrowed ancilla
(Fig. 9) — the target ``t`` is borrowed for that purpose, which is what makes
the overall synthesis ancilla-free.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.exceptions import DimensionError, SynthesisError, WireError
from repro.qudit.ancilla import SynthesisResult
from repro.qudit.circuit import QuditCircuit
from repro.qudit.controls import Value
from repro.qudit.gates import XPerm
from repro.qudit.operations import BaseOp, Operation
from repro.core.pk import pk_one_ancilla
from repro.core.two_controlled import odd_two_controlled_x01_ops


def mct_odd_ops(
    dim: int,
    controls: Sequence[int],
    target: int,
    *,
    swap=(0, 1),
) -> List[BaseOp]:
    """``|0^k⟩-X_{ij}`` for odd ``d`` on explicit wires, ancilla-free."""
    if dim % 2 != 1:
        raise DimensionError("mct_odd_ops is the odd-d construction")
    if dim < 3:
        raise DimensionError("the paper's constructions require d >= 3")
    i, j = swap
    payload = XPerm.transposition(dim, i, j)
    k = len(controls)
    wires = list(controls) + [target]
    if len(set(wires)) != len(wires):
        raise WireError(f"control/target wires must be distinct: {wires}")

    if k == 0:
        return [Operation(payload, target)]
    if k == 1:
        return [Operation(payload, target, [(controls[0], Value(0))])]
    if k == 2:
        if (i, j) == (0, 1):
            return odd_two_controlled_x01_ops(dim, controls[0], controls[1], target)
        return [
            Operation(payload, target, [(controls[0], Value(0)), (controls[1], Value(0))])
        ]

    last = controls[-1]
    others = list(controls[:-1])
    detector = Operation(payload, target, [(last, Value(0))])
    xeo_odd = XPerm.odd_even_swap(dim)
    parity_flip = [
        Operation(xeo_odd, wire, [(last, Value(0))]) for wire in others
    ]

    # P_k acts on the control wires with x_k (= ``last``) as its target; the
    # overall Toffoli target ``t`` is borrowed inside P_k's synthesis.
    pk_ops = pk_one_ancilla(dim, list(controls), target)
    pk_inverse = [op.inverse() for op in reversed(pk_ops)]

    ops: List[BaseOp] = []
    ops.append(detector)
    ops.extend(pk_ops)
    ops.append(detector)
    ops.extend(pk_inverse)
    ops.extend(parity_flip)
    ops.extend(pk_ops)
    ops.append(detector)
    ops.extend(pk_inverse)
    ops.extend(parity_flip)
    return ops


def synthesize_mct_odd(dim: int, num_controls: int, *, swap=(0, 1)) -> SynthesisResult:
    """Theorem III.6: ``|0^k⟩-X01`` for odd ``d`` with no ancilla.

    Wires ``0 .. k-1`` are the controls and wire ``k`` is the target.
    """
    if num_controls < 0:
        raise SynthesisError("the number of controls must be non-negative")
    controls = list(range(num_controls))
    target = num_controls
    circuit = QuditCircuit(num_controls + 1, dim, name=f"MCT_odd(k={num_controls}, d={dim})")
    circuit.extend(mct_odd_ops(dim, controls, target, swap=swap))
    return SynthesisResult(
        circuit=circuit,
        controls=tuple(controls),
        target=target,
        ancillas={},
        notes="Theorem III.6 (Fig. 10), odd d, ancilla-free",
    )
