"""k-Toffoli synthesis for even d (Theorem III.2, Figs. 3-4).

For even ``d`` the ``|0^k⟩-X01`` gate is an odd permutation of the
computational basis while every G-gate is an even permutation, so at least
one extra wire is unavoidable; the paper (and this module) achieves exactly
one *borrowed* ancilla:

1. Fig. 3 builds ``|0^k⟩-X01`` (and the variants ``|0^k⟩-X^e_eo`` and
   ``|o⟩|0^{k-1}⟩-X01``) with ``k − 2`` borrowed ancillas using the
   ``X^e_eo`` parity ladder (implemented in :mod:`repro.core.lambda_ladder`).
2. Fig. 4 halves the control set: the first ``⌈k/2⌉`` controls drive an
   ``X^e_eo`` on the single borrowed ancilla, and the remaining controls plus
   an ``|o⟩``-control on that ancilla drive the payload ``X01``.  Repeating
   the pair twice makes the target flip iff *both* halves are all-zero, and
   restores the ancilla.  Each half borrows the (idle) wires of the other
   half, so one explicit ancilla suffices overall.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.exceptions import DimensionError, SynthesisError, WireError
from repro.qudit.ancilla import AncillaKind, SynthesisResult
from repro.qudit.circuit import QuditCircuit
from repro.qudit.controls import Odd, Value
from repro.qudit.gates import XPerm
from repro.qudit.operations import BaseOp, Operation
from repro.core.lambda_ladder import multi_controlled_payload_even_ops


def mct_even_ops(
    dim: int,
    controls: Sequence[int],
    target: int,
    borrow: Optional[int],
    *,
    swap=(0, 1),
) -> List[BaseOp]:
    """``|0^k⟩-X_{ij}`` for even ``d`` on explicit wires.

    ``borrow`` is the single borrowed ancilla wire; it may be ``None`` only
    for ``k <= 1`` (where the gate is already a one- or two-qudit gate).
    """
    if dim % 2 != 0:
        raise DimensionError("mct_even_ops is the even-d construction")
    if dim < 4:
        raise DimensionError("even qudit constructions require d >= 4")
    i, j = swap
    payload = XPerm.transposition(dim, i, j)
    k = len(controls)

    if k == 0:
        return [Operation(payload, target)]
    if k == 1:
        return [Operation(payload, target, [(controls[0], Value(0))])]
    if borrow is None:
        raise SynthesisError(
            "even-d multi-controlled gates need one borrowed ancilla (Lemma III.1)"
        )
    wires = list(controls) + [target, borrow]
    if len(set(wires)) != len(wires):
        raise WireError(f"control/target/borrow wires must be distinct: {wires}")

    if k == 2:
        # Lemma III.1: the two-controlled gadget *is* the whole synthesis.
        return [
            Operation(payload, target, [(controls[0], Value(0)), (controls[1], Value(0))])
        ]

    # Fig. 4: split the controls into two halves.
    half = (k + 1) // 2
    first_half = list(controls[:half])
    second_half = list(controls[half:])
    xeo = XPerm.even_odd_swap(dim)

    # |0^{⌈k/2⌉}⟩-X^e_eo on the borrowed ancilla, borrowing idle wires from
    # the second half and the target.
    flip_ancilla = multi_controlled_payload_even_ops(
        dim, first_half, borrow, xeo, second_half + [target]
    )
    # |o⟩|0^{⌊k/2⌋}⟩-X01 on the target, borrowing idle wires from the first half.
    hit_target = multi_controlled_payload_even_ops(
        dim,
        [borrow] + second_half,
        target,
        payload,
        first_half,
        first_predicate=Odd(),
    )
    return flip_ancilla + hit_target + flip_ancilla + hit_target


def synthesize_mct_even(dim: int, num_controls: int, *, swap=(0, 1)) -> SynthesisResult:
    """Theorem III.2: ``|0^k⟩-X01`` for even ``d`` with one borrowed ancilla.

    The returned circuit uses wires ``0 .. k-1`` for the controls, wire ``k``
    for the target and (for ``k >= 2``) wire ``k+1`` as the borrowed ancilla.
    """
    if num_controls < 0:
        raise SynthesisError("the number of controls must be non-negative")
    controls = list(range(num_controls))
    target = num_controls
    needs_borrow = num_controls >= 2
    num_wires = num_controls + (2 if needs_borrow else 1)
    borrow = num_controls + 1 if needs_borrow else None
    circuit = QuditCircuit(num_wires, dim, name=f"MCT_even(k={num_controls}, d={dim})")
    circuit.extend(mct_even_ops(dim, controls, target, borrow, swap=swap))
    ancillas = {borrow: AncillaKind.BORROWED} if needs_borrow else {}
    return SynthesisResult(
        circuit=circuit,
        controls=tuple(controls),
        target=target,
        ancillas=ancillas,
        notes="Theorem III.2 (Figs. 3-4), even d, one borrowed ancilla",
    )
