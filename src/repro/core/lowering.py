"""Lowering facade: expand macro operations down to the G-gate set.

Historically this module housed a monolithic fixed-point rewriter; the
machinery now lives in the composable pass pipeline under
:mod:`repro.passes` and, for the hot path, in the columnar IR under
:mod:`repro.ir`.  :func:`lower_to_g_gates` is kept as a thin compatibility
wrapper so every existing caller keeps working unchanged.  The optimization
passes in both engines only remove or merge operations, so lowered G-gate
counts can shrink relative to plain expansion but never grow.

Two engines produce gate-for-gate identical output (asserted by the test
suite):

* ``"table"`` (default) — template-based expansion straight into a
  struct-of-arrays :class:`~repro.ir.table.GateTable` followed by the
  columnar cancel/drop kernels; returns a table-backed circuit whose
  counting queries run as column kernels and whose op objects materialise
  only if something iterates them.
* ``"object"`` — the pass pipeline over per-op Python objects, exactly the
  pre-columnar behavior.
"""

from __future__ import annotations

from repro.exceptions import SynthesisError
from repro.qudit.circuit import QuditCircuit

#: Safety bound on the number of rewriting sweeps (and, in the table engine,
#: on the per-op expansion recursion depth — sweeps bound nesting depth).
_MAX_PASSES = 12


def lower_to_g_gates(
    circuit: QuditCircuit,
    *,
    engine: str = "table",
    cache=None,
    cache_key: str = None,
) -> QuditCircuit:
    """Return an equivalent circuit consisting solely of G-gates.

    ``cache=`` (a :class:`repro.exec.cache.CompileCache`) with ``cache_key=``
    (a content address from :func:`repro.exec.keys.cache_key`, covering the
    inputs that produced ``circuit``) opts into the persistent compile
    cache: a hit skips lowering entirely and returns a circuit backed by the
    cached columnar table; a miss lowers as usual and stores the result.
    """
    if engine not in ("table", "object"):
        raise SynthesisError(f"unknown lowering engine {engine!r}; use 'table' or 'object'")
    if cache is not None:
        if cache_key is None:
            raise SynthesisError("lower_to_g_gates(cache=...) requires cache_key=")
        entry = cache.get(cache_key)
        if entry is not None:
            if not entry.table.is_g_circuit():
                # The same guard the miss paths enforce: a key addressing a
                # macro-level artifact must not masquerade as lowered output.
                raise SynthesisError(
                    f"cache key {cache_key[:12]}… resolves to a non-G-gate table; "
                    "it does not address lowered output"
                )
            return QuditCircuit.from_table(entry.table)
    if engine == "table":
        # Imported lazily: repro.ir.lowering reaches into repro.passes, which
        # pulls in repro.core synthesis modules; a module-level import here
        # would close that cycle during package initialisation.
        from repro.ir.lowering import lower_circuit_to_table

        table = lower_circuit_to_table(circuit, max_sweeps=_MAX_PASSES)
        if not table.is_g_circuit():  # pragma: no cover - defensive
            raise SynthesisError("lowering did not converge to G-gates")
        lowered = QuditCircuit.from_table(table, name=f"{circuit.name} [G]")
    elif engine == "object":
        from repro.passes import default_lowering_pipeline

        lowered = default_lowering_pipeline(max_sweeps=_MAX_PASSES).run(circuit)
        if not lowered.is_g_circuit():  # pragma: no cover - defensive
            raise SynthesisError("lowering did not converge to G-gates")
        lowered.name = f"{circuit.name} [G]"
    if cache is not None:
        cache.put(cache_key, lowered.to_table())
    return lowered
