"""Lowering facade: expand macro operations down to the G-gate set.

Historically this module housed a monolithic fixed-point rewriter.  The
machinery now lives in the composable pass pipeline under
:mod:`repro.passes` (:class:`~repro.passes.ExpandMacros` plus the peephole
cleanup passes); :func:`lower_to_g_gates` is kept as a thin compatibility
wrapper so every existing caller keeps working unchanged.  The optimization
passes in the default pipeline only remove or merge operations, so lowered
G-gate counts can shrink relative to plain expansion but never grow.
"""

from __future__ import annotations

from repro.exceptions import SynthesisError
from repro.qudit.circuit import QuditCircuit

#: Safety bound on the number of rewriting sweeps, threaded through to
#: :class:`~repro.passes.ExpandMacros` below.
_MAX_PASSES = 12


def lower_to_g_gates(circuit: QuditCircuit) -> QuditCircuit:
    """Return an equivalent circuit consisting solely of G-gates."""
    # Imported lazily: repro.passes pulls in repro.core synthesis modules,
    # and a module-level import here would close that cycle during package
    # initialisation.
    from repro.passes import default_lowering_pipeline

    lowered = default_lowering_pipeline(max_sweeps=_MAX_PASSES).run(circuit)
    if not lowered.is_g_circuit():  # pragma: no cover - defensive
        raise SynthesisError("lowering did not converge to G-gates")
    lowered.name = f"{circuit.name} [G]"
    return lowered
