"""Unified entry point for multi-controlled Toffoli synthesis.

Dispatches between the odd-``d`` (Theorem III.6, ancilla-free) and even-``d``
(Theorem III.2, one borrowed ancilla) constructions, and reduces the general
case — arbitrary control values and an arbitrary target transposition — to
the canonical ``|0^k⟩-X01`` form by conjugation with single-qudit ``Xij``
gates (a standard trick the paper uses implicitly in Fig. 11 and Section IV).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.exceptions import DimensionError, SynthesisError
from repro.qudit.ancilla import AncillaKind, SynthesisResult
from repro.qudit.circuit import QuditCircuit
from repro.qudit.operations import BaseOp
from repro.core.single_controlled import control_value_conjugation_ops
from repro.core.toffoli_even import mct_even_ops, synthesize_mct_even
from repro.core.toffoli_odd import mct_odd_ops, synthesize_mct_odd


def mct_ops(
    dim: int,
    controls: Sequence[int],
    target: int,
    *,
    borrow: Optional[int] = None,
    control_values: Optional[Sequence[int]] = None,
    swap: Tuple[int, int] = (0, 1),
) -> List[BaseOp]:
    """Build a multi-controlled ``X_{ij}`` on explicit wires.

    Parameters
    ----------
    dim:
        Qudit dimension (``d >= 3``).
    controls, target:
        Wire indices.  The gate applies the transposition ``swap`` to the
        target when every control holds its control value.
    borrow:
        A borrowed-ancilla wire, required only when ``dim`` is even and
        ``len(controls) >= 2``.
    control_values:
        Per-control firing values (default: all ``0``, the paper's
        ``|0^k⟩``-control).  Non-zero values are handled by conjugating the
        corresponding control with ``X_{0,v}``.
    swap:
        The target transposition ``(i, j)`` (default ``(0, 1)``: the
        k-Toffoli).
    """
    if dim < 3:
        raise DimensionError("the paper's constructions require d >= 3")
    if swap[0] == swap[1]:
        raise SynthesisError("the target transposition needs two distinct levels")

    conjugation: List[BaseOp] = []
    if control_values is not None:
        conjugation = control_value_conjugation_ops(dim, controls, control_values)

    if dim % 2 == 1:
        core = mct_odd_ops(dim, controls, target, swap=swap)
    else:
        core = mct_even_ops(dim, controls, target, borrow, swap=swap)
    return conjugation + core + conjugation


def synthesize_mct(
    dim: int,
    num_controls: int,
    *,
    control_values: Optional[Sequence[int]] = None,
    swap: Tuple[int, int] = (0, 1),
) -> SynthesisResult:
    """Synthesise the k-controlled Toffoli on a fresh register.

    Wires ``0 .. k-1`` are the controls and wire ``k`` the target; for even
    ``d`` (and ``k >= 2``) wire ``k+1`` is one borrowed ancilla.  This is the
    main theorem of the paper: ``O(k · poly(d))`` G-gates with no ancilla for
    odd ``d`` and one borrowed ancilla for even ``d``.
    """
    if control_values is None and swap == (0, 1):
        if dim % 2 == 1:
            return synthesize_mct_odd(dim, num_controls)
        return synthesize_mct_even(dim, num_controls)

    controls = list(range(num_controls))
    target = num_controls
    needs_borrow = dim % 2 == 0 and num_controls >= 2
    borrow = num_controls + 1 if needs_borrow else None
    num_wires = num_controls + (2 if needs_borrow else 1)
    circuit = QuditCircuit(num_wires, dim, name=f"MCT(k={num_controls}, d={dim})")
    circuit.extend(
        mct_ops(
            dim,
            controls,
            target,
            borrow=borrow,
            control_values=control_values,
            swap=swap,
        )
    )
    ancillas = {borrow: AncillaKind.BORROWED} if needs_borrow else {}
    return SynthesisResult(
        circuit=circuit,
        controls=tuple(controls),
        target=target,
        ancillas=ancillas,
        notes="Theorems III.2 / III.6 with control-value conjugation",
    )
