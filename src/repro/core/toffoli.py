"""Unified entry point for multi-controlled Toffoli synthesis.

Dispatches between the odd-``d`` (Theorem III.6, ancilla-free) and even-``d``
(Theorem III.2, one borrowed ancilla) constructions, and reduces the general
case — arbitrary control values and an arbitrary target transposition — to
the canonical ``|0^k⟩-X01`` form by conjugation with single-qudit ``Xij``
gates (a standard trick the paper uses implicitly in Fig. 11 and Section IV).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.exceptions import DimensionError, SynthesisError
from repro.qudit.ancilla import SynthesisResult
from repro.qudit.operations import BaseOp
from repro.core.single_controlled import control_value_conjugation_ops
from repro.core.toffoli_even import mct_even_ops
from repro.core.toffoli_odd import mct_odd_ops


def mct_ops(
    dim: int,
    controls: Sequence[int],
    target: int,
    *,
    borrow: Optional[int] = None,
    control_values: Optional[Sequence[int]] = None,
    swap: Tuple[int, int] = (0, 1),
) -> List[BaseOp]:
    """Build a multi-controlled ``X_{ij}`` on explicit wires.

    Parameters
    ----------
    dim:
        Qudit dimension (``d >= 3``).
    controls, target:
        Wire indices.  The gate applies the transposition ``swap`` to the
        target when every control holds its control value.
    borrow:
        A borrowed-ancilla wire, required only when ``dim`` is even and
        ``len(controls) >= 2``.
    control_values:
        Per-control firing values (default: all ``0``, the paper's
        ``|0^k⟩``-control).  Non-zero values are handled by conjugating the
        corresponding control with ``X_{0,v}``.
    swap:
        The target transposition ``(i, j)`` (default ``(0, 1)``: the
        k-Toffoli).
    """
    if dim < 3:
        raise DimensionError("the paper's constructions require d >= 3")
    if swap[0] == swap[1]:
        raise SynthesisError("the target transposition needs two distinct levels")

    conjugation: List[BaseOp] = []
    if control_values is not None:
        conjugation = control_value_conjugation_ops(dim, controls, control_values)

    if dim % 2 == 1:
        core = mct_odd_ops(dim, controls, target, swap=swap)
    else:
        core = mct_even_ops(dim, controls, target, borrow, swap=swap)
    return conjugation + core + conjugation


def synthesize_mct(
    dim: int,
    num_controls: int,
    *,
    control_values: Optional[Sequence[int]] = None,
    swap: Tuple[int, int] = (0, 1),
) -> SynthesisResult:
    """Synthesise the k-controlled Toffoli on a fresh register.

    Wires ``0 .. k-1`` are the controls and wire ``k`` the target; for even
    ``d`` (and ``k >= 2``) wire ``k+1`` is one borrowed ancilla.  This is the
    main theorem of the paper: ``O(k · poly(d))`` G-gates with no ancilla for
    odd ``d`` and one borrowed ancilla for even ``d``.

    .. note::
       Registry-backed wrapper: the construction lives in the ``"mct"``
       strategy of :mod:`repro.synth`, which also carries capability
       metadata and an exact analytic estimator
       (``repro.synth.estimate("mct", d, k)`` counts without building).
    """
    from repro.synth import registry  # lazy: repro.synth imports this module

    return registry.get("mct").synthesize(
        dim, num_controls, control_values=control_values, swap=swap
    )
