"""Gate-count reporting.

The paper's cost metrics are (i) the number of two-qudit gates and (ii) the
number of G-gates, together with the number and kind of ancillas.  This
module computes those metrics for a synthesised circuit, optionally lowering
it to G-gates first, and packages them in a :class:`GateCountReport` that the
benchmark harness renders as the rows of the reproduction tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.qudit.ancilla import AncillaKind, SynthesisResult
from repro.qudit.circuit import QuditCircuit
from repro.core.lowering import lower_to_g_gates


@dataclass
class GateCountReport:
    """Cost metrics of one synthesised circuit."""

    name: str
    dim: int
    num_wires: int
    macro_ops: int
    two_qudit_gates: int
    g_gates: int
    depth: int
    single_qudit_gates: int
    controlled_x01: int
    ancillas: Dict[str, int] = field(default_factory=dict)

    def as_row(self) -> Dict[str, object]:
        """Flatten into a dictionary suitable for table rendering."""
        # Lazy import: repro.bench.tables imports this module at package
        # init, so pulling the shared row helper in at call time avoids the
        # cycle while keeping one formatting implementation.
        from repro.bench.formatting import counts_row

        return counts_row(
            {
                "name": self.name,
                "d": self.dim,
                "wires": self.num_wires,
                "macro_ops": self.macro_ops,
                "two_qudit_gates": self.two_qudit_gates,
                "g_gates": self.g_gates,
                "depth": self.depth,
            },
            self.ancillas,
        )


def count_gates(
    source, *, lower: bool = True, name: Optional[str] = None
) -> GateCountReport:
    """Compute a :class:`GateCountReport` for a circuit or synthesis result.

    ``source`` may be a :class:`QuditCircuit` or a
    :class:`~repro.qudit.ancilla.SynthesisResult`.  With ``lower=True`` the
    circuit is first expanded to G-gates (the paper's primitive gate set); the
    macro-level size is reported alongside.
    """
    if isinstance(source, SynthesisResult):
        circuit = source.circuit
        ancillas = _ancilla_histogram(source)
    elif isinstance(source, QuditCircuit):
        circuit = source
        ancillas = {}
    else:
        raise TypeError(f"cannot count gates of {type(source).__name__}")

    macro_ops = circuit.num_ops()
    counted = lower_to_g_gates(circuit) if lower and circuit.is_permutation else circuit
    g_gates = counted.g_gate_count()
    # Column kernel when the counted circuit is table-backed (post-lowering).
    controlled = counted.controlled_g_gate_count()
    return GateCountReport(
        name=name or circuit.name,
        dim=circuit.dim,
        num_wires=circuit.num_wires,
        macro_ops=macro_ops,
        two_qudit_gates=counted.two_qudit_count(),
        g_gates=g_gates,
        depth=counted.depth(),
        single_qudit_gates=counted.single_qudit_count(),
        controlled_x01=controlled,
        ancillas=ancillas,
    )


def _ancilla_histogram(result: SynthesisResult) -> Dict[str, int]:
    histogram: Dict[str, int] = {kind.value: 0 for kind in AncillaKind}
    for kind in result.ancillas.values():
        histogram[kind.value] += 1
    return {k: v for k, v in histogram.items() if v}
