"""Permutation utilities on the set [d] = {0, 1, ..., d-1}.

Permutations are represented as tuples ``p`` of length ``d`` where ``p[x]``
is the image of ``x``.  The paper manipulates permutations constantly: the
single-qudit gates ``Xij`` and ``X+y`` are permutations, the synthesis of
classical reversible functions (Theorem IV.2) decomposes a permutation of
``[d]^n`` into 2-cycles, and the even-``d`` gadget reasons about parity
classes of permutations.

Composition convention
----------------------
``compose(p, q)`` is the permutation "apply ``q`` first, then ``p``"
(i.e. ``compose(p, q)[x] == p[q[x]]``).  Lists of transpositions returned by
:func:`transpositions_of` and :func:`cycle_to_transpositions` are in
*circuit order*: applying them left to right reproduces the permutation.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.exceptions import GateError

Permutation = Tuple[int, ...]


def identity_permutation(d: int) -> Permutation:
    """Return the identity permutation on ``[d]``."""
    _check_dimension(d)
    return tuple(range(d))


def is_permutation(values: Sequence[int]) -> bool:
    """Return True if ``values`` is a permutation of ``range(len(values))``."""
    return sorted(values) == list(range(len(values)))


def as_permutation(values: Sequence[int]) -> Permutation:
    """Validate and normalise ``values`` into a permutation tuple."""
    perm = tuple(int(v) for v in values)
    if not is_permutation(perm):
        raise GateError(f"{values!r} is not a permutation of range({len(perm)})")
    return perm


def compose(p: Sequence[int], q: Sequence[int]) -> Permutation:
    """Return the permutation that applies ``q`` first and then ``p``."""
    if len(p) != len(q):
        raise GateError("cannot compose permutations of different sizes")
    return tuple(p[q[x]] for x in range(len(p)))


def compose_all(perms: Iterable[Sequence[int]], d: int) -> Permutation:
    """Compose a sequence of permutations given in circuit order.

    ``compose_all([p1, p2, p3], d)`` applies ``p1`` first, then ``p2``, then
    ``p3``.
    """
    result = identity_permutation(d)
    for perm in perms:
        result = compose(perm, result)
    return result


def invert(p: Sequence[int]) -> Permutation:
    """Return the inverse permutation of ``p``."""
    inverse = [0] * len(p)
    for x, image in enumerate(p):
        inverse[image] = x
    return tuple(inverse)


def transposition(d: int, i: int, j: int) -> Permutation:
    """Return the transposition swapping ``i`` and ``j`` on ``[d]`` (the
    paper's ``Xij`` gate)."""
    _check_dimension(d)
    if i == j:
        raise GateError("a transposition requires two distinct points")
    if not (0 <= i < d and 0 <= j < d):
        raise GateError(f"transposition points ({i}, {j}) out of range for d={d}")
    values = list(range(d))
    values[i], values[j] = values[j], values[i]
    return tuple(values)


def cycle_plus(d: int, y: int) -> Permutation:
    """Return the cyclic shift ``x -> (x + y) mod d`` (the paper's ``X+y``)."""
    _check_dimension(d)
    return tuple((x + y) % d for x in range(d))


def permutation_from_cycles(d: int, cycles: Iterable[Sequence[int]]) -> Permutation:
    """Build a permutation from disjoint cycles.

    Each cycle ``(c0, c1, ..., cm)`` maps ``c0 -> c1 -> ... -> cm -> c0``.
    """
    _check_dimension(d)
    values = list(range(d))
    seen = set()
    for cycle in cycles:
        if len(set(cycle)) != len(cycle):
            raise GateError(f"cycle {cycle!r} repeats an element")
        for element in cycle:
            if not 0 <= element < d:
                raise GateError(f"cycle element {element} out of range for d={d}")
            if element in seen:
                raise GateError(f"cycles are not disjoint at element {element}")
            seen.add(element)
        for index, element in enumerate(cycle):
            values[element] = cycle[(index + 1) % len(cycle)]
    return tuple(values)


def cycles_of(p: Sequence[int], include_fixed_points: bool = False) -> List[Tuple[int, ...]]:
    """Return the cycle decomposition of ``p``.

    Cycles of length 1 (fixed points) are omitted unless
    ``include_fixed_points`` is True.  Each cycle starts at its smallest
    element and cycles are sorted by that element.
    """
    perm = as_permutation(p)
    visited = [False] * len(perm)
    cycles: List[Tuple[int, ...]] = []
    for start in range(len(perm)):
        if visited[start]:
            continue
        cycle = [start]
        visited[start] = True
        current = perm[start]
        while current != start:
            cycle.append(current)
            visited[current] = True
            current = perm[current]
        if len(cycle) > 1 or include_fixed_points:
            cycles.append(tuple(cycle))
    return cycles


def cycle_to_transpositions(cycle: Sequence[int]) -> List[Tuple[int, int]]:
    """Decompose one cycle into transpositions in circuit order.

    The cycle ``(c0, c1, ..., cm)`` equals the product of transpositions
    ``(c0 c1), (c0 c2), ..., (c0 cm)`` applied left to right.
    """
    anchor = cycle[0]
    return [(anchor, element) for element in cycle[1:]]


def transpositions_of(p: Sequence[int]) -> List[Tuple[int, int]]:
    """Decompose ``p`` into transpositions, in circuit order.

    The paper uses this repeatedly: ``X+y`` decomposes into at most ``d - 1``
    ``Xij`` gates (Sec. II), and any reversible function decomposes into
    2-cycles (Theorem IV.2).
    """
    result: List[Tuple[int, int]] = []
    for cycle in cycles_of(p):
        result.extend(cycle_to_transpositions(cycle))
    return result


def parity(p: Sequence[int]) -> int:
    """Return 0 if ``p`` is an even permutation and 1 if it is odd.

    Used by the ancilla lower-bound argument after Theorem III.2: for even
    ``d`` every G-gate is an even permutation of the computational basis
    while the k-Toffoli is odd, hence one borrowed ancilla is necessary.
    """
    return len(transpositions_of(p)) % 2


def is_involution(p: Sequence[int]) -> bool:
    """Return True if ``p`` composed with itself is the identity."""
    perm = as_permutation(p)
    return compose(perm, perm) == identity_permutation(len(perm))


def is_transposition(p: Sequence[int]) -> bool:
    """Return True if ``p`` swaps exactly two points."""
    cycles = cycles_of(p)
    return len(cycles) == 1 and len(cycles[0]) == 2


def fixed_points(p: Sequence[int]) -> Tuple[int, ...]:
    """Return the fixed points of ``p``."""
    return tuple(x for x, image in enumerate(p) if image == x)


def all_cycles_even_length(p: Sequence[int]) -> bool:
    """Return True if every cycle of ``p`` (including fixed points) has even
    length.  Such permutations map some set S onto its complement, which is
    what the even-``d`` two-controlled gadget needs."""
    return all(len(c) % 2 == 0 for c in cycles_of(p, include_fixed_points=True))


def alternating_set(p: Sequence[int]) -> Tuple[int, ...]:
    """Return a set ``S`` with ``p(S) == complement(S)``.

    Requires every cycle of ``p`` to have even length; the set is built by
    2-colouring each cycle alternately.  Raises :class:`GateError` otherwise.
    """
    if not all_cycles_even_length(p):
        raise GateError("permutation has an odd-length cycle; no alternating set exists")
    members: List[int] = []
    for cycle in cycles_of(p, include_fixed_points=True):
        members.extend(cycle[0::2])
    return tuple(sorted(members))


def parity_of_value(value: int) -> int:
    """Return ``value mod 2`` — the odd/even classification the paper's
    \\|o⟩- and \\|e⟩-controls use."""
    return value % 2


def random_permutation(d: int, rng) -> Permutation:
    """Return a uniformly random permutation of ``[d]`` using ``rng``
    (a :class:`random.Random` or ``numpy`` generator exposing ``shuffle``)."""
    values = list(range(d))
    rng.shuffle(values)
    return tuple(values)


def _check_dimension(d: int) -> None:
    if d < 1:
        raise GateError(f"dimension must be positive, got {d}")
