"""Conversions between computational-basis labels and flat indices.

A basis state of ``n`` qudits of dimension ``d`` is written as a tuple of
digits ``(x_0, ..., x_{n-1})`` with wire 0 as the most significant digit, so
that the flat index of ``|x_0 ... x_{n-1}⟩`` is the base-``d`` number
``x_0 x_1 ... x_{n-1}``.  This matches the usual tensor-product ordering
``wire0 ⊗ wire1 ⊗ ...`` used by the dense simulators.
"""

from __future__ import annotations

from typing import Iterator, Sequence, Tuple

import numpy as np

from repro.exceptions import DimensionError, WireError


def digits_to_index(digits: Sequence[int], dim: int) -> int:
    """Convert a digit tuple (wire 0 most significant) to a flat index."""
    if dim < 2:
        raise DimensionError(f"dimension must be at least 2, got {dim}")
    index = 0
    for digit in digits:
        if not 0 <= digit < dim:
            raise WireError(f"digit {digit} out of range for dimension {dim}")
        index = index * dim + digit
    return index


def index_to_digits(index: int, dim: int, num_wires: int) -> Tuple[int, ...]:
    """Convert a flat index back to a digit tuple of length ``num_wires``."""
    if dim < 2:
        raise DimensionError(f"dimension must be at least 2, got {dim}")
    if not 0 <= index < dim**num_wires:
        raise WireError(f"index {index} out of range for {num_wires} wires of dimension {dim}")
    digits = [0] * num_wires
    for position in range(num_wires - 1, -1, -1):
        digits[position] = index % dim
        index //= dim
    return tuple(digits)


def iterate_basis(dim: int, num_wires: int) -> Iterator[Tuple[int, ...]]:
    """Iterate over every computational-basis digit tuple in index order."""
    for index in range(dim**num_wires):
        yield index_to_digits(index, dim, num_wires)


def indices_to_digits(indices, dim: int, num_wires: int) -> np.ndarray:
    """Vectorized :func:`index_to_digits`: digits of many flat indices at once.

    Returns an integer array of shape ``indices.shape + (num_wires,)`` whose
    last axis holds the digit tuple (wire 0 most significant).
    """
    if dim < 2:
        raise DimensionError(f"dimension must be at least 2, got {dim}")
    indices = np.asarray(indices, dtype=np.int64)
    strides = dim ** np.arange(num_wires - 1, -1, -1, dtype=np.int64)
    return (indices[..., None] // strides) % dim


def digit_matrix(dim: int, num_wires: int) -> np.ndarray:
    """The ``(dim**num_wires, num_wires)`` array of every basis digit tuple,
    in flat-index order."""
    return indices_to_digits(np.arange(dim**num_wires), dim, num_wires)
