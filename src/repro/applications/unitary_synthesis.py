"""Exact synthesis of arbitrary n-qudit unitaries (Theorem IV.1).

Bullock, O'Leary and Brennen showed that any unitary on ``n`` ``d``-level
qudits can be synthesised with ``O(d^{2n})`` two-qudit gates, which is
asymptotically optimal, but their construction uses ``⌈(n−2)/(d−2)⌉`` clean
ancillas.  Theorem IV.1 observes that the ancillas are only used inside the
multi-controlled gates, so substituting the paper's one-clean-ancilla
synthesis (Fig. 1(b)) brings the ancilla count down to one while keeping the
two-qudit gate count optimal.

The pipeline implemented here:

1. decompose the ``d^n x d^n`` unitary into two-level unitaries
   (:mod:`repro.applications.two_level`);
2. for each two-level factor acting on basis states ``|a⟩, |b⟩``:

   * conjugate with the Fig.-11-style relabelling layer so the two states
     differ only at one pivot qudit;
   * apply a multi-controlled single-qudit unitary on the pivot (controls on
     every other qudit at the shared digit values) whose 2x2 block is the
     two-level factor — synthesised with ``|0^k⟩-U`` and one clean ancilla;
   * undo the relabelling.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import DimensionError, SynthesisError
from repro.qudit.ancilla import AncillaKind, SynthesisResult
from repro.qudit.circuit import QuditCircuit
from repro.qudit.controls import Value
from repro.qudit.gates import SingleQuditUnitary, XPerm
from repro.qudit.operations import BaseOp, Operation
from repro.core.multi_controlled_unitary import mcu_ops
from repro.applications.two_level import TwoLevelUnitary, two_level_decomposition
from repro.utils.indexing import index_to_digits


def _pivot_unitary(dim: int, level_a: int, level_b: int, block: np.ndarray) -> SingleQuditUnitary:
    """Embed the 2x2 two-level block into a single-qudit unitary acting on
    levels ``level_a`` and ``level_b`` of the pivot qudit."""
    matrix = np.eye(dim, dtype=complex)
    matrix[level_a, level_a] = block[0, 0]
    matrix[level_a, level_b] = block[0, 1]
    matrix[level_b, level_a] = block[1, 0]
    matrix[level_b, level_b] = block[1, 1]
    return SingleQuditUnitary(matrix, label="U2", check=False)


def two_level_factor_ops(
    dim: int,
    wires: Sequence[int],
    factor: TwoLevelUnitary,
    clean_ancilla: Optional[int],
) -> List[BaseOp]:
    """Circuit for one two-level unitary on the given data wires."""
    n = len(wires)
    state_a = index_to_digits(factor.index_a, dim, n)
    state_b = index_to_digits(factor.index_b, dim, n)

    pivot = max(i for i in range(n) if state_a[i] != state_b[i])
    pivot_wire = wires[pivot]

    relabel: List[BaseOp] = []
    for i in range(n):
        if i == pivot or state_a[i] == state_b[i]:
            continue
        relabel.append(
            Operation(
                XPerm.transposition(dim, state_a[i], state_b[i]),
                wires[i],
                [(pivot_wire, Value(state_b[pivot]))],
            )
        )

    # After the relabelling |b⟩ sits at digits (a_0, ..., b_pivot, ..., a_{n-1}),
    # so the controls of the pivot gate are the shared digits a_i.
    control_wires = [wires[i] for i in range(n) if i != pivot]
    control_values = [state_a[i] for i in range(n) if i != pivot]
    payload = _pivot_unitary(dim, state_a[pivot], state_b[pivot], factor.block)
    core = mcu_ops(
        dim,
        control_wires,
        pivot_wire,
        payload,
        clean_ancilla,
        control_values=control_values,
    )
    return relabel + list(core) + relabel


def synthesize_unitary(unitary: np.ndarray, dim: int, num_qudits: int) -> SynthesisResult:
    """Theorem IV.1: synthesise an arbitrary ``n``-qudit unitary.

    The circuit acts on data wires ``0 .. n-1``; for ``n >= 3`` one clean
    ancilla wire ``n`` is appended (the single clean ancilla of the theorem).
    The two-qudit gate count is ``O(d^{2n})`` — the optimal order — and is
    reported by :func:`repro.core.count_gates`.

    .. note::
       Registered in :mod:`repro.synth` as the ``"unitary"`` strategy
       (``k`` = qudits, ``unitary`` kwarg; canonical payload: the seed-0
       Haar-random unitary) with a macro-level O(d^{2n}) cost model.
    """
    if dim < 3:
        raise DimensionError("the paper's constructions require d >= 3")
    size = dim**num_qudits
    matrix = np.asarray(unitary, dtype=complex)
    if matrix.shape != (size, size):
        raise SynthesisError(
            f"expected a {size}x{size} matrix for {num_qudits} qudits of dimension {dim}"
        )

    needs_ancilla = num_qudits >= 3
    num_wires = num_qudits + (1 if needs_ancilla else 0)
    ancilla = num_qudits if needs_ancilla else None
    circuit = QuditCircuit(num_wires, dim, name=f"unitary(n={num_qudits}, d={dim})")
    wires = list(range(num_qudits))

    for factor in two_level_decomposition(matrix):
        if factor.is_identity():
            continue
        circuit.extend(two_level_factor_ops(dim, wires, factor, ancilla))

    ancillas = {ancilla: AncillaKind.CLEAN} if needs_ancilla else {}
    return SynthesisResult(
        circuit=circuit,
        controls=tuple(wires),
        target=None,
        ancillas=ancillas,
        notes="Theorem IV.1: two-level decomposition + one-clean-ancilla |0^k⟩-U",
    )


def bullock_ancilla_count(dim: int, num_qudits: int) -> int:
    """Clean-ancilla count of the original Bullock et al. synthesis,
    ``⌈(n−2)/(d−2)⌉`` — the quantity Theorem IV.1 reduces to one."""
    if num_qudits <= 2:
        return 0
    return -(-(num_qudits - 2) // (dim - 2))


def random_unitary(size: int, seed: int = 0) -> np.ndarray:
    """A Haar-random unitary matrix (utility for tests and benchmarks)."""
    rng = np.random.default_rng(seed)
    matrix = rng.normal(size=(size, size)) + 1j * rng.normal(size=(size, size))
    q, r = np.linalg.qr(matrix)
    return q * (np.diag(r) / np.abs(np.diag(r)))
