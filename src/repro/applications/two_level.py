"""Two-level decomposition of unitary matrices.

The Bullock–O'Leary–Brennen synthesis (and Theorem IV.1, which improves its
ancilla count) starts from the classical fact that any ``N x N`` unitary is a
product of at most ``N(N−1)/2`` *two-level* unitaries — matrices that act
non-trivially only on a two-dimensional subspace spanned by a pair of
computational basis states.  This module implements that decomposition from
scratch (Givens-style column elimination on numpy arrays).

The returned factors satisfy, in circuit order,

    ``U = product(factor.embed(N) for factor in factors)``

i.e. applying the factors left-to-right reproduces ``U``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.exceptions import GateError


@dataclass
class TwoLevelUnitary:
    """A unitary acting only on basis states ``index_a < index_b``.

    ``block`` is the 2x2 unitary acting on ``span{|index_a⟩, |index_b⟩}``
    (row/column order ``[index_a, index_b]``).
    """

    index_a: int
    index_b: int
    block: np.ndarray

    def __post_init__(self) -> None:
        if self.index_a == self.index_b:
            raise GateError("a two-level unitary needs two distinct basis states")
        if self.index_a > self.index_b:
            raise GateError("two-level indices must be ordered (index_a < index_b)")
        self.block = np.asarray(self.block, dtype=complex)
        if self.block.shape != (2, 2):
            raise GateError("the two-level block must be a 2x2 matrix")
        if not np.allclose(self.block @ self.block.conj().T, np.eye(2), atol=1e-9):
            raise GateError("the two-level block is not unitary")

    def embed(self, size: int) -> np.ndarray:
        """Embed the 2x2 block into an ``size x size`` identity."""
        matrix = np.eye(size, dtype=complex)
        a, b = self.index_a, self.index_b
        matrix[a, a] = self.block[0, 0]
        matrix[a, b] = self.block[0, 1]
        matrix[b, a] = self.block[1, 0]
        matrix[b, b] = self.block[1, 1]
        return matrix

    def is_identity(self, atol: float = 1e-12) -> bool:
        return bool(np.allclose(self.block, np.eye(2), atol=atol))


def two_level_decomposition(unitary: np.ndarray, atol: float = 1e-11) -> List[TwoLevelUnitary]:
    """Decompose ``unitary`` into two-level unitaries (circuit order).

    The algorithm eliminates the sub-diagonal entries of each column with
    Givens-style rotations ``G`` so that ``G_m ... G_1 U = D`` with ``D``
    diagonal (a pure phase per basis state); the factors returned are the
    inverse rotations followed by the diagonal phases (each diagonal phase is
    itself emitted as a two-level unitary touching one extra basis state, or
    dropped when it is the identity).
    """
    matrix = np.asarray(unitary, dtype=complex).copy()
    size = matrix.shape[0]
    if matrix.shape != (size, size):
        raise GateError("unitary must be square")
    if not np.allclose(matrix @ matrix.conj().T, np.eye(size), atol=1e-8):
        raise GateError("matrix is not unitary")

    eliminations: List[TwoLevelUnitary] = []
    for column in range(size - 1):
        for row in range(size - 1, column, -1):
            a = matrix[column, column]
            b = matrix[row, column]
            if abs(b) <= atol:
                continue
            norm = np.sqrt(abs(a) ** 2 + abs(b) ** 2)
            # Rotation sending (a, b) -> (norm, 0).
            rotation = np.array(
                [[np.conj(a) / norm, np.conj(b) / norm], [-b / norm, a / norm]],
                dtype=complex,
            )
            gate = TwoLevelUnitary(column, row, rotation)
            matrix = gate.embed(size) @ matrix
            eliminations.append(gate)

    factors: List[TwoLevelUnitary] = [
        TwoLevelUnitary(g.index_a, g.index_b, g.block.conj().T) for g in reversed(eliminations)
    ]

    # ``matrix`` is now diagonal (phases).  Emit each non-trivial phase as a
    # two-level diagonal unitary so downstream synthesis only ever deals with
    # two-level factors.
    phases = np.diag(matrix)
    for index in range(size):
        phase = phases[index]
        if abs(phase - 1.0) <= atol:
            continue
        partner = (index + 1) % size
        low, high = min(index, partner), max(index, partner)
        block = np.eye(2, dtype=complex)
        block[0 if index == low else 1, 0 if index == low else 1] = phase
        factors.insert(0, TwoLevelUnitary(low, high, block))
    return factors


def reconstruct(factors: List[TwoLevelUnitary], size: int) -> np.ndarray:
    """Multiply the factors back together (circuit order) — used in tests."""
    matrix = np.eye(size, dtype=complex)
    for factor in factors:
        matrix = factor.embed(size) @ matrix
    return matrix
