"""The counting lower bound of Lemma IV.3.

For ``d >= 2`` there exist ``n``-variable ``d``-ary reversible functions that
require ``Ω(n d^n / log n)`` G-gates when only ``O(n)`` ancillas are
available.  The argument is a counting argument: with ``c·n`` wires there are
at most ``cn(cn−1) + cn·d(d−1)/2`` distinct G-gates, hence at most
``(cdn)^{2N}`` circuits with ``N`` gates, which must exceed the ``(d^n)!``
reversible functions.

This module evaluates the bound exactly (with explicit constants rather than
asymptotics), so that the benchmark harness can report how far the measured
gate counts of Theorem IV.2 are from the information-theoretic floor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def distinct_g_gates(dim: int, wires: int) -> int:
    """Number of distinct G-gates on ``wires`` qudits of dimension ``dim``.

    A ``|0⟩-X01`` gate is determined by an ordered (control, target) pair —
    ``wires · (wires − 1)`` choices — and an ``Xij`` gate by a wire and an
    unordered level pair — ``wires · d(d−1)/2`` choices.
    """
    if wires < 1:
        return 0
    controlled = wires * (wires - 1)
    single = wires * dim * (dim - 1) // 2
    return controlled + single


def log2_reversible_function_count(dim: int, n: int) -> float:
    """``log2((d^n)!)`` — the information content of a reversible function."""
    return float(math.lgamma(dim**n + 1) / math.log(2))


@dataclass
class LowerBoundReport:
    """The Lemma IV.3 bound evaluated for one ``(d, n)`` point."""

    dim: int
    n: int
    ancilla_factor: float
    wires: int
    distinct_gates: int
    min_gates: int
    paper_formula: float

    def as_row(self) -> dict:
        return {
            "d": self.dim,
            "n": self.n,
            "wires": self.wires,
            "distinct_g_gates": self.distinct_gates,
            "lower_bound_gates": self.min_gates,
            "paper_formula_n_d^n_log_d_over_4log(cdn)": round(self.paper_formula, 1),
        }


def reversible_lower_bound(dim: int, n: int, ancilla_factor: float = 1.0) -> LowerBoundReport:
    """Evaluate Lemma IV.3 for ``n`` variables, ``d`` levels and ``c·n`` wires.

    Returns both the exact counting bound (smallest ``N`` with
    ``#circuits(N) >= (d^n)!``) and the closed-form expression quoted in the
    paper's proof, ``n d^n log d / (4 log(c d n))``.
    """
    if dim < 2 or n < 1:
        raise ValueError("the lower bound needs d >= 2 and n >= 1")
    wires = max(int(math.ceil(ancilla_factor * n)), n)
    gates = distinct_g_gates(dim, wires)
    target_bits = log2_reversible_function_count(dim, n)
    per_gate_bits = math.log2(max(gates, 2))
    min_gates = int(math.ceil(target_bits / per_gate_bits))
    paper_formula = (
        n * dim**n * math.log(dim) / (4.0 * math.log(max(ancilla_factor, 1.0) * dim * n))
        if n * dim > 1
        else 0.0
    )
    return LowerBoundReport(
        dim=dim,
        n=n,
        ancilla_factor=ancilla_factor,
        wires=wires,
        distinct_gates=gates,
        min_gates=min_gates,
        paper_formula=paper_formula,
    )
