"""Qudit arithmetic operators built from multi-controlled gates.

Arithmetic circuits (ternary adders and their d-ary generalisations) are one
of the applications the paper cites for its multi-controlled gate synthesis
[22, 23].  This module provides the basic reversible arithmetic primitives
on a little-endian-free register (wire 0 is the most significant digit):

* :func:`increment_ops` — add 1 modulo ``d^n``;
* :func:`add_constant_ops` — add an arbitrary constant modulo ``d^n``;
* :func:`controlled_increment_ops` — the same, fired by an extra control
  qudit (used by the adder examples and tests).

The carry logic uses the classic ancilla-free formulation: the digit at
position ``i`` is incremented iff every less-significant digit equals
``d − 1`` — precisely a multi-controlled ``X+1`` with control value
``d − 1``, i.e. the gate family the paper synthesises.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.exceptions import DimensionError, SynthesisError
from repro.qudit.ancilla import AncillaKind, SynthesisResult
from repro.qudit.circuit import QuditCircuit
from repro.qudit.controls import Value
from repro.qudit.gates import XPlus
from repro.qudit.operations import BaseOp, Operation
from repro.core.multi_controlled_unitary import mcu_ops
from repro.utils.indexing import digits_to_index, index_to_digits


def increment_ops(
    dim: int,
    wires: Sequence[int],
    clean_ancilla: Optional[int],
    *,
    extra_controls: Sequence[Tuple[int, int]] = (),
) -> List[BaseOp]:
    """Add 1 modulo ``d^n`` to the register ``wires`` (wire 0 most significant).

    ``extra_controls`` is a list of ``(wire, value)`` pairs that must all be
    satisfied for the increment to fire (used for controlled increments).
    """
    n = len(wires)
    ops: List[BaseOp] = []
    extra_wires = [w for w, _ in extra_controls]
    extra_values = [v for _, v in extra_controls]
    # Most significant digit first: digit i increments iff all digits below
    # it are d-1 (they are about to wrap around).
    for position in range(n):
        lower = list(wires[position + 1 :])
        controls = extra_wires + lower
        values = extra_values + [dim - 1] * len(lower)
        payload = XPlus(dim, 1)
        if not controls:
            ops.append(Operation(payload, wires[position]))
        else:
            ops.extend(
                mcu_ops(
                    dim,
                    controls,
                    wires[position],
                    payload,
                    clean_ancilla,
                    control_values=values,
                )
            )
    return ops


def add_constant_ops(
    dim: int,
    wires: Sequence[int],
    constant: int,
    clean_ancilla: Optional[int],
) -> List[BaseOp]:
    """Add ``constant`` modulo ``d^n`` to the register.

    Each base-``d`` digit of the constant is added at its own position with
    the appropriate carry controls; carries are handled by iterating the
    single-step increment on the prefix register once per unit of the digit
    (simple, ``O(d · n^2)`` multi-controlled gates — the point of the module
    is to exercise the multi-controlled synthesis, not to be the tightest
    adder known).
    """
    n = len(wires)
    size = dim**n
    constant %= size
    ops: List[BaseOp] = []
    digits = index_to_digits(constant, dim, n)
    for position in range(n):
        digit = digits[position]
        prefix = list(wires[: position + 1])
        for _ in range(digit):
            ops.extend(increment_ops(dim, prefix, clean_ancilla))
    return ops


def controlled_increment_ops(
    dim: int,
    control: int,
    control_value: int,
    wires: Sequence[int],
    clean_ancilla: Optional[int],
) -> List[BaseOp]:
    """Increment the register iff ``control`` holds ``control_value``."""
    return increment_ops(
        dim, wires, clean_ancilla, extra_controls=[(control, control_value)]
    )


def synthesize_increment(dim: int, n: int) -> SynthesisResult:
    """Build the +1 circuit on a fresh ``n``-qudit register.

    .. note::
       Registered in :mod:`repro.synth` as the ``"increment"`` strategy
       (``k`` = register digits), with an exact estimate for small registers
       and a stacked-MCU cost model beyond.
    """
    if dim < 3:
        raise DimensionError("the paper's constructions require d >= 3")
    if n < 1:
        raise SynthesisError("the register needs at least one digit")
    needs_ancilla = n >= 3
    num_wires = n + (1 if needs_ancilla else 0)
    ancilla = n if needs_ancilla else None
    circuit = QuditCircuit(num_wires, dim, name=f"increment(d={dim}, n={n})")
    circuit.extend(increment_ops(dim, list(range(n)), ancilla))
    ancillas = {ancilla: AncillaKind.CLEAN} if needs_ancilla else {}
    return SynthesisResult(
        circuit=circuit,
        controls=tuple(range(n)),
        target=None,
        ancillas=ancillas,
        notes="ripple increment from multi-controlled X+1 gates",
    )


def increment_reference(dim: int, n: int, state: Sequence[int], amount: int = 1) -> Tuple[int, ...]:
    """Reference semantics used by the tests: ``state + amount mod d^n``."""
    index = digits_to_index(state, dim)
    return index_to_digits((index + amount) % dim**n, dim, n)
