"""Applications of the paper's synthesis (Section IV and cited use cases)."""

from repro.applications.arithmetic import (
    add_constant_ops,
    controlled_increment_ops,
    increment_ops,
    increment_reference,
    synthesize_increment,
)
from repro.applications.grover import (
    GroverOutcome,
    diffusion_ops,
    fourier_gate,
    grover_circuit,
    optimal_iterations,
    oracle_ops,
    phase_flip_gate,
    run_grover,
)
from repro.applications.lower_bound import (
    LowerBoundReport,
    distinct_g_gates,
    reversible_lower_bound,
)
from repro.applications.reversible import (
    function_to_index_permutation,
    index_permutation_to_two_cycles,
    random_reversible_function,
    synthesize_reversible_function,
    two_cycle_ops,
)
from repro.applications.two_level import (
    TwoLevelUnitary,
    reconstruct,
    two_level_decomposition,
)
from repro.applications.unitary_synthesis import (
    bullock_ancilla_count,
    random_unitary,
    synthesize_unitary,
)

__all__ = [
    "add_constant_ops",
    "controlled_increment_ops",
    "increment_ops",
    "increment_reference",
    "synthesize_increment",
    "GroverOutcome",
    "diffusion_ops",
    "fourier_gate",
    "grover_circuit",
    "optimal_iterations",
    "oracle_ops",
    "phase_flip_gate",
    "run_grover",
    "LowerBoundReport",
    "distinct_g_gates",
    "reversible_lower_bound",
    "function_to_index_permutation",
    "index_permutation_to_two_cycles",
    "random_reversible_function",
    "synthesize_reversible_function",
    "two_cycle_ops",
    "TwoLevelUnitary",
    "reconstruct",
    "two_level_decomposition",
    "bullock_ancilla_count",
    "random_unitary",
    "synthesize_unitary",
]
