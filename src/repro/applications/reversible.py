"""Implementation of classical reversible functions (Theorem IV.2, Fig. 11).

An ``n``-variable ``d``-ary classical reversible function is a bijection
``f : [d]^n -> [d]^n``.  The paper implements any such ``f`` with
``O(n d^n)`` G-gates, using **no ancilla for odd d** and **one borrowed
ancilla for even d**:

1. view ``f`` as a permutation of the ``d^n`` basis states and write it as a
   product of at most ``d^n − 1`` transpositions (2-cycles);
2. implement each 2-cycle ``(a, b)`` with the three-step circuit of Fig. 11:

   * Step 1: for every position ``i`` (other than a chosen pivot ``p`` with
     ``a_p ≠ b_p``) where ``a_i ≠ b_i``, apply ``|b_p⟩``-controlled
     ``X_{a_i b_i}`` from wire ``p`` to wire ``i`` — this moves ``|b⟩`` onto
     a state that differs from ``|a⟩`` only at the pivot;
   * Step 2: a multi-controlled ``X_{a_p b_p}`` on the pivot, controlled on
     every other wire holding ``a_i`` — synthesised with the paper's
     k-Toffoli (Theorems III.2 / III.6);
   * Step 3: repeat Step 1 to undo the relabelling.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.exceptions import DimensionError, SynthesisError
from repro.qudit.ancilla import AncillaKind, SynthesisResult
from repro.qudit.circuit import QuditCircuit
from repro.qudit.controls import Value
from repro.qudit.gates import XPerm
from repro.qudit.operations import BaseOp, Operation
from repro.core.toffoli import mct_ops
from repro.utils.indexing import digits_to_index, index_to_digits, iterate_basis

BasisState = Tuple[int, ...]
ReversibleFunction = Union[
    Callable[[BasisState], Sequence[int]],
    Dict[BasisState, BasisState],
    Sequence[int],
]


def function_to_index_permutation(function: ReversibleFunction, dim: int, n: int) -> List[int]:
    """Normalise a reversible function to a permutation of flat indices."""
    size = dim**n
    if isinstance(function, dict):
        lookup = lambda state: tuple(function[state])  # noqa: E731
    elif callable(function):
        lookup = lambda state: tuple(function(state))  # noqa: E731
    else:
        table = list(function)
        if sorted(table) != list(range(size)):
            raise SynthesisError("index table is not a permutation of the basis")
        return table

    table = []
    for state in iterate_basis(dim, n):
        image = lookup(state)
        if len(image) != n or not all(0 <= digit < dim for digit in image):
            raise SynthesisError(f"function returned an invalid image {image} for {state}")
        table.append(digits_to_index(image, dim))
    if sorted(table) != list(range(size)):
        raise SynthesisError("the supplied function is not a bijection on [d]^n")
    return table


def index_permutation_to_two_cycles(table: Sequence[int]) -> List[Tuple[int, int]]:
    """Decompose a permutation of flat indices into 2-cycles (circuit order)."""
    visited = [False] * len(table)
    two_cycles: List[Tuple[int, int]] = []
    for start in range(len(table)):
        if visited[start] or table[start] == start:
            visited[start] = True
            continue
        cycle = [start]
        visited[start] = True
        current = table[start]
        while current != start:
            cycle.append(current)
            visited[current] = True
            current = table[current]
        anchor = cycle[0]
        for element in cycle[1:]:
            two_cycles.append((anchor, element))
    return two_cycles


def two_cycle_ops(
    dim: int,
    wires: Sequence[int],
    state_a: BasisState,
    state_b: BasisState,
    borrow: Optional[int],
) -> List[BaseOp]:
    """The Fig. 11 circuit swapping the basis states ``|a⟩`` and ``|b⟩``."""
    if state_a == state_b:
        return []
    n = len(wires)
    if len(state_a) != n or len(state_b) != n:
        raise SynthesisError("basis states must have one digit per wire")

    # Choose the pivot position (the paper takes the last differing position
    # w.l.o.g.; any position where the states differ works).
    pivot = max(i for i in range(n) if state_a[i] != state_b[i])
    pivot_wire = wires[pivot]

    relabel: List[BaseOp] = []
    for i in range(n):
        if i == pivot or state_a[i] == state_b[i]:
            continue
        relabel.append(
            Operation(
                XPerm.transposition(dim, state_a[i], state_b[i]),
                wires[i],
                [(pivot_wire, Value(state_b[pivot]))],
            )
        )

    control_wires = [wires[i] for i in range(n) if i != pivot]
    control_values = [state_a[i] for i in range(n) if i != pivot]
    core = mct_ops(
        dim,
        control_wires,
        pivot_wire,
        borrow=borrow,
        control_values=control_values,
        swap=(state_a[pivot], state_b[pivot]),
    )
    return relabel + list(core) + relabel


def synthesize_reversible_function(
    dim: int, n: int, function: ReversibleFunction
) -> SynthesisResult:
    """Theorem IV.2: implement ``f : [d]^n -> [d]^n`` with G-gates.

    The circuit acts on wires ``0 .. n-1``; for even ``d`` (and ``n >= 3``)
    one extra borrowed-ancilla wire ``n`` is appended.  For odd ``d`` the
    implementation is ancilla-free.

    .. note::
       Registered in :mod:`repro.synth` as the ``"reversible"`` strategy
       (``k`` = variables, ``function`` kwarg; canonical payload: the seed-0
       random bijection) with a worst-case O(n·d^n) cost model.
    """
    if dim < 3:
        raise DimensionError("the paper's constructions require d >= 3")
    if n < 1:
        raise SynthesisError("the function needs at least one variable")

    table = function_to_index_permutation(function, dim, n)
    two_cycles = index_permutation_to_two_cycles(table)

    needs_borrow = dim % 2 == 0 and n >= 3
    num_wires = n + (1 if needs_borrow else 0)
    borrow = n if needs_borrow else None
    circuit = QuditCircuit(num_wires, dim, name=f"reversible(n={n}, d={dim})")
    wires = list(range(n))

    # The 2-cycle list composes left-to-right to the target permutation, which
    # matches circuit order directly.
    for anchor_index, element_index in two_cycles:
        state_a = index_to_digits(anchor_index, dim, n)
        state_b = index_to_digits(element_index, dim, n)
        circuit.extend(two_cycle_ops(dim, wires, state_a, state_b, borrow))

    ancillas = {borrow: AncillaKind.BORROWED} if needs_borrow else {}
    return SynthesisResult(
        circuit=circuit,
        controls=tuple(wires),
        target=None,
        ancillas=ancillas,
        notes="Theorem IV.2 (Fig. 11): product of 2-cycles",
    )


def random_reversible_function(dim: int, n: int, seed: int = 0) -> List[int]:
    """A uniformly random reversible function as a flat-index table."""
    import random as _random

    rng = _random.Random(seed)
    table = list(range(dim**n))
    rng.shuffle(table)
    return table
