"""d-ary Grover search built on the paper's multi-controlled gates.

Grover's algorithm over a ``d``-ary search space of ``n`` qudits is one of
the applications the paper lists for its multi-controlled gate synthesis
(it cites Saha et al. [21]).  The two non-trivial circuit blocks are exactly
multi-controlled gates:

* the **oracle** marks ``|m⟩`` with a phase of −1: a multi-controlled phase
  gate with control values ``m_1 ... m_{n-1}`` and a diagonal payload on the
  last qudit;
* the **diffusion** operator ``F^{⊗n} (2|0^n⟩⟨0^n| − I) F^{†⊗n}`` uses the
  same multi-controlled phase with all-zero control values, conjugated by
  the qudit Fourier transform ``F``.

Both blocks are synthesised through :func:`repro.core.mcu_ops`, i.e. through
the paper's one-clean-ancilla ``|0^k⟩-U`` construction, and the whole
algorithm is simulated with the dense statevector simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import DimensionError, SynthesisError
from repro.qudit.ancilla import AncillaKind, SynthesisResult
from repro.qudit.circuit import QuditCircuit
from repro.qudit.gates import SingleQuditUnitary
from repro.qudit.operations import BaseOp, Operation
from repro.core.multi_controlled_unitary import mcu_ops
from repro.sim.backend import BackendLike
from repro.sim.statevector import Statevector


def fourier_gate(dim: int) -> SingleQuditUnitary:
    """The single-qudit Fourier (generalised Hadamard) gate ``F``."""
    omega = np.exp(2j * np.pi / dim)
    matrix = np.array(
        [[omega ** (row * col) / math.sqrt(dim) for col in range(dim)] for row in range(dim)]
    )
    return SingleQuditUnitary(matrix, label="F")


def phase_flip_gate(dim: int, level: int) -> SingleQuditUnitary:
    """Diagonal gate applying a −1 phase to ``|level⟩``."""
    diagonal = np.ones(dim, dtype=complex)
    diagonal[level] = -1.0
    return SingleQuditUnitary(np.diag(diagonal), label=f"Z[{level}]")


def oracle_ops(
    dim: int,
    wires: Sequence[int],
    marked: Sequence[int],
    clean_ancilla: Optional[int],
) -> List[BaseOp]:
    """Phase oracle flipping the sign of the marked basis state ``|marked⟩``."""
    n = len(wires)
    if len(marked) != n:
        raise SynthesisError("marked state must have one digit per search wire")
    controls = list(wires[:-1])
    control_values = list(marked[:-1])
    payload = phase_flip_gate(dim, marked[-1])
    return mcu_ops(
        dim, controls, wires[-1], payload, clean_ancilla, control_values=control_values
    )


def diffusion_ops(
    dim: int, wires: Sequence[int], clean_ancilla: Optional[int]
) -> List[BaseOp]:
    """The inversion-about-the-mean operator on ``wires``."""
    fourier = fourier_gate(dim)
    inverse_fourier = fourier.inverse()
    ops: List[BaseOp] = [Operation(inverse_fourier, wire) for wire in wires]
    ops.extend(
        mcu_ops(
            dim,
            list(wires[:-1]),
            wires[-1],
            phase_flip_gate(dim, 0),
            clean_ancilla,
            control_values=[0] * (len(wires) - 1),
        )
    )
    ops.extend(Operation(fourier, wire) for wire in wires)
    return ops


def optimal_iterations(dim: int, n: int, num_marked: int = 1) -> int:
    """The usual ``⌊(π/4)·sqrt(N / M)⌋`` Grover iteration count."""
    space = dim**n
    return max(1, int(math.floor(math.pi / 4.0 * math.sqrt(space / num_marked))))


def grover_circuit(
    dim: int, n: int, marked: Sequence[int], iterations: Optional[int] = None
) -> SynthesisResult:
    """Build the full Grover circuit (state preparation + iterations)."""
    if dim < 3:
        raise DimensionError("the paper's constructions require d >= 3")
    if n < 2:
        raise SynthesisError("Grover search needs at least two qudits")
    rounds = iterations if iterations is not None else optimal_iterations(dim, n)
    needs_ancilla = n >= 3
    num_wires = n + (1 if needs_ancilla else 0)
    ancilla = n if needs_ancilla else None
    wires = list(range(n))

    circuit = QuditCircuit(num_wires, dim, name=f"grover(d={dim}, n={n})")
    fourier = fourier_gate(dim)
    for wire in wires:
        circuit.append(Operation(fourier, wire))
    for _ in range(rounds):
        circuit.extend(oracle_ops(dim, wires, marked, ancilla))
        circuit.extend(diffusion_ops(dim, wires, ancilla))

    ancillas = {ancilla: AncillaKind.CLEAN} if needs_ancilla else {}
    return SynthesisResult(
        circuit=circuit,
        controls=tuple(wires),
        target=None,
        ancillas=ancillas,
        notes=f"d-ary Grover, {rounds} iterations, marked state {tuple(marked)}",
    )


@dataclass
class GroverOutcome:
    """Result of simulating a Grover run."""

    dim: int
    n: int
    marked: tuple
    iterations: int
    success_probability: float
    uniform_probability: float

    def as_row(self) -> dict:
        return {
            "d": self.dim,
            "n": self.n,
            "iterations": self.iterations,
            "P(success)": round(self.success_probability, 4),
            "P(uniform guess)": round(self.uniform_probability, 4),
        }


def run_grover(
    dim: int,
    n: int,
    marked: Sequence[int],
    iterations: Optional[int] = None,
    *,
    backend: BackendLike = None,
) -> GroverOutcome:
    """Simulate Grover search and report the success probability.

    ``backend`` selects the simulation engine (see :mod:`repro.sim.backend`).
    """
    result = grover_circuit(dim, n, marked, iterations)
    state = Statevector(result.circuit.num_wires, dim, backend=backend)
    state.apply_circuit(result.circuit)
    padded = tuple(marked) + (0,) * (result.circuit.num_wires - n)
    probability = state.probability(padded)
    rounds = iterations if iterations is not None else optimal_iterations(dim, n)
    return GroverOutcome(
        dim=dim,
        n=n,
        marked=tuple(marked),
        iterations=rounds,
        success_probability=probability,
        uniform_probability=1.0 / dim**n,
    )
