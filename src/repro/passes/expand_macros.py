"""ExpandMacros: rewrite macro operations down to the G-gate set.

The synthesis routines emit circuits whose operations are at most
"two-controlled macros": singly-controlled permutation gates with arbitrary
predicates, two-controlled permutation gates, and the ``|⋆⟩|0⟩-X±⋆`` star
gates.  The paper's cost metric, however, is the number of G-gates
(``G = {Xij} ∪ {|0⟩-X01}``).  This pass rewrites a circuit so that every
operation is literally a G-gate, applying the following rules until a fixed
point is reached:

1. an uncontrolled permutation gate → its transposition decomposition;
2. ``|l⟩-Xij`` → conjugated ``|0⟩-X01`` (Section II's observation);
3. a singly-controlled permutation with an ``Odd``/``EvenNonZero``/set
   predicate → a product over its firing values;
4. a two-controlled permutation → the Lemma III.3 gadget (odd ``d``,
   ancilla-free) or the Lemma III.1 gadget (even ``d``, borrowing the
   lowest-index idle wire of the circuit — the paper borrows idle control
   wires in exactly the same way);
5. a star gate → a product of two-controlled ``X+y`` gates over the star
   wire's values ``y = 1 .. d−1`` (Fig. 6), which rule 4 then expands.

Operations with three or more value controls are rejected: producing those
is the job of the multi-controlled synthesis itself, not of the expansion
pass.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, List, Optional

from repro.exceptions import SynthesisError
from repro.passes.base import Pass
from repro.qudit.circuit import QuditCircuit
from repro.qudit.controls import Value
from repro.qudit.gates import XPerm
from repro.qudit.operations import BaseOp, Operation, StarShiftOp
from repro.core.single_controlled import (
    controlled_permutation_g_ops,
    controlled_transposition_g_ops,
    transposition_ops,
)
from repro.core.two_controlled import two_controlled_transposition_ops
from repro.utils import permutations as perm_utils


class ExpandMacros(Pass):
    """Expand every macro operation into G-gates (fixed-point rewriter)."""

    name = "expand-macros"

    def __init__(self, max_sweeps: int = 12):
        #: Safety bound on the number of rewriting sweeps.
        self.max_sweeps = max_sweeps

    def spec(self) -> dict:
        return {"pass": self.name, "max_sweeps": self.max_sweeps}

    def run(self, circuit: QuditCircuit) -> QuditCircuit:
        current = circuit
        for _ in range(self.max_sweeps):
            if current.is_g_circuit():
                return current.copy()
            next_circuit = QuditCircuit(current.num_wires, current.dim, name=current.name)
            find_borrow = partial(_find_borrow, current)
            for op in current:
                next_circuit.extend(_expand_op(op, current.dim, find_borrow))
            current = next_circuit
        if not current.is_g_circuit():
            raise SynthesisError("lowering did not converge to G-gates")
        return current


#: Lazily resolves the borrowed wire for an even-``d`` two-controlled gadget;
#: called only when an expansion rule actually needs one.
BorrowFinder = Callable[[BaseOp], int]


def expand_fully(
    op: BaseOp, dim: int, find_borrow: BorrowFinder, fuel: int = 12
) -> List[BaseOp]:
    """Expand one operation all the way down to G-gates (depth-first).

    Produces exactly the sequence the sweep-based :class:`ExpandMacros` pass
    would: each rewrite rule is context-free given ``dim`` and the borrow
    wire, so expanding depth-first instead of sweep-by-sweep preserves the
    concatenation order at every level.  The table-lowering templates in
    :mod:`repro.ir.lowering` are built from this.
    """
    if op.is_g_gate(dim):
        return [op]
    if fuel <= 0:
        raise SynthesisError("lowering did not converge to G-gates")
    expanded: List[BaseOp] = []
    for child in _expand_op(op, dim, find_borrow):
        expanded.extend(expand_fully(child, dim, find_borrow, fuel - 1))
    return expanded


def _expand_op(op: BaseOp, dim: int, find_borrow: Optional[BorrowFinder]) -> List[BaseOp]:
    if op.is_g_gate(dim):
        return [op]

    if isinstance(op, StarShiftOp):
        return _expand_star(op, dim)

    if not isinstance(op, Operation):  # pragma: no cover - defensive
        raise SynthesisError(f"cannot lower unknown operation {op!r}")
    if not op.gate.is_permutation:
        raise SynthesisError(
            "cannot lower a non-permutation payload to G-gates; keep |1⟩-U gates "
            "as two-qudit gates instead"
        )

    perm = op.gate.permutation()
    if perm == perm_utils.identity_permutation(dim):
        return []

    if op.num_controls == 0:
        return list(transposition_ops(dim, op.target, perm))

    if op.num_controls == 1:
        control, predicate = op.controls[0]
        if isinstance(predicate, Value) and perm_utils.is_transposition(perm):
            i, j = XPerm(perm).transposition_points()
            return list(
                controlled_transposition_g_ops(dim, control, predicate.value, op.target, i, j)
            )
        return list(
            controlled_permutation_g_ops(dim, control, predicate, op.target, perm)
        )

    if op.num_controls == 2:
        (c1, p1), (c2, p2) = op.controls
        borrow = find_borrow(op) if dim % 2 == 0 else None
        ops: List[BaseOp] = []
        for i, j in perm_utils.transpositions_of(perm):
            ops.extend(
                two_controlled_transposition_ops(dim, c1, p1, c2, p2, op.target, i, j, borrow)
            )
        return ops

    raise SynthesisError(
        f"lowering does not expand operations with {op.num_controls} controls; "
        "use the multi-controlled synthesis routines instead"
    )


def _expand_star(op: StarShiftOp, dim: int) -> List[BaseOp]:
    """Expand ``|⋆⟩[controls]-X±⋆`` into per-value controlled shifts (Fig. 6)."""
    if len(op.controls) > 1:
        raise SynthesisError(
            "star gates with more than one ordinary control must be synthesised "
            "with the ladder (multi_controlled_star_ops), not the lowering pass"
        )
    ops: List[BaseOp] = []
    for star_value in range(1, dim):
        shift = (op.sign * star_value) % dim
        perm = perm_utils.cycle_plus(dim, shift)
        controls = list(op.controls) + [(op.star_wire, Value(star_value))]
        ops.append(Operation(XPerm(perm, label=f"X+{shift}"), op.target, controls))
    return ops


def lowest_idle_wire(num_wires: int, op: BaseOp) -> int:
    """The borrow-wire policy shared by both lowering engines.

    Picks the lowest-index wire of an ``num_wires``-wide register not used
    by ``op`` — the paper borrows idle control wires in exactly this way.
    The table engine (:mod:`repro.ir.lowering`) must agree with this choice
    for the two engines to stay gate-for-gate identical, so any policy
    change belongs here and nowhere else.
    """
    used = set(op.wires())
    for wire in range(num_wires):
        if wire not in used:
            return wire
    raise SynthesisError(
        "no idle wire available to borrow for the even-d two-controlled gadget; "
        "add one borrowed ancilla wire to the circuit (Lemma III.1 requires it)"
    )


def _find_borrow(circuit: QuditCircuit, op: BaseOp) -> int:
    """Pick an idle wire of the circuit to borrow for an even-``d`` gadget."""
    return lowest_idle_wire(circuit.num_wires, op)
