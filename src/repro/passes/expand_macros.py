"""ExpandMacros: rewrite macro operations down to the G-gate set.

The synthesis routines emit circuits whose operations are at most
"two-controlled macros": singly-controlled permutation gates with arbitrary
predicates, two-controlled permutation gates, and the ``|⋆⟩|0⟩-X±⋆`` star
gates.  The paper's cost metric, however, is the number of G-gates
(``G = {Xij} ∪ {|0⟩-X01}``).  This pass rewrites a circuit so that every
operation is literally a G-gate, applying the following rules until a fixed
point is reached:

1. an uncontrolled permutation gate → its transposition decomposition;
2. ``|l⟩-Xij`` → conjugated ``|0⟩-X01`` (Section II's observation);
3. a singly-controlled permutation with an ``Odd``/``EvenNonZero``/set
   predicate → a product over its firing values;
4. a two-controlled permutation → the Lemma III.3 gadget (odd ``d``,
   ancilla-free) or the Lemma III.1 gadget (even ``d``, borrowing the
   lowest-index idle wire of the circuit — the paper borrows idle control
   wires in exactly the same way);
5. a star gate → a product of two-controlled ``X+y`` gates over the star
   wire's values ``y = 1 .. d−1`` (Fig. 6), which rule 4 then expands.

Operations with three or more value controls are rejected: producing those
is the job of the multi-controlled synthesis itself, not of the expansion
pass.
"""

from __future__ import annotations

from typing import List

from repro.exceptions import SynthesisError
from repro.passes.base import Pass
from repro.qudit.circuit import QuditCircuit
from repro.qudit.controls import Value
from repro.qudit.gates import XPerm
from repro.qudit.operations import BaseOp, Operation, StarShiftOp
from repro.core.single_controlled import (
    controlled_permutation_g_ops,
    controlled_transposition_g_ops,
    transposition_ops,
)
from repro.core.two_controlled import two_controlled_transposition_ops
from repro.utils import permutations as perm_utils


class ExpandMacros(Pass):
    """Expand every macro operation into G-gates (fixed-point rewriter)."""

    name = "expand-macros"

    def __init__(self, max_sweeps: int = 12):
        #: Safety bound on the number of rewriting sweeps.
        self.max_sweeps = max_sweeps

    def run(self, circuit: QuditCircuit) -> QuditCircuit:
        current = circuit
        for _ in range(self.max_sweeps):
            if current.is_g_circuit():
                return current.copy()
            next_circuit = QuditCircuit(current.num_wires, current.dim, name=current.name)
            for op in current:
                next_circuit.extend(_expand_op(op, current))
            current = next_circuit
        if not current.is_g_circuit():
            raise SynthesisError("lowering did not converge to G-gates")
        return current


def _expand_op(op: BaseOp, circuit: QuditCircuit) -> List[BaseOp]:
    dim = circuit.dim
    if op.is_g_gate(dim):
        return [op]

    if isinstance(op, StarShiftOp):
        return _expand_star(op, dim)

    if not isinstance(op, Operation):  # pragma: no cover - defensive
        raise SynthesisError(f"cannot lower unknown operation {op!r}")
    if not op.gate.is_permutation:
        raise SynthesisError(
            "cannot lower a non-permutation payload to G-gates; keep |1⟩-U gates "
            "as two-qudit gates instead"
        )

    perm = op.gate.permutation()
    if perm == perm_utils.identity_permutation(dim):
        return []

    if op.num_controls == 0:
        return list(transposition_ops(dim, op.target, perm))

    if op.num_controls == 1:
        control, predicate = op.controls[0]
        if isinstance(predicate, Value) and perm_utils.is_transposition(perm):
            i, j = XPerm(perm).transposition_points()
            return list(
                controlled_transposition_g_ops(dim, control, predicate.value, op.target, i, j)
            )
        return list(
            controlled_permutation_g_ops(dim, control, predicate, op.target, perm)
        )

    if op.num_controls == 2:
        (c1, p1), (c2, p2) = op.controls
        borrow = _find_borrow(circuit, op) if dim % 2 == 0 else None
        ops: List[BaseOp] = []
        for i, j in perm_utils.transpositions_of(perm):
            ops.extend(
                two_controlled_transposition_ops(dim, c1, p1, c2, p2, op.target, i, j, borrow)
            )
        return ops

    raise SynthesisError(
        f"lowering does not expand operations with {op.num_controls} controls; "
        "use the multi-controlled synthesis routines instead"
    )


def _expand_star(op: StarShiftOp, dim: int) -> List[BaseOp]:
    """Expand ``|⋆⟩[controls]-X±⋆`` into per-value controlled shifts (Fig. 6)."""
    if len(op.controls) > 1:
        raise SynthesisError(
            "star gates with more than one ordinary control must be synthesised "
            "with the ladder (multi_controlled_star_ops), not the lowering pass"
        )
    ops: List[BaseOp] = []
    for star_value in range(1, dim):
        shift = (op.sign * star_value) % dim
        perm = perm_utils.cycle_plus(dim, shift)
        controls = list(op.controls) + [(op.star_wire, Value(star_value))]
        ops.append(Operation(XPerm(perm, label=f"X+{shift}"), op.target, controls))
    return ops


def _find_borrow(circuit: QuditCircuit, op: BaseOp) -> int:
    """Pick an idle wire of the circuit to borrow for an even-``d`` gadget."""
    used = set(op.wires())
    for wire in range(circuit.num_wires):
        if wire not in used:
            return wire
    raise SynthesisError(
        "no idle wire available to borrow for the even-d two-controlled gadget; "
        "add one borrowed ancilla wire to the circuit (Lemma III.1 requires it)"
    )
