"""Composable circuit-transform passes.

Lowering used to be one monolithic fixed-point rewriter in
``repro.core.lowering``; it is now a pipeline of small passes that can be
recombined freely:

>>> from repro.passes import PassPipeline, ExpandMacros, CancelAdjacentInverses
>>> pipeline = PassPipeline([ExpandMacros(), CancelAdjacentInverses()])
>>> lowered = pipeline.run(circuit)                       # doctest: +SKIP
>>> [(r.pass_name, r.removed) for r in pipeline.history]  # doctest: +SKIP

:func:`default_lowering_pipeline` is the pipeline behind
:func:`repro.core.lowering.lower_to_g_gates`.
"""

from repro.passes.base import Pass, PassPipeline, PassRecord
from repro.passes.expand_macros import ExpandMacros
from repro.passes.optimize import (
    CancelAdjacentInverses,
    DropIdentities,
    FuseSingleQuditGates,
)


def default_lowering_pipeline(max_sweeps: int = 12) -> PassPipeline:
    """The pipeline ``lower_to_g_gates`` runs.

    Identity removal and single-qudit fusion happen at the macro level
    (fusing *before* expansion keeps the result a G-circuit), then the fixed
    point expansion to G-gates (bounded by ``max_sweeps``), then peephole
    cleanup.  Every optimization pass only removes or merges operations, so
    the final G-gate count is never larger than what plain expansion would
    produce.
    """
    return PassPipeline(
        [
            DropIdentities(),
            FuseSingleQuditGates(),
            ExpandMacros(max_sweeps=max_sweeps),
            CancelAdjacentInverses(),
            DropIdentities(),
        ],
        name="lower-to-g",
    )


__all__ = [
    "Pass",
    "PassPipeline",
    "PassRecord",
    "ExpandMacros",
    "CancelAdjacentInverses",
    "DropIdentities",
    "FuseSingleQuditGates",
    "default_lowering_pipeline",
]
