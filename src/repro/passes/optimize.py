"""Peephole optimization passes.

Three cheap, semantics-preserving rewrites that shrink circuits emitted by
the synthesis routines and the macro expansion:

* :class:`DropIdentities` — remove operations whose payload acts as the
  identity (identity permutations, identity matrices, controls that can
  never fire);
* :class:`CancelAdjacentInverses` — remove ``U, U†`` pairs that are adjacent
  up to operations on disjoint wires (which commute past both);
* :class:`FuseSingleQuditGates` — merge runs of uncontrolled single-qudit
  gates on the same wire into one gate (permutations compose into one
  ``XPerm``, matrices into one ``SingleQuditUnitary``).

All three only ever remove or merge operations, so downstream G-gate counts
can shrink but never grow.

Each pass runs in a single linear sweep: per-wire stacks (cancel) or a
per-wire last-touch index (fuse) make "the nearest prior op sharing a wire"
an O(1) lookup, replacing the old quadratic backward rescans.  Every pass
also has a table-native twin (``run_table``) operating on the columnar
:class:`~repro.ir.table.GateTable` IR via the kernels in
:mod:`repro.ir.rewrite`; both paths are gate-for-gate identical.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.exceptions import GateError
from repro.passes.base import Pass
from repro.qudit.circuit import QuditCircuit
from repro.qudit.gates import Gate, SingleQuditUnitary, XPerm
from repro.qudit.operations import BaseOp, Operation, StarShiftOp
from repro.utils import permutations as perm_utils


def _rebuild(circuit: QuditCircuit, ops: List[BaseOp]) -> QuditCircuit:
    # Every op comes from (or is a same-shape rewrite of an op from) the
    # validated input circuit, so the rebuilt circuit skips re-validation
    # instead of re-checking — and re-copying — the whole list.
    return QuditCircuit._from_validated_ops(
        circuit.num_wires, circuit.dim, ops, name=circuit.name
    )


def _gates_are_inverse(first: Gate, second: Gate) -> bool:
    """True if applying ``first`` then ``second`` is the identity."""
    if first.dim != second.dim:
        return False
    if first.is_permutation and second.is_permutation:
        composed = perm_utils.compose(second.permutation(), first.permutation())
        return composed == perm_utils.identity_permutation(first.dim)
    if not first.is_permutation and not second.is_permutation:
        product = second.matrix() @ first.matrix()
        return bool(np.allclose(product, np.eye(first.dim), atol=1e-9))
    return False


def _ops_cancel(first: BaseOp, second: BaseOp) -> bool:
    """True if ``second`` undoes ``first`` exactly (same wires and controls)."""
    if isinstance(first, Operation) and isinstance(second, Operation):
        return (
            first.target == second.target
            and first.controls == second.controls
            and _gates_are_inverse(first.gate, second.gate)
        )
    if isinstance(first, StarShiftOp) and isinstance(second, StarShiftOp):
        return (
            first.star_wire == second.star_wire
            and first.target == second.target
            and first.controls == second.controls
            and first.sign == -second.sign
        )
    return False


class DropIdentities(Pass):
    """Remove operations that act as the identity on every basis state."""

    name = "drop-identities"

    def run(self, circuit: QuditCircuit) -> QuditCircuit:
        kept = [op for op in circuit if not self._is_identity(op, circuit.dim)]
        return _rebuild(circuit, kept)

    def run_table(self, table):
        from repro.ir.rewrite import drop_identities

        return drop_identities(table)

    @staticmethod
    def _is_identity(op: BaseOp, dim: int) -> bool:
        if not isinstance(op, Operation):
            return False
        try:
            if any(not predicate.values(dim) for _, predicate in op.controls):
                return True  # no basis state can ever fire the controls
        except GateError:
            return False  # out-of-range predicate: leave for the simulator to reject
        gate = op.gate
        if gate.is_permutation:
            return gate.permutation() == perm_utils.identity_permutation(gate.dim)
        return bool(np.allclose(gate.matrix(), np.eye(gate.dim), atol=1e-12))


class CancelAdjacentInverses(Pass):
    """Remove ``U, U†`` pairs separated only by wire-disjoint operations.

    One forward sweep with per-wire stacks of surviving op indices.  The
    nearest prior op sharing a wire with ``op`` is the largest stack top over
    ``op``'s wires (anything later would itself top one of those stacks), and
    when it cancels it has the same wire set, so it is popped from exactly
    its stack tops — O(ops + wire incidences) overall, where the previous
    backward-rescan implementation was quadratic.
    """

    name = "cancel-adjacent-inverses"

    def run(self, circuit: QuditCircuit) -> QuditCircuit:
        kept: List[Optional[BaseOp]] = []
        stacks: List[List[int]] = [[] for _ in range(circuit.num_wires)]
        for op in circuit:
            wires = op.wires()
            prior = -1
            for w in wires:
                stack = stacks[w]
                if stack and stack[-1] > prior:
                    prior = stack[-1]
            if prior >= 0 and _ops_cancel(kept[prior], op):
                for w in wires:
                    stacks[w].pop()
                kept[prior] = None
                continue
            index = len(kept)
            kept.append(op)
            for w in wires:
                stacks[w].append(index)
        return _rebuild(circuit, [op for op in kept if op is not None])

    def run_table(self, table):
        from repro.ir.rewrite import cancel_adjacent_inverses

        return cancel_adjacent_inverses(table)


class FuseSingleQuditGates(Pass):
    """Fuse runs of uncontrolled single-qudit gates on one wire into one gate.

    Two permutations compose into a single :class:`XPerm`; anything involving
    a dense payload composes into a single :class:`SingleQuditUnitary`.
    Intervening operations that do not touch the wire commute past the run
    and do not block fusion.  A per-wire last-touch index finds the nearest
    prior op on the target wire in O(1), making the pass one linear sweep.
    """

    name = "fuse-single-qudit-gates"

    def run(self, circuit: QuditCircuit) -> QuditCircuit:
        kept: List[BaseOp] = []
        last = [-1] * circuit.num_wires
        for op in circuit:
            if self._fusable(op):
                prior = last[op.target]
                if prior >= 0 and self._fusable(kept[prior]):
                    # The prior fusable op touches only this target wire, so
                    # replacing it in place keeps the last-touch index valid.
                    kept[prior] = Operation(_fuse_gates(kept[prior].gate, op.gate), op.target)
                    continue
            index = len(kept)
            kept.append(op)
            for w in op.wires():
                last[w] = index
        return _rebuild(circuit, kept)

    def run_table(self, table):
        from repro.ir.rewrite import fuse_single_qudit

        return fuse_single_qudit(table)

    @staticmethod
    def _fusable(op: BaseOp) -> bool:
        return isinstance(op, Operation) and not op.controls


def _fuse_gates(first: Gate, second: Gate) -> Gate:
    """The single gate equal to applying ``first`` then ``second``."""
    if first.is_permutation and second.is_permutation:
        merged = perm_utils.compose(second.permutation(), first.permutation())
        return XPerm(merged, label=f"{first.label}·{second.label}")
    product = second.matrix() @ first.matrix()
    return SingleQuditUnitary(product, label=f"{first.label}·{second.label}", check=False)
