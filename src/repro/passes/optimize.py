"""Peephole optimization passes.

Three cheap, semantics-preserving rewrites that shrink circuits emitted by
the synthesis routines and the macro expansion:

* :class:`DropIdentities` — remove operations whose payload acts as the
  identity (identity permutations, identity matrices, controls that can
  never fire);
* :class:`CancelAdjacentInverses` — remove ``U, U†`` pairs that are adjacent
  up to operations on disjoint wires (which commute past both);
* :class:`FuseSingleQuditGates` — merge runs of uncontrolled single-qudit
  gates on the same wire into one gate (permutations compose into one
  ``XPerm``, matrices into one ``SingleQuditUnitary``).

All three only ever remove or merge operations, so downstream G-gate counts
can shrink but never grow.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.exceptions import GateError
from repro.passes.base import Pass
from repro.qudit.circuit import QuditCircuit
from repro.qudit.gates import Gate, SingleQuditUnitary, XPerm
from repro.qudit.operations import BaseOp, Operation, StarShiftOp
from repro.utils import permutations as perm_utils


def _rebuild(circuit: QuditCircuit, ops: List[BaseOp]) -> QuditCircuit:
    out = QuditCircuit(circuit.num_wires, circuit.dim, name=circuit.name)
    out.extend(ops)
    return out


def _gates_are_inverse(first: Gate, second: Gate) -> bool:
    """True if applying ``first`` then ``second`` is the identity."""
    if first.dim != second.dim:
        return False
    if first.is_permutation and second.is_permutation:
        composed = perm_utils.compose(second.permutation(), first.permutation())
        return composed == perm_utils.identity_permutation(first.dim)
    if not first.is_permutation and not second.is_permutation:
        product = second.matrix() @ first.matrix()
        return bool(np.allclose(product, np.eye(first.dim), atol=1e-9))
    return False


def _ops_cancel(first: BaseOp, second: BaseOp) -> bool:
    """True if ``second`` undoes ``first`` exactly (same wires and controls)."""
    if isinstance(first, Operation) and isinstance(second, Operation):
        return (
            first.target == second.target
            and first.controls == second.controls
            and _gates_are_inverse(first.gate, second.gate)
        )
    if isinstance(first, StarShiftOp) and isinstance(second, StarShiftOp):
        return (
            first.star_wire == second.star_wire
            and first.target == second.target
            and first.controls == second.controls
            and first.sign == -second.sign
        )
    return False


class DropIdentities(Pass):
    """Remove operations that act as the identity on every basis state."""

    name = "drop-identities"

    def run(self, circuit: QuditCircuit) -> QuditCircuit:
        kept = [op for op in circuit if not self._is_identity(op, circuit.dim)]
        return _rebuild(circuit, kept)

    @staticmethod
    def _is_identity(op: BaseOp, dim: int) -> bool:
        if not isinstance(op, Operation):
            return False
        try:
            if any(not predicate.values(dim) for _, predicate in op.controls):
                return True  # no basis state can ever fire the controls
        except GateError:
            return False  # out-of-range predicate: leave for the simulator to reject
        gate = op.gate
        if gate.is_permutation:
            return gate.permutation() == perm_utils.identity_permutation(gate.dim)
        return bool(np.allclose(gate.matrix(), np.eye(gate.dim), atol=1e-12))


class CancelAdjacentInverses(Pass):
    """Remove ``U, U†`` pairs separated only by wire-disjoint operations."""

    name = "cancel-adjacent-inverses"

    def run(self, circuit: QuditCircuit) -> QuditCircuit:
        kept: List[BaseOp] = []
        for op in circuit:
            if not self._cancelled(kept, op):
                kept.append(op)
        return _rebuild(circuit, kept)

    @staticmethod
    def _cancelled(kept: List[BaseOp], op: BaseOp) -> bool:
        wires = set(op.wires())
        for index in range(len(kept) - 1, -1, -1):
            prior = kept[index]
            if wires.isdisjoint(prior.wires()):
                continue  # commutes past op: keep scanning backwards
            if _ops_cancel(prior, op):
                del kept[index]
                return True
            return False
        return False


class FuseSingleQuditGates(Pass):
    """Fuse runs of uncontrolled single-qudit gates on one wire into one gate.

    Two permutations compose into a single :class:`XPerm`; anything involving
    a dense payload composes into a single :class:`SingleQuditUnitary`.
    Intervening operations that do not touch the wire commute past the run
    and do not block fusion.
    """

    name = "fuse-single-qudit-gates"

    def run(self, circuit: QuditCircuit) -> QuditCircuit:
        kept: List[BaseOp] = []
        for op in circuit:
            if not (self._fusable(op) and self._fused(kept, op)):
                kept.append(op)
        return _rebuild(circuit, kept)

    @staticmethod
    def _fusable(op: BaseOp) -> bool:
        return isinstance(op, Operation) and not op.controls

    @classmethod
    def _fused(cls, kept: List[BaseOp], op: Operation) -> bool:
        for index in range(len(kept) - 1, -1, -1):
            prior = kept[index]
            if op.target not in prior.wires():
                continue  # disjoint wires: commutes past op
            if cls._fusable(prior):
                kept[index] = Operation(_fuse_gates(prior.gate, op.gate), op.target)
                return True
            return False
        return False


def _fuse_gates(first: Gate, second: Gate) -> Gate:
    """The single gate equal to applying ``first`` then ``second``."""
    if first.is_permutation and second.is_permutation:
        merged = perm_utils.compose(second.permutation(), first.permutation())
        return XPerm(merged, label=f"{first.label}·{second.label}")
    product = second.matrix() @ first.matrix()
    return SingleQuditUnitary(product, label=f"{first.label}·{second.label}", check=False)
