"""The circuit-transform pass protocol and pipeline.

A *pass* is a semantics-preserving circuit rewrite: it consumes a
:class:`~repro.qudit.circuit.QuditCircuit` and returns a new, equivalent one
(inputs are never mutated).  A :class:`PassPipeline` chains passes in order
and records how each one changed the operation count, which is how the
lowering facade (:func:`repro.core.lowering.lower_to_g_gates`) and the
benchmarks report where gates were saved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence

from repro.qudit.circuit import QuditCircuit


class Pass:
    """Base class for circuit transforms.

    Subclasses override :meth:`run` to return a new equivalent circuit; they
    must never mutate the input.
    """

    #: Human-readable name used in pipeline records.
    name: str = "pass"

    def run(self, circuit: QuditCircuit) -> QuditCircuit:
        raise NotImplementedError

    def run_table(self, table):
        """Run the pass on a columnar :class:`~repro.ir.table.GateTable`.

        Passes with a table-native rewrite override this; the default
        bridges through the object form (materialise, rewrite, re-encode),
        so a mixed pipeline still works end to end.
        """
        return self.run(table.to_circuit()).to_table()

    def spec(self) -> dict:
        """Canonical JSON-able description of this pass and its parameters.

        The compile cache (:mod:`repro.exec`) hashes pipeline specs into
        cache keys, so the spec must be stable across processes and must
        change whenever a parameter that affects the output changes.
        Parameterised passes override this to include their knobs.
        """
        return {"pass": self.name}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


@dataclass(frozen=True)
class PassRecord:
    """How one pass changed the circuit during a pipeline run."""

    pass_name: str
    ops_before: int
    ops_after: int

    @property
    def removed(self) -> int:
        return self.ops_before - self.ops_after


class PassPipeline:
    """An ordered sequence of passes applied as one transform.

    After :meth:`run`, :attr:`history` holds one :class:`PassRecord` per pass
    of the most recent invocation.
    """

    def __init__(self, passes: Sequence[Pass], name: str = "pipeline"):
        self.passes: List[Pass] = list(passes)
        self.name = name
        self.history: List[PassRecord] = []

    def run(self, circuit: QuditCircuit) -> QuditCircuit:
        """Apply every pass in order and return the final circuit."""
        self.history = []
        current = circuit
        for step in self.passes:
            before = current.num_ops()
            current = step.run(current)
            self.history.append(PassRecord(step.name, before, current.num_ops()))
        return current

    def run_table(self, table):
        """Apply every pass in order on the columnar IR, staying columnar.

        Table-native passes rewrite the columns directly; passes without a
        table kernel bridge through the object form for their step only.
        """
        self.history = []
        current = table
        for step in self.passes:
            before = current.num_ops()
            current = step.run_table(current)
            self.history.append(PassRecord(step.name, before, current.num_ops()))
        return current

    def spec(self) -> dict:
        """Canonical JSON-able description of the whole pipeline.

        The concatenation of every pass spec in order; hashed by the compile
        cache to distinguish pipelines that would produce different output.
        """
        return {"pipeline": self.name, "passes": [step.spec() for step in self.passes]}

    def __iter__(self) -> Iterator[Pass]:
        return iter(self.passes)

    def __len__(self) -> int:
        return len(self.passes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = ", ".join(step.name for step in self.passes)
        return f"PassPipeline({self.name!r}: [{names}])"
