"""Benchmark-harness helpers: table builders and plain-text rendering."""

from repro.bench.formatting import (
    ancilla_columns,
    ancilla_kind_label,
    counts_row,
    json_safe,
    render_series,
    render_table,
    sci_notation,
)
from repro.bench.tables import (
    ancilla_count_rows,
    baseline_comparison_rows,
    cliffordt_estimate_rows,
    cliffordt_rows,
    estimator_scaling_rows,
    linearity_summary,
    mcu_rows,
    reversible_rows,
    toffoli_scaling_rows,
    unitary_synthesis_rows,
)

__all__ = [
    "ancilla_columns",
    "ancilla_kind_label",
    "counts_row",
    "json_safe",
    "render_series",
    "render_table",
    "sci_notation",
    "ancilla_count_rows",
    "baseline_comparison_rows",
    "cliffordt_estimate_rows",
    "cliffordt_rows",
    "estimator_scaling_rows",
    "linearity_summary",
    "mcu_rows",
    "reversible_rows",
    "toffoli_scaling_rows",
    "unitary_synthesis_rows",
]
