"""Benchmark-harness helpers: table builders and plain-text rendering."""

from repro.bench.formatting import render_series, render_table
from repro.bench.tables import (
    ancilla_count_rows,
    baseline_comparison_rows,
    cliffordt_rows,
    linearity_summary,
    mcu_rows,
    reversible_rows,
    toffoli_scaling_rows,
    unitary_synthesis_rows,
)

__all__ = [
    "render_series",
    "render_table",
    "ancilla_count_rows",
    "baseline_comparison_rows",
    "cliffordt_rows",
    "linearity_summary",
    "mcu_rows",
    "reversible_rows",
    "toffoli_scaling_rows",
    "unitary_synthesis_rows",
]
