"""Plain-text table rendering for the benchmark harness.

The benchmarks print the reproduction tables/series directly to stdout (the
paper itself has no numeric tables — its claims are asymptotic — so the
harness materialises them as measured tables; see EXPERIMENTS.md).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Sequence


def render_table(rows: Sequence[Dict[str, object]], title: str = "") -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    if not rows:
        return f"{title}\n(no data)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    widths = {col: len(str(col)) for col in columns}
    for row in rows:
        for col in columns:
            widths[col] = max(widths[col], len(_fmt(row.get(col, ""))))
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(col).ljust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[col] for col in columns))
    for row in rows:
        lines.append(" | ".join(_fmt(row.get(col, "")).ljust(widths[col]) for col in columns))
    return "\n".join(lines)


def render_series(series: Dict[str, Iterable[float]], x_label: str, title: str = "") -> str:
    """Render named series (e.g. gate count vs k) as a compact table."""
    keys = list(series.keys())
    if not keys:
        return f"{title}\n(no data)"
    length = len(list(series[keys[0]]))
    rows = []
    for index in range(length):
        row: Dict[str, object] = {x_label: index}
        for key in keys:
            values = list(series[key])
            row[key] = values[index] if index < len(values) else ""
        rows.append(row)
    return render_table(rows, title=title)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e6 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    if (
        isinstance(value, int)
        and not isinstance(value, bool)
        and abs(value) >= BIG_INT_THRESHOLD
    ):
        return sci_notation(value)
    return str(value)


#: Integers at or above this magnitude render/serialise in scientific
#: notation (their exact decimal expansion stops being useful to a reader).
BIG_INT_THRESHOLD = 10**15


def json_safe(value):
    """JSON-encodable view of a value tree.

    Huge integers (e.g. the Θ(2^k) baseline's counts, whose decimal form
    can run to hundreds of thousands of digits) become sci-notation strings.
    """
    if isinstance(value, bool):
        return value
    if isinstance(value, int) and abs(value) >= BIG_INT_THRESHOLD:
        return sci_notation(value)
    if isinstance(value, dict):
        return {key: json_safe(inner) for key, inner in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(inner) for inner in value]
    return value


def sci_notation(value: int) -> str:
    """Scientific notation for arbitrarily large integers.

    Exponential baselines produce counts like ``3·2^999999`` whose decimal
    expansion has hundreds of thousands of digits (and ``float`` overflows),
    so the mantissa/exponent are computed from the bit length instead.
    """
    if value == 0:
        return "0"
    magnitude = abs(value)
    bits = magnitude.bit_length()
    if bits <= 53:
        return f"{float(value):.3e}"
    shift = bits - 53
    log10 = math.log10(magnitude >> shift) + shift * math.log10(2)
    exponent = int(log10)
    mantissa = round(10.0 ** (log10 - exponent), 3)
    if mantissa >= 10.0:  # rounding crossed a power of ten
        mantissa /= 10.0
        exponent += 1
    sign = "-" if value < 0 else ""
    return f"{sign}{mantissa:.3f}e+{exponent}"


# ----------------------------------------------------------------------
# Shared row-building helpers (GateCountReport.as_row, Resources.as_row and
# the table builders in repro.bench.tables all route through these).
# ----------------------------------------------------------------------
def ancilla_columns(ancillas: Mapping[str, int]) -> Dict[str, int]:
    """Flatten an ancilla histogram into sorted ``ancilla_<kind>`` columns."""
    return {f"ancilla_{kind}": count for kind, count in sorted(ancillas.items()) if count}


def ancilla_kind_label(ancillas: Mapping[str, int]) -> str:
    """One-word ancilla summary for comparison tables: kind or ``none``."""
    kinds = sorted(kind for kind, count in ancillas.items() if count)
    if not kinds:
        return "none"
    if len(kinds) == 1:
        return kinds[0]
    return "+".join(kinds)


def counts_row(base: Dict[str, object], ancillas: Mapping[str, int]) -> Dict[str, object]:
    """A table row: ``base`` columns followed by the ancilla histogram."""
    row = dict(base)
    row.update(ancilla_columns(ancillas))
    return row
