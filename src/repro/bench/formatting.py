"""Plain-text table rendering for the benchmark harness.

The benchmarks print the reproduction tables/series directly to stdout (the
paper itself has no numeric tables — its claims are asymptotic — so the
harness materialises them as measured tables; see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


def render_table(rows: Sequence[Dict[str, object]], title: str = "") -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    if not rows:
        return f"{title}\n(no data)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    widths = {col: len(str(col)) for col in columns}
    for row in rows:
        for col in columns:
            widths[col] = max(widths[col], len(_fmt(row.get(col, ""))))
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(col).ljust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[col] for col in columns))
    for row in rows:
        lines.append(" | ".join(_fmt(row.get(col, "")).ljust(widths[col]) for col in columns))
    return "\n".join(lines)


def render_series(series: Dict[str, Iterable[float]], x_label: str, title: str = "") -> str:
    """Render named series (e.g. gate count vs k) as a compact table."""
    keys = list(series.keys())
    if not keys:
        return f"{title}\n(no data)"
    length = len(list(series[keys[0]]))
    rows = []
    for index in range(length):
        row: Dict[str, object] = {x_label: index}
        for key in keys:
            values = list(series[key])
            row[key] = values[index] if index < len(values) else ""
        rows.append(row)
    return render_table(rows, title=title)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e6 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)
