"""Table builders for the reproduction experiments (E1-E12 in DESIGN.md).

Each function measures the relevant quantity from the *actual synthesised
circuits* and returns rows that the benchmark scripts render with
:mod:`repro.bench.formatting`.  The paper states only asymptotic bounds, so
the reproduced "tables" are the measured counterparts of those bounds plus
the comparisons drawn in the introduction.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.baselines.clean_ancilla_ladder import clean_ancilla_count, synthesize_mct_clean_ladder
from repro.baselines.cost_models import (
    di_wei_model,
    moraga_exponential_model,
    standard_clean_ancilla_model,
    yeh_vdw_model,
)
from repro.bench.formatting import ancilla_kind_label
from repro.core.gate_counts import count_gates
from repro.core.toffoli import synthesize_mct
from repro.core.multi_controlled_unitary import random_unitary_gate, synthesize_mcu
from repro.applications.lower_bound import reversible_lower_bound
from repro.applications.reversible import random_reversible_function, synthesize_reversible_function
from repro.applications.unitary_synthesis import (
    bullock_ancilla_count,
    random_unitary,
    synthesize_unitary,
)
from repro.resources.cliffordt import clifford_t_cost, yeh_vdw_toffoli_model


def toffoli_scaling_rows(
    dims: Sequence[int], ks: Sequence[int], *, lower: bool = True
) -> List[Dict[str, object]]:
    """E1/E2/E3: measured size of the paper's k-Toffoli vs k and d."""
    rows: List[Dict[str, object]] = []
    for dim in dims:
        for k in ks:
            result = synthesize_mct(dim, k)
            report = count_gates(result, lower=lower)
            row = report.as_row()
            row.update({"k": k, "parity": "odd" if dim % 2 else "even"})
            rows.append(row)
    return rows


def linearity_summary(rows: Iterable[Dict[str, object]], metric: str = "g_gates") -> List[Dict[str, object]]:
    """E3: per-dimension incremental cost Δmetric/Δk — flat increments mean
    the size is linear in k, which is the paper's headline claim."""
    by_dim: Dict[int, List[Dict[str, object]]] = {}
    for row in rows:
        by_dim.setdefault(int(row["d"]), []).append(row)
    summary = []
    for dim, dim_rows in sorted(by_dim.items()):
        dim_rows = sorted(dim_rows, key=lambda r: int(r["k"]))
        increments = [
            (int(b[metric]) - int(a[metric])) / max(int(b["k"]) - int(a["k"]), 1)
            for a, b in zip(dim_rows, dim_rows[1:])
        ]
        if not increments:
            continue
        summary.append(
            {
                "d": dim,
                "metric": metric,
                "min Δ/Δk": round(min(increments), 1),
                "max Δ/Δk": round(max(increments), 1),
                "mean Δ/Δk": round(sum(increments) / len(increments), 1),
                "growth": "linear" if max(increments) <= 2.5 * max(min(increments), 1) else "super-linear",
            }
        )
    return summary


def baseline_comparison_rows(dim: int, ks: Sequence[int]) -> List[Dict[str, object]]:
    """E5: ours vs the baselines, measured where implemented and modelled
    otherwise (Di & Wei, Yeh & vdW)."""
    rows: List[Dict[str, object]] = []
    for k in ks:
        ours = synthesize_mct(dim, k)
        ours_report = count_gates(ours, lower=True)
        rows.append(
            {
                "d": dim,
                "k": k,
                "method": "this paper (measured)",
                "two_qudit_gates": ours_report.g_gates,
                "ancillas": ours.ancilla_count(),
                "ancilla_kind": ancilla_kind_label(ours_report.ancillas),
            }
        )
        ladder = synthesize_mct_clean_ladder(dim, k)
        ladder_report = count_gates(ladder, lower=False)
        rows.append(
            {
                "d": dim,
                "k": k,
                "method": "clean-ancilla ladder [5,23] (measured)",
                "two_qudit_gates": ladder_report.macro_ops,
                "ancillas": clean_ancilla_count(dim, k),
                "ancilla_kind": ancilla_kind_label(ladder_report.ancillas),
            }
        )
        for model in (standard_clean_ancilla_model, di_wei_model, yeh_vdw_model, moraga_exponential_model):
            estimate = model(dim, k)
            row = {"d": dim, "k": k}
            row.update(estimate.as_row())
            rows.append(row)
    return rows


def ancilla_count_rows(dims: Sequence[int], ks: Sequence[int]) -> List[Dict[str, object]]:
    """E11: ancilla usage of ours vs the ⌈(k−2)/(d−2)⌉ clean-ancilla baseline."""
    rows = []
    for dim in dims:
        for k in ks:
            ours = synthesize_mct(dim, k)
            rows.append(
                {
                    "d": dim,
                    "k": k,
                    "ours_ancillas": ours.ancilla_count(),
                    "ours_kind": "borrowed" if ours.ancilla_count() else "none",
                    "baseline_clean_ancillas": clean_ancilla_count(dim, k),
                    "bullock_unitary_ancillas(n=k)": bullock_ancilla_count(dim, k),
                }
            )
    return rows


def mcu_rows(dims: Sequence[int], ks: Sequence[int]) -> List[Dict[str, object]]:
    """E6: the |0^k⟩-U synthesis — two-qudit gates and the single clean ancilla."""
    rows = []
    for dim in dims:
        for k in ks:
            result = synthesize_mcu(dim, k, random_unitary_gate(dim, seed=k))
            # Unitary payloads cannot be lowered to G-gates; count at the
            # two-qudit level after lowering the classical Toffoli part.
            report = count_gates(result, lower=False)
            rows.append(
                {
                    "d": dim,
                    "k": k,
                    "macro_ops": report.macro_ops,
                    "clean_ancillas": result.ancilla_count(),
                    "wires": result.circuit.num_wires,
                }
            )
    return rows


def unitary_synthesis_rows(cases: Sequence[tuple]) -> List[Dict[str, object]]:
    """E7: unitary synthesis — measured two-qudit gates vs d^{2n}, ancillas."""
    rows = []
    for dim, n, seed in cases:
        unitary = random_unitary(dim**n, seed=seed)
        result = synthesize_unitary(unitary, dim, n)
        report = count_gates(result, lower=False)
        rows.append(
            {
                "d": dim,
                "n": n,
                "macro_ops": report.macro_ops,
                "d^{2n}": dim ** (2 * n),
                "clean_ancillas_ours": result.ancilla_count(),
                "clean_ancillas_bullock": bullock_ancilla_count(dim, n),
            }
        )
    return rows


def reversible_rows(dims: Sequence[int], ns: Sequence[int], *, lower: bool = False) -> List[Dict[str, object]]:
    """E8/E9: reversible-function implementation size vs the n·d^n bound and
    the Lemma IV.3 lower bound."""
    rows = []
    for dim in dims:
        for n in ns:
            table = random_reversible_function(dim, n, seed=dim * 100 + n)
            result = synthesize_reversible_function(dim, n, table)
            report = count_gates(result, lower=lower)
            bound = reversible_lower_bound(dim, n)
            rows.append(
                {
                    "d": dim,
                    "n": n,
                    "measured_ops": report.g_gates if lower else report.macro_ops,
                    "count_level": "G-gates" if lower else "macro ops",
                    "n*d^n": n * dim**n,
                    "lower_bound": bound.min_gates,
                    "ancillas": result.ancilla_count(),
                }
            )
    return rows


def estimator_scaling_rows(
    dim: int, ks: Sequence[int], strategies: Sequence[str] = ("mct",)
) -> List[Dict[str, object]]:
    """Exact analytic resource counts at arbitrary k — no circuits built.

    Rows come from the registry's calibrated estimators
    (:mod:`repro.resources.estimator`), so ``ks`` can range to ``10^6`` and
    beyond; this is how the scaling tables escape the materialisation cap.
    """
    from repro.synth import registry  # lazy: bench is imported by scripts only

    rows: List[Dict[str, object]] = []
    for name in strategies:
        strategy = registry.get(name)
        for k in ks:
            if not strategy.supports(dim, k):
                continue
            rows.append(strategy.estimate(dim, k).as_row())
    return rows


def cliffordt_estimate_rows(ks: Sequence[int]) -> List[Dict[str, object]]:
    """E10 at estimator scale: qutrit Clifford+T cost vs the [24] model,
    computed analytically (meaningful up to k = 10^6 and beyond)."""
    from repro.resources.cliffordt import clifford_t_estimate

    rows = []
    for k in ks:
        cost = clifford_t_estimate(k)
        model = yeh_vdw_toffoli_model(k)
        rows.append(
            {
                "k": k,
                "ours_T": cost.t_count,
                "ours_total": cost.total(),
                "yeh_vdw_model_total": round(model, 0),
                "ratio_model/ours": round(model / max(cost.total(), 1), 2),
            }
        )
    return rows


def cliffordt_rows(ks: Sequence[int]) -> List[Dict[str, object]]:
    """E10: qutrit Clifford+T cost of the k-Toffoli, ours vs the [24] model."""
    rows = []
    for k in ks:
        result = synthesize_mct(3, k)
        cost = clifford_t_cost(result.circuit)
        model = yeh_vdw_toffoli_model(k)
        rows.append(
            {
                "k": k,
                "ours_T": cost.t_count,
                "ours_total": cost.total(),
                "yeh_vdw_model_total": round(model, 0),
                "ratio_model/ours": round(model / max(cost.total(), 1), 2),
            }
        )
    return rows
