"""Resource estimation (fault-tolerant Clifford+T costs for qutrits)."""

from repro.resources.cliffordt import (
    DEFAULT_PARAMS,
    CliffordTCost,
    CliffordTParams,
    clifford_t_cost,
    yeh_vdw_reversible_model,
    yeh_vdw_toffoli_model,
)

__all__ = [
    "DEFAULT_PARAMS",
    "CliffordTCost",
    "CliffordTParams",
    "clifford_t_cost",
    "yeh_vdw_reversible_model",
    "yeh_vdw_toffoli_model",
]
