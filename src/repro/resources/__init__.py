"""Resource estimation: analytic gate counts and fault-tolerant costs.

* :mod:`repro.resources.estimator` — exact "count without building"
  estimates for registered synthesis strategies (calibrated affine
  recurrences, validated gate-for-gate against lowered circuits);
* :mod:`repro.resources.cliffordt` — the qutrit Clifford+T cost model of
  Section IV.B, with both measured (:func:`clifford_t_cost`) and analytic
  (:func:`clifford_t_estimate`) entry points.
"""

from repro.resources.cliffordt import (
    DEFAULT_PARAMS,
    CliffordTCost,
    CliffordTParams,
    clifford_t_cost,
    clifford_t_estimate,
    yeh_vdw_reversible_model,
    yeh_vdw_toffoli_model,
)
from repro.resources.estimator import (
    INT64_MAX,
    METRIC_FIELDS,
    AffineSpec,
    BatchEstimate,
    Resources,
    affine_estimate_batch,
    batch_from_scalar,
    cache_stats,
    clear_caches,
    estimate,
    measure,
    sum_estimates,
)

__all__ = [
    "DEFAULT_PARAMS",
    "CliffordTCost",
    "CliffordTParams",
    "clifford_t_cost",
    "clifford_t_estimate",
    "yeh_vdw_reversible_model",
    "yeh_vdw_toffoli_model",
    "INT64_MAX",
    "METRIC_FIELDS",
    "AffineSpec",
    "BatchEstimate",
    "Resources",
    "affine_estimate_batch",
    "batch_from_scalar",
    "cache_stats",
    "clear_caches",
    "estimate",
    "measure",
    "sum_estimates",
]
