"""Fault-tolerant (Clifford+T) cost model for qutrit circuits (d = 3).

Section IV.B notes that for ``d = 3`` every G-gate can be synthesised exactly
from a constant number of qutrit Clifford+T gates [24], so the paper's
``O(k)`` G-gate k-Toffoli immediately gives an ``O(k)`` Clifford+T k-Toffoli
— improving the ``O(k^3.585)`` count of Yeh & van de Wetering — and its
``O(n·3^n)`` reversible-function implementation improves their
``O(3^n · n^3.585)`` one, answering the open question in [24].

The per-G-gate constants below are *model parameters* (DESIGN.md §3): they
set the absolute scale of the fault-tolerant cost but cancel out of every
ratio the reproduction reports.  They default to the representative values
used throughout the examples and benchmarks and can be overridden.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import DimensionError
from repro.qudit.circuit import QuditCircuit
from repro.core.lowering import lower_to_g_gates


@dataclass(frozen=True)
class CliffordTParams:
    """Per-G-gate Clifford+T costs for qutrits.

    ``t_per_controlled_x01`` is the T-count of the qutrit ``|0⟩-X01`` gate
    and ``clifford_per_controlled_x01`` its Clifford count; single-qutrit
    ``Xij`` gates are Clifford (T-count 0).
    """

    t_per_controlled_x01: int = 39
    clifford_per_controlled_x01: int = 60
    clifford_per_xij: int = 1


DEFAULT_PARAMS = CliffordTParams()


@dataclass
class CliffordTCost:
    """Clifford+T resource estimate of one circuit."""

    g_gates: int
    controlled_gates: int
    single_qutrit_gates: int
    t_count: int
    clifford_count: int

    def total(self) -> int:
        return self.t_count + self.clifford_count

    def as_row(self) -> dict:
        return {
            "g_gates": self.g_gates,
            "T": self.t_count,
            "Clifford": self.clifford_count,
            "total": self.total(),
        }


def clifford_t_cost(circuit: QuditCircuit, params: CliffordTParams = DEFAULT_PARAMS) -> CliffordTCost:
    """Estimate the Clifford+T cost of a qutrit circuit.

    The circuit is lowered to G-gates first; each ``|0⟩-X01`` contributes the
    controlled-gate constants and each bare ``Xij`` the Clifford constant.
    """
    if circuit.dim != 3:
        raise DimensionError("the Clifford+T model applies to qutrits (d = 3)")
    lowered = lower_to_g_gates(circuit)
    controlled = lowered.count(lambda op: getattr(op, "num_controls", 0) == 1)
    single = lowered.num_ops() - controlled
    return CliffordTCost(
        g_gates=lowered.num_ops(),
        controlled_gates=controlled,
        single_qutrit_gates=single,
        t_count=controlled * params.t_per_controlled_x01,
        clifford_count=controlled * params.clifford_per_controlled_x01
        + single * params.clifford_per_xij,
    )


def clifford_t_estimate(
    k: int,
    params: CliffordTParams = DEFAULT_PARAMS,
    *,
    strategy: str = "mct",
) -> CliffordTCost:
    """Clifford+T cost of the qutrit k-Toffoli **without building a circuit**.

    Uses the analytic estimator of the registered ``strategy`` (default: the
    paper's k-Toffoli), whose lowered controlled-gate / single-qutrit split
    is exact, so this agrees with :func:`clifford_t_cost` wherever both are
    computable — but also answers ``k = 10^6`` in microseconds.
    """
    from repro.exceptions import EstimationError
    from repro.resources.estimator import estimate  # lazy: registry import

    resources = estimate(strategy, 3, k)
    if resources.g_gates == 0 and resources.macro_ops > 0:
        # Mirror clifford_t_cost, which refuses circuits that cannot be
        # lowered to G-gates (e.g. dense-payload baselines) instead of
        # reporting a spurious zero fault-tolerant cost.
        raise EstimationError(
            f"strategy {strategy!r} does not lower to G-gates at k={k}; "
            "the Clifford+T model only applies to G-circuits"
        )
    controlled = resources.controlled_x01
    single = resources.g_gates - controlled
    return CliffordTCost(
        g_gates=resources.g_gates,
        controlled_gates=controlled,
        single_qutrit_gates=single,
        t_count=controlled * params.t_per_controlled_x01,
        clifford_count=controlled * params.clifford_per_controlled_x01
        + single * params.clifford_per_xij,
    )


def yeh_vdw_toffoli_model(k: int, params: CliffordTParams = DEFAULT_PARAMS) -> float:
    """Clifford+T count model for the k-controlled qutrit Toffoli of [24]:
    ``O(k^3.585)`` gates (exponent log2(12))."""
    return (params.t_per_controlled_x01 + params.clifford_per_controlled_x01) * float(k) ** 3.585


def yeh_vdw_reversible_model(n: int, params: CliffordTParams = DEFAULT_PARAMS) -> float:
    """Clifford+T count model for n-variable ternary reversible functions in
    [24]: ``O(3^n · n^3.585)`` gates."""
    return (params.t_per_controlled_x01 + params.clifford_per_controlled_x01) * (
        3.0**n
    ) * float(max(n, 1)) ** 3.585
