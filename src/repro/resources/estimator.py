"""Analytic resource estimation: exact gate counts without building circuits.

The paper's constructions are *linear recurrences*: every added control
contributes one constant-size block (a ladder layer in Figs. 3/7/8, a
detector/parity-flip pair in Fig. 10, a counting step in the clean-ancilla
baseline).  Consequently, for a fixed dimension ``d``, every cost metric of
the synthesised-and-lowered circuit — G-gates, two-qudit gates, depth, … —
is an *exactly affine* function of ``k`` on each residue class
``k mod period`` once ``k`` clears a small stabilisation threshold (the
halving constructions of Figs. 4/9 introduce a parity dependence, hence the
residue classes; the peephole optimisation passes cancel the same constant
number of gates at every block seam, so they shift the affine constants but
preserve affineness).

This module turns that observation into an estimator that is **exact by
construction**:

1. ``measure`` materialises and lowers the circuit for small parameters and
   caches the full metric vector (this is also the fallback for any ``k``
   below the stabilisation threshold);
2. ``affine_estimate`` calibrates one residue class from **three** measured
   points, *verifies* that the two finite differences agree for every metric
   (raising :class:`~repro.exceptions.EstimationError` rather than ever
   extrapolating a non-affine family), and then answers any ``k`` — a
   million controls, say — in O(1) integer arithmetic.

The calibration is validated gate-for-gate against materialised+lowered
circuits in ``tests/test_estimator.py`` (including points strictly beyond
the calibration window).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Tuple, Union

from repro.core.gate_counts import GateCountReport, count_gates
from repro.exceptions import EstimationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (synth imports us)
    from repro.synth.strategy import Synthesizer

#: Metric fields tracked by the estimator, in the order used by the affine
#: calibration.  They mirror :class:`~repro.core.gate_counts.GateCountReport`.
METRIC_FIELDS: Tuple[str, ...] = (
    "macro_ops",
    "two_qudit_gates",
    "g_gates",
    "depth",
    "single_qudit_gates",
    "controlled_x01",
)


@dataclass(frozen=True)
class AffineSpec:
    """Shape of a strategy's cost family.

    ``period`` is the residue-class modulus (2 for the halving constructions,
    ``d − 2`` for the counting ladder) and ``stable_from`` the smallest ``k``
    from which the finite differences are constant; below it the estimator
    simply measures (small circuits, cached).
    """

    period: int = 2
    stable_from: int = 11


@dataclass(frozen=True)
class Resources:
    """Exact resource counts of one synthesis strategy at ``(d, k)``.

    The counting semantics match ``count_gates(result, lower=True)``:
    metrics refer to the circuit lowered to G-gates when the payload is a
    permutation, and to the macro circuit otherwise (e.g. unitary payloads).
    ``exact=False`` marks model-level estimates (payload-dependent
    strategies) that are bounds rather than gate-for-gate counts.
    """

    strategy: str
    dim: int
    k: int
    num_wires: int
    macro_ops: int
    two_qudit_gates: int
    g_gates: int
    depth: int
    single_qudit_gates: int
    controlled_x01: int
    ancillas: Mapping[str, int] = field(default_factory=dict)
    exact: bool = True

    def metrics(self) -> Tuple[int, ...]:
        """The tracked metric vector, ordered as :data:`METRIC_FIELDS`."""
        return tuple(getattr(self, name) for name in METRIC_FIELDS)

    def ancilla_count(self, kind: Optional[str] = None) -> int:
        if kind is None:
            return sum(self.ancillas.values())
        return self.ancillas.get(kind, 0)

    def as_row(self) -> Dict[str, object]:
        """Flatten into a table row (same helper as ``GateCountReport``)."""
        from repro.bench.formatting import counts_row  # lazy: avoids cycle

        return counts_row(
            {
                "strategy": self.strategy,
                "d": self.dim,
                "k": self.k,
                "wires": self.num_wires,
                "macro_ops": self.macro_ops,
                "two_qudit_gates": self.two_qudit_gates,
                "g_gates": self.g_gates,
                "depth": self.depth,
                "exact": self.exact,
            },
            self.ancillas,
        )

    @classmethod
    def from_report(
        cls,
        report: GateCountReport,
        *,
        strategy: str,
        k: int,
        exact: bool = True,
    ) -> "Resources":
        return cls(
            strategy=strategy,
            dim=report.dim,
            k=k,
            num_wires=report.num_wires,
            macro_ops=report.macro_ops,
            two_qudit_gates=report.two_qudit_gates,
            g_gates=report.g_gates,
            depth=report.depth,
            single_qudit_gates=report.single_qudit_gates,
            controlled_x01=report.controlled_x01,
            ancillas=dict(report.ancillas),
            exact=exact,
        )


# ----------------------------------------------------------------------
# Measured path (small parameters) with a process-wide cache
# ----------------------------------------------------------------------
_MEASURED: Dict[Tuple[str, int, int], Resources] = {}
_CALIBRATION: Dict[Tuple[str, int, int], Tuple[int, Tuple[int, ...], Tuple[int, ...]]] = {}


def clear_caches() -> None:
    """Drop all measured points and calibrations (mainly for tests)."""
    _MEASURED.clear()
    _CALIBRATION.clear()


def measure(strategy: "Synthesizer", dim: int, k: int) -> Resources:
    """Materialise, lower and count the strategy's circuit at ``(d, k)``.

    Exact by definition; cached per ``(strategy, d, k)``.  Also cross-checks
    the strategy's analytic :meth:`~repro.synth.strategy.Synthesizer.layout`
    against the real circuit, so every measurement doubles as a validation
    of the wire/ancilla bookkeeping used on the extrapolated path.
    """
    key = (strategy.name, dim, k)
    cached = _MEASURED.get(key)
    if cached is not None:
        return cached
    result = strategy.synthesize(dim, k)
    report = count_gates(result, lower=True)
    resources = Resources.from_report(report, strategy=strategy.name, k=k)
    wires, ancillas = strategy.layout(dim, k)
    if wires != resources.num_wires or dict(ancillas) != dict(resources.ancillas):
        raise EstimationError(
            f"{strategy.name}.layout({dim}, {k}) predicts wires={wires}, "
            f"ancillas={dict(ancillas)} but the synthesised circuit has "
            f"wires={resources.num_wires}, ancillas={dict(resources.ancillas)}"
        )
    _MEASURED[key] = resources
    return resources


# ----------------------------------------------------------------------
# Affine calibration and extrapolation
# ----------------------------------------------------------------------
def affine_estimate(strategy: "Synthesizer", dim: int, k: int) -> Resources:
    """Exact counts via the calibrated affine recurrence (O(1) per query)."""
    spec = strategy.estimator_spec(dim)
    if spec is None:
        raise EstimationError(f"strategy {strategy.name!r} has no analytic estimator")
    if k < spec.stable_from:
        return measure(strategy, dim, k)
    k0, base, slope = _calibration(strategy, dim, spec, k % spec.period)
    steps = (k - k0) // spec.period
    values = tuple(b + s * steps for b, s in zip(base, slope))
    wires, ancillas = strategy.layout(dim, k)
    fields = dict(zip(METRIC_FIELDS, values))
    return Resources(
        strategy=strategy.name,
        dim=dim,
        k=k,
        num_wires=wires,
        ancillas=dict(ancillas),
        exact=True,
        **fields,
    )


def _calibration(
    strategy: "Synthesizer", dim: int, spec: AffineSpec, residue: int
) -> Tuple[int, Tuple[int, ...], Tuple[int, ...]]:
    """Measure three points of one residue class and verify affineness."""
    key = (strategy.name, dim, residue)
    cached = _CALIBRATION.get(key)
    if cached is not None:
        return cached
    k0 = spec.stable_from + ((residue - spec.stable_from) % spec.period)
    points = [measure(strategy, dim, k0 + i * spec.period).metrics() for i in range(3)]
    first = tuple(b - a for a, b in zip(points[0], points[1]))
    second = tuple(b - a for a, b in zip(points[1], points[2]))
    if first != second:
        deviating = [
            name
            for name, a, b in zip(METRIC_FIELDS, first, second)
            if a != b
        ]
        raise EstimationError(
            f"strategy {strategy.name!r} is not affine in k at d={dim} from "
            f"k={k0} (period {spec.period}): finite differences disagree for "
            f"{deviating}; raise the strategy's stable_from threshold"
        )
    _CALIBRATION[key] = (k0, points[0], first)
    return _CALIBRATION[key]


def sum_estimates(strategy: "Synthesizer", dim: int, count: int) -> Tuple[int, ...]:
    """``Σ_{j=0}^{count-1}`` of the strategy's metric vectors, in O(1).

    Terms below the stabilisation threshold are measured (tiny circuits);
    each residue class above it is an arithmetic series summed in closed
    form.  Used by composite cost models (e.g. the ripple increment, which
    stacks one multi-controlled block per register digit).
    """
    spec = strategy.estimator_spec(dim)
    if spec is None:
        raise EstimationError(f"strategy {strategy.name!r} has no analytic estimator")
    total = [0] * len(METRIC_FIELDS)
    head = min(count, spec.stable_from)
    for j in range(head):
        if not strategy.supports(dim, j):
            continue
        for i, v in enumerate(measure(strategy, dim, j).metrics()):
            total[i] += v
    if count <= spec.stable_from:
        return tuple(total)
    for residue in range(spec.period):
        k0, base, slope = _calibration(strategy, dim, spec, residue)
        # Terms j ≡ residue (mod period) with stable_from <= j < count.
        start = spec.stable_from + ((residue - spec.stable_from) % spec.period)
        if start >= count:
            continue
        terms = (count - 1 - start) // spec.period + 1
        first_step = (start - k0) // spec.period
        # Σ_{m=0}^{terms-1} (base + (first_step + m)·slope)
        step_sum = terms * first_step + terms * (terms - 1) // 2
        for i in range(len(total)):
            total[i] += terms * base[i] + step_sum * slope[i]
    return tuple(total)


# ----------------------------------------------------------------------
# Convenience front door
# ----------------------------------------------------------------------
def estimate(strategy: Union[str, "Synthesizer"], dim: int, k: int) -> Resources:
    """Estimate resources for a registered strategy (by name or instance).

    >>> from repro.resources.estimator import estimate
    >>> estimate("mct", 3, 10**6).g_gates        # doctest: +SKIP
    """
    if isinstance(strategy, str):
        from repro.synth import registry  # lazy: registry imports this module

        strategy = registry.get(strategy)
    return strategy.estimate(dim, k)
