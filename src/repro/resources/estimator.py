"""Analytic resource estimation: exact gate counts without building circuits.

The paper's constructions are *linear recurrences*: every added control
contributes one constant-size block (a ladder layer in Figs. 3/7/8, a
detector/parity-flip pair in Fig. 10, a counting step in the clean-ancilla
baseline).  Consequently, for a fixed dimension ``d``, every cost metric of
the synthesised-and-lowered circuit — G-gates, two-qudit gates, depth, … —
is an *exactly affine* function of ``k`` on each residue class
``k mod period`` once ``k`` clears a small stabilisation threshold (the
halving constructions of Figs. 4/9 introduce a parity dependence, hence the
residue classes; the peephole optimisation passes cancel the same constant
number of gates at every block seam, so they shift the affine constants but
preserve affineness).

This module turns that observation into an estimator that is **exact by
construction**:

1. ``measure`` materialises and lowers the circuit for small parameters and
   caches the full metric vector (this is also the fallback for any ``k``
   below the stabilisation threshold);
2. ``affine_estimate`` calibrates one residue class from **three** measured
   points, *verifies* that the two finite differences agree for every metric
   (raising :class:`~repro.exceptions.EstimationError` rather than ever
   extrapolating a non-affine family), and then answers any ``k`` — a
   million controls, say — in O(1) integer arithmetic.

The calibration is validated gate-for-gate against materialised+lowered
circuits in ``tests/test_estimator.py`` (including points strictly beyond
the calibration window).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Tuple, Union

import numpy as np

from repro.core.gate_counts import GateCountReport, count_gates
from repro.exceptions import EstimationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (synth imports us)
    from repro.synth.strategy import Synthesizer

#: Metric fields tracked by the estimator, in the order used by the affine
#: calibration.  They mirror :class:`~repro.core.gate_counts.GateCountReport`.
METRIC_FIELDS: Tuple[str, ...] = (
    "macro_ops",
    "two_qudit_gates",
    "g_gates",
    "depth",
    "single_qudit_gates",
    "controlled_x01",
)


@dataclass(frozen=True)
class AffineSpec:
    """Shape of a strategy's cost family.

    ``period`` is the residue-class modulus (2 for the halving constructions,
    ``d − 2`` for the counting ladder) and ``stable_from`` the smallest ``k``
    from which the finite differences are constant; below it the estimator
    simply measures (small circuits, cached).
    """

    period: int = 2
    stable_from: int = 11


@dataclass(frozen=True)
class Resources:
    """Exact resource counts of one synthesis strategy at ``(d, k)``.

    The counting semantics match ``count_gates(result, lower=True)``:
    metrics refer to the circuit lowered to G-gates when the payload is a
    permutation, and to the macro circuit otherwise (e.g. unitary payloads).
    ``exact=False`` marks model-level estimates (payload-dependent
    strategies) that are bounds rather than gate-for-gate counts.
    """

    strategy: str
    dim: int
    k: int
    num_wires: int
    macro_ops: int
    two_qudit_gates: int
    g_gates: int
    depth: int
    single_qudit_gates: int
    controlled_x01: int
    ancillas: Mapping[str, int] = field(default_factory=dict)
    exact: bool = True

    def metrics(self) -> Tuple[int, ...]:
        """The tracked metric vector, ordered as :data:`METRIC_FIELDS`."""
        return tuple(getattr(self, name) for name in METRIC_FIELDS)

    def ancilla_count(self, kind: Optional[str] = None) -> int:
        if kind is None:
            return sum(self.ancillas.values())
        return self.ancillas.get(kind, 0)

    def as_row(self) -> Dict[str, object]:
        """Flatten into a table row (same helper as ``GateCountReport``)."""
        from repro.bench.formatting import counts_row  # lazy: avoids cycle

        return counts_row(
            {
                "strategy": self.strategy,
                "d": self.dim,
                "k": self.k,
                "wires": self.num_wires,
                "macro_ops": self.macro_ops,
                "two_qudit_gates": self.two_qudit_gates,
                "g_gates": self.g_gates,
                "depth": self.depth,
                "exact": self.exact,
            },
            self.ancillas,
        )

    @classmethod
    def from_report(
        cls,
        report: GateCountReport,
        *,
        strategy: str,
        k: int,
        exact: bool = True,
    ) -> "Resources":
        return cls(
            strategy=strategy,
            dim=report.dim,
            k=k,
            num_wires=report.num_wires,
            macro_ops=report.macro_ops,
            two_qudit_gates=report.two_qudit_gates,
            g_gates=report.g_gates,
            depth=report.depth,
            single_qudit_gates=report.single_qudit_gates,
            controlled_x01=report.controlled_x01,
            ancillas=dict(report.ancillas),
            exact=exact,
        )


# ----------------------------------------------------------------------
# Measured path (small parameters) with a bounded process-wide cache
# ----------------------------------------------------------------------
class _BoundedCache:
    """A tiny LRU memo with hit/miss counters.

    The estimator's measured points and calibrations used to live in
    unbounded module dicts; at service scale (one long-lived process
    answering ``auto_select`` for arbitrary scenario streams) that is a slow
    leak, so both layers are now LRU-bounded.  The capacities are generous —
    a calibration entry is three small tuples, a measured entry one
    :class:`Resources` — so eviction only triggers under adversarial
    scenario churn, never in a normal sweep.
    """

    def __init__(self, max_entries: int):
        self.max_entries = int(max_entries)
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[object, object]" = OrderedDict()

    def lookup(self, key):
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return self._entries[key]
        self.misses += 1
        return None

    def store(self, key, value) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0


#: Capacity of the measured-point memo (one :class:`Resources` per entry).
MEASURED_CACHE_ENTRIES = 4096
#: Capacity of the calibration memo (three metric tuples per entry).
CALIBRATION_CACHE_ENTRIES = 1024

_MEASURED = _BoundedCache(MEASURED_CACHE_ENTRIES)
_CALIBRATION = _BoundedCache(CALIBRATION_CACHE_ENTRIES)

#: How many circuits :func:`measure` has materialised (cache misses); the
#: memoization tests assert this stays flat across repeated estimates.
_MATERIALISATIONS = [0]


def cache_stats() -> Dict[str, int]:
    """Counters of the estimator's bounded memo layers."""
    return {
        "measured_entries": len(_MEASURED),
        "measured_hits": _MEASURED.hits,
        "measured_misses": _MEASURED.misses,
        "calibration_entries": len(_CALIBRATION),
        "calibration_hits": _CALIBRATION.hits,
        "calibration_misses": _CALIBRATION.misses,
        "materialisations": _MATERIALISATIONS[0],
    }


def clear_caches() -> None:
    """Drop all measured points and calibrations (mainly for tests)."""
    _MEASURED.clear()
    _CALIBRATION.clear()
    _MATERIALISATIONS[0] = 0


def measure(strategy: "Synthesizer", dim: int, k: int) -> Resources:
    """Materialise, lower and count the strategy's circuit at ``(d, k)``.

    Exact by definition; cached per ``(strategy, d, k)``.  Also cross-checks
    the strategy's analytic :meth:`~repro.synth.strategy.Synthesizer.layout`
    against the real circuit, so every measurement doubles as a validation
    of the wire/ancilla bookkeeping used on the extrapolated path.
    """
    key = (strategy.name, dim, k)
    cached = _MEASURED.lookup(key)
    if cached is not None:
        return cached
    _MATERIALISATIONS[0] += 1
    result = strategy.synthesize(dim, k)
    report = count_gates(result, lower=True)
    resources = Resources.from_report(report, strategy=strategy.name, k=k)
    wires, ancillas = strategy.layout(dim, k)
    if wires != resources.num_wires or dict(ancillas) != dict(resources.ancillas):
        raise EstimationError(
            f"{strategy.name}.layout({dim}, {k}) predicts wires={wires}, "
            f"ancillas={dict(ancillas)} but the synthesised circuit has "
            f"wires={resources.num_wires}, ancillas={dict(resources.ancillas)}"
        )
    _MEASURED.store(key, resources)
    return resources


# ----------------------------------------------------------------------
# Affine calibration and extrapolation
# ----------------------------------------------------------------------
def affine_estimate(strategy: "Synthesizer", dim: int, k: int) -> Resources:
    """Exact counts via the calibrated affine recurrence (O(1) per query)."""
    spec = strategy.estimator_spec(dim)
    if spec is None:
        raise EstimationError(f"strategy {strategy.name!r} has no analytic estimator")
    if k < spec.stable_from:
        return measure(strategy, dim, k)
    k0, base, slope = _calibration(strategy, dim, spec, k % spec.period)
    steps = (k - k0) // spec.period
    values = tuple(b + s * steps for b, s in zip(base, slope))
    wires, ancillas = strategy.layout(dim, k)
    fields = dict(zip(METRIC_FIELDS, values))
    return Resources(
        strategy=strategy.name,
        dim=dim,
        k=k,
        num_wires=wires,
        ancillas=dict(ancillas),
        exact=True,
        **fields,
    )


# ----------------------------------------------------------------------
# Vectorized batch estimation
# ----------------------------------------------------------------------
#: Metric values above this saturate in batch results (int64 ceiling); the
#: matching :attr:`BatchEstimate.offscale` row is flagged.
INT64_MAX = int(np.iinfo(np.int64).max)


@dataclass
class BatchEstimate:
    """Exact resource counts of one strategy over a whole ``k`` array.

    The columnar sibling of :class:`Resources`: every field is a numpy array
    aligned with ``ks``, produced by one calibration plus O(1) array
    arithmetic per point (:func:`affine_estimate_batch`).  Metric values
    that do not fit an ``int64`` (the Θ(2^k) baseline beyond k ≈ 62) are
    stored saturated at :data:`INT64_MAX` with ``offscale`` set — they rank
    correctly against any representable competitor but are not exact counts.
    """

    strategy: str
    dim: int
    ks: np.ndarray
    #: ``{metric: int64 array}`` over :data:`METRIC_FIELDS`.
    metrics: Dict[str, np.ndarray]
    num_wires: np.ndarray
    #: ``{ancilla kind: int64 array}``; kinds with no usage anywhere may be absent.
    ancillas: Dict[str, np.ndarray]
    #: True where a metric saturated at the int64 ceiling.
    offscale: np.ndarray
    #: Per-point exactness (mirrors :attr:`Resources.exact`).
    exact: np.ndarray

    def __len__(self) -> int:
        return int(self.ks.shape[0])

    def row(self, index: int) -> Resources:
        """The scalar :class:`Resources` view of one batch row."""
        if self.offscale[index]:
            raise EstimationError(
                f"batch row k={int(self.ks[index])} of {self.strategy!r} is "
                f"offscale (saturated at int64); use the scalar estimator"
            )
        fields = {name: int(self.metrics[name][index]) for name in METRIC_FIELDS}
        ancillas = {
            kind: int(column[index])
            for kind, column in self.ancillas.items()
            if column[index]
        }
        return Resources(
            strategy=self.strategy,
            dim=self.dim,
            k=int(self.ks[index]),
            num_wires=int(self.num_wires[index]),
            ancillas=ancillas,
            exact=bool(self.exact[index]),
            **fields,
        )


def _empty_batch(strategy: "Synthesizer", dim: int, ks: np.ndarray) -> BatchEstimate:
    n = int(ks.shape[0])
    return BatchEstimate(
        strategy=strategy.name,
        dim=dim,
        ks=ks,
        metrics={name: np.zeros(n, dtype=np.int64) for name in METRIC_FIELDS},
        num_wires=np.zeros(n, dtype=np.int64),
        ancillas={},
        offscale=np.zeros(n, dtype=bool),
        exact=np.ones(n, dtype=bool),
    )


def _check_batch_ks(strategy: "Synthesizer", dim: int, ks) -> np.ndarray:
    ks = np.asarray(ks, dtype=np.int64)
    if ks.ndim != 1:
        raise EstimationError(f"batch estimation needs a 1-D k array, got shape {ks.shape}")
    if ks.size:
        low, high = int(ks.min()), int(ks.max())
        if not (strategy.supports(dim, low) and strategy.supports(dim, high)):
            raise EstimationError(
                f"strategy {strategy.name!r} does not support every point of "
                f"the batch at d={dim} (k range {low}..{high}); filter with "
                f"supports_batch first"
            )
    return ks


def affine_estimate_batch(strategy: "Synthesizer", dim: int, ks) -> BatchEstimate:
    """Exact counts for a whole ``k`` array via one calibration per residue.

    The vectorized sibling of :func:`affine_estimate`: points below the
    stabilisation threshold are measured once per distinct ``k`` (small
    circuits, memoized), every other point is numpy array arithmetic on the
    calibrated ``(base, slope)`` vectors — O(1) per point, no Python-level
    per-point work.  Residue classes whose extrapolated values could
    overflow ``int64`` fall back to exact Python integers and saturate
    (see :attr:`BatchEstimate.offscale`).
    """
    spec = strategy.estimator_spec(dim)
    if spec is None:
        raise EstimationError(f"strategy {strategy.name!r} has no analytic estimator")
    ks = _check_batch_ks(strategy, dim, ks)
    batch = _empty_batch(strategy, dim, ks)
    if not ks.size:
        return batch
    metrics, offscale = batch.metrics, batch.offscale

    small = ks < spec.stable_from
    for k in np.unique(ks[small]).tolist():
        resources = measure(strategy, dim, int(k))
        rows = ks == k
        for name, value in zip(METRIC_FIELDS, resources.metrics()):
            metrics[name][rows] = value

    residues = ks % spec.period
    for residue in range(spec.period):
        rows = ~small & (residues == residue)
        if not rows.any():
            continue
        k0, base, slope = _calibration(strategy, dim, spec, residue)
        steps = (ks[rows] - k0) // spec.period
        max_steps = int(steps.max())
        for i, name in enumerate(METRIC_FIELDS):
            if base[i] + slope[i] * max_steps <= INT64_MAX:  # Python ints: exact
                metrics[name][rows] = base[i] + slope[i] * steps
            else:
                values = [base[i] + slope[i] * int(s) for s in steps.tolist()]
                metrics[name][rows] = np.fromiter(
                    (min(v, INT64_MAX) for v in values), np.int64, len(values)
                )
                offscale[rows] |= np.fromiter(
                    (v > INT64_MAX for v in values), bool, len(values)
                )

    wires, ancillas = strategy.layout_batch(dim, ks)
    batch.num_wires = np.asarray(wires, dtype=np.int64)
    batch.ancillas = {k: np.asarray(v, dtype=np.int64) for k, v in ancillas.items()}
    return batch


def batch_from_scalar(strategy: "Synthesizer", dim: int, ks) -> BatchEstimate:
    """Batch shim over per-point scalar estimates (payload-dependent models).

    Strategies without an affine cost family (``increment``, ``reversible``,
    ``unitary``, the Θ(2^k) baseline's default path) still expose the batch
    API through this loop; it saturates non-``int64`` values the same way
    the vectorized path does, so downstream consumers see one contract.
    """
    ks = _check_batch_ks(strategy, dim, ks)
    batch = _empty_batch(strategy, dim, ks)
    for index, k in enumerate(ks.tolist()):
        resources = strategy.estimate(dim, int(k))
        batch.exact[index] = resources.exact
        batch.num_wires[index] = resources.num_wires
        for name, value in zip(METRIC_FIELDS, resources.metrics()):
            if value > INT64_MAX:
                batch.offscale[index] = True
                value = INT64_MAX
            batch.metrics[name][index] = value
        for kind, count in resources.ancillas.items():
            column = batch.ancillas.get(kind)
            if column is None:
                column = batch.ancillas[kind] = np.zeros(len(ks), dtype=np.int64)
            column[index] = count
    return batch


def _calibration(
    strategy: "Synthesizer", dim: int, spec: AffineSpec, residue: int
) -> Tuple[int, Tuple[int, ...], Tuple[int, ...]]:
    """Measure three points of one residue class and verify affineness."""
    key = (strategy.name, dim, residue)
    cached = _CALIBRATION.lookup(key)
    if cached is not None:
        return cached
    k0 = spec.stable_from + ((residue - spec.stable_from) % spec.period)
    points = [measure(strategy, dim, k0 + i * spec.period).metrics() for i in range(3)]
    first = tuple(b - a for a, b in zip(points[0], points[1]))
    second = tuple(b - a for a, b in zip(points[1], points[2]))
    if first != second:
        deviating = [
            name
            for name, a, b in zip(METRIC_FIELDS, first, second)
            if a != b
        ]
        raise EstimationError(
            f"strategy {strategy.name!r} is not affine in k at d={dim} from "
            f"k={k0} (period {spec.period}): finite differences disagree for "
            f"{deviating}; raise the strategy's stable_from threshold"
        )
    calibration = (k0, points[0], first)
    _CALIBRATION.store(key, calibration)
    return calibration


def sum_estimates(strategy: "Synthesizer", dim: int, count: int) -> Tuple[int, ...]:
    """``Σ_{j=0}^{count-1}`` of the strategy's metric vectors, in O(1).

    Terms below the stabilisation threshold are measured (tiny circuits);
    each residue class above it is an arithmetic series summed in closed
    form.  Used by composite cost models (e.g. the ripple increment, which
    stacks one multi-controlled block per register digit).
    """
    spec = strategy.estimator_spec(dim)
    if spec is None:
        raise EstimationError(f"strategy {strategy.name!r} has no analytic estimator")
    total = [0] * len(METRIC_FIELDS)
    head = min(count, spec.stable_from)
    for j in range(head):
        if not strategy.supports(dim, j):
            continue
        for i, v in enumerate(measure(strategy, dim, j).metrics()):
            total[i] += v
    if count <= spec.stable_from:
        return tuple(total)
    for residue in range(spec.period):
        k0, base, slope = _calibration(strategy, dim, spec, residue)
        # Terms j ≡ residue (mod period) with stable_from <= j < count.
        start = spec.stable_from + ((residue - spec.stable_from) % spec.period)
        if start >= count:
            continue
        terms = (count - 1 - start) // spec.period + 1
        first_step = (start - k0) // spec.period
        # Σ_{m=0}^{terms-1} (base + (first_step + m)·slope)
        step_sum = terms * first_step + terms * (terms - 1) // 2
        for i in range(len(total)):
            total[i] += terms * base[i] + step_sum * slope[i]
    return tuple(total)


# ----------------------------------------------------------------------
# Convenience front door
# ----------------------------------------------------------------------
def estimate(strategy: Union[str, "Synthesizer"], dim: int, k: int) -> Resources:
    """Estimate resources for a registered strategy (by name or instance).

    >>> from repro.resources.estimator import estimate
    >>> estimate("mct", 3, 10**6).g_gates        # doctest: +SKIP
    """
    if isinstance(strategy, str):
        from repro.synth import registry  # lazy: registry imports this module

        strategy = registry.get(strategy)
    return strategy.estimate(dim, k)
