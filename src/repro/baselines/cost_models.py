"""Analytic gate-count models for prior work cited by the paper.

Two of the paper's comparison points — Di & Wei [20] and Yeh & van de
Wetering [24] — are full papers of their own; re-implementing them is out of
scope for this reproduction (DESIGN.md §3), and only their asymptotic gate
counts enter the comparison.  This module provides those counts as explicit
cost models with documented constants, alongside the models for the methods
that *are* implemented, so the benchmark tables can show every row of the
paper's comparison.

Every model returns a :class:`CostEstimate` with the two-qudit-gate count
and ancilla usage for a k-controlled Toffoli on d-level qudits.

For the *implemented* methods, prefer the exact calibrated estimators of
:mod:`repro.resources.estimator` (reachable through the strategy registry,
``repro.synth.estimate(name, d, k)``); the asymptotic models here cover only
the unimplemented literature rows of the comparison tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict


@dataclass
class CostEstimate:
    """Estimated resources of one synthesis method for the k-Toffoli."""

    method: str
    two_qudit_gates: float
    ancillas: int
    ancilla_kind: str
    exact: bool

    def as_row(self) -> Dict[str, object]:
        return {
            "method": self.method,
            "two_qudit_gates": (
                int(self.two_qudit_gates) if self.two_qudit_gates < 1e15 else self.two_qudit_gates
            ),
            "ancillas": self.ancillas,
            "ancilla_kind": self.ancilla_kind,
            "model": "measured" if self.exact else "analytic",
        }


def standard_clean_ancilla_model(dim: int, k: int) -> CostEstimate:
    """The standard synthesis [5, 23]: O(k) gates, ⌈(k−2)/(d−2)⌉ clean ancillas."""
    ancillas = 0 if k <= 2 else -(-(k - 2) // (dim - 2))
    gates = 2 * (k + max(ancillas - 1, 0)) + 1
    return CostEstimate("clean-ancilla ladder [5,23]", gates, ancillas, "clean", exact=False)


def moraga_exponential_model(dim: int, k: int) -> CostEstimate:
    """The ancilla-free synthesis of [25]: exponentially many two-qudit gates."""
    gates = 2.0**k
    return CostEstimate("ancilla-free exponential [25]", gates, 0, "none", exact=False)


def di_wei_model(dim: int, k: int, constant: float = 1.0) -> CostEstimate:
    """Di & Wei [20]: ancilla-free with O(k^3) two-qudit gates.

    ``constant`` scales the leading term; the default of 1 reports the bare
    asymptotic ``k^3`` so the comparison shows orders of magnitude, not exact
    constants (which [20] does not need for the paper's argument).
    """
    return CostEstimate("Di & Wei [20] (model)", constant * k**3, 0, "none", exact=False)


def yeh_vdw_model(dim: int, k: int, constant: float = 1.0) -> CostEstimate:
    """Yeh & van de Wetering [24]: ancilla-free Clifford+T with O(k^3.585) gates.

    The exponent 3.585 = log2(12) comes from their recursive construction;
    the model is meaningful for ``d = 3`` (qutrits) where [24] works.
    """
    return CostEstimate(
        "Yeh & vdW [24] (model)", constant * k**3.585, 0, "none", exact=False
    )


def this_paper_model(dim: int, k: int, constant: float = 1.0) -> CostEstimate:
    """The paper's own asymptotic claim: O(k·d^3) G-gates, ≤ 1 ancilla."""
    ancillas = 0 if dim % 2 == 1 else (1 if k >= 2 else 0)
    kind = "none" if ancillas == 0 else "borrowed"
    return CostEstimate("this paper (model)", constant * k * dim**3, ancillas, kind, exact=False)


def reversible_function_models(dim: int, n: int) -> Dict[str, float]:
    """Gate-count models for n-variable d-ary reversible functions.

    Returns the paper's O(n·d^n) bound, the Yeh & vdW O(d^n·n^3.585) bound
    (stated for d = 3 in [24]) and the information-theoretic lower bound
    Ω(n·d^n / log n) of Lemma IV.3 (with the constant from the proof).
    """
    size = float(dim) ** n
    log_n = math.log(max(n, 2))
    return {
        "this paper O(n d^n)": n * size,
        "Yeh & vdW O(d^n n^3.585)": size * n**3.585,
        "lower bound Ω(n d^n / log n)": n * size * math.log(dim) / (4.0 * math.log(dim * max(n, 2))),
        "log-n denominator": log_n,
    }


#: Registry used by the comparison benchmark to iterate over every model row.
MODEL_REGISTRY: Dict[str, Callable[[int, int], CostEstimate]] = {
    "clean-ancilla ladder [5,23]": standard_clean_ancilla_model,
    "ancilla-free exponential [25]": moraga_exponential_model,
    "Di & Wei [20]": di_wei_model,
    "Yeh & vdW [24]": yeh_vdw_model,
    "this paper": this_paper_model,
}
