"""Prior-work baselines the paper compares against."""

from repro.baselines.ancilla_free_exponential import (
    commutator_factors,
    mcu_exponential_ops,
    synthesize_mcu_exponential,
    toffoli_payload_su,
)
from repro.baselines.clean_ancilla_ladder import (
    clean_ancilla_count,
    mct_clean_ladder_ops,
    synthesize_mct_clean_ladder,
)
from repro.baselines.cost_models import (
    MODEL_REGISTRY,
    CostEstimate,
    di_wei_model,
    moraga_exponential_model,
    reversible_function_models,
    standard_clean_ancilla_model,
    this_paper_model,
    yeh_vdw_model,
)

__all__ = [
    "commutator_factors",
    "mcu_exponential_ops",
    "synthesize_mcu_exponential",
    "toffoli_payload_su",
    "clean_ancilla_count",
    "mct_clean_ladder_ops",
    "synthesize_mct_clean_ladder",
    "MODEL_REGISTRY",
    "CostEstimate",
    "di_wei_model",
    "moraga_exponential_model",
    "reversible_function_models",
    "standard_clean_ancilla_model",
    "this_paper_model",
    "yeh_vdw_model",
]
