"""Baseline: the standard clean-ancilla synthesis of the k-Toffoli [5, 23].

This is the construction the paper's introduction describes as "a standard
synthesis of multi-controlled d-level qudit gates using O(k) two-qudit
gates, whose two-qudit gate count is optimal, but using as many as
``⌈(k−2)/(d−2)⌉`` clean ancilla".

The implementation is a counting ladder over the first ``k − 1`` controls:

* the first clean ancilla counts how many of the first ``d − 1`` controls
  are ``|0⟩`` (each zero adds one, so its value reaches ``d − 1`` iff they
  all are);
* every further ancilla counts ``[previous ancilla is full] +`` the zeros
  among the next ``d − 2`` fresh controls, so *it* is full iff every control
  seen so far is zero;
* the payload then fires under a two-controlled condition
  ``|full⟩``-on-the-last-ancilla and ``|0⟩``-on-the-remaining control
  ``x_k`` (the two-controlled gate is the primitive of this baseline, as in
  [5]; lowering it to G-gates borrows an idle wire), after which the
  counting is un-computed so every ancilla returns to ``|0⟩``.

With group sizes ``d−1, d−2, d−2, ...`` the number of clean ancillas is
exactly ``⌈(k−2)/(d−2)⌉`` for ``k >= 3``, matching the formula quoted in the
paper, and the two-qudit gate count is ``2(k − 1 + m) + O(1) = O(k)``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.exceptions import DimensionError, SynthesisError
from repro.qudit.ancilla import AncillaKind, SynthesisResult
from repro.qudit.circuit import QuditCircuit
from repro.qudit.controls import Value
from repro.qudit.gates import Gate, XPerm, XPlus
from repro.qudit.operations import BaseOp, Operation


def clean_ancilla_count(dim: int, num_controls: int) -> int:
    """``⌈(k−2)/(d−2)⌉`` clean ancillas (0 for ``k <= 2``)."""
    if num_controls <= 2:
        return 0
    return -(-(num_controls - 2) // (dim - 2))


def _control_groups(dim: int, counted_controls: Sequence[int]) -> List[List[int]]:
    """Split the counted controls into ladder groups of sizes d−1, d−2, ..."""
    groups: List[List[int]] = [list(counted_controls[: dim - 1])]
    rest = list(counted_controls[dim - 1 :])
    step = dim - 2
    for start in range(0, len(rest), step):
        groups.append(rest[start : start + step])
    return [group for group in groups if group]


def mct_clean_ladder_ops(
    dim: int,
    controls: Sequence[int],
    target: int,
    ancillas: Sequence[int],
    payload: Gate,
) -> List[BaseOp]:
    """Build the counting-ladder circuit on explicit wires."""
    k = len(controls)
    if k == 0:
        return [Operation(payload, target)]
    if k == 1:
        return [Operation(payload, target, [(controls[0], Value(0))])]
    if k == 2:
        # The standard construction treats the two-controlled gate as its
        # base primitive; emit it as a macro (it is still a three-qudit gate).
        return [
            Operation(payload, target, [(controls[0], Value(0)), (controls[1], Value(0))])
        ]

    counted = list(controls[:-1])
    last_control = controls[-1]
    groups = _control_groups(dim, counted)
    needed = len(groups)
    if len(ancillas) < needed:
        raise SynthesisError(
            f"the clean-ancilla ladder needs {needed} ancillas for k={k}, got {len(ancillas)}"
        )

    count_ops: List[BaseOp] = []
    full_values: List[int] = []
    for index, group in enumerate(groups):
        ancilla = ancillas[index]
        full = len(group)
        if index > 0:
            # One extra unit when the previous ancilla reached its full value.
            count_ops.append(
                Operation(
                    XPlus(dim, 1), ancilla, [(ancillas[index - 1], Value(full_values[-1]))]
                )
            )
            full += 1
        for control in group:
            count_ops.append(Operation(XPlus(dim, 1), ancilla, [(control, Value(0))]))
        if full >= dim:
            raise SynthesisError(
                "counting ladder group exceeds the qudit dimension; this should not happen"
            )
        full_values.append(full)

    fire = Operation(
        payload,
        target,
        [(ancillas[needed - 1], Value(full_values[-1])), (last_control, Value(0))],
    )
    uncompute = [op.inverse() for op in reversed(count_ops)]
    return count_ops + [fire] + uncompute


def synthesize_mct_clean_ladder(
    dim: int, num_controls: int, *, swap: Tuple[int, int] = (0, 1)
) -> SynthesisResult:
    """Baseline k-Toffoli with ``⌈(k−2)/(d−2)⌉`` clean ancillas.

    Wires ``0 .. k-1`` are controls, wire ``k`` the target and wires
    ``k+1 ...`` the clean ancillas.

    .. note::
       Registered in :mod:`repro.synth` as ``"mct-clean-ladder"``; the
       ``auto`` dispatcher ranks it against the paper's constructions by
       estimated cost (``repro.synth.auto_select``).
    """
    if dim < 3:
        raise DimensionError("the counting ladder requires d >= 3")
    controls = list(range(num_controls))
    target = num_controls
    num_ancillas = clean_ancilla_count(dim, num_controls)
    ancillas = list(range(num_controls + 1, num_controls + 1 + num_ancillas))
    circuit = QuditCircuit(
        num_controls + 1 + num_ancillas,
        dim,
        name=f"MCT_clean_ladder(k={num_controls}, d={dim})",
    )
    payload = XPerm.transposition(dim, *swap)
    circuit.extend(mct_clean_ladder_ops(dim, controls, target, ancillas, payload))
    return SynthesisResult(
        circuit=circuit,
        controls=tuple(controls),
        target=target,
        ancillas={w: AncillaKind.CLEAN for w in ancillas},
        notes="baseline [5, 23]: counting ladder with ⌈(k−2)/(d−2)⌉ clean ancillas",
    )
