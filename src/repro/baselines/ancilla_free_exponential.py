"""Baseline: ancilla-free multi-controlled gates with exponentially many gates.

Before Di & Wei [20], the known ancilla-free syntheses of multi-controlled
qudit gates (e.g. Moraga [25]) used a number of two-qudit gates that grows
exponentially in the number of controls ``k``.  This module provides an
executable representative of that family so the comparison benchmarks are
grounded in a real circuit rather than only in a cost formula:

    ``|0^k⟩-U  =  [|0^{k-1}⟩-W]† · [|0⟩x_k-V] · [|0^{k-1}⟩-W] · [|0⟩x_k-V]†``

where ``U = W†VWV†`` is a *group commutator* factorisation of the payload.
If the inner multi-controlled block does not fire the two ``V`` gates cancel;
if the single control does not fire the two ``W`` blocks cancel; only when
*all* controls are ``|0⟩`` does the commutator ``U`` act on the target.  The
recursion doubles the gate count per control, giving ``Θ(2^k)`` two-qudit
gates and no ancilla.

The payload must lie in ``SU(d)`` (a commutator always has determinant one);
:func:`commutator_factors` computes ``V`` and ``W`` constructively from the
eigen-decomposition.  The k-Toffoli payload ``X01`` has determinant −1, so
the benchmark uses the det-normalised payload ``e^{iπ/d}·X01`` — the standard
trick, and irrelevant for gate counting.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.exceptions import DimensionError, GateError, SynthesisError
from repro.qudit.ancilla import SynthesisResult
from repro.qudit.circuit import QuditCircuit
from repro.qudit.controls import Value
from repro.qudit.gates import SingleQuditUnitary, XPerm
from repro.qudit.operations import BaseOp, Operation


def commutator_factors(unitary: np.ndarray, atol: float = 1e-6) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(V, W)`` with ``V† W V W† = U`` (matrix product) for ``U`` in SU(d).

    Construction: Schur-diagonalise ``U = Q D Q†`` with ``D = diag(e^{iθ_j})``
    and ``Σθ_j ≡ 0 (mod 2π)``.  With ``S`` the cyclic-shift permutation and
    ``R = diag(e^{iφ_j})`` chosen so that ``φ_{j+1} − φ_j = θ_j`` (consistent
    cyclically because the phases sum to zero), ``S† R S R† = D``.  Returning
    ``V = Q S Q†`` and ``W = Q R Q†`` therefore satisfies the *circuit*
    identity ``V† @ W @ V @ W† = U``: applying ``W†`` first, then ``V``, then
    ``W``, then ``V†`` realises ``U`` on the fired subspace.
    """
    from scipy.linalg import schur

    matrix = np.asarray(unitary, dtype=complex)
    d = matrix.shape[0]
    det = np.linalg.det(matrix)
    if abs(det - 1.0) > 1e-6:
        raise GateError("commutator factorisation requires a determinant-one unitary")
    # Schur decomposition of a normal matrix: U = Q T Q† with T diagonal.
    t, q = schur(matrix, output="complex")
    thetas = np.angle(np.diag(t))
    # Cumulative phases: φ_{j+1} − φ_j = θ_j  ⇒  φ_j = Σ_{m<j} θ_m, which is
    # cyclically consistent because the θ's sum to 0 (mod 2π) on SU(d).
    phis = np.concatenate([[0.0], np.cumsum(thetas)[:-1]])
    shift = np.roll(np.eye(d), 1, axis=0)  # S|j⟩ = |j+1 mod d⟩
    rotation = np.diag(np.exp(1j * phis))
    v = q @ shift @ q.conj().T
    w = q @ rotation @ q.conj().T
    candidate = v.conj().T @ w @ v @ w.conj().T
    if not np.allclose(candidate, matrix, atol=atol):
        raise GateError("commutator factorisation failed numerically")
    return v, w


def _check_su(matrix: np.ndarray) -> np.ndarray:
    matrix = np.asarray(matrix, dtype=complex)
    det = np.linalg.det(matrix)
    if abs(abs(det) - 1.0) > 1e-8:
        raise GateError("payload must be unitary")
    if abs(det - 1.0) > 1e-8:
        # Normalise the determinant with a global phase (standard trick).
        matrix = matrix * det ** (-1.0 / matrix.shape[0])
    return matrix


def mcu_exponential_ops(
    dim: int, controls: List[int], target: int, payload: np.ndarray
) -> List[BaseOp]:
    """Recursive commutator construction (ancilla-free, Θ(2^k) gates)."""
    matrix = _check_su(payload)
    k = len(controls)
    if k == 0:
        return [Operation(SingleQuditUnitary(matrix, label="U"), target)]
    if k == 1:
        return [
            Operation(SingleQuditUnitary(matrix, label="U"), target, [(controls[0], Value(0))])
        ]
    v, w = commutator_factors(matrix)
    v_gate = SingleQuditUnitary(v, label="V", check=False)
    inner = mcu_exponential_ops(dim, controls[:-1], target, w)
    inner_inverse = [op.inverse() for op in reversed(inner)]
    last = controls[-1]
    return (
        inner_inverse
        + [Operation(v_gate, target, [(last, Value(0))])]
        + inner
        + [Operation(v_gate.inverse(), target, [(last, Value(0))])]
    )


def toffoli_payload_su(dim: int) -> np.ndarray:
    """The det-normalised k-Toffoli payload ``e^{iπ/d}·X01``."""
    return _check_su(XPerm.transposition(dim, 0, 1).matrix())


def synthesize_mcu_exponential(dim: int, num_controls: int, payload=None) -> SynthesisResult:
    """Ancilla-free exponential baseline on a fresh register.

    Wires ``0 .. k-1`` are controls, wire ``k`` is the target; no ancilla.
    ``payload`` defaults to the det-normalised Toffoli payload.

    .. note::
       Registered in :mod:`repro.synth` as ``"mcu-exponential"`` with a
       closed-form Θ(2^k) estimator; for very small ``k`` the ``auto``
       dispatcher correctly prefers it over the linear constructions.
    """
    if dim < 2:
        raise DimensionError("dimension must be at least 2")
    if num_controls < 0:
        raise SynthesisError("the number of controls must be non-negative")
    matrix = toffoli_payload_su(dim) if payload is None else payload
    controls = list(range(num_controls))
    target = num_controls
    circuit = QuditCircuit(num_controls + 1, dim, name=f"MCU_exponential(k={num_controls}, d={dim})")
    circuit.extend(mcu_exponential_ops(dim, controls, target, matrix))
    return SynthesisResult(
        circuit=circuit,
        controls=tuple(controls),
        target=target,
        ancillas={},
        notes="baseline [25]-style: ancilla-free commutator recursion, Θ(2^k) gates",
    )
