"""A small ASCII circuit drawer.

Renders a :class:`~repro.qudit.circuit.QuditCircuit` as text, one row per
wire and one column per operation (no compaction), in the same visual
language as the paper's figures: control predicates are shown as their label
("0", "o", "e", "⋆", ...) and targets as the gate label.  Intended for the
examples and for debugging small circuits, not for publication-quality
rendering.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.qudit.circuit import QuditCircuit
from repro.qudit.operations import Operation, StarShiftOp


def draw(circuit: QuditCircuit, wire_labels: Optional[Sequence[str]] = None, max_columns: int = 40) -> str:
    """Return an ASCII rendering of ``circuit``.

    Parameters
    ----------
    circuit:
        The circuit to draw.
    wire_labels:
        Optional labels for the wires (defaults to ``q0, q1, ...``).
    max_columns:
        Circuits with more operations than this are truncated with an
        ellipsis column so that examples stay readable.
    """
    labels = list(wire_labels) if wire_labels is not None else [f"q{i}" for i in range(circuit.num_wires)]
    if len(labels) != circuit.num_wires:
        labels = [f"q{i}" for i in range(circuit.num_wires)]
    width = max(len(label) for label in labels)

    columns: List[List[str]] = []
    ops = circuit.ops
    truncated = False
    if len(ops) > max_columns:
        ops = ops[:max_columns]
        truncated = True

    for op in ops:
        column = [""] * circuit.num_wires
        if isinstance(op, StarShiftOp):
            column[op.star_wire] = "⋆"
            column[op.target] = "X+⋆" if op.sign > 0 else "X-⋆"
        elif isinstance(op, Operation):
            column[op.target] = op.gate.label
        for wire, predicate in op.controls:
            column[wire] = predicate.label
        columns.append(column)
    if truncated:
        columns.append(["..."] * circuit.num_wires)

    column_widths = [max((len(cell) for cell in column), default=1) for column in columns]
    lines = []
    for wire in range(circuit.num_wires):
        cells = []
        for column, col_width in zip(columns, column_widths):
            cell = column[wire]
            if cell:
                cells.append(cell.center(col_width + 2))
            else:
                cells.append("-" * (col_width + 2))
        lines.append(f"{labels[wire]:>{width}}: " + "".join(cells))
    return "\n".join(lines)
