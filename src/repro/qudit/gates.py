"""Single-qudit gate model.

The paper works with ``d``-level qudits (``d >= 3``) and three families of
single-qudit gates:

* ``Xij`` — swaps the computational basis states ``|i⟩`` and ``|j⟩``
  (represented here by :class:`XPerm` built from a transposition);
* ``X+y`` — the cyclic shift ``|i⟩ -> |(i + y) mod d⟩``
  (:class:`XPlus`);
* arbitrary single-qudit unitaries ``U`` used as the payload of
  multi-controlled gates (:class:`SingleQuditUnitary`).

Every gate knows its dimension.  Permutation gates expose their permutation
table, which is what the classical (basis-state) simulator and the G-gate
lowering pass consume; unitary gates expose a dense matrix.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import DimensionError, GateError
from repro.utils import permutations as perm_utils
from repro.utils.permutations import Permutation


class Gate:
    """Base class for single-qudit gates.

    Subclasses must provide :attr:`dim`, :meth:`inverse`, and either a
    permutation table (:meth:`permutation`) or a matrix (:meth:`matrix`).
    """

    #: Human-readable name used by the drawer and in reports.
    label: str = "G"

    @property
    def dim(self) -> int:
        raise NotImplementedError

    @property
    def is_permutation(self) -> bool:
        """True if the gate permutes the computational basis (no phases)."""
        raise NotImplementedError

    def permutation(self) -> Permutation:
        """Return the permutation table; raises for non-permutation gates."""
        raise GateError(f"{self.label} is not a permutation gate")

    def matrix(self) -> np.ndarray:
        """Return the dense ``d x d`` unitary matrix of the gate."""
        raise NotImplementedError

    def inverse(self) -> "Gate":
        """Return the inverse gate."""
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:  # pragma: no cover - trivial
        if not isinstance(other, Gate):
            return NotImplemented
        if self.is_permutation and other.is_permutation:
            return self.dim == other.dim and self.permutation() == other.permutation()
        if not self.is_permutation and not other.is_permutation:
            return self.dim == other.dim and np.allclose(self.matrix(), other.matrix())
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.label}, d={self.dim})"


class XPerm(Gate):
    """A single-qudit gate that permutes the computational basis.

    ``XPerm`` covers the paper's ``Xij`` gates (transpositions) and every
    product of them (e.g. ``X^e_eo`` and ``X^o_eo``).  Use the constructors
    :meth:`transposition`, :meth:`from_cycles`, :meth:`even_odd_swap` and
    :meth:`odd_even_swap` for the named gates.
    """

    def __init__(self, perm: Sequence[int], label: Optional[str] = None):
        self._perm = perm_utils.as_permutation(perm)
        if len(self._perm) < 2:
            raise DimensionError("a qudit gate needs dimension at least 2")
        self.label = label if label is not None else f"P{list(self._perm)}"

    @property
    def dim(self) -> int:
        return len(self._perm)

    @property
    def is_permutation(self) -> bool:
        return True

    def permutation(self) -> Permutation:
        return self._perm

    def matrix(self) -> np.ndarray:
        d = self.dim
        mat = np.zeros((d, d), dtype=complex)
        for source, target in enumerate(self._perm):
            mat[target, source] = 1.0
        return mat

    def inverse(self) -> "XPerm":
        return XPerm(perm_utils.invert(self._perm), label=f"{self.label}†")

    def is_identity(self) -> bool:
        return self._perm == perm_utils.identity_permutation(self.dim)

    def is_transposition(self) -> bool:
        """True if the gate is one of the paper's ``Xij`` gates."""
        return perm_utils.is_transposition(self._perm)

    def transposition_points(self) -> Tuple[int, int]:
        """Return ``(i, j)`` for an ``Xij`` gate, smallest first."""
        if not self.is_transposition():
            raise GateError(f"{self.label} is not a transposition")
        cycle = perm_utils.cycles_of(self._perm)[0]
        return (min(cycle), max(cycle))

    # ------------------------------------------------------------------
    # Named constructors for the paper's gates
    # ------------------------------------------------------------------
    @classmethod
    def identity(cls, d: int) -> "XPerm":
        return cls(perm_utils.identity_permutation(d), label="I")

    @classmethod
    def transposition(cls, d: int, i: int, j: int) -> "XPerm":
        """The paper's ``Xij`` gate on a ``d``-level qudit."""
        return cls(perm_utils.transposition(d, i, j), label=f"X{min(i, j)}{max(i, j)}")

    @classmethod
    def from_cycles(cls, d: int, cycles: Sequence[Sequence[int]], label: Optional[str] = None) -> "XPerm":
        return cls(perm_utils.permutation_from_cycles(d, cycles), label=label)

    @classmethod
    def even_odd_swap(cls, d: int) -> "XPerm":
        """``X^e_eo = X01 X23 ... X(d-2)(d-1)`` for even ``d`` (Sec. III-A).

        Swaps each even basis state ``2i`` with the odd state ``2i + 1``;
        it flips the parity of every basis state, which is the property the
        even-``d`` ladder of Fig. 3 relies on.
        """
        if d % 2 != 0:
            raise DimensionError(f"X^e_eo requires even dimension, got {d}")
        pairs = [(2 * i, 2 * i + 1) for i in range(d // 2)]
        return cls.from_cycles(d, pairs, label="Xeo^e")

    @classmethod
    def odd_even_swap(cls, d: int) -> "XPerm":
        """``X^o_eo = X12 X34 ... X(d-2)(d-1)`` for odd ``d`` (Sec. III-B).

        Fixes ``|0⟩`` and swaps every odd state ``2i + 1`` with the even
        state ``2i + 2``; used in Fig. 10 to flip the parity class of every
        non-zero control value.
        """
        if d % 2 != 1:
            raise DimensionError(f"X^o_eo requires odd dimension, got {d}")
        pairs = [(2 * i + 1, 2 * i + 2) for i in range((d - 1) // 2)]
        return cls.from_cycles(d, pairs, label="Xeo^o")


class XPlus(Gate):
    """The cyclic shift gate ``X+y : |i⟩ -> |(i + y) mod d⟩``."""

    def __init__(self, d: int, shift: int):
        if d < 2:
            raise DimensionError("a qudit gate needs dimension at least 2")
        self._dim = d
        self.shift = shift % d
        self.label = f"X+{self.shift}" if self.shift != d - 1 or d == 2 else "X-1"

    @property
    def dim(self) -> int:
        return self._dim

    @property
    def is_permutation(self) -> bool:
        return True

    def permutation(self) -> Permutation:
        return perm_utils.cycle_plus(self._dim, self.shift)

    def matrix(self) -> np.ndarray:
        return XPerm(self.permutation()).matrix()

    def inverse(self) -> "XPlus":
        return XPlus(self._dim, (-self.shift) % self._dim)

    def is_identity(self) -> bool:
        return self.shift == 0


class SingleQuditUnitary(Gate):
    """An arbitrary single-qudit unitary ``U`` (dense ``d x d`` matrix).

    This is the payload of the general multi-controlled gate
    ``|0^k⟩-U`` of Fig. 1(b); the synthesis keeps it opaque and only ever
    applies it under a single ``|1⟩``-control.
    """

    def __init__(self, matrix: np.ndarray, label: str = "U", *, check: bool = True):
        mat = np.asarray(matrix, dtype=complex)
        if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
            raise GateError("a single-qudit unitary must be a square matrix")
        if mat.shape[0] < 2:
            raise DimensionError("a qudit gate needs dimension at least 2")
        if check and not np.allclose(mat @ mat.conj().T, np.eye(mat.shape[0]), atol=1e-9):
            raise GateError("matrix is not unitary")
        self._matrix = mat
        self.label = label

    @property
    def dim(self) -> int:
        return self._matrix.shape[0]

    @property
    def is_permutation(self) -> bool:
        return False

    def matrix(self) -> np.ndarray:
        return self._matrix.copy()

    def inverse(self) -> "SingleQuditUnitary":
        return SingleQuditUnitary(self._matrix.conj().T, label=f"{self.label}†", check=False)
