"""The qudit circuit IR.

A :class:`QuditCircuit` is an ordered list of operations acting on ``n``
wires that all share one dimension ``d`` (the paper treats ``d`` as a global
constant).  The class provides the editing, composition and counting
operations the synthesis routines and the benchmark harness need:

* ``append`` / ``extend`` / ``compose`` / ``inverse``;
* gate counting at several granularities (all ops, two-qudit ops, G-gates,
  histograms by gate label) — the paper's cost metrics are "number of
  two-qudit gates" and "number of G-gates";
* ``depth`` (greedy wire-based scheduling), wire usage queries;
* ``remap_wires`` for embedding a sub-circuit built on local wire labels
  into a larger register.

Circuits have two interchangeable storage forms.  The *object* form is the
ordinary Python list of :class:`~repro.qudit.operations.BaseOp`; the
*columnar* form is a :class:`~repro.ir.table.GateTable` (struct-of-arrays
numpy columns with interned payload pools).  ``to_table()`` caches the
columnar form, and while a cached table is live every counting, depth,
histogram, inverse and remap query runs as a vectorized column kernel
without touching op objects.  Table-backed circuits (e.g. the output of
``lower_to_g_gates``) materialise op objects lazily, only when something
actually iterates them; any mutation drops the cached table.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence

from repro.exceptions import DimensionError, WireError
from repro.qudit.controls import ControlPredicate
from repro.qudit.gates import Gate
from repro.qudit.operations import BaseOp, Operation, StarShiftOp


class QuditCircuit:
    """An ordered sequence of operations on ``num_wires`` qudits of dimension ``dim``."""

    def __init__(self, num_wires: int, dim: int, name: Optional[str] = None):
        if dim < 2:
            raise DimensionError(f"qudit dimension must be at least 2, got {dim}")
        if num_wires < 1:
            raise WireError(f"a circuit needs at least one wire, got {num_wires}")
        self.num_wires = int(num_wires)
        self.dim = int(dim)
        self.name = name or "circuit"
        self._ops: Optional[List[BaseOp]] = []
        self._table = None  # cached/backing repro.ir.table.GateTable

    # ------------------------------------------------------------------
    # Columnar form
    # ------------------------------------------------------------------
    @classmethod
    def from_table(cls, table, name: Optional[str] = None) -> "QuditCircuit":
        """A circuit backed by a :class:`~repro.ir.table.GateTable`.

        Op objects are materialised lazily on first iteration; counting and
        structure queries run on the columns directly.
        """
        circuit = cls(table.num_wires, table.dim, name=name or table.name)
        circuit._ops = None
        circuit._table = table
        return circuit

    def to_table(self):
        """The columnar (struct-of-arrays) form of this circuit, cached.

        Mutating the circuit invalidates the cache; tables themselves are
        immutable, so sharing one across copies is safe.
        """
        if self._table is None:
            from repro.ir.table import GateTable

            self._table = GateTable.from_ops(
                self._materialized(), self.num_wires, self.dim, name=self.name
            )
        return self._table

    @property
    def cached_table(self):
        """The live cached :class:`~repro.ir.table.GateTable`, or ``None``."""
        return self._table

    def _materialized(self) -> List[BaseOp]:
        if self._ops is None:
            self._ops = self._table.to_ops()
        return self._ops

    def _invalidate_table(self) -> None:
        self._table = None

    @classmethod
    def _from_validated_ops(
        cls, num_wires: int, dim: int, ops: Iterable[BaseOp], name: Optional[str] = None
    ) -> "QuditCircuit":
        """Internal fast path: wrap ops known to satisfy this shape's invariants."""
        circuit = cls(num_wires, dim, name=name)
        circuit._ops = list(ops)
        return circuit

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def append(self, op: BaseOp) -> "QuditCircuit":
        """Append one operation (validating its wires) and return ``self``."""
        self._validate_op(op)
        self._materialized().append(op)
        self._invalidate_table()
        return self

    def extend(self, ops: Iterable[BaseOp]) -> "QuditCircuit":
        """Append several operations and return ``self``.

        The whole batch is validated before any mutation, so a failing
        operation can never leave the circuit half-extended.
        """
        staged = list(ops)
        for op in staged:
            self._validate_op(op)
        self._materialized().extend(staged)
        self._invalidate_table()
        return self

    def _extend_validated(self, ops: Iterable[BaseOp]) -> "QuditCircuit":
        """Append ops already known to be valid for this shape (no re-checks)."""
        self._materialized().extend(ops)
        self._invalidate_table()
        return self

    def add_gate(
        self,
        gate: Gate,
        target: int,
        controls: Sequence = (),
    ) -> "QuditCircuit":
        """Convenience wrapper: ``append(Operation(gate, target, controls))``."""
        return self.append(Operation(gate, target, controls))

    def compose(self, other: "QuditCircuit") -> "QuditCircuit":
        """Append every operation of ``other`` (same dimension required).

        Operations coming from a circuit were already validated against its
        shape: with matching dimension and ``other.num_wires <= num_wires``
        every wire and gate-dimension invariant transfers, so composition
        skips the per-op re-validation that ``extend`` performs on raw
        operation lists.  On failure ``self`` is left exactly as it was.
        """
        if other.dim != self.dim:
            raise DimensionError("cannot compose circuits of different qudit dimensions")
        if other.num_wires > self.num_wires:
            raise WireError("cannot compose a circuit with more wires into a smaller one")
        return self._extend_validated(other._materialized())

    def inverse(self) -> "QuditCircuit":
        """Return a new circuit implementing the adjoint of this circuit."""
        if self._table is not None:
            return QuditCircuit.from_table(self._table.inverse(), name=f"{self.name}†")
        inv = QuditCircuit._from_validated_ops(
            self.num_wires, self.dim, [], name=f"{self.name}†"
        )
        inv._ops = [op.inverse() for op in reversed(self._materialized())]
        return inv

    def copy(self) -> "QuditCircuit":
        dup = QuditCircuit(self.num_wires, self.dim, name=self.name)
        dup._ops = list(self._ops) if self._ops is not None else None
        dup._table = self._table
        return dup

    def remap_wires(self, mapping: Dict[int, int], num_wires: Optional[int] = None) -> "QuditCircuit":
        """Return a copy of the circuit with wires relabelled through ``mapping``.

        Every wire used by the circuit must appear as a key of ``mapping``.
        ``num_wires`` defaults to ``max(mapping.values()) + 1``.
        """
        if self._table is not None:
            remapped = self._table.remap_wires(mapping, num_wires)
            return QuditCircuit.from_table(remapped, name=self.name)
        target_wires = num_wires if num_wires is not None else max(mapping.values()) + 1
        remapped = QuditCircuit(target_wires, self.dim, name=self.name)
        for op in self._materialized():
            remapped.append(_remap_op(op, mapping))
        return remapped

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def ops(self) -> List[BaseOp]:
        return list(self._materialized())

    def __len__(self) -> int:
        if self._ops is None:
            return len(self._table)
        return len(self._ops)

    def __iter__(self) -> Iterator[BaseOp]:
        return iter(self._materialized())

    def __getitem__(self, index: int) -> BaseOp:
        return self._materialized()[index]

    @property
    def is_permutation(self) -> bool:
        """True if every operation permutes the computational basis."""
        if self._table is not None:
            return self._table.is_permutation
        return all(op.is_permutation for op in self._materialized())

    def used_wires(self) -> tuple:
        """Sorted tuple of wires touched by at least one operation."""
        if self._table is not None:
            return self._table.used_wires()
        wires = set()
        for op in self._materialized():
            wires.update(op.wires())
        return tuple(sorted(wires))

    def targeted_wires(self) -> tuple:
        """Sorted tuple of wires that appear as a target of some operation."""
        if self._table is not None:
            return self._table.targeted_wires()
        return tuple(sorted({op.target for op in self._materialized()}))

    def count(self, predicate: Callable[[BaseOp], bool]) -> int:
        """Count operations satisfying an arbitrary predicate."""
        return sum(1 for op in self._materialized() if predicate(op))

    def num_ops(self) -> int:
        return len(self)

    def two_qudit_count(self) -> int:
        """Number of operations that touch exactly two wires.

        This is the paper's "two-qudit gate" metric once the circuit has
        been lowered so that no operation spans more than two wires.
        """
        if self._table is not None:
            return self._table.two_qudit_count()
        return self.count(lambda op: op.span() == 2)

    def multi_qudit_count(self) -> int:
        """Number of operations that touch three or more wires (macros)."""
        if self._table is not None:
            return self._table.multi_qudit_count()
        return self.count(lambda op: op.span() >= 3)

    def single_qudit_count(self) -> int:
        if self._table is not None:
            return self._table.single_qudit_count()
        return self.count(lambda op: op.span() == 1)

    def g_gate_count(self) -> int:
        """Number of operations that are literally G-gates.

        Meaningful after lowering with :func:`repro.core.lowering.lower_to_g_gates`;
        before lowering macros are simply not counted.
        """
        if self._table is not None:
            return self._table.g_gate_count()
        return self.count(lambda op: op.is_g_gate(self.dim))

    def controlled_g_gate_count(self) -> int:
        """Number of G-gates that carry their single ``|0⟩`` control."""
        if self._table is not None:
            return self._table.controlled_g_gate_count()
        return self.count(
            lambda op: getattr(op, "num_controls", 0) == 1 and op.is_g_gate(self.dim)
        )

    def is_g_circuit(self) -> bool:
        """True if every operation is a G-gate."""
        if self._table is not None:
            return self._table.is_g_circuit()
        return all(op.is_g_gate(self.dim) for op in self._materialized())

    def max_span(self) -> int:
        """Largest number of wires any single operation touches (0 if empty)."""
        if self._table is not None:
            return self._table.max_span()
        return max((op.span() for op in self._materialized()), default=0)

    def label_histogram(self) -> Counter:
        """Histogram of operations keyed by a readable label."""
        if self._table is not None:
            return self._table.label_histogram()
        histogram: Counter = Counter()
        for op in self._materialized():
            if isinstance(op, StarShiftOp):
                key = "X+⋆" if op.sign > 0 else "X-⋆"
            else:
                key = op.gate.label
            prefix = "".join(f"|{p.label}⟩" for _, p in op.controls)
            histogram[prefix + "-" + key if prefix else key] += 1
        return histogram

    def depth(self) -> int:
        """Circuit depth under greedy as-soon-as-possible scheduling."""
        if self._table is not None:
            return self._table.depth()
        frontier = [0] * self.num_wires
        for op in self._materialized():
            level = max(frontier[w] for w in op.wires()) + 1
            for w in op.wires():
                frontier[w] = level
        return max(frontier, default=0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QuditCircuit(name={self.name!r}, wires={self.num_wires}, "
            f"dim={self.dim}, ops={len(self)})"
        )

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _validate_op(self, op: BaseOp) -> None:
        if not isinstance(op, BaseOp):
            raise WireError(f"expected an operation, got {op!r}")
        for wire in op.wires():
            if not 0 <= wire < self.num_wires:
                raise WireError(
                    f"operation {op!r} uses wire {wire}, circuit has {self.num_wires} wires"
                )
        if isinstance(op, Operation) and op.gate.dim != self.dim:
            raise DimensionError(
                f"gate {op.gate.label} has dimension {op.gate.dim}, circuit has {self.dim}"
            )


def _remap_op(op: BaseOp, mapping: Dict[int, int]) -> BaseOp:
    def lookup(wire: int) -> int:
        try:
            return mapping[wire]
        except KeyError:
            raise WireError(f"wire {wire} missing from remap mapping") from None

    controls = tuple((lookup(w), p) for w, p in op.controls)
    if isinstance(op, StarShiftOp):
        return StarShiftOp(lookup(op.star_wire), lookup(op.target), op.sign, controls)
    if isinstance(op, Operation):
        return Operation(op.gate, lookup(op.target), controls)
    raise WireError(f"cannot remap unknown operation type {type(op).__name__}")


def controlled(
    gate: Gate,
    target: int,
    control_wire: int,
    predicate: ControlPredicate,
) -> Operation:
    """Build a singly-controlled operation (convenience helper)."""
    return Operation(gate, target, [(control_wire, predicate)])
