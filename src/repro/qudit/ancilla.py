"""Ancilla bookkeeping.

Section II of the paper classifies ancilla qudits into four types according
to their required initial and final states:

* **burnable** — starts in ``|0⟩``, final state arbitrary;
* **clean**    — starts in ``|0⟩``, must end in ``|0⟩``;
* **garbage**  — arbitrary initial state, arbitrary final state;
* **borrowed** — arbitrary initial state, must be restored to it.

Synthesis routines return a :class:`SynthesisResult` that records which wires
play which role, so that the verifiers can check the corresponding
restoration invariants and the benchmark harness can report ancilla usage.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.qudit.circuit import QuditCircuit


class AncillaKind(enum.Enum):
    """The four ancilla types of Section II."""

    BURNABLE = "burnable"
    CLEAN = "clean"
    GARBAGE = "garbage"
    BORROWED = "borrowed"

    @property
    def requires_zero_start(self) -> bool:
        return self in (AncillaKind.BURNABLE, AncillaKind.CLEAN)

    @property
    def requires_restoration(self) -> bool:
        """True if the final state is constrained (to ``|0⟩`` or the input)."""
        return self in (AncillaKind.CLEAN, AncillaKind.BORROWED)


@dataclass
class SynthesisResult:
    """A synthesised circuit together with its wire roles.

    Attributes
    ----------
    circuit:
        The synthesised :class:`QuditCircuit`.
    controls:
        Wires holding the control qudits (preserved by the circuit).
    target:
        The target wire (``None`` for circuits without a single designated
        target, e.g. reversible-function implementations).
    ancillas:
        Mapping from ancilla wire to its :class:`AncillaKind`.
    notes:
        Free-form metadata (e.g. which theorem produced the circuit).
    """

    circuit: QuditCircuit
    controls: Tuple[int, ...] = ()
    target: Optional[int] = None
    ancillas: Dict[int, AncillaKind] = field(default_factory=dict)
    notes: str = ""

    @property
    def dim(self) -> int:
        return self.circuit.dim

    def ancilla_count(self, kind: Optional[AncillaKind] = None) -> int:
        """Number of ancilla wires, optionally restricted to one kind."""
        if kind is None:
            return len(self.ancillas)
        return sum(1 for k in self.ancillas.values() if k is kind)

    def borrowed_wires(self) -> Tuple[int, ...]:
        return tuple(sorted(w for w, k in self.ancillas.items() if k is AncillaKind.BORROWED))

    def clean_wires(self) -> Tuple[int, ...]:
        return tuple(sorted(w for w, k in self.ancillas.items() if k is AncillaKind.CLEAN))

    def describe(self) -> str:
        """One-line summary used in benchmark tables and examples."""
        parts = [
            f"{self.circuit.name}",
            f"wires={self.circuit.num_wires}",
            f"ops={self.circuit.num_ops()}",
        ]
        if self.ancillas:
            kinds = ", ".join(f"{w}:{k.value}" for w, k in sorted(self.ancillas.items()))
            parts.append(f"ancillas[{kinds}]")
        else:
            parts.append("ancilla-free")
        return " ".join(parts)
