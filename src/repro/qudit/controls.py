"""Control predicates for controlled qudit gates.

The paper uses several control conditions on a single control qudit:

* ``|l⟩``-control — fire when the control is in state ``|l⟩``
  (:class:`Value`); the default multi-controlled gate ``|0^k⟩-U`` uses
  ``Value(0)`` on every control;
* ``|o⟩``-control — fire when the control is in an odd basis state
  (:class:`Odd`), written ``Π_{odd l} |l⟩-U`` in the paper;
* ``|e⟩``-control — fire when the control is in a non-zero even basis state
  (:class:`EvenNonZero`));
* arbitrary subsets of firing values (:class:`InSet`), used by the even-``d``
  two-controlled gadget.

A predicate answers two questions: does a given value satisfy it, and which
values of ``[d]`` satisfy it (used when lowering an ``|o⟩``/``|e⟩``/set
control into a product of plain ``|l⟩``-controlled gates).
"""

from __future__ import annotations

from typing import FrozenSet, Tuple

from repro.exceptions import GateError


class ControlPredicate:
    """Base class for control predicates."""

    label: str = "?"

    def satisfied_by(self, value: int, dim: int) -> bool:
        """Return True if a control qudit in basis state ``value`` fires."""
        raise NotImplementedError

    def values(self, dim: int) -> Tuple[int, ...]:
        """Return the sorted tuple of firing values in ``[dim]``."""
        return tuple(v for v in range(dim) if self.satisfied_by(v, dim))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ControlPredicate):
            return NotImplemented
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self):
        return ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.label})"


class Value(ControlPredicate):
    """Fire when the control qudit is in the specific basis state ``|value⟩``."""

    def __init__(self, value: int):
        if value < 0:
            raise GateError(f"control value must be non-negative, got {value}")
        self.value = int(value)
        self.label = str(self.value)

    def satisfied_by(self, value: int, dim: int) -> bool:
        if self.value >= dim:
            raise GateError(f"control value {self.value} out of range for dimension {dim}")
        return value == self.value

    def _key(self):
        return (self.value,)


class Odd(ControlPredicate):
    """The paper's ``|o⟩``-control: fire on every odd basis state."""

    label = "o"

    def satisfied_by(self, value: int, dim: int) -> bool:
        return value % 2 == 1


class EvenNonZero(ControlPredicate):
    """The paper's ``|e⟩``-control: fire on every non-zero even basis state."""

    label = "e"

    def satisfied_by(self, value: int, dim: int) -> bool:
        return value != 0 and value % 2 == 0


class InSet(ControlPredicate):
    """Fire when the control value lies in an explicit set of values."""

    def __init__(self, values: FrozenSet[int]):
        self._values = frozenset(int(v) for v in values)
        if not self._values:
            raise GateError("InSet control requires at least one firing value")
        if any(v < 0 for v in self._values):
            raise GateError("InSet control values must be non-negative")
        self.label = "∈{" + ",".join(str(v) for v in sorted(self._values)) + "}"

    def satisfied_by(self, value: int, dim: int) -> bool:
        if max(self._values) >= dim:
            raise GateError("InSet control has values out of range for this dimension")
        return value in self._values

    def _key(self):
        return (tuple(sorted(self._values)),)


#: Convenience singleton-style constructors used throughout the synthesis code.
ZERO = Value(0)
ONE = Value(1)


def value(v: int) -> Value:
    """Shorthand constructor for a ``|v⟩``-control."""
    return Value(v)
