"""Qudit circuit substrate: gates, controls, operations, circuits, ancillas."""

from repro.qudit.ancilla import AncillaKind, SynthesisResult
from repro.qudit.circuit import QuditCircuit, controlled
from repro.qudit.controls import ControlPredicate, EvenNonZero, InSet, Odd, Value, value
from repro.qudit.drawer import draw
from repro.qudit.gates import Gate, SingleQuditUnitary, XPerm, XPlus
from repro.qudit.operations import BaseOp, Operation, StarShiftOp

__all__ = [
    "AncillaKind",
    "SynthesisResult",
    "QuditCircuit",
    "controlled",
    "ControlPredicate",
    "EvenNonZero",
    "InSet",
    "Odd",
    "Value",
    "value",
    "draw",
    "Gate",
    "SingleQuditUnitary",
    "XPerm",
    "XPlus",
    "BaseOp",
    "Operation",
    "StarShiftOp",
]
