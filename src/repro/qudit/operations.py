"""Circuit operations: gates placed on wires with (possibly several) controls.

Two operation kinds exist:

* :class:`Operation` — a single-qudit gate applied to a target wire,
  optionally controlled by any number of ``(wire, predicate)`` pairs.  The
  paper's gate set ``G = {Xij} ∪ {|0⟩-X01}`` corresponds to operations with
  zero controls and a transposition gate, or one ``Value(0)`` control and an
  ``X01`` gate (see :meth:`Operation.is_g_gate`).
* :class:`StarShiftOp` — the paper's ``|⋆⟩|0...0⟩-X±⋆`` gate (Fig. 6): when
  every ordinary control fires, the target is shifted by ``± value`` where
  ``value`` is the current state of the designated star wire.  It is a
  synthesis-internal macro that the lowering pass expands into ordinary
  controlled gates.

Both kinds know how to apply themselves to a classical basis state (what the
scalar permutation simulator needs) and additionally expose three vectorized
hooks consumed by the simulation backends in :mod:`repro.sim.backend`:

* :meth:`BaseOp.permutation_table` — the operation's action on the whole
  ``d^n`` basis as a flat numpy gather table, cached per ``(dim, num_wires)``;
* :meth:`BaseOp.control_mask` — the control predicate evaluated over the whole
  basis as a boolean array broadcastable against the state reshaped to
  ``(d,) * n``;
* :meth:`BaseOp.map_indices` / :meth:`BaseOp.controls_fire_flat` — the same
  action and predicate evaluated on an *arbitrary batch* of flat basis
  indices with O(batch) stride arithmetic, never materialising a ``d^n``
  table.  The sparse simulator and the classical index path
  (:meth:`repro.ir.table.GateTable.apply_to_indices`) build on this hook;
  it is the only one that works on registers too large for a statevector.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.exceptions import GateError, WireError
from repro.qudit.controls import ControlPredicate, Value
from repro.qudit.gates import Gate, XPerm

Control = Tuple[int, ControlPredicate]

#: Gather tables shared across *structurally equal* operations.  Lowered
#: circuits repeat the same few dozen G-gate forms thousands of times as
#: distinct instances; keying on (kind, dim, num_wires, wires, payload,
#: controls) lets them all share one table.  Bounded FIFO so a long-running
#: process sweeping many distinct op forms cannot grow without limit (live
#: ops keep their table alive through the per-instance cache regardless).
_SHARED_TABLE_CACHE: dict = {}
_SHARED_TABLE_CACHE_MAX = 4096


def _shared_table_cache_put(key, table) -> None:
    while len(_SHARED_TABLE_CACHE) >= _SHARED_TABLE_CACHE_MAX:
        _SHARED_TABLE_CACHE.pop(next(iter(_SHARED_TABLE_CACHE)))
    _SHARED_TABLE_CACHE[key] = table


#: ``(predicate, dim) -> bool[dim]`` firing vectors for vectorized control
#: evaluation on decoded digits.  Predicates are immutable and hashable, and
#: only a handful of (predicate, dim) forms ever exist, so a small bounded
#: FIFO is plenty.
_FIRES_VECTOR_CACHE: dict = {}
_FIRES_VECTOR_CACHE_MAX = 1024


def predicate_fires_vector(predicate: ControlPredicate, dim: int) -> np.ndarray:
    """``bool[dim]`` vector with True at every digit that fires ``predicate``.

    Indexing it with a decoded-digit array evaluates the predicate over an
    arbitrary batch of basis states in one vectorized step.  Returned
    read-only and cached per ``(predicate, dim)``.
    """
    key = (predicate, dim)
    fires = _FIRES_VECTOR_CACHE.get(key)
    if fires is None:
        fires = np.zeros(dim, dtype=bool)
        for value in predicate.values(dim):
            fires[value] = True
        fires.setflags(write=False)
        while len(_FIRES_VECTOR_CACHE) >= _FIRES_VECTOR_CACHE_MAX:
            _FIRES_VECTOR_CACHE.pop(next(iter(_FIRES_VECTOR_CACHE)))
        _FIRES_VECTOR_CACHE[key] = fires
    return fires


def _normalize_controls(controls: Sequence[Control]) -> Tuple[Control, ...]:
    normalized: List[Control] = []
    for wire, predicate in controls:
        if not isinstance(predicate, ControlPredicate):
            raise GateError(f"control predicate {predicate!r} is not a ControlPredicate")
        normalized.append((int(wire), predicate))
    return tuple(normalized)


class BaseOp:
    """Common interface shared by :class:`Operation` and :class:`StarShiftOp`."""

    controls: Tuple[Control, ...]
    target: int

    def wires(self) -> Tuple[int, ...]:
        raise NotImplementedError

    def span(self) -> int:
        """Number of distinct wires the operation touches."""
        return len(self.wires())

    def inverse(self) -> "BaseOp":
        raise NotImplementedError

    def controls_fire(self, state: Sequence[int], dim: int) -> bool:
        """Return True if every control predicate is satisfied by ``state``."""
        return all(pred.satisfied_by(state[wire], dim) for wire, pred in self.controls)

    def apply_to_basis(self, state: List[int], dim: int) -> None:
        """Apply the operation in place to a classical basis state."""
        raise NotImplementedError

    @property
    def is_permutation(self) -> bool:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Vectorized hooks for the simulation backends
    # ------------------------------------------------------------------
    def control_mask(self, dim: int, num_wires: int, *, flat: bool = False) -> np.ndarray:
        """Boolean array marking the basis states on which every control fires.

        The default shape has ``dim`` on every control axis and ``1``
        elsewhere, so it broadcasts against a statevector reshaped to
        ``(dim,) * num_wires``; with ``flat=True`` the mask is materialised
        over the full ``dim ** num_wires`` flat basis.  Results are cached per
        ``(dim, num_wires, flat)`` and returned read-only.
        """
        cache = self.__dict__.setdefault("_control_mask_cache", {})
        key = (dim, num_wires, flat)
        mask = cache.get(key)
        if mask is None:
            if flat:
                shaped = self.control_mask(dim, num_wires)
                mask = np.broadcast_to(shaped, (dim,) * num_wires).reshape(-1)
            else:
                mask = np.ones((1,) * num_wires, dtype=bool)
                for wire, predicate in self.controls:
                    if not 0 <= wire < num_wires:
                        raise WireError(
                            f"control wire {wire} out of range for {num_wires} wires"
                        )
                    fires = np.zeros(dim, dtype=bool)
                    for value in predicate.values(dim):
                        fires[value] = True
                    shape = [1] * num_wires
                    shape[wire] = dim
                    mask = mask & fires.reshape(shape)
            mask.setflags(write=False)
            cache[key] = mask
        return mask

    def permutation_table(self, dim: int, num_wires: int) -> np.ndarray:
        """The operation's action on the full basis as a flat gather table.

        Entry ``i`` is the flat index of the image of basis state ``i``, so a
        statevector evolves as ``new[table] = old`` (a single scatter).  Only
        defined for permutation operations; the table is built with vectorized
        numpy arithmetic (no per-index Python loop), cached per
        ``(dim, num_wires)`` and returned read-only.
        """
        if not self.is_permutation:
            raise GateError(f"{self!r} is not a permutation operation")
        cache = self.__dict__.setdefault("_permutation_table_cache", {})
        key = (dim, num_wires)
        table = cache.get(key)
        if table is None:
            shared_key = self._table_key(dim, num_wires)
            table = _SHARED_TABLE_CACHE.get(shared_key)
            if table is None:
                for wire in self.wires():
                    if not 0 <= wire < num_wires:
                        raise WireError(f"wire {wire} out of range for {num_wires} wires")
                table = self._build_permutation_table(dim, num_wires)
                table.setflags(write=False)
                _shared_table_cache_put(shared_key, table)
            cache[key] = table
        return table

    def controls_fire_flat(self, indices: np.ndarray, dim: int, num_wires: int) -> np.ndarray:
        """Vectorized :meth:`controls_fire` over a batch of flat basis indices.

        Decodes only the control digits of each index (stride arithmetic,
        O(len(indices)) per control) — never the full basis — so it works on
        registers of any size.
        """
        mask = np.ones(np.shape(indices), dtype=bool)
        for wire, predicate in self.controls:
            if not 0 <= wire < num_wires:
                raise WireError(f"control wire {wire} out of range for {num_wires} wires")
            stride = dim ** (num_wires - 1 - wire)
            fires = predicate_fires_vector(predicate, dim)
            mask &= fires[(indices // stride) % dim]
        return mask

    def map_indices(self, indices: np.ndarray, dim: int, num_wires: int) -> np.ndarray:
        """Images of a batch of flat basis indices under this operation.

        The O(batch)-time, O(batch)-memory counterpart of
        :meth:`permutation_table`: the same stride arithmetic is applied
        directly to the requested ``int64`` indices instead of to
        ``arange(d^n)``, so no ``d^n`` array is ever built and the method
        works on basis sizes far beyond any statevector (``d^n >= 10^9``).
        Only defined for permutation operations; indices are not range
        checked (callers validate the batch once).
        """
        raise NotImplementedError

    def _table_key(self, dim: int, num_wires: int) -> tuple:
        raise NotImplementedError

    def _build_permutation_table(self, dim: int, num_wires: int) -> np.ndarray:
        raise NotImplementedError

    def _check_distinct_wires(self) -> None:
        wires = self.wires()
        if len(set(wires)) != len(wires):
            raise WireError(f"operation uses a wire more than once: {wires}")


class Operation(BaseOp):
    """A (multi-)controlled single-qudit gate."""

    def __init__(self, gate: Gate, target: int, controls: Sequence[Control] = ()):
        self.gate = gate
        self.target = int(target)
        self.controls = _normalize_controls(controls)
        self._check_distinct_wires()

    def wires(self) -> Tuple[int, ...]:
        return tuple(wire for wire, _ in self.controls) + (self.target,)

    @property
    def is_permutation(self) -> bool:
        return self.gate.is_permutation

    @property
    def num_controls(self) -> int:
        return len(self.controls)

    def inverse(self) -> "Operation":
        return Operation(self.gate.inverse(), self.target, self.controls)

    def apply_to_basis(self, state: List[int], dim: int) -> None:
        if not self.gate.is_permutation:
            raise GateError("cannot apply a non-permutation gate to a classical basis state")
        if self.controls_fire(state, dim):
            state[self.target] = self.gate.permutation()[state[self.target]]

    def _table_key(self, dim: int, num_wires: int) -> tuple:
        return ("op", dim, num_wires, self.target, self.gate.permutation(), self.controls)

    def _build_permutation_table(self, dim: int, num_wires: int) -> np.ndarray:
        indices = np.arange(dim**num_wires)
        stride = dim ** (num_wires - 1 - self.target)
        digits = (indices // stride) % dim
        perm = np.asarray(self.gate.permutation(), dtype=np.int64)
        delta = (perm[digits] - digits) * stride
        mask = self.control_mask(dim, num_wires, flat=True)
        return indices + np.where(mask, delta, 0)

    def map_indices(self, indices: np.ndarray, dim: int, num_wires: int) -> np.ndarray:
        if not self.is_permutation:
            raise GateError(f"{self!r} is not a permutation operation")
        if not 0 <= self.target < num_wires:
            raise WireError(f"wire {self.target} out of range for {num_wires} wires")
        indices = np.asarray(indices, dtype=np.int64)
        stride = dim ** (num_wires - 1 - self.target)
        digits = (indices // stride) % dim
        perm = np.asarray(self.gate.permutation(), dtype=np.int64)
        delta = (perm[digits] - digits) * stride
        if self.controls:
            delta = np.where(self.controls_fire_flat(indices, dim, num_wires), delta, 0)
        return indices + delta

    def is_g_gate(self, dim: int) -> bool:
        """Return True if the operation belongs to the paper's gate set G.

        ``G = {Xij : i != j} ∪ {|0⟩-X01}``: either an uncontrolled
        transposition, or an ``X01`` transposition with exactly one
        ``Value(0)`` control.
        """
        if not isinstance(self.gate, XPerm) or not self.gate.is_transposition():
            return False
        if self.num_controls == 0:
            return True
        if self.num_controls == 1:
            wire_pred = self.controls[0][1]
            return (
                isinstance(wire_pred, Value)
                and wire_pred.value == 0
                and self.gate.transposition_points() == (0, 1)
            )
        return False

    def is_two_qudit(self) -> bool:
        """Return True if the operation touches exactly two wires."""
        return self.span() == 2

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ctrl = ", ".join(f"{p.label}@{w}" for w, p in self.controls)
        return f"Operation({self.gate.label} -> w{self.target}" + (f" | {ctrl})" if ctrl else ")")


class StarShiftOp(BaseOp):
    """The ``|⋆⟩|0...⟩-X±⋆`` gate of Fig. 6 (and its multi-controlled variants).

    Semantics on a basis state: if every entry of ``controls`` fires, the
    target becomes ``(target + sign * state[star_wire]) mod d``.  The star
    wire itself is never modified.
    """

    def __init__(self, star_wire: int, target: int, sign: int, controls: Sequence[Control] = ()):
        if sign not in (+1, -1):
            raise GateError(f"star-shift sign must be +1 or -1, got {sign}")
        self.star_wire = int(star_wire)
        self.target = int(target)
        self.sign = sign
        self.controls = _normalize_controls(controls)
        self._check_distinct_wires()

    def wires(self) -> Tuple[int, ...]:
        return (self.star_wire,) + tuple(wire for wire, _ in self.controls) + (self.target,)

    @property
    def is_permutation(self) -> bool:
        return True

    @property
    def num_controls(self) -> int:
        return len(self.controls) + 1  # the star wire also acts as a control

    def inverse(self) -> "StarShiftOp":
        return StarShiftOp(self.star_wire, self.target, -self.sign, self.controls)

    def apply_to_basis(self, state: List[int], dim: int) -> None:
        if self.controls_fire(state, dim):
            state[self.target] = (state[self.target] + self.sign * state[self.star_wire]) % dim

    def _table_key(self, dim: int, num_wires: int) -> tuple:
        return ("star", dim, num_wires, self.star_wire, self.target, self.sign, self.controls)

    def _build_permutation_table(self, dim: int, num_wires: int) -> np.ndarray:
        indices = np.arange(dim**num_wires)
        stride_target = dim ** (num_wires - 1 - self.target)
        stride_star = dim ** (num_wires - 1 - self.star_wire)
        target = (indices // stride_target) % dim
        star = (indices // stride_star) % dim
        shifted = (target + self.sign * star) % dim
        delta = (shifted - target) * stride_target
        mask = self.control_mask(dim, num_wires, flat=True)
        return indices + np.where(mask, delta, 0)

    def map_indices(self, indices: np.ndarray, dim: int, num_wires: int) -> np.ndarray:
        for wire in (self.star_wire, self.target):
            if not 0 <= wire < num_wires:
                raise WireError(f"wire {wire} out of range for {num_wires} wires")
        indices = np.asarray(indices, dtype=np.int64)
        stride_target = dim ** (num_wires - 1 - self.target)
        stride_star = dim ** (num_wires - 1 - self.star_wire)
        target = (indices // stride_target) % dim
        star = (indices // stride_star) % dim
        shifted = (target + self.sign * star) % dim
        delta = (shifted - target) * stride_target
        if self.controls:
            delta = np.where(self.controls_fire_flat(indices, dim, num_wires), delta, 0)
        return indices + delta

    def is_g_gate(self, dim: int) -> bool:
        return False

    def is_two_qudit(self) -> bool:
        return self.span() == 2

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = "X+⋆" if self.sign > 0 else "X-⋆"
        ctrl = ", ".join(f"{p.label}@{w}" for w, p in self.controls)
        return f"StarShiftOp({name}: ⋆@w{self.star_wire} -> w{self.target}" + (f" | {ctrl})" if ctrl else ")")
