"""repro — reproduction of "Optimal Synthesis of Multi-Controlled Qudit Gates".

The package reproduces the DAC 2023 paper by Zi, Li and Sun: linear-size
synthesis of multi-controlled gates on d-level qudits using at most one
ancilla, together with its applications (unitary synthesis with one clean
ancilla, ancilla-free implementation of classical reversible functions) and
the prior-work baselines the paper compares against.

Quick start
-----------
>>> from repro import synthesize_mct, verify
>>> result = synthesize_mct(dim=3, num_controls=4)      # ancilla-free, odd d
>>> verify.assert_mct_spec(result.circuit, result.controls, result.target)
>>> result.circuit.num_ops()                            # doctest: +SKIP
"""

from repro.core import (
    GateCountReport,
    count_gates,
    lower_to_g_gates,
    mct_ops,
    mcu_ops,
    random_unitary_gate,
    synthesize_mct,
    synthesize_mcu,
    synthesize_pk,
)
from repro.qudit import (
    AncillaKind,
    EvenNonZero,
    Odd,
    Operation,
    QuditCircuit,
    SingleQuditUnitary,
    StarShiftOp,
    SynthesisResult,
    Value,
    XPerm,
    XPlus,
    draw,
)
from repro import sim as verify

__version__ = "1.0.0"

__all__ = [
    "GateCountReport",
    "count_gates",
    "lower_to_g_gates",
    "mct_ops",
    "mcu_ops",
    "random_unitary_gate",
    "synthesize_mct",
    "synthesize_mcu",
    "synthesize_pk",
    "AncillaKind",
    "EvenNonZero",
    "Odd",
    "Operation",
    "QuditCircuit",
    "SingleQuditUnitary",
    "StarShiftOp",
    "SynthesisResult",
    "Value",
    "XPerm",
    "XPlus",
    "draw",
    "verify",
    "__version__",
]
