"""repro — reproduction of "Optimal Synthesis of Multi-Controlled Qudit Gates".

The package reproduces the DAC 2023 paper by Zi, Li and Sun: linear-size
synthesis of multi-controlled gates on d-level qudits using at most one
ancilla, together with its applications (unitary synthesis with one clean
ancilla, ancilla-free implementation of classical reversible functions) and
the prior-work baselines the paper compares against.

Quick start
-----------
>>> from repro import synthesize_mct, verify
>>> result = synthesize_mct(dim=3, num_controls=4)      # ancilla-free, odd d
>>> verify.assert_mct_spec(result.circuit, result.controls, result.target)
>>> result.circuit.num_ops()                            # doctest: +SKIP

Simulation backends and the pass pipeline
-----------------------------------------
The dense simulators are vectorized and backend-pluggable: pass
``backend="dense"`` (flat gather tables, the default) or ``backend="tensor"``
(axis-wise tensor ops) to :class:`verify.Statevector`,
:func:`verify.circuit_unitary` and the ``verify.assert_*`` helpers;
``verify.available_backends()`` lists the registered engines.

Lowering runs a composable pass pipeline (:mod:`repro.passes` —
``ExpandMacros`` plus peephole cleanups that only ever shrink gate counts);
:func:`lower_to_g_gates` is the unchanged-for-callers facade over it:

>>> from repro import lower_to_g_gates
>>> from repro.passes import default_lowering_pipeline
>>> lowered = lower_to_g_gates(result.circuit)          # same API as always
>>> state = verify.Statevector(5, 3, backend="tensor")  # pick an engine

Columnar IR (struct-of-arrays gate tables)
------------------------------------------
Materialised circuits have a compact columnar twin, :class:`GateTable`
(:mod:`repro.ir`): numpy int columns for opcode/wires/predicates plus
interned payload pools.  ``circuit.to_table()`` / ``table.to_circuit()``
round-trip losslessly; ``lower_to_g_gates`` lowers through cached expansion
templates straight into a table (pass ``engine="object"`` for the pure
object pipeline), so counting, peephole passes and backend application of a
lowered circuit all run as column kernels:

>>> lowered = lower_to_g_gates(result.circuit)          # table-backed
>>> lowered.g_gate_count(), lowered.depth()             # doctest: +SKIP
>>> lowered.cached_table                                # doctest: +SKIP

Synthesis registry and analytic estimator
-----------------------------------------
Every construction is registered as a strategy in :mod:`repro.synth` with
capability metadata and an exact analytic resource estimator, so scaling
studies never need to materialise circuits:

>>> from repro import synth, estimate
>>> synth.names()                                       # doctest: +SKIP
>>> estimate("mct", 3, 10**6).g_gates                   # doctest: +SKIP
>>> synth.auto_select(3, 20).strategy.name              # doctest: +SKIP

Batched execution service
-------------------------
:mod:`repro.exec` (exported here as ``batch_exec``) serves repeated and
bulk workloads: a persistent content-addressed compile cache (stable keys
over strategy/scenario/pipeline-spec/engine/salt, lossless ``GateTable`` ↔
``.npz`` artifacts, LRU-bounded on-disk store plus an in-process memo) and
a parallel workload runner whose planner dedupes requests sharing a cache
key.  Batched simulation lives in :mod:`repro.sim`
(:class:`~repro.sim.batch.BatchedStatevector`): B states evolve per
composed gather instead of one statevector at a time:

>>> from repro.exec import CompileCache, compile_lowered
>>> cache = CompileCache(".repro-cache")                # doctest: +SKIP
>>> compile_lowered("mct", 3, 64, cache=cache).source   # doctest: +SKIP

``python -m repro list|estimate|synthesize|simulate|fuzz|batch`` exposes
the same surface on the command line.
"""

from repro.core import (
    GateCountReport,
    count_gates,
    lower_to_g_gates,
    mct_ops,
    mcu_ops,
    random_unitary_gate,
    synthesize_mct,
    synthesize_mcu,
    synthesize_pk,
)
from repro.qudit import (
    AncillaKind,
    EvenNonZero,
    Odd,
    Operation,
    QuditCircuit,
    SingleQuditUnitary,
    StarShiftOp,
    SynthesisResult,
    Value,
    XPerm,
    XPlus,
    draw,
)
from repro.passes import (
    CancelAdjacentInverses,
    DropIdentities,
    ExpandMacros,
    FuseSingleQuditGates,
    Pass,
    PassPipeline,
    default_lowering_pipeline,
)
from repro import sim
from repro import verify
from repro import synth
from repro import fuzz
from repro import exec as batch_exec
from repro.ir import GateTable
from repro.resources.estimator import Resources, estimate

__version__ = "1.3.0"

__all__ = [
    "CancelAdjacentInverses",
    "DropIdentities",
    "ExpandMacros",
    "FuseSingleQuditGates",
    "Pass",
    "PassPipeline",
    "default_lowering_pipeline",
    "GateCountReport",
    "count_gates",
    "lower_to_g_gates",
    "mct_ops",
    "mcu_ops",
    "random_unitary_gate",
    "synthesize_mct",
    "synthesize_mcu",
    "synthesize_pk",
    "AncillaKind",
    "EvenNonZero",
    "Odd",
    "Operation",
    "QuditCircuit",
    "SingleQuditUnitary",
    "StarShiftOp",
    "SynthesisResult",
    "Value",
    "XPerm",
    "XPlus",
    "draw",
    "sim",
    "verify",
    "synth",
    "fuzz",
    "batch_exec",
    "GateTable",
    "Resources",
    "estimate",
    "__version__",
]
