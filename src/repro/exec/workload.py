"""Parallel workload runner: plan, dedupe, execute batches of requests.

A *workload* is a JSON list of requests against the synthesis service::

    {"requests": [
        {"kind": "synthesize", "strategy": "mct", "d": 3, "k": 6},
        {"kind": "simulate",  "strategy": "mct", "d": 3, "k": 5,
         "states": [[0,0,0,0,0,1], [0,0,0,0,0,2]], "backend": "dense"},
        {"kind": "simulate",  "strategy": "mct", "d": 3, "k": 5,
         "backend": "streaming", "memory_budget": "8M"},
        {"kind": "estimate",  "strategy": "mct", "d": 5, "k": 100000}
    ]}

Execution has three stages:

1. **plan** — every compile-bearing request (synthesize / simulate) is
   mapped to its content address; requests sharing a key are deduplicated
   into one compile task.
2. **warm** — the unique compile tasks run (fanned out over a
   ``multiprocessing`` pool when ``jobs > 1``), each worker writing into
   the shared on-disk :class:`~repro.exec.cache.CompileCache` directory.
3. **execute** — every request runs in order; compiles are now cache hits
   (in-process memo within a worker, the shared directory across workers
   and across whole runs).

Simulate requests are batched: all listed basis states of one request
evolve together through the batched backend kernels — classically (index
propagation) for permutation circuits, as a
:class:`~repro.sim.batch.BatchedStatevector` otherwise.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ReproError, WorkloadError
from repro.exec.cache import CompileCache
from repro.exec.keys import CODE_VERSION
from repro.exec.service import compile_lowered, lowered_key

_KINDS = ("synthesize", "simulate", "estimate")


@dataclass(frozen=True)
class WorkloadRequest:
    """One request of a batch workload."""

    kind: str
    strategy: str
    dim: int
    k: int
    #: Lowering engine for compile-bearing kinds.
    engine: str = "table"
    #: Simulation backend (simulate only).
    backend: str = "dense"
    #: Basis states to simulate, as digit rows (simulate only; default |0...0⟩).
    states: Tuple[Tuple[int, ...], ...] = ()
    #: Byte budget for the ``streaming`` backend (simulate only; accepts
    #: ``"8M"``-style strings in the JSON, normalised to bytes here).
    memory_budget: Optional[int] = None
    #: Verification level: a budget preset name (``smoke``/``standard``/
    #: ``audit``) — the synthesised macro is checked against the strategy's
    #: semantic spec under that budget (synthesize/simulate kinds only).
    verify: Optional[str] = None

    @classmethod
    def from_dict(cls, raw: Dict[str, object], index: int) -> "WorkloadRequest":
        if not isinstance(raw, dict):
            raise WorkloadError(f"request {index} must be an object, got {type(raw).__name__}")
        kind = str(raw.get("kind", ""))
        if kind not in _KINDS:
            raise WorkloadError(
                f"request {index}: unknown kind {kind!r}; expected one of {list(_KINDS)}"
            )
        missing = [name for name in ("strategy", "d", "k") if name not in raw]
        if missing:
            raise WorkloadError(f"request {index}: missing field(s) {missing}")
        unknown = set(raw) - {
            "kind", "strategy", "d", "k", "engine", "backend", "states", "memory_budget",
            "verify",
        }
        if unknown:
            raise WorkloadError(f"request {index}: unknown field(s) {sorted(unknown)}")
        verify = raw.get("verify")
        if verify is not None:
            from repro.verify import PRESET_NAMES

            verify = str(verify)
            if kind == "estimate":
                raise WorkloadError(
                    f"request {index}: verify does not apply to estimate requests "
                    "(no circuit is built)"
                )
            if verify not in PRESET_NAMES:
                raise WorkloadError(
                    f"request {index}: unknown verify level {verify!r}; "
                    f"expected one of {list(PRESET_NAMES)}"
                )
        try:
            dim, k = int(raw["d"]), int(raw["k"])
        except (TypeError, ValueError):
            raise WorkloadError(f"request {index}: d and k must be integers") from None
        states = raw.get("states", ())
        try:
            states = tuple(tuple(int(x) for x in row) for row in states)
        except (TypeError, ValueError):
            raise WorkloadError(
                f"request {index}: states must be rows of digits"
            ) from None
        if states and kind != "simulate":
            raise WorkloadError(f"request {index}: states only applies to simulate requests")
        memory_budget = raw.get("memory_budget")
        if memory_budget is not None:
            if kind != "simulate":
                raise WorkloadError(
                    f"request {index}: memory_budget only applies to simulate requests"
                )
            from repro.exceptions import GateError
            from repro.sim.streaming import parse_memory_budget

            try:
                memory_budget = parse_memory_budget(memory_budget)
            except GateError as error:
                raise WorkloadError(f"request {index}: {error}") from None
        return cls(
            kind=kind,
            strategy=str(raw["strategy"]),
            dim=dim,
            k=k,
            engine=str(raw.get("engine", "table")),
            backend=str(raw.get("backend", "dense")),
            states=states,
            memory_budget=memory_budget,
            verify=verify,
        )

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "kind": self.kind,
            "strategy": self.strategy,
            "d": self.dim,
            "k": self.k,
        }
        if self.engine != "table":
            out["engine"] = self.engine
        if self.backend != "dense":
            out["backend"] = self.backend
        if self.states:
            out["states"] = [list(row) for row in self.states]
        if self.memory_budget is not None:
            out["memory_budget"] = self.memory_budget
        if self.verify is not None:
            out["verify"] = self.verify
        return out

    def compile_key(self, salt: str = CODE_VERSION) -> Optional[str]:
        """The content address of the compile this request needs (or ``None``).

        ``"auto"`` is resolved through the registry first — the key must
        name the artifact that will actually be built, or the planner would
        neither dedupe an ``auto`` request against an explicit one nor
        against the key ``compile_lowered`` stores under.
        """
        if self.kind == "estimate":
            return None
        strategy = self.strategy
        if strategy == "auto":
            from repro.synth import registry

            strategy = registry.auto_select(self.dim, self.k).strategy.name
        return lowered_key(strategy, self.dim, self.k, engine=self.engine, salt=salt)


@dataclass
class WorkloadSpec:
    """A parsed workload: an ordered list of requests."""

    requests: List[WorkloadRequest] = field(default_factory=list)

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "WorkloadSpec":
        if isinstance(raw, list):  # bare list shorthand
            raw = {"requests": raw}
        if not isinstance(raw, dict) or "requests" not in raw:
            raise WorkloadError('a workload spec needs a "requests" list')
        rows = raw["requests"]
        if not isinstance(rows, list) or not rows:
            raise WorkloadError("a workload needs at least one request")
        return cls([WorkloadRequest.from_dict(row, i) for i, row in enumerate(rows)])

    @classmethod
    def from_json(cls, path: os.PathLike) -> "WorkloadSpec":
        try:
            raw = json.loads(Path(path).read_text(encoding="utf-8"))
        except OSError as error:
            raise WorkloadError(f"cannot read workload spec: {error}") from error
        except ValueError as error:
            raise WorkloadError(f"workload spec is not valid JSON: {error}") from error
        return cls.from_dict(raw)

    def to_dict(self) -> Dict[str, object]:
        return {"requests": [request.to_dict() for request in self.requests]}


@dataclass
class WorkloadPlan:
    """The deduplicated compile schedule of a workload."""

    #: key -> the first request needing that compile (its parameters drive it).
    compiles: Dict[str, WorkloadRequest]
    #: Per request: the compile key it consumes (``None`` for estimate).
    request_keys: List[Optional[str]]

    @property
    def dedup_savings(self) -> int:
        """How many compiles the dedup avoided."""
        return sum(1 for key in self.request_keys if key is not None) - len(self.compiles)


def plan_workload(spec: WorkloadSpec, *, salt: str = CODE_VERSION) -> WorkloadPlan:
    """Group the workload's requests by compile key."""
    compiles: Dict[str, WorkloadRequest] = {}
    request_keys: List[Optional[str]] = []
    for request in spec.requests:
        key = request.compile_key(salt)
        request_keys.append(key)
        if key is not None and key not in compiles:
            compiles[key] = request
    return WorkloadPlan(compiles=compiles, request_keys=request_keys)


# ----------------------------------------------------------------------
# Single-request execution (shared by the serial, pooled and serve paths)
# ----------------------------------------------------------------------
def execute_request(
    request: WorkloadRequest,
    cache: Optional[CompileCache],
    *,
    index: Optional[int] = None,
) -> Dict[str, object]:
    """Run one request against (and through) the compile cache.

    Exception-total: *any* failure — a :class:`ReproError` or an unexpected
    exception from a backend / numpy — becomes an ``ok=False`` row instead
    of propagating, so one poisoned request can never abort its siblings in
    ``pool.map`` (or kill a serve-daemon worker).  ``index`` is the
    request's position in its workload and is recorded on the row so error
    reports name the right request.
    """
    start = time.perf_counter()
    row: Dict[str, object] = dict(request.to_dict())
    if index is not None:
        row["index"] = int(index)
    try:
        if request.kind == "estimate":
            from repro.synth import registry

            resources = registry.estimate(request.strategy, request.dim, request.k)
            row.update(
                g_gates=int(resources.g_gates),
                two_qudit_gates=int(resources.two_qudit_gates),
                num_wires=int(resources.num_wires),
                cache="n/a",
            )
        else:
            outcome = compile_lowered(
                request.strategy,
                request.dim,
                request.k,
                cache=cache,
                engine=request.engine,
            )
            circuit = outcome.circuit
            row.update(
                strategy=outcome.strategy,  # "auto" resolved to the winner
                gates=circuit.num_ops(),
                num_wires=circuit.num_wires,
                cache=outcome.source,
                compile_seconds=round(outcome.seconds, 6),
            )
            if request.kind == "simulate":
                row["outputs"] = _simulate(request, circuit)
            if request.verify is not None:
                row["verify_result"] = _verify_macro(request, outcome.strategy)
        row["ok"] = True
    except ReproError as error:
        row["ok"] = False
        row["error"] = f"{type(error).__name__}: {error}"
    except Exception as error:  # noqa: BLE001 — see the docstring
        row["ok"] = False
        row["error"] = f"{type(error).__name__}: {error}"
        row["traceback"] = traceback.format_exc()
    row["seconds"] = round(time.perf_counter() - start, 6)
    return row


def execute_request_raw(
    raw: Dict[str, object],
    index: int,
    cache: Optional[CompileCache],
) -> Dict[str, object]:
    """Parse and run one *raw* request dict; exception-total like the above.

    This is the reusable core behind the pool workers and the serve daemon:
    even a dict that fails :meth:`WorkloadRequest.from_dict` validation
    comes back as an ``ok=False`` row carrying the real ``index`` instead
    of raising into the executor.
    """
    try:
        request = WorkloadRequest.from_dict(raw, index)
    except ReproError as error:
        row = dict(raw) if isinstance(raw, dict) else {}
        row.update(
            index=int(index),
            ok=False,
            error=f"{type(error).__name__}: {error}",
            seconds=0.0,
        )
        return row
    return execute_request(request, cache, index=index)


def _verify_macro(request: WorkloadRequest, strategy_name: str) -> Dict[str, object]:
    """Check the request's macro against its strategy's semantic spec.

    The compile cache only holds the *lowered* circuit, so the macro-level
    :class:`~repro.qudit.ancilla.SynthesisResult` is rebuilt here (cheap
    relative to the verification itself).  A failed check raises
    :class:`~repro.exceptions.VerificationError`, which the caller records
    as the request's error.
    """
    from repro.synth import registry
    from repro.verify import VerificationBudget

    strategy = registry.get(strategy_name)
    result = strategy.synthesize(request.dim, request.k)
    try:
        report = strategy.verify(
            result, request.dim, request.k,
            budget=VerificationBudget.preset(request.verify),
        )
    except NotImplementedError:
        return {"status": "unsupported"}
    return {
        "status": report.status,
        "tier": report.decided_by,
        "states_checked": int(report.states_checked),
    }


def _simulate(request: WorkloadRequest, circuit) -> List[str]:
    """Evolve the request's basis states (default ``|0...0⟩``) as one batch."""
    from repro.sim import BatchedStatevector, get_backend
    from repro.utils.indexing import digits_to_index, indices_to_digits

    rows = request.states or ((0,) * circuit.num_wires,)
    for i, digits in enumerate(rows):
        if len(digits) != circuit.num_wires:
            raise WorkloadError(
                f"simulate state {i} has {len(digits)} digits, circuit has "
                f"{circuit.num_wires} wires"
            )
        bad = [x for x in digits if not 0 <= x < request.dim]
        if bad:
            raise WorkloadError(
                f"simulate state {i} digit {bad[0]} out of range for d={request.dim}"
            )
    if circuit.is_permutation:
        # Classical batched path: propagate the B flat indices only.
        indices = [digits_to_index(digits, request.dim) for digits in rows]
        images = circuit.to_table().apply_to_indices(indices)
        digits = indices_to_digits(images, request.dim, circuit.num_wires)
        return ["".join(str(int(x)) for x in row) for row in digits]
    backend = get_backend(request.backend)  # fail fast on unknown engines
    if request.memory_budget is not None:
        if request.backend != "streaming":
            raise WorkloadError(
                f"memory_budget needs the streaming backend, got {request.backend!r}"
            )
        from repro.sim.streaming import StreamingBackend

        backend = StreamingBackend(request.memory_budget)
    batch = BatchedStatevector.from_basis_states(
        list(rows), request.dim, backend=backend
    )
    batch.apply_circuit(circuit)
    return ["".join(map(str, digits)) for digits in batch.most_probable()]


# ----------------------------------------------------------------------
# Cache-counter accounting (shared with the serve daemon's metrics)
# ----------------------------------------------------------------------
STATS_FIELDS = ("memo_hits", "disk_hits", "misses", "puts", "evictions")


def zero_cache_stats() -> Dict[str, int]:
    return {name: 0 for name in STATS_FIELDS}


def merge_cache_stats(into: Dict[str, int], delta: Dict[str, int]) -> Dict[str, int]:
    """Accumulate one worker's counter delta into a running total (in place)."""
    for name in STATS_FIELDS:
        into[name] = int(into.get(name, 0)) + int(delta.get(name, 0))
    return into


def _stats_delta(
    cache: Optional[CompileCache], before: Optional[Dict[str, int]]
) -> Dict[str, int]:
    if cache is None or before is None:
        return zero_cache_stats()
    after = cache.stats.as_dict()
    return {name: after[name] - before.get(name, 0) for name in STATS_FIELDS}


def execute_with_stats(
    raw: Dict[str, object],
    index: int,
    cache: Optional[CompileCache],
) -> Dict[str, object]:
    """One raw request plus the real cache-counter delta it caused.

    The pooled runner and the serve daemon both aggregate cache statistics
    by summing these per-request deltas — the honest counters, not a
    reconstruction from ``"built"``-provenance strings (which cannot see
    evictions and conflates misses with puts).
    """
    before = cache.stats.as_dict() if cache is not None else None
    row = execute_request_raw(raw, index, cache)
    return {"row": row, "cache_stats": _stats_delta(cache, before)}


# ----------------------------------------------------------------------
# Multiprocessing plumbing
# ----------------------------------------------------------------------
_WORKER_CACHE: Optional[CompileCache] = None


def _init_worker(cache_dir: Optional[str], salt: str) -> None:
    global _WORKER_CACHE
    _WORKER_CACHE = CompileCache(cache_dir, salt=salt)


def _worker_compile(task: Tuple[str, int, int, str]) -> Dict[str, object]:
    strategy, dim, k, engine = task
    cache = _WORKER_CACHE
    before = cache.stats.as_dict() if cache is not None else None
    try:
        outcome = compile_lowered(strategy, dim, k, cache=cache, engine=engine)
    except ReproError as error:  # the owning request reports the failure
        return {
            "cache": "error",
            "error": f"{type(error).__name__}: {error}",
            "cache_stats": _stats_delta(cache, before),
        }
    return {
        "key": outcome.key,
        "cache": outcome.source,
        "seconds": outcome.seconds,
        "cache_stats": _stats_delta(cache, before),
    }


def _worker_execute(task: Tuple[int, Dict[str, object]]) -> Dict[str, object]:
    index, raw = task
    return execute_with_stats(raw, index, _WORKER_CACHE)


@dataclass
class WorkloadReport:
    """JSON-able outcome of one workload run."""

    rows: List[Dict[str, object]]
    jobs: int
    seconds: float
    unique_compiles: int
    dedup_savings: int
    warm_hits: int
    cache_stats: Dict[str, int]

    @property
    def ok(self) -> bool:
        return all(row.get("ok") for row in self.rows)

    def to_json(self) -> Dict[str, object]:
        return {
            "jobs": self.jobs,
            "seconds": round(self.seconds, 4),
            "unique_compiles": self.unique_compiles,
            "dedup_savings": self.dedup_savings,
            "warm_hits": self.warm_hits,
            "ok": self.ok,
            "cache_stats": dict(self.cache_stats),
            "requests": self.rows,
        }


def run_workload(
    spec: WorkloadSpec,
    *,
    jobs: int = 1,
    cache_dir: Optional[os.PathLike] = None,
    cache: Optional[CompileCache] = None,
    salt: str = CODE_VERSION,
) -> WorkloadReport:
    """Plan, warm and execute a workload; returns the per-request report.

    ``jobs > 1`` fans the deduplicated compile tasks — and then the
    requests — over a ``fork`` multiprocessing pool whose workers each hold
    their own :class:`CompileCache` on the shared ``cache_dir`` (in-process
    memo per worker, artifacts shared through the directory).  Platforms
    without ``fork`` fall back to serial execution.
    """
    if cache is None:
        cache = CompileCache(cache_dir, salt=salt)
    plan = plan_workload(spec, salt=cache.salt)
    start = time.perf_counter()
    warm_hits = 0

    use_pool = jobs > 1 and len(spec.requests) > 1
    if use_pool:
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-posix platforms
            use_pool = False

    if use_pool and cache.cache_dir is None:
        raise WorkloadError("run_workload(jobs>1) needs a cache_dir to share artifacts")

    if not use_pool:
        for key, request in plan.compiles.items():
            try:
                outcome = compile_lowered(
                    request.strategy, request.dim, request.k, cache=cache, engine=request.engine
                )
            except ReproError:
                continue  # the owning request reports the failure below
            if outcome.cache_hit:
                warm_hits += 1
        rows = [
            execute_request(request, cache, index=index)
            for index, request in enumerate(spec.requests)
        ]
    else:
        tasks = [
            (request.strategy, request.dim, request.k, request.engine)
            for request in plan.compiles.values()
        ]
        # Sized for the request phase — dedup can shrink the compile phase
        # to one task, but the (possibly many) requests still fan out.
        with context.Pool(
            processes=min(jobs, len(spec.requests)),
            initializer=_init_worker,
            initargs=(str(cache.cache_dir), cache.salt),
        ) as pool:
            warm = pool.map(_worker_compile, tasks, chunksize=1)
            warm_hits = sum(1 for item in warm if item["cache"] not in ("built", "error"))
            results = pool.map(
                _worker_execute,
                [
                    (index, request.to_dict())
                    for index, request in enumerate(spec.requests)
                ],
                chunksize=1,
            )
        rows = [item["row"] for item in results]

    if use_pool:
        # The parent cache saw no traffic — every get/put happened inside
        # the workers' _WORKER_CACHE instances.  Sum the per-task counter
        # deltas the workers returned: the honest numbers, eviction counts
        # included (the old provenance reconstruction double-booked every
        # "built" as a miss *and* a put and could never see an eviction).
        cache_stats = zero_cache_stats()
        for item in warm:
            merge_cache_stats(cache_stats, item.get("cache_stats", {}))
        for item in results:
            merge_cache_stats(cache_stats, item.get("cache_stats", {}))
    else:
        cache_stats = cache.stats.as_dict()
    return WorkloadReport(
        rows=rows,
        jobs=jobs if use_pool else 1,
        seconds=time.perf_counter() - start,
        unique_compiles=len(plan.compiles),
        dedup_savings=plan.dedup_savings,
        warm_hits=warm_hits,
        cache_stats=cache_stats,
    )
