"""Compile service: cache-aware synthesize-and-lower in one call.

:func:`compile_lowered` is what the batch runner, the benchmarks and the
CLI use: given ``(strategy, d, k)`` it produces the simulation-ready
circuit (G-lowered for permutation circuits, the macro circuit otherwise),
consulting a :class:`~repro.exec.cache.CompileCache` first and populating
it on a miss.  The cache key covers the strategy, the scenario, the
lowering engine, the pass-pipeline spec and the code-version salt — see
:mod:`repro.exec.keys`.

The lower-level opt-ins live on the public APIs themselves:
``repro.synth.registry.synthesize(..., cache=...)`` caches the macro-level
synthesis output, and ``repro.core.lowering.lower_to_g_gates(...,
cache=..., cache_key=...)`` caches the lowered table.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.lowering import lower_to_g_gates
from repro.exec.cache import CacheEntry, CompileCache
from repro.exec.keys import CODE_VERSION, cache_key
from repro.qudit.circuit import QuditCircuit
from repro.synth import registry


@dataclass
class CompileOutcome:
    """One compile-service answer: the circuit plus provenance."""

    key: str
    circuit: QuditCircuit
    strategy: str
    dim: int
    k: int
    #: "memo" / "disk" on a cache hit, "built" on a miss.
    source: str
    seconds: float
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def cache_hit(self) -> bool:
        return self.source != "built"


def lowered_key(
    strategy: str,
    dim: int,
    k: int,
    *,
    engine: str = "table",
    pipeline=None,
    salt: Optional[str] = None,
) -> str:
    """The content address of the lowered form of ``strategy(d, k)``."""
    return cache_key(
        strategy, dim, k, stage="lowered", engine=engine, pipeline=pipeline, salt=salt
    )


def compile_lowered(
    strategy: str,
    dim: int,
    k: int,
    *,
    cache: Optional[CompileCache] = None,
    engine: str = "table",
) -> CompileOutcome:
    """Synthesise ``strategy(d, k)`` and lower it, through the cache.

    On a hit neither synthesis nor lowering runs — the circuit is rebuilt
    straight from the cached columnar table.  Non-permutation circuits
    (unitary payloads) are cached at the macro level, since G-lowering does
    not apply to them.
    """
    if strategy == "auto":
        strategy = registry.auto_select(dim, k).strategy.name
    salt = cache.salt if cache is not None else CODE_VERSION
    key = lowered_key(strategy, dim, k, engine=engine, salt=salt)
    start = time.perf_counter()
    entry: Optional[CacheEntry] = cache.get(key) if cache is not None else None
    if entry is not None:
        circuit = QuditCircuit.from_table(entry.table)
        return CompileOutcome(
            key=key,
            circuit=circuit,
            strategy=strategy,
            dim=dim,
            k=k,
            source=entry.source,
            seconds=time.perf_counter() - start,
            meta=dict(entry.meta),
        )
    result = registry.get(strategy).synthesize(dim, k)
    circuit = result.circuit
    if circuit.is_permutation:
        circuit = lower_to_g_gates(circuit, engine=engine)
    meta: Dict[str, object] = {
        "strategy": strategy,
        "d": dim,
        "k": k,
        "stage": "lowered" if circuit.is_g_circuit() else "macro",
        "engine": engine,
        "num_wires": circuit.num_wires,
        "num_ops": circuit.num_ops(),
        "controls": list(result.controls),
        "target": result.target,
        "ancillas": {str(w): kind.value for w, kind in result.ancillas.items()},
    }
    if cache is not None:
        cache.put(key, circuit.to_table(), meta=meta)
    return CompileOutcome(
        key=key,
        circuit=circuit,
        strategy=strategy,
        dim=dim,
        k=k,
        source="built",
        seconds=time.perf_counter() - start,
        meta=meta,
    )
