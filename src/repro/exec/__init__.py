"""Batched execution service: compile cache + workload runner.

``repro.exec`` turns the synthesis/lowering pipeline into a *service*: the
expensive work is computed once, content-addressed, and reused —

* :mod:`repro.exec.keys` — stable cache keys over
  ``(strategy, d, k, pipeline spec, engine, code-version salt)``;
* :mod:`repro.exec.serialize` — lossless ``GateTable`` ↔ ``.npz``
  serialization (columns + interned pools, nothing pickled);
* :mod:`repro.exec.cache` — :class:`CompileCache`, an in-process memo over
  an LRU-bounded on-disk store safe to share between worker processes;
* :mod:`repro.exec.service` — :func:`compile_lowered`, the cache-aware
  synthesize-and-lower entry point;
* :mod:`repro.exec.workload` — JSON workload specs, a planner that dedupes
  requests sharing a cache key, and the multiprocessing executor behind
  ``python -m repro batch``.
"""

from repro.exec.cache import CacheEntry, CacheStats, CompileCache
from repro.exec.keys import CODE_VERSION, cache_key, pipeline_spec
from repro.exec.serialize import (
    FORMAT_VERSION,
    arrays_to_table,
    load_table,
    save_table,
    table_to_arrays,
)
from repro.exec.service import CompileOutcome, compile_lowered, lowered_key
from repro.exec.workload import (
    STATS_FIELDS,
    WorkloadPlan,
    WorkloadReport,
    WorkloadRequest,
    WorkloadSpec,
    execute_request,
    execute_request_raw,
    execute_with_stats,
    merge_cache_stats,
    plan_workload,
    run_workload,
    zero_cache_stats,
)

__all__ = [
    "CODE_VERSION",
    "FORMAT_VERSION",
    "STATS_FIELDS",
    "CacheEntry",
    "CacheStats",
    "CompileCache",
    "CompileOutcome",
    "WorkloadPlan",
    "WorkloadReport",
    "WorkloadRequest",
    "WorkloadSpec",
    "arrays_to_table",
    "cache_key",
    "compile_lowered",
    "execute_request",
    "execute_request_raw",
    "execute_with_stats",
    "load_table",
    "lowered_key",
    "merge_cache_stats",
    "pipeline_spec",
    "plan_workload",
    "run_workload",
    "save_table",
    "table_to_arrays",
    "zero_cache_stats",
]
