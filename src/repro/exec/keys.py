"""Content-addressed cache keys for compiled circuits.

A cache key names *everything that determines the compiled artifact*: the
synthesis strategy and its ``(d, k)`` scenario, the compilation stage
(macro synthesis vs. G-gate lowering), the lowering engine, the canonical
spec of the pass pipeline that would run, and a code-version salt that is
bumped whenever the compilers change behaviour without changing their
inputs.  Keys are the SHA-256 of a canonical JSON rendering, so they are

* **stable across processes** — no reliance on ``hash()`` (which is
  randomised per process), dict ordering, or object identity;
* **sensitive to the pipeline** — two pipelines whose
  :meth:`~repro.passes.base.PassPipeline.spec` differ produce different
  keys, as does a different ``max_sweeps`` on ``ExpandMacros``;
* **sensitive to the salt** — bumping :data:`CODE_VERSION` (or passing a
  custom ``salt=``) invalidates every previously cached artifact at once.
"""

from __future__ import annotations

import hashlib
import json
from typing import Optional

from repro.exceptions import ReproError

#: Bump whenever synthesis or lowering output changes for identical inputs
#: (a new peephole rule, a changed template, a serialization format change).
#: Every key embeds this, so stale artifacts are never deserialized.
CODE_VERSION = "repro-exec-1"

#: Version of the key layout itself (field names / ordering below).
_KEY_LAYOUT = 1


def pipeline_spec(pipeline) -> object:
    """The canonical JSON-able spec of a pipeline (or pass), or ``None``.

    Accepts a :class:`~repro.passes.base.PassPipeline`, a single
    :class:`~repro.passes.base.Pass`, an already-JSON-able spec, or ``None``
    (meaning "the default lowering pipeline of this code version", which the
    salt covers).
    """
    if pipeline is None:
        return None
    spec = getattr(pipeline, "spec", None)
    if callable(spec):
        return spec()
    if isinstance(pipeline, (dict, list, tuple, str, int, float, bool)):
        return pipeline
    raise ReproError(f"cannot derive a pipeline spec from {pipeline!r}")


def cache_key(
    strategy: str,
    dim: int,
    k: int,
    *,
    stage: str = "lowered",
    engine: str = "table",
    pipeline=None,
    salt: Optional[str] = None,
) -> str:
    """The content address of one compiled artifact (SHA-256 hex digest).

    ``stage`` is ``"synth"`` for the macro-level synthesis output and
    ``"lowered"`` for the G-gate form; ``engine`` names the lowering engine
    (``"table"`` / ``"object"``); ``pipeline`` is hashed through
    :func:`pipeline_spec`.
    """
    payload = {
        "layout": _KEY_LAYOUT,
        "salt": salt if salt is not None else CODE_VERSION,
        "strategy": str(strategy),
        "d": int(dim),
        "k": int(k),
        "stage": str(stage),
        "engine": str(engine),
        "pipeline": pipeline_spec(pipeline),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True)
    return hashlib.sha256(canonical.encode("ascii")).hexdigest()
