"""The persistent content-addressed compile cache.

Two layers in front of the compilers:

* an **in-process memo** — an LRU dict from cache key to the live
  :class:`~repro.ir.table.GateTable` (tables are immutable, so sharing one
  instance across callers is safe and also shares its gather caches);
* an **on-disk store** — one ``<key>.npz`` table archive plus a ``<key>.json``
  metadata sidecar per entry under ``cache_dir``, written atomically
  (temp file + ``os.replace``) so concurrent workers of the batch runner
  can share one directory without locks.  The store is LRU-bounded by
  total byte size: every hit touches the entry's mtime and :meth:`put`
  evicts oldest-touched entries until the budget holds.

Keys come from :func:`repro.exec.keys.cache_key`; a cache never interprets
them.  Corrupted or format-incompatible archives are treated as misses (and
deleted) rather than errors — a cache must never be able to break a build.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.exceptions import CacheError
from repro.exec.keys import CODE_VERSION
from repro.exec.serialize import load_table, save_table
from repro.ir.table import GateTable

#: Default on-disk budget (bytes); lowered-circuit archives are ~10-100 KB.
DEFAULT_MAX_DISK_BYTES = 256 * 1024 * 1024

#: Default number of live tables kept in the in-process memo.
DEFAULT_MAX_MEMO_ENTRIES = 128


def atomic_write_bytes(path: Path, payload: bytes) -> None:
    """Write ``payload`` to ``path`` atomically (temp file + ``os.replace``).

    The temp file lives in the destination directory so the final rename
    never crosses a filesystem; concurrent writers of the same path leave
    whichever replacement lands last, never a torn file.  Shared by the
    cache sidecars and the tuning-database writer.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=path.suffix + ".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
        os.replace(tmp_name, path)
    except BaseException:
        if os.path.exists(tmp_name):
            os.unlink(tmp_name)
        raise


@dataclass
class CacheStats:
    """Counters for one cache instance (reset with :meth:`CompileCache.reset_stats`)."""

    memo_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0

    @property
    def hits(self) -> int:
        return self.memo_hits + self.disk_hits

    def as_dict(self) -> Dict[str, int]:
        return {
            "memo_hits": self.memo_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
        }


@dataclass
class CacheEntry:
    """One cache hit: the table plus its JSON metadata sidecar."""

    key: str
    table: GateTable
    meta: Dict[str, object] = field(default_factory=dict)
    source: str = "memo"  # "memo" | "disk"


class CompileCache:
    """Content-addressed store for compiled :class:`GateTable` artifacts.

    ``cache_dir=None`` gives a memo-only cache (useful in tests and as the
    per-worker layer of the batch runner when no directory is configured).
    """

    def __init__(
        self,
        cache_dir: Optional[os.PathLike] = None,
        *,
        max_disk_bytes: int = DEFAULT_MAX_DISK_BYTES,
        max_memo_entries: int = DEFAULT_MAX_MEMO_ENTRIES,
        salt: str = CODE_VERSION,
        mmap_mode: Optional[str] = "r",
    ):
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.max_disk_bytes = int(max_disk_bytes)
        self.max_memo_entries = int(max_memo_entries)
        self.salt = salt
        #: ``"r"`` maps warm ``.npz`` hits read-only (zero-copy columns whose
        #: pages are shared across fork-pool workers); ``None`` copy-loads.
        self.mmap_mode = mmap_mode
        self.stats = CacheStats()
        self._memo: "OrderedDict[str, CacheEntry]" = OrderedDict()
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def _check_key(self, key: str) -> str:
        if not key or not all(c in "0123456789abcdef" for c in key):
            raise CacheError(f"malformed cache key {key!r} (expected a hex digest)")
        return key

    def _paths(self, key: str) -> Tuple[Path, Path]:
        """Canonical (sharded) location of an entry: ``<dir>/<key[:2]>/<key>.*``.

        Sharding by the first two hex characters of the content address
        spreads entries over 256 subdirectories, so many pool workers (or
        nodes sharing a network store) stop contending on one huge flat
        directory's lock/readdir path.
        """
        assert self.cache_dir is not None
        shard = self.cache_dir / key[:2]
        return shard / f"{key}.npz", shard / f"{key}.json"

    def _flat_paths(self, key: str) -> Tuple[Path, Path]:
        """Legacy flat location (stores written before sharding)."""
        assert self.cache_dir is not None
        return self.cache_dir / f"{key}.npz", self.cache_dir / f"{key}.json"

    def _read_paths(self, key: str) -> Tuple[Path, Path]:
        """Where to read an entry from: sharded first, flat fallback."""
        npz_path, meta_path = self._paths(key)
        if npz_path.exists() or meta_path.exists():
            return npz_path, meta_path
        flat_npz, flat_meta = self._flat_paths(key)
        if flat_npz.exists() or flat_meta.exists():
            return flat_npz, flat_meta
        return npz_path, meta_path

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[CacheEntry]:
        """The cached entry for ``key``, or ``None`` on a miss.

        Memo first, then disk; a disk hit is promoted into the memo and its
        mtime touched (the LRU clock of the on-disk store).
        """
        key = self._check_key(key)
        entry = self._memo.get(key)
        if entry is not None:
            self._memo.move_to_end(key)
            self.stats.memo_hits += 1
            return CacheEntry(key=entry.key, table=entry.table, meta=entry.meta, source="memo")
        if self.cache_dir is None:
            self.stats.misses += 1
            return None
        npz_path, meta_path = self._read_paths(key)
        if not npz_path.exists():
            # Clean up a sidecar orphaned by a crash between the two writes.
            if meta_path.exists():
                self._remove(key)
            self.stats.misses += 1
            return None
        try:
            table = load_table(npz_path, mmap_mode=self.mmap_mode)
            # The sidecar is written before the npz, so a hit without one
            # means a corrupted entry — never serve a table with silently
            # empty metadata (wire roles would be wrong downstream).
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
            os.utime(npz_path)
        except (CacheError, OSError, ValueError):
            # A corrupt (or concurrently evicted) artifact is a miss; drop
            # whatever is left of it so it is rebuilt cleanly.
            self._remove(key)
            self.stats.misses += 1
            return None
        entry = CacheEntry(key=key, table=table, meta=meta, source="disk")
        self._memoize(entry)
        self.stats.disk_hits += 1
        return entry

    def __contains__(self, key: str) -> bool:
        if key in self._memo:
            return True
        return self.cache_dir is not None and self._read_paths(self._check_key(key))[0].exists()

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def put(self, key: str, table: GateTable, meta: Optional[Dict[str, object]] = None) -> CacheEntry:
        """Store ``table`` under ``key`` (memo + atomic disk write), evicting LRU."""
        key = self._check_key(key)
        entry = CacheEntry(key=key, table=table, meta=dict(meta or {}), source="memo")
        self._memoize(entry)
        self.stats.puts += 1
        if self.cache_dir is None:
            return entry
        npz_path, meta_path = self._paths(key)
        npz_path.parent.mkdir(parents=True, exist_ok=True)
        # Sidecar first, table second, both atomic: an entry is visible
        # (npz present) only once its metadata is complete, and a crash
        # between the two leaves an orphan sidecar that get() cleans up.
        atomic_write_bytes(
            meta_path,
            json.dumps(entry.meta, indent=2, sort_keys=True, ensure_ascii=False).encode(
                "utf-8"
            )
            + b"\n",
        )
        fd, tmp_name = tempfile.mkstemp(dir=npz_path.parent, suffix=".npz.tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                save_table(handle, table)
            os.replace(tmp_name, npz_path)
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise
        self._evict_over_budget(protect=key)
        return entry

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def _memoize(self, entry: CacheEntry) -> None:
        self._memo[entry.key] = entry
        self._memo.move_to_end(entry.key)
        while len(self._memo) > self.max_memo_entries:
            self._memo.popitem(last=False)

    def _remove(self, key: str) -> None:
        self._memo.pop(key, None)
        if self.cache_dir is None:
            return
        for path in self._paths(key) + self._flat_paths(key):
            try:
                path.unlink()
            except OSError:
                pass

    def _disk_npz_files(self) -> List[Path]:
        """Every table archive on disk, across both store layouts."""
        assert self.cache_dir is not None
        files = list(self.cache_dir.glob("*.npz"))
        files.extend(self.cache_dir.glob("[0-9a-f][0-9a-f]/*.npz"))
        return files

    def _disk_entries(self) -> List[Tuple[float, int, str]]:
        """(mtime, bytes, key) for every on-disk entry, oldest first."""
        entries = []
        for npz_path in self._disk_npz_files():
            try:
                stat = npz_path.stat()
            except OSError:  # racing eviction from another worker
                continue
            entries.append((stat.st_mtime, stat.st_size, npz_path.stem))
        entries.sort()
        return entries

    def _evict_over_budget(self, protect: Optional[str] = None) -> None:
        entries = self._disk_entries()
        total = sum(size for _, size, _ in entries)
        for _, size, key in entries:
            if total <= self.max_disk_bytes:
                break
            if key == protect:
                continue
            self._remove(key)
            self.stats.evictions += 1
            total -= size

    # ------------------------------------------------------------------
    # Startup warming
    # ------------------------------------------------------------------
    def warm_scan(self, limit: Optional[int] = None) -> Dict[str, int]:
        """Promote the newest on-disk entries into the in-process memo.

        Startup warming for long-running services: each entry goes through
        the normal :meth:`get` path, so its ``.npz`` is mmap'd (faulting
        its pages into the OS page cache, which fork-pool workers then
        share) and corrupt archives are dropped rather than served later.
        At most ``limit`` entries are loaded (default: the memo capacity),
        newest-mtime first so the memo LRU ends with the hottest entries
        freshest.  Counts as ordinary cache traffic in :attr:`stats`.

        Returns ``{"scanned", "warmed", "dropped", "bytes"}``.
        """
        summary = {"scanned": 0, "warmed": 0, "dropped": 0, "bytes": 0}
        if self.cache_dir is None:
            return summary
        if limit is None:
            limit = self.max_memo_entries
        entries = self._disk_entries()  # oldest first
        chosen = entries[-limit:] if limit >= 0 else entries
        for _, size, key in chosen:  # oldest → newest keeps LRU order right
            summary["scanned"] += 1
            try:
                self._check_key(key)
            except CacheError:  # a foreign file in the directory, not ours
                summary["dropped"] += 1
                continue
            if self.get(key) is None:
                summary["dropped"] += 1
            else:
                summary["warmed"] += 1
                summary["bytes"] += size
        return summary

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def keys(self) -> List[str]:
        """Every key currently retrievable (memo ∪ disk), unordered."""
        out = set(self._memo)
        if self.cache_dir is not None:
            out.update(path.stem for path in self._disk_npz_files())
        return sorted(out)

    def disk_bytes(self) -> int:
        if self.cache_dir is None:
            return 0
        return sum(size for _, size, _ in self._disk_entries())

    def clear_memo(self) -> None:
        """Drop the in-process layer (disk entries survive)."""
        self._memo.clear()

    def reset_stats(self) -> None:
        self.stats = CacheStats()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = str(self.cache_dir) if self.cache_dir is not None else "memo-only"
        return f"CompileCache({where}, entries={len(self.keys())}, {self.stats.as_dict()})"
