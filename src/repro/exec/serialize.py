"""Lossless ``GateTable`` ↔ ``.npz`` serialization.

A :class:`~repro.ir.table.GateTable` is already array-shaped — eight int
columns plus four interned pools — so its on-disk form is a plain
``np.savez`` archive (uncompressed, so loads can map it): the columns
verbatim, and each pool
flattened into parallel arrays (ragged entries via offset arrays).  Nothing
is pickled (``np.load`` runs with ``allow_pickle=False``), so a cache
directory can be shared between processes and machines without executing
code on load.

Round-tripping is lossless: the reloaded table has identical columns and
pools whose entries compare equal gate-for-gate (permutation, matrix,
label, predicate), so every column kernel, simulation path and
``to_circuit()`` materialisation agrees with the original — asserted
property-style by the ``cache`` fuzz oracle and ``tests/test_exec_cache.py``.
"""

from __future__ import annotations

import mmap
import os
import struct
import zipfile
from typing import Dict, List, Optional

import numpy as np

from repro.exceptions import CacheError
from repro.ir.pools import PoolSet
from repro.ir.table import COLUMNS, GateTable
from repro.qudit.controls import EvenNonZero, InSet, Odd, Value
from repro.qudit.gates import SingleQuditUnitary, XPerm, XPlus

#: Bumped whenever the archive layout below changes; mismatching archives
#: are rejected with :class:`CacheError` instead of being misdecoded.
FORMAT_VERSION = 1

_PRED_VALUE, _PRED_ODD, _PRED_EVEN, _PRED_INSET = 0, 1, 2, 3
_PERM_XPERM, _PERM_XPLUS = 0, 1


def _ragged(rows: List[List[int]]):
    """Pack variable-length int rows as ``(flat 1-D, offsets)`` arrays."""
    offsets = np.zeros(len(rows) + 1, dtype=np.int64)
    for i, row in enumerate(rows):
        offsets[i + 1] = offsets[i] + len(row)
    flat = np.asarray([value for row in rows for value in row], dtype=np.int64)
    return flat, offsets


def table_to_arrays(table: GateTable) -> Dict[str, np.ndarray]:
    """Flatten a table (columns + pools) into one dict of plain ndarrays."""
    pools = table.pools
    arrays: Dict[str, np.ndarray] = {
        "format_version": np.int64(FORMAT_VERSION),
        "num_wires": np.int64(table.num_wires),
        "dim": np.int64(table.dim),
        "name": np.str_(table.name),
    }
    for column_name, column in zip(COLUMNS, table.columns):
        arrays[f"col_{column_name}"] = column

    # Permutation-gate pool: kind, permutation row, label, XPlus shift.
    perm_kinds, perm_rows, perm_labels, perm_shifts = [], [], [], []
    for gid in range(len(pools.perms)):
        gate = pools.perms.gate(gid)
        if gate.dim != table.dim:
            raise CacheError(
                f"perm gate {gate.label!r} has dimension {gate.dim}, table has {table.dim}"
            )
        if isinstance(gate, XPlus):
            perm_kinds.append(_PERM_XPLUS)
            perm_shifts.append(gate.shift)
        elif isinstance(gate, XPerm):
            perm_kinds.append(_PERM_XPERM)
            perm_shifts.append(-1)
        else:
            raise CacheError(f"cannot serialize perm-gate type {type(gate).__name__}")
        perm_rows.append(list(gate.permutation()))
        perm_labels.append(gate.label)
    arrays["perm_kind"] = np.asarray(perm_kinds, dtype=np.int64)
    arrays["perm_shift"] = np.asarray(perm_shifts, dtype=np.int64)
    arrays["perm_rows"] = (
        np.asarray(perm_rows, dtype=np.int64)
        if perm_rows
        else np.zeros((0, table.dim), dtype=np.int64)
    )
    arrays["perm_labels"] = np.asarray(perm_labels, dtype=np.str_)

    # Dense-unitary pool: stacked matrices + labels.
    matrices, unitary_labels = [], []
    for gid in range(len(pools.unitaries)):
        gate = pools.unitaries.gate(gid)
        if not isinstance(gate, SingleQuditUnitary) or gate.dim != table.dim:
            raise CacheError(f"cannot serialize unitary payload {gate!r}")
        matrices.append(gate.matrix())
        unitary_labels.append(gate.label)
    arrays["unitary_matrices"] = (
        np.stack(matrices) if matrices else np.zeros((0, table.dim, table.dim), dtype=complex)
    )
    arrays["unitary_labels"] = np.asarray(unitary_labels, dtype=np.str_)

    # Predicate pool: kind, Value parameter, InSet members (ragged).
    pred_kinds, pred_values, inset_rows = [], [], []
    for pid in range(len(pools.preds)):
        predicate = pools.preds.predicate(pid)
        if isinstance(predicate, Value):
            pred_kinds.append(_PRED_VALUE)
            pred_values.append(predicate.value)
            inset_rows.append([])
        elif isinstance(predicate, Odd):
            pred_kinds.append(_PRED_ODD)
            pred_values.append(-1)
            inset_rows.append([])
        elif isinstance(predicate, EvenNonZero):
            pred_kinds.append(_PRED_EVEN)
            pred_values.append(-1)
            inset_rows.append([])
        elif isinstance(predicate, InSet):
            pred_kinds.append(_PRED_INSET)
            pred_values.append(-1)
            # The raw member set, not .values(dim): an out-of-range InSet is
            # representable in a table (the simulator rejects it at apply
            # time) and must survive serialization unchanged.
            inset_rows.append(sorted(predicate._values))
        else:
            raise CacheError(f"cannot serialize predicate type {type(predicate).__name__}")
    arrays["pred_kind"] = np.asarray(pred_kinds, dtype=np.int64)
    arrays["pred_value"] = np.asarray(pred_values, dtype=np.int64)
    arrays["inset_flat"], arrays["inset_offsets"] = _ragged(inset_rows)

    # Overflow-controls pool: ragged rows of (wire, predicate id) pairs.
    extra_rows = [
        [x for pair in pools.extras.entry(eid) for x in pair]
        for eid in range(len(pools.extras))
    ]
    flat, offsets = _ragged(extra_rows)
    arrays["extra_flat"] = flat.reshape(-1, 2)
    arrays["extra_offsets"] = offsets // 2
    return arrays


def arrays_to_table(arrays) -> GateTable:
    """Rebuild a :class:`GateTable` from :func:`table_to_arrays` output."""
    try:
        version = int(arrays["format_version"])
    except KeyError:
        raise CacheError("archive has no format_version field") from None
    if version != FORMAT_VERSION:
        raise CacheError(
            f"archive format version {version} is not the supported {FORMAT_VERSION}"
        )
    try:
        num_wires = int(arrays["num_wires"])
        dim = int(arrays["dim"])
        name = str(arrays["name"])
        columns = [np.asarray(arrays[f"col_{column}"]) for column in COLUMNS]

        pools = PoolSet()
        perm_kinds = arrays["perm_kind"]
        perm_shifts = arrays["perm_shift"]
        perm_rows = arrays["perm_rows"]
        perm_labels = arrays["perm_labels"]
        for i in range(perm_kinds.shape[0]):
            if int(perm_kinds[i]) == _PERM_XPLUS:
                gate = XPlus(dim, int(perm_shifts[i]))
            else:
                gate = XPerm(
                    tuple(int(x) for x in perm_rows[i]), label=str(perm_labels[i])
                )
            if tuple(gate.permutation()) != tuple(int(x) for x in perm_rows[i]):
                raise CacheError(f"perm gate {i} decoded to a different permutation")
            if pools.perms.intern(gate) != i:
                raise CacheError(f"perm pool id {i} did not round-trip")

        matrices = arrays["unitary_matrices"]
        unitary_labels = arrays["unitary_labels"]
        for i in range(matrices.shape[0]):
            gate = SingleQuditUnitary(matrices[i], label=str(unitary_labels[i]), check=False)
            if pools.unitaries.intern(gate) != i:
                raise CacheError(f"unitary pool id {i} did not round-trip")

        pred_kinds = arrays["pred_kind"]
        pred_values = arrays["pred_value"]
        inset_flat = arrays["inset_flat"]
        inset_offsets = arrays["inset_offsets"]
        for i in range(pred_kinds.shape[0]):
            kind = int(pred_kinds[i])
            if kind == _PRED_VALUE:
                predicate = Value(int(pred_values[i]))
            elif kind == _PRED_ODD:
                predicate = Odd()
            elif kind == _PRED_EVEN:
                predicate = EvenNonZero()
            elif kind == _PRED_INSET:
                members = inset_flat[int(inset_offsets[i]) : int(inset_offsets[i + 1])]
                predicate = InSet(frozenset(int(x) for x in members))
            else:
                raise CacheError(f"unknown predicate kind {kind}")
            if pools.preds.intern(predicate) != i:
                raise CacheError(f"predicate pool id {i} did not round-trip")

        extra_flat = arrays["extra_flat"]
        extra_offsets = arrays["extra_offsets"]
        for i in range(extra_offsets.shape[0] - 1):
            entry = tuple(
                (int(w), int(p))
                for w, p in extra_flat[int(extra_offsets[i]) : int(extra_offsets[i + 1])]
            )
            if pools.extras.intern(entry) != i:
                raise CacheError(f"overflow pool id {i} did not round-trip")
    except CacheError:
        raise
    except Exception as error:  # truncated / mistyped arrays
        raise CacheError(f"malformed table archive: {type(error).__name__}: {error}") from error
    return GateTable(num_wires, dim, columns, pools, name=name)


def save_table(file, table: GateTable) -> None:
    """Write a table to ``file`` (path or binary file object) as ``.npz``.

    Uncompressed (``np.savez``): the zip members are STORED verbatim, which
    is what lets :func:`load_table` map the column bytes straight out of the
    archive with ``mmap_mode="r"`` instead of copying them.  Tables are int
    columns plus small pools, so the size cost over compression is modest.
    """
    np.savez(file, **table_to_arrays(table))


def _mapped_arrays(path, mmap_mode: str) -> Dict[str, np.ndarray]:
    """Load an ``.npz`` with STORED members mapped read-only, zero-copy.

    ``np.load`` silently ignores ``mmap_mode`` for ``.npz`` archives, so this
    maps the whole file once (one fd, closed after mapping) and builds each
    member as an ``np.frombuffer`` view into the mapping: no amplitude of
    column data is copied, the pages are shared across every process mapping
    the same file (the fork-pool workers), and the arrays come out read-only.

    Members that cannot be mapped — compressed entries of legacy archives,
    0-d scalars — fall back to a normal copy-read.  Any structural problem
    (truncation, bad headers, object dtypes) raises :class:`CacheError`.
    """
    if mmap_mode != "r":
        raise CacheError(f"unsupported mmap_mode {mmap_mode!r} (only 'r' is supported)")
    with open(path, "rb") as handle:
        mapping = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    file_size = len(mapping)
    arrays: Dict[str, np.ndarray] = {}
    with zipfile.ZipFile(path) as archive, open(path, "rb") as raw:
        for info in archive.infolist():
            name = info.filename
            if name.endswith(".npy"):
                name = name[: -len(".npy")]
            if info.compress_type != zipfile.ZIP_STORED:
                with archive.open(info) as member:
                    arrays[name] = np.lib.format.read_array(member, allow_pickle=False)
                continue
            # The zip local header is variable-length; the payload (the raw
            # ``.npy`` stream) starts after its name and extra fields.
            header = mapping[info.header_offset : info.header_offset + 30]
            if len(header) != 30 or header[:4] != b"PK\x03\x04":
                raise CacheError(f"archive member {name!r} has a truncated local header")
            name_len, extra_len = struct.unpack("<HH", header[26:30])
            raw.seek(info.header_offset + 30 + name_len + extra_len)
            version = np.lib.format.read_magic(raw)
            if version == (1, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_1_0(raw)
            elif version == (2, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_2_0(raw)
            else:
                with archive.open(info) as member:
                    arrays[name] = np.lib.format.read_array(member, allow_pickle=False)
                continue
            if dtype.hasobject:
                raise CacheError(f"archive member {name!r} has an object dtype")
            count = int(np.prod(shape, dtype=np.int64)) if shape else 1
            offset = raw.tell()
            if offset + count * dtype.itemsize > file_size:
                raise CacheError(f"archive member {name!r} is truncated")
            if not shape:  # 0-d scalars (format_version, dims, name) are tiny
                with archive.open(info) as member:
                    arrays[name] = np.lib.format.read_array(member, allow_pickle=False)
                continue
            view = np.frombuffer(mapping, dtype=dtype, count=count, offset=offset)
            arrays[name] = view.reshape(shape, order="F" if fortran else "C")
    return arrays


def load_table(file, *, mmap_mode: Optional[str] = None) -> GateTable:
    """Read a table written by :func:`save_table` (never unpickles).

    With ``mmap_mode="r"`` and a filesystem path, the table's columns and
    pool arrays are read-only views into a shared mapping of the archive —
    a warm cache hit copies no column data and shares its pages with every
    other process mapping the same entry.  File objects and archives whose
    members cannot be mapped degrade to the plain copy-loading path.
    """
    try:
        if mmap_mode is not None and isinstance(file, (str, os.PathLike)):
            arrays = _mapped_arrays(file, mmap_mode)
        else:
            with np.load(file, allow_pickle=False) as archive:
                arrays = {key: archive[key] for key in archive.files}
    except CacheError:
        raise
    except Exception as error:
        raise CacheError(f"unreadable table archive: {type(error).__name__}: {error}") from error
    return arrays_to_table(arrays)
