"""Command-line front door: ``python -m repro {list,estimate,synthesize,simulate}``.

Quick scenario exploration over the synthesis registry:

* ``python -m repro list`` — registered strategies with capability metadata;
* ``python -m repro estimate 3 1000000`` — analytic resource counts for
  every applicable strategy (no circuit is built), with the ``auto`` pick
  highlighted; ``--strategy`` restricts to one, ``--json`` emits JSON;
* ``python -m repro synthesize mct 3 5 --verify --lower`` — build a circuit
  through the registry, optionally check it against its semantic
  specification and lower it to G-gates;
* ``python -m repro simulate mct 3 6 --backend tensor --state 0,0,0,0,0,0,2``
  — build, lower and actually run a circuit on a chosen basis state through
  a simulation backend (``--backend`` offers every registered engine;
  ``--backend streaming --memory-budget 8M`` runs memory-tiled);
  ``--table`` (default) lowers through the columnar ``GateTable`` fast
  path, ``--no-table`` through the object pipeline.
* ``python -m repro fuzz --time-budget 20 --seed 0 --json`` — differential
  fuzzing: seeded random circuits, synthesis instances and pass pipelines
  through every redundant engine pair (see :mod:`repro.fuzz`); exits
  non-zero on any divergence, with failures shrunk to minimal reproducers.
* ``python -m repro batch --workload spec.json --jobs 4 --cache-dir .cache``
  — run a JSON workload (synthesize / simulate / estimate requests) through
  the persistent content-addressed compile cache: requests sharing a cache
  key are compiled once, workers share artifacts through the cache
  directory, and warm runs skip synthesis entirely (see :mod:`repro.exec`).
* ``python -m repro dse --sweep sweep.json --jobs 4 --db tuning.npz
  --report frontier.json`` — design-space exploration: sweep strategy ×
  pipeline × (d, k) through the vectorized batch estimator, print the
  Pareto frontier / winner report, and persist the content-addressed
  tuning database that ``estimate``/``synthesize --tuning-db`` (and
  ``auto_select``) answer from without live estimation (see
  :mod:`repro.dse`).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from repro.bench.formatting import json_safe, render_table
from repro.core.gate_counts import count_gates
from repro.exceptions import ReproError, SynthesisError
from repro.resources.estimator import Resources
from repro.synth import AncillaBudget, auto_select
from repro.synth import registry as _registry


def _budget_from_args(args) -> Optional[AncillaBudget]:
    if args.max_clean is None and args.max_borrowed is None and args.max_ancillas is None:
        return None
    return AncillaBudget(
        clean=args.max_clean, borrowed=args.max_borrowed, total=args.max_ancillas
    )


def _verify_budget_from_args(args):
    """Build a verification budget from ``--verify-tier`` / ``--verify-budget``.

    ``--verify-tier`` names a preset (``smoke``/``standard``/``audit``);
    ``--verify-budget`` is a JSON object of field overrides applied on top
    (on ``standard`` when no tier is named).  Returns ``None`` when neither
    flag is set, which keeps each caller's historical full-strength check.
    """
    from repro.verify import VerificationBudget

    tier = getattr(args, "verify_tier", None)
    overrides_text = getattr(args, "verify_budget", None)
    if tier is None and overrides_text is None:
        return None
    budget = VerificationBudget.preset(tier or "standard")
    if overrides_text:
        try:
            overrides = json.loads(overrides_text)
        except json.JSONDecodeError as error:
            raise SynthesisError(f"--verify-budget is not valid JSON: {error}") from None
        if not isinstance(overrides, dict):
            raise SynthesisError(
                "--verify-budget must be a JSON object of budget fields, "
                'e.g. \'{"samples": 64, "allow_dense": false}\''
            )
        budget = budget.replace(**overrides)
    return budget


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def _cmd_list(args) -> int:
    rows = []
    for strategy in _registry.all_strategies():
        caps = strategy.capabilities
        rows.append(
            {
                "name": strategy.name,
                "family": caps.family,
                "d": f"{'/'.join(sorted(caps.parities))} ≥ {caps.min_dim}",
                "min_k": caps.min_k,
                "ancillas": caps.ancillas or caps.ancilla_kind,
                "gates": caps.gates,
                "estimate": "exact" if caps.analytic else "model",
                "payload": caps.payload,
            }
        )
    from repro.sim import SparseBackend, backend_availability, get_backend

    availability = backend_availability()
    sparse_info = None
    if availability.get("sparse") == "available":
        engine = get_backend("sparse")
        if isinstance(engine, SparseBackend):
            sparse_info = {
                "max_occupancy": engine.max_occupancy,
                "densify_to": engine.densify_to,
            }
    if args.json:
        payload = {"strategies": rows, "backends": availability}
        if sparse_info is not None:
            payload["sparse"] = sparse_info
        print(json.dumps(payload, indent=2, ensure_ascii=False))
    else:
        print(render_table(rows, title="Registered synthesis strategies"))
        print("\nSimulation backends:")
        for name, status in availability.items():
            if name == "sparse" and sparse_info is not None:
                status = (
                    f"{status} (densifies to {sparse_info['densify_to']!r} past "
                    f"occupancy {sparse_info['max_occupancy']:g})"
                )
            print(f"  {name:<10} {status}")
        print("\nuse: python -m repro estimate <d> <k> [--strategy NAME]")
    return 0


def _resource_row(resources: Resources, seconds: float, chosen: bool) -> dict:
    row = resources.as_row()
    row["estimate_seconds"] = round(seconds, 6)
    row["auto"] = "<<<" if chosen else ""
    return row


def _check_budget(budget, strategy, dim: int, k: int) -> None:
    """Reject a named strategy that exceeds the requested ancilla budget."""
    if budget is None:
        return
    _, histogram = strategy.layout(dim, k)
    if not budget.permits(histogram):
        raise SynthesisError(
            f"strategy {strategy.name!r} uses ancillas {dict(histogram)} at "
            f"d={dim}, k={k}, which exceeds the requested budget"
        )


def _install_tuning_db(args) -> None:
    """Load ``--tuning-db`` (if given) as the session selection database."""
    if getattr(args, "tuning_db", None) is None:
        return
    from repro.dse import TuningDB

    db = TuningDB.load(args.tuning_db)
    _registry.use_tuning_db(db)
    print(
        f"tuning DB: {args.tuning_db} ({len(db)} points, digest {db.digest[:12]}…)",
        file=sys.stderr,
    )


def _cmd_estimate(args) -> int:
    _install_tuning_db(args)
    budget = _budget_from_args(args)
    rows = []
    if args.strategy:
        strategy = _registry.get(args.strategy)
        _check_budget(budget, strategy, args.d, args.k)
        strategy.estimate(args.d, args.k)  # warm the calibration cache
        start = time.perf_counter()
        resources = strategy.estimate(args.d, args.k)
        rows.append(_resource_row(resources, time.perf_counter() - start, chosen=False))
    else:
        choice = auto_select(args.d, args.k, budget=budget, family=args.family)
        if choice.source != "estimator":
            print(f"auto pick answered from: {choice.source}", file=sys.stderr)
        for name, resources, note in choice.considered:
            if resources is None:
                rows.append({"strategy": name, "note": note})
                continue
            start = time.perf_counter()
            resources = _registry.get(name).estimate(args.d, args.k)  # warm timing
            seconds = time.perf_counter() - start
            row = _resource_row(resources, seconds, chosen=name == choice.strategy.name)
            if note:
                row["note"] = note
            rows.append(row)
    if args.json:
        print(json.dumps(json_safe(rows), indent=2, ensure_ascii=False))
    else:
        title = f"Analytic resource estimates: d={args.d}, k={args.k} (no circuits built)"
        print(render_table(rows, title=title))
    return 0


def _cmd_synthesize(args) -> int:
    _install_tuning_db(args)
    budget = _budget_from_args(args)
    if args.name == "auto":
        choice = auto_select(args.d, args.k, budget=budget)
        strategy = choice.strategy
        print(f"auto dispatch picked: {strategy.name} (source: {choice.source})")
    else:
        strategy = _registry.get(args.name)
        _check_budget(budget, strategy, args.d, args.k)
    result = strategy.synthesize(args.d, args.k)
    print(result.describe())
    report = count_gates(result, lower=args.lower)
    print(render_table([report.as_row()], title="gate counts"))
    if args.verify:
        verify_budget = _verify_budget_from_args(args)
        try:
            outcome = strategy.verify(result, args.d, args.k, budget=verify_budget)
        except NotImplementedError:
            print("verify: no canonical specification for this strategy", file=sys.stderr)
            return 2
        if getattr(outcome, "undecided", False):
            print(
                "verify: UNDECIDED — the budget ruled out every deciding tier "
                "(raise --verify-tier or --verify-budget)",
                file=sys.stderr,
            )
            return 2
        if getattr(outcome, "decided_by", None):
            print(
                "verify: OK (matches the semantic specification; decided by the "
                f"{outcome.decided_by} tier, {outcome.states_checked} states checked)"
            )
        else:
            print("verify: OK (matches the semantic specification)")
    return 0


def _parse_state(text: str, num_wires: int, dim: int) -> List[int]:
    """Parse and validate a ``--state`` digit string against the register.

    Raises :class:`SynthesisError` (rendered as a one-line CLI error) instead
    of letting a malformed token or out-of-range digit surface as a raw
    ``ValueError``/index traceback from numpy.
    """
    tokens = text.replace(",", " ").split()
    digits = []
    for token in tokens:
        try:
            digits.append(int(token))
        except ValueError:
            raise SynthesisError(
                f"--state digit {token!r} is not an integer (expected e.g. 0,0,1,2)"
            ) from None
    if len(digits) != num_wires:
        raise SynthesisError(
            f"--state needs {num_wires} digits for this circuit, got {len(digits)}"
        )
    for position, digit in enumerate(digits):
        if not 0 <= digit < dim:
            raise SynthesisError(
                f"--state digit {digit} at position {position} is out of range for "
                f"dimension d={dim} (valid digits: 0..{dim - 1})"
            )
    return digits


def _cmd_simulate(args) -> int:
    from repro.core.lowering import lower_to_g_gates
    from repro.sim import Statevector, StreamingBackend, available_backends, get_backend

    backend = get_backend(args.backend)  # fail fast on unknown names
    if args.memory_budget is not None:
        if args.backend != "streaming":
            raise SynthesisError(
                f"--memory-budget needs --backend streaming, got {args.backend!r}"
            )
        backend = StreamingBackend(args.memory_budget)
    if args.name == "auto":
        strategy = auto_select(args.d, args.k, budget=_budget_from_args(args)).strategy
        print(f"auto dispatch picked: {strategy.name}")
    else:
        strategy = _registry.get(args.name)
    result = strategy.synthesize(args.d, args.k)
    circuit = result.circuit

    start = time.perf_counter()
    engine = "table" if args.table else "object"
    lowered = lower_to_g_gates(circuit, engine=engine) if circuit.is_permutation else circuit
    lower_seconds = time.perf_counter() - start

    if args.state:
        digits = _parse_state(args.state, circuit.num_wires, args.d)
        state = Statevector.from_basis_state(digits, args.d, backend=backend)
    else:
        digits = [0] * circuit.num_wires
        state = Statevector(circuit.num_wires, args.d, backend=backend)

    start = time.perf_counter()
    state.apply_circuit(lowered)
    sim_seconds = time.perf_counter() - start
    outcome = list(state.most_probable())

    row = {
        "strategy": strategy.name,
        "d": args.d,
        "k": args.k,
        "backend": args.backend,
        "path": engine,
        "gates": lowered.num_ops(),
        "lower_seconds": round(lower_seconds, 4),
        "sim_seconds": round(sim_seconds, 4),
        "input": "".join(map(str, digits)),
        "output": "".join(map(str, outcome)),
    }
    if args.memory_budget is not None:
        row["memory_budget"] = backend.memory_budget
    if args.json:
        print(json.dumps(json_safe(row), indent=2, ensure_ascii=False))
    else:
        title = (
            f"Simulate {strategy.name}: d={args.d}, k={args.k} "
            f"[{engine} path, backends: {'/'.join(available_backends())}]"
        )
        print(render_table([row], title=title))
    return 0


def _cmd_batch(args) -> int:
    import dataclasses

    from repro.exec import WorkloadSpec, run_workload
    from repro.sim import get_backend, parse_memory_budget

    spec = WorkloadSpec.from_json(args.workload)
    if args.backend is not None or args.memory_budget is not None:
        # CLI-level defaults: fill in simulate requests that did not choose
        # their own backend / budget in the spec (explicit fields win).
        if args.backend is not None:
            get_backend(args.backend)  # fail fast on unknown names
        budget = (
            parse_memory_budget(args.memory_budget)
            if args.memory_budget is not None
            else None
        )
        patched = []
        for request in spec.requests:
            if request.kind == "simulate":
                updates = {}
                if args.backend is not None and request.backend == "dense":
                    updates["backend"] = args.backend
                if budget is not None and request.memory_budget is None:
                    updates["memory_budget"] = budget
                if updates:
                    request = dataclasses.replace(request, **updates)
            patched.append(request)
        spec = WorkloadSpec(patched)
    report = run_workload(spec, jobs=args.jobs, cache_dir=args.cache_dir)
    payload = report.to_json()
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(json_safe(payload), handle, indent=2, ensure_ascii=False)
    if args.json:
        print(json.dumps(json_safe(payload), indent=2, ensure_ascii=False))
    else:
        rows = []
        for index, row in enumerate(report.rows):
            rows.append(
                {
                    "#": index,
                    "kind": row.get("kind"),
                    "strategy": row.get("strategy"),
                    "d": row.get("d"),
                    "k": row.get("k"),
                    "cache": row.get("cache", ""),
                    "gates": row.get("gates", row.get("g_gates", "")),
                    "outputs": ",".join(row.get("outputs", [])) or "",
                    "seconds": row.get("seconds"),
                    "status": "ok" if row.get("ok") else row.get("error", "failed"),
                }
            )
        title = (
            f"Batch workload: {len(report.rows)} requests, jobs={report.jobs}, "
            f"{report.unique_compiles} unique compiles "
            f"({report.dedup_savings} deduped, {report.warm_hits} warm), "
            f"{report.seconds:.2f}s"
        )
        print(render_table(rows, title=title))
        if args.cache_dir:
            print(f"\ncache directory: {args.cache_dir}")
    return 0 if report.ok else 1


def _cmd_dse(args) -> int:
    from pathlib import Path

    from repro.dse import SweepSpec, TuningDB, frontier_report, run_sweep
    from repro.dse.frontier import render_report

    if args.sweep is None and args.db is not None and Path(args.db).exists():
        # Inspection mode: no sweep requested, database already on disk.
        db = TuningDB.load(args.db)
        payload = db.describe()
        if args.json:
            print(json.dumps(json_safe(payload), indent=2, ensure_ascii=False))
        else:
            print(render_table([payload], title=f"Tuning DB: {args.db}"))
        return 0

    if args.sweep is not None:
        with open(args.sweep, "r", encoding="utf-8") as handle:
            spec = SweepSpec.from_dict(json.load(handle))
    else:
        spec = SweepSpec()  # small built-in default grid
    start = time.perf_counter()
    store = run_sweep(spec, jobs=args.jobs, cache_dir=args.cache_dir)
    sweep_seconds = time.perf_counter() - start
    db = TuningDB.from_sweep(store)
    report = frontier_report(store, metric=args.metric)
    report["sweep_seconds"] = round(sweep_seconds, 3)
    report["db"] = db.describe()
    if args.db is not None:
        digest = db.save(args.db)
        report["db_path"] = str(args.db)
        print(
            f"tuning DB written: {args.db} ({len(db)} points, digest {digest[:12]}…)",
            file=sys.stderr,
        )
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(json_safe(report), handle, indent=2, ensure_ascii=False)
    if args.json:
        print(json.dumps(json_safe(report), indent=2, ensure_ascii=False))
    else:
        print(render_report(report))
        counts = store.counts()
        print(
            f"\nswept {counts['points']} points in {sweep_seconds:.2f}s "
            f"(jobs={args.jobs}; ok={counts['ok']}, error={counts['error']})"
        )
    return 0


def _cmd_serve(args) -> int:
    from repro.serve import ServeConfig, run_daemon

    config = ServeConfig(
        host=args.host,
        port=args.port,
        unix_socket=args.unix_socket,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        max_queued=args.max_queued,
        max_batch=args.max_batch,
        warmup=args.warmup,
        warm_scan=not args.no_warm_scan,
    )
    return run_daemon(config)


def _cmd_fuzz(args) -> int:
    from repro.fuzz import ORACLE_NAMES, fuzz_run

    if args.time_budget is None and args.max_cases is None:
        args.time_budget = 10.0
    report = fuzz_run(
        seed=args.seed,
        time_budget=args.time_budget,
        max_cases=args.max_cases,
        oracles=args.oracle or None,
        shrink=args.shrink,
        verify_budget=_verify_budget_from_args(args),
    )
    payload = report.to_json()
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, ensure_ascii=False)
    if args.json:
        print(json.dumps(payload, indent=2, ensure_ascii=False))
    else:
        rows = [
            {"oracle": name, "runs": payload["oracle_runs"].get(name, 0)}
            for name in ORACLE_NAMES
            if payload["oracle_runs"].get(name)
        ]
        title = (
            f"Differential fuzz: seed={report.seed}, cases={report.cases}, "
            f"{report.elapsed_seconds:.1f}s, "
            f"{'OK' if report.ok else f'{len(report.divergences)} DIVERGENCES'}"
        )
        print(render_table(rows, title=title))
        if report.tier_hits:
            hits = ", ".join(
                f"{name}={count}" for name, count in sorted(report.tier_hits.items())
            )
            print(f"synth-spec verification tiers: {hits}")
        for divergence in report.divergences:
            print(f"\nDIVERGENCE [{divergence.oracle}] case_seed={divergence.case_seed}")
            print(f"  {divergence.message}")
            if divergence.circuit is not None:
                print(
                    f"  shrunk reproducer ({divergence.circuit.num_ops()} ops, "
                    f"{divergence.circuit.num_wires} wires, d={divergence.circuit.dim}):"
                )
                for op in divergence.circuit.ops:
                    print(f"    {op!r}")
            if divergence.instance is not None:
                print(f"  shrunk instance: {divergence.instance.describe()}")
        if not report.ok:
            print(
                "\nreproduce with: python -m repro fuzz --seed <case_seed> --max-cases 1",
                file=sys.stderr,
            )
    return 0 if report.ok else 1


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def _add_verify_budget_flags(parser: argparse.ArgumentParser) -> None:
    from repro.verify import PRESET_NAMES

    parser.add_argument(
        "--verify-tier",
        choices=list(PRESET_NAMES),
        default=None,
        help="verification budget preset (smoke: sampled tiers only; "
        "standard: library defaults; audit: exhaustive-leaning)",
    )
    parser.add_argument(
        "--verify-budget",
        default=None,
        help="JSON object of VerificationBudget field overrides applied on "
        'top of --verify-tier, e.g. \'{"samples": 64, "allow_dense": false}\'',
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=__doc__.splitlines()[0],
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="registered strategies with capabilities")
    p_list.add_argument("--json", action="store_true", help="emit JSON")
    p_list.set_defaults(func=_cmd_list)

    p_est = sub.add_parser("estimate", help="analytic resource counts (no circuit built)")
    p_est.add_argument("d", type=int, help="qudit dimension")
    p_est.add_argument("k", type=int, help="size parameter (controls / digits / qudits)")
    p_est.add_argument("--strategy", help="restrict to one registered strategy")
    p_est.add_argument("--family", default="toffoli", help="family for auto ranking")
    p_est.add_argument("--json", action="store_true", help="emit JSON")
    p_est.set_defaults(func=_cmd_estimate)

    p_syn = sub.add_parser("synthesize", help="build a circuit through the registry")
    p_syn.add_argument("name", help='strategy name (or "auto")')
    p_syn.add_argument("d", type=int, help="qudit dimension")
    p_syn.add_argument("k", type=int, help="size parameter")
    p_syn.add_argument("--verify", action="store_true", help="check the semantic spec")
    p_syn.add_argument(
        "--lower", action="store_true", help="count after lowering to G-gates"
    )
    _add_verify_budget_flags(p_syn)
    p_syn.set_defaults(func=_cmd_synthesize)

    from repro.sim import available_backends

    backend_names = list(available_backends())

    p_sim = sub.add_parser("simulate", help="build, lower and run a circuit on a backend")
    p_sim.add_argument("name", help='strategy name (or "auto")')
    p_sim.add_argument("d", type=int, help="qudit dimension")
    p_sim.add_argument("k", type=int, help="size parameter")
    p_sim.add_argument(
        "--backend",
        default="dense",
        choices=backend_names,
        help="simulation engine (from the live registry)",
    )
    p_sim.add_argument(
        "--memory-budget",
        default=None,
        help='streaming backend byte budget, e.g. "8M", "512K", 4096 '
        "(needs --backend streaming)",
    )
    p_sim.add_argument(
        "--table",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="lower through the columnar GateTable fast path (--no-table: object pipeline)",
    )
    p_sim.add_argument(
        "--state", help="input basis state digits, e.g. 0,0,1,2 (default: all zeros)"
    )
    p_sim.add_argument("--json", action="store_true", help="emit JSON")
    p_sim.set_defaults(func=_cmd_simulate)

    p_batch = sub.add_parser(
        "batch", help="run a JSON workload through the compile cache in parallel"
    )
    p_batch.add_argument("--workload", required=True, help="path to the workload spec JSON")
    p_batch.add_argument(
        "--jobs", type=int, default=1, help="worker processes (1 = run in-process)"
    )
    p_batch.add_argument(
        "--cache-dir",
        default=None,
        help="persistent compile-cache directory shared by workers (and future runs)",
    )
    p_batch.add_argument(
        "--backend",
        default=None,
        choices=backend_names,
        help="backend for simulate requests that kept the dense default",
    )
    p_batch.add_argument(
        "--memory-budget",
        default=None,
        help='default streaming byte budget (e.g. "8M") for simulate requests '
        "that set none",
    )
    p_batch.add_argument("--report", help="also write the JSON report to this path")
    p_batch.add_argument("--json", action="store_true", help="emit JSON on stdout")
    p_batch.set_defaults(func=_cmd_batch)

    p_dse = sub.add_parser(
        "dse", help="design-space sweep, Pareto report and tuning-DB emission"
    )
    p_dse.add_argument(
        "--sweep",
        default=None,
        help="sweep spec JSON (strategies / dims / k range / budgets / pipelines); "
        "omitted: a small built-in default grid",
    )
    p_dse.add_argument(
        "--jobs", type=int, default=1, help="worker processes (1 = run in-process)"
    )
    p_dse.add_argument(
        "--db",
        default=None,
        help="tuning database .npz to write (or to inspect when --sweep is omitted "
        "and the file exists)",
    )
    p_dse.add_argument(
        "--cache-dir",
        default=None,
        help="compile-cache directory for materialized sweep points",
    )
    p_dse.add_argument(
        "--metric",
        default=_registry.DEFAULT_METRIC,
        help="ranking metric for the winner tables (default: %(default)s)",
    )
    p_dse.add_argument("--report", help="also write the JSON report to this path")
    p_dse.add_argument("--json", action="store_true", help="emit JSON on stdout")
    p_dse.set_defaults(func=_cmd_dse)

    p_serve = sub.add_parser(
        "serve",
        help="persistent compile/simulate daemon (JSON over HTTP; SIGTERM drains)",
    )
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address")
    p_serve.add_argument(
        "--port", type=int, default=8752, help="TCP port (0 picks an ephemeral port)"
    )
    p_serve.add_argument(
        "--unix-socket", default=None, help="serve on this unix socket instead of TCP"
    )
    p_serve.add_argument(
        "--jobs", type=int, default=1, help="worker processes (1 = run in-process)"
    )
    p_serve.add_argument(
        "--cache-dir",
        default=None,
        help="persistent compile-cache directory shared by workers "
        "(required for --jobs > 1)",
    )
    p_serve.add_argument(
        "--max-queued",
        type=int,
        default=256,
        help="admission bound: requests queued beyond this are rejected with 429",
    )
    p_serve.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="maximum requests accepted in one submit",
    )
    p_serve.add_argument(
        "--warmup",
        default=None,
        help="workload spec JSON replayed through the pool before serving "
        "(populates the compile cache)",
    )
    p_serve.add_argument(
        "--no-warm-scan",
        action="store_true",
        help="skip pre-loading the newest on-disk cache entries at startup",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_fuzz = sub.add_parser(
        "fuzz", help="differential fuzzing across every redundant engine pair"
    )
    p_fuzz.add_argument("--seed", type=int, default=0, help="base seed (case i uses seed+i)")
    p_fuzz.add_argument(
        "--time-budget",
        type=float,
        default=None,
        help="wall-clock budget in seconds (default 10 when --max-cases is unset)",
    )
    p_fuzz.add_argument(
        "--max-cases", type=int, default=None, help="stop after this many cases"
    )
    p_fuzz.add_argument(
        "--oracle",
        action="append",
        help="restrict to one oracle (repeatable); default: all oracles",
    )
    p_fuzz.add_argument(
        "--shrink",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="minimise failing artifacts before reporting (--no-shrink to skip)",
    )
    p_fuzz.add_argument("--report", help="also write the JSON report to this path")
    p_fuzz.add_argument("--json", action="store_true", help="emit JSON on stdout")
    _add_verify_budget_flags(p_fuzz)
    p_fuzz.set_defaults(func=_cmd_fuzz)

    for p in (p_est, p_syn, p_sim):
        p.add_argument("--max-clean", type=int, default=None, help="ancilla budget: clean")
        p.add_argument(
            "--max-borrowed", type=int, default=None, help="ancilla budget: borrowed"
        )
        p.add_argument(
            "--max-ancillas", type=int, default=None, help="ancilla budget: total"
        )
    for p in (p_est, p_syn):
        p.add_argument(
            "--tuning-db",
            default=None,
            help="answer auto selection from this swept tuning database "
            "(falls back to live estimation off its region)",
        )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
