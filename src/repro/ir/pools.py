"""Interned payload and predicate pools backing the columnar gate tables.

A :class:`~repro.ir.table.GateTable` stores per-row integer *ids* into these
pools instead of per-op Python objects: structurally equal payloads (the
same permutation gate with the same label, the same control predicate, the
same dense unitary) are stored exactly once no matter how many thousand rows
reference them.  Lowered circuits repeat a few dozen gate forms across tens
of thousands of rows, so the pools are what turn the object-level O(k)
payload churn into O(distinct forms) memory.

Pools are append-only.  Derived numpy annotations (identity flags,
transposition flags, per-``dim`` firing matrices, inverse maps) are cached
against the pool length, so they are recomputed only after new entries were
interned.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import GateError
from repro.qudit.controls import ControlPredicate, Value
from repro.qudit.gates import Gate, SingleQuditUnitary, XPerm
from repro.utils import permutations as perm_utils


def _length_guarded(pool, name: str, build):
    """Return a cached annotation, rebuilding when the pool has grown."""
    cached = pool._caches.get(name)
    if cached is None or cached[0] != len(pool):
        cached = (len(pool), build())
        pool._caches[name] = cached
    return cached[1]


def _at_least_one(values, dtype) -> np.ndarray:
    """Pack ``values`` as an array with at least one entry (safe indexing)."""
    if not values:
        return np.zeros(1, dtype=dtype)
    return np.asarray(values, dtype=dtype)


class PermGatePool:
    """Interned permutation-gate payloads (``XPerm``/``XPlus`` instances).

    Gates are keyed by ``(type, permutation, label)`` so structurally equal
    gates share one entry while distinct labels survive round-tripping.  A
    parallel *structural* id (the permutation alone) powers the vectorized
    inverse-cancellation check.
    """

    def __init__(self) -> None:
        self._gates: List[Gate] = []
        self._ids: Dict[tuple, int] = {}
        self._struct_ids: Dict[tuple, int] = {}
        self._struct_of: List[int] = []
        self._inverse_memo: Dict[int, int] = {}
        self._fuse_memo: Dict[Tuple[int, int], int] = {}
        self._caches: Dict[str, tuple] = {}

    def __len__(self) -> int:
        return len(self._gates)

    def gate(self, gid: int) -> Gate:
        return self._gates[gid]

    def intern(self, gate: Gate) -> int:
        perm = gate.permutation()
        key = (type(gate).__name__, perm, gate.label)
        gid = self._ids.get(key)
        if gid is None:
            gid = len(self._gates)
            self._ids[key] = gid
            self._gates.append(gate)
            self._struct_of.append(self._struct_ids.setdefault(perm, len(self._struct_ids)))
        return gid

    def inverse_id(self, gid: int) -> int:
        """Pool id of ``gate.inverse()`` (interned on first use)."""
        out = self._inverse_memo.get(gid)
        if out is None:
            out = self.intern(self._gates[gid].inverse())
            self._inverse_memo[gid] = out
        return out

    def fuse_id(self, first: int, second: int) -> int:
        """Pool id of the gate equal to applying ``first`` then ``second``."""
        out = self._fuse_memo.get((first, second))
        if out is None:
            a, b = self._gates[first], self._gates[second]
            merged = perm_utils.compose(b.permutation(), a.permutation())
            out = self.intern(XPerm(merged, label=f"{a.label}·{b.label}"))
            self._fuse_memo[(first, second)] = out
        return out

    # ------------------------------------------------------------------
    # Vectorized annotations (all safe to index with a clamped id column)
    # ------------------------------------------------------------------
    def is_identity(self) -> np.ndarray:
        return _length_guarded(
            self,
            "is_identity",
            lambda: _at_least_one(
                [g.permutation() == tuple(range(len(g.permutation()))) for g in self._gates],
                bool,
            ),
        )

    def is_g_payload(self) -> np.ndarray:
        """True where the gate is a G-set payload: an ``XPerm`` transposition.

        ``Operation.is_g_gate`` requires the *class* too (an ``XPlus`` whose
        permutation happens to be a transposition, e.g. ``X+1`` at d = 2, is
        not a G-gate), so the column kernel checks ``isinstance`` as well.
        """
        return _length_guarded(
            self,
            "is_g_payload",
            lambda: _at_least_one(
                [isinstance(g, XPerm) and g.is_transposition() for g in self._gates], bool
            ),
        )

    def is_x01(self) -> np.ndarray:
        """True where the gate is the ``X01`` transposition (points (0, 1))."""

        def build():
            flags = []
            for g in self._gates:
                flags.append(
                    isinstance(g, XPerm)
                    and g.is_transposition()
                    and g.transposition_points() == (0, 1)
                )
            return _at_least_one(flags, bool)

        return _length_guarded(self, "is_x01", build)

    def struct_ids(self) -> np.ndarray:
        return _length_guarded(self, "struct_ids", lambda: _at_least_one(self._struct_of, np.int64))

    def inverse_struct_ids(self) -> np.ndarray:
        """For each gate id, the structural id of its *inverse* permutation.

        ``-1`` when the inverse permutation was never interned — no row can
        cancel against such a gate.
        """

        def build():
            out = []
            for g in self._gates:
                inv = perm_utils.invert(g.permutation())
                out.append(self._struct_ids.get(inv, -1))
            return _at_least_one(out, np.int64)

        return _length_guarded(self, "inverse_struct_ids", build)


class UnitaryGatePool:
    """Interned dense-unitary payloads (``SingleQuditUnitary`` instances)."""

    def __init__(self) -> None:
        self._gates: List[Gate] = []
        self._ids: Dict[tuple, int] = {}
        self._inverse_memo: Dict[int, int] = {}
        self._cancel_memo: Dict[Tuple[int, int], bool] = {}
        self._fuse_memo: Dict[Tuple[int, int], int] = {}
        self._caches: Dict[str, tuple] = {}

    def __len__(self) -> int:
        return len(self._gates)

    def gate(self, gid: int) -> Gate:
        return self._gates[gid]

    def intern(self, gate: Gate) -> int:
        matrix = gate.matrix()
        key = (type(gate).__name__, gate.label, matrix.shape[0], matrix.tobytes())
        gid = self._ids.get(key)
        if gid is None:
            gid = len(self._gates)
            self._ids[key] = gid
            self._gates.append(gate)
        return gid

    def inverse_id(self, gid: int) -> int:
        out = self._inverse_memo.get(gid)
        if out is None:
            out = self.intern(self._gates[gid].inverse())
            self._inverse_memo[gid] = out
        return out

    def cancels(self, first: int, second: int) -> bool:
        """True if applying ``first`` then ``second`` is the identity."""
        out = self._cancel_memo.get((first, second))
        if out is None:
            product = self._gates[second].matrix() @ self._gates[first].matrix()
            dim = product.shape[0]
            out = bool(np.allclose(product, np.eye(dim), atol=1e-9))
            self._cancel_memo[(first, second)] = out
        return out

    def fuse_id(self, first: int, second: int) -> int:
        out = self._fuse_memo.get((first, second))
        if out is None:
            a, b = self._gates[first], self._gates[second]
            product = b.matrix() @ a.matrix()
            out = self.intern(
                SingleQuditUnitary(product, label=f"{a.label}·{b.label}", check=False)
            )
            self._fuse_memo[(first, second)] = out
        return out

    def is_identity(self) -> np.ndarray:
        return _length_guarded(
            self,
            "is_identity",
            lambda: _at_least_one(
                [
                    bool(np.allclose(g.matrix(), np.eye(g.dim), atol=1e-12))
                    for g in self._gates
                ],
                bool,
            ),
        )


class PredicatePool:
    """Interned control predicates (keyed by their structural equality)."""

    def __init__(self) -> None:
        self._preds: List[ControlPredicate] = []
        self._ids: Dict[ControlPredicate, int] = {}
        self._caches: Dict[str, tuple] = {}

    def __len__(self) -> int:
        return len(self._preds)

    def predicate(self, pid: int) -> ControlPredicate:
        return self._preds[pid]

    def intern(self, predicate: ControlPredicate) -> int:
        pid = self._ids.get(predicate)
        if pid is None:
            pid = len(self._preds)
            self._ids[predicate] = pid
            self._preds.append(predicate)
        return pid

    def labels(self) -> List[str]:
        return _length_guarded(self, "labels", lambda: [p.label for p in self._preds])

    def is_value0(self) -> np.ndarray:
        return _length_guarded(
            self,
            "is_value0",
            lambda: _at_least_one(
                [isinstance(p, Value) and p.value == 0 for p in self._preds], bool
            ),
        )

    def _fires(self, dim: int) -> Tuple[np.ndarray, np.ndarray]:
        """(fires matrix (p, dim) bool, invalid flags (p,) bool) for ``dim``.

        A predicate whose ``values(dim)`` raises (out-of-range control value)
        is flagged invalid; callers keep such rows and let the simulator
        reject them, matching the object-level pass behavior.
        """

        def build():
            count = max(len(self._preds), 1)
            fires = np.zeros((count, dim), dtype=bool)
            invalid = np.zeros(count, dtype=bool)
            for pid, predicate in enumerate(self._preds):
                try:
                    for value in predicate.values(dim):
                        fires[pid, value] = True
                except GateError:
                    invalid[pid] = True
            return fires, invalid

        return _length_guarded(self, f"fires:{dim}", build)

    def fires_matrix(self, dim: int) -> np.ndarray:
        return self._fires(dim)[0]

    def invalid_for(self, dim: int) -> np.ndarray:
        return self._fires(dim)[1]

    def never_fires(self, dim: int) -> np.ndarray:
        """True where the predicate is valid for ``dim`` yet fires on nothing."""
        fires, invalid = self._fires(dim)
        return ~invalid & ~fires.any(axis=1)


class ExtraControlsPool:
    """Interned overflow control lists for rows with more than two controls.

    Each entry is a tuple of ``(wire, predicate_id)`` pairs covering the
    controls beyond the two inline column slots.  Lowered circuits never use
    this (G-gates carry at most one control); it exists so *every* circuit —
    including raw synthesis macros like ``|0^k⟩-X`` — round-trips losslessly.
    """

    def __init__(self) -> None:
        self._entries: List[Tuple[Tuple[int, int], ...]] = []
        self._ids: Dict[Tuple[Tuple[int, int], ...], int] = {}
        self._caches: Dict[str, tuple] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def entry(self, eid: int) -> Tuple[Tuple[int, int], ...]:
        return self._entries[eid]

    def intern(self, entry: Tuple[Tuple[int, int], ...]) -> int:
        eid = self._ids.get(entry)
        if eid is None:
            eid = len(self._entries)
            self._ids[entry] = eid
            self._entries.append(entry)
        return eid

    def lengths(self) -> np.ndarray:
        return _length_guarded(
            self, "lengths", lambda: _at_least_one([len(e) for e in self._entries], np.int64)
        )


class SegmentGatherCache:
    """Interned whole-basis gather tables for composed row segments.

    Keyed by the segment's row content (plus register shape and direction),
    so every table sharing one :class:`PoolSet` — ``select``/``inverse``
    derivatives, re-lowered copies, the fuzz oracles' twins — reuses one
    composed array per distinct segment instead of recomposing it.  Bounded
    FIFO-style: composed tables over a ``d^n`` basis are large, so the cache
    holds at most ``max_entries`` of them.
    """

    def __init__(self, max_entries: int = 128) -> None:
        self._arrays: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
        self.max_entries = int(max_entries)
        self.hits = 0
        self.builds = 0

    def __len__(self) -> int:
        return len(self._arrays)

    def intern(self, key: tuple, build) -> np.ndarray:
        """The cached array under ``key``, calling ``build()`` on first use."""
        array = self._arrays.get(key)
        if array is None:
            array = build()
            self.builds += 1
            self._arrays[key] = array
            while len(self._arrays) > self.max_entries:
                self._arrays.popitem(last=False)
        else:
            self._arrays.move_to_end(key)
            self.hits += 1
        return array


class PoolSet:
    """The pools one table (or a family of derived tables) shares."""

    __slots__ = ("perms", "unitaries", "preds", "extras", "segments")

    def __init__(
        self,
        perms: Optional[PermGatePool] = None,
        unitaries: Optional[UnitaryGatePool] = None,
        preds: Optional[PredicatePool] = None,
        extras: Optional[ExtraControlsPool] = None,
        segments: Optional[SegmentGatherCache] = None,
    ) -> None:
        self.perms = perms or PermGatePool()
        self.unitaries = unitaries or UnitaryGatePool()
        self.preds = preds or PredicatePool()
        self.extras = extras or ExtraControlsPool()
        self.segments = segments or SegmentGatherCache()
