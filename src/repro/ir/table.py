"""The columnar compiled-circuit IR: struct-of-arrays gate tables.

A :class:`GateTable` is the compact array form of a
:class:`~repro.qudit.circuit.QuditCircuit`: one int row per operation,
spread over eight numpy columns, with every Python-object payload
(permutation gates, dense unitaries, control predicates, overflow control
lists) interned once into the shared :class:`~repro.ir.pools.PoolSet`.

Row layout (``-1`` marks an absent slot everywhere)::

    opcode   OP_PERM / OP_UNITARY (controlled single-qudit gate)
             or OP_STAR (the |⋆⟩-X±⋆ macro)
    target   target wire
    wire_a   first control wire  — for OP_STAR this is the star wire
    wire_b   second control wire — for OP_STAR the first ordinary control
    pred_a   predicate pool id controlling wire_a (-1 for the star wire)
    pred_b   predicate pool id controlling wire_b
    payload  gate pool id (perm or unitary pool, selected by opcode);
             for OP_STAR the shift sign (+1 / -1)
    extra    overflow pool id for controls beyond the two inline slots

Round-tripping is lossless: ``GateTable.from_circuit(c).to_circuit()``
rebuilds operations that compare equal gate-for-gate (payload, label,
controls, order).  The counting, depth, histogram, inverse and remap
queries all run as column kernels — no per-op Python objects are touched —
which is what :class:`~repro.qudit.circuit.QuditCircuit` delegates to when
a cached table is live.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import GateError, WireError
from repro.ir.pools import PoolSet
from repro.qudit.operations import BaseOp, Operation, StarShiftOp

#: Row opcodes.
OP_PERM = 0
OP_UNITARY = 1
OP_STAR = 2

#: Index batches larger than this propagate through ``apply_to_indices`` in
#: slices, bounding the transient arrays each row's stride arithmetic
#: allocates to a few chunk-sized int64 buffers regardless of batch size.
DEFAULT_INDEX_CHUNK = 1 << 18

#: Column names in storage order (one numpy array each).
COLUMNS = ("opcode", "target", "wire_a", "wire_b", "pred_a", "pred_b", "payload", "extra")

_WIRE_DTYPE = np.int32


def encode_op(op: BaseOp, pools: PoolSet) -> Tuple[int, int, int, int, int, int, int, int]:
    """Encode one operation as a row tuple, interning its payloads."""
    if isinstance(op, StarShiftOp):
        ordinary = op.controls
        wire_a, pred_a = op.star_wire, -1
        payload = op.sign
        opcode = OP_STAR
    elif isinstance(op, Operation):
        ordinary = op.controls
        if ordinary:
            wire_a = ordinary[0][0]
            pred_a = pools.preds.intern(ordinary[0][1])
        else:
            wire_a, pred_a = -1, -1
        ordinary = ordinary[1:]
        if op.gate.is_permutation:
            opcode, payload = OP_PERM, pools.perms.intern(op.gate)
        else:
            opcode, payload = OP_UNITARY, pools.unitaries.intern(op.gate)
    else:
        raise GateError(f"cannot encode unknown operation type {type(op).__name__}")

    if ordinary:
        wire_b = ordinary[0][0]
        pred_b = pools.preds.intern(ordinary[0][1])
        rest = ordinary[1:]
    else:
        wire_b, pred_b, rest = -1, -1, ()
    extra = (
        pools.extras.intern(tuple((w, pools.preds.intern(p)) for w, p in rest)) if rest else -1
    )
    return (opcode, op.target, wire_a, wire_b, pred_a, pred_b, payload, extra)


class GateTable:
    """A circuit as eight parallel numpy columns plus interned pools."""

    __slots__ = ("num_wires", "dim", "name", "columns", "pools", "_cache")

    def __init__(
        self,
        num_wires: int,
        dim: int,
        columns: Sequence[np.ndarray],
        pools: PoolSet,
        name: str = "table",
    ):
        self.num_wires = int(num_wires)
        self.dim = int(dim)
        self.name = name
        self.columns = tuple(np.ascontiguousarray(c) for c in columns)
        if len(self.columns) != len(COLUMNS):
            raise GateError(f"a gate table needs {len(COLUMNS)} columns")
        for column in self.columns:
            column.setflags(write=False)
        self.pools = pools
        self._cache: Dict[str, object] = {}

    # Named column accessors ------------------------------------------------
    @property
    def opcode(self) -> np.ndarray:
        return self.columns[0]

    @property
    def target(self) -> np.ndarray:
        return self.columns[1]

    @property
    def wire_a(self) -> np.ndarray:
        return self.columns[2]

    @property
    def wire_b(self) -> np.ndarray:
        return self.columns[3]

    @property
    def pred_a(self) -> np.ndarray:
        return self.columns[4]

    @property
    def pred_b(self) -> np.ndarray:
        return self.columns[5]

    @property
    def payload(self) -> np.ndarray:
        return self.columns[6]

    @property
    def extra(self) -> np.ndarray:
        return self.columns[7]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_ops(
        cls,
        ops: Sequence[BaseOp],
        num_wires: int,
        dim: int,
        *,
        name: str = "table",
        pools: Optional[PoolSet] = None,
    ) -> "GateTable":
        pools = pools or PoolSet()
        rows = [encode_op(op, pools) for op in ops]
        if rows:
            matrix = np.asarray(rows, dtype=np.int64)
            columns = [matrix[:, i].astype(_WIRE_DTYPE) for i in range(len(COLUMNS))]
        else:
            columns = [np.zeros(0, dtype=_WIRE_DTYPE) for _ in COLUMNS]
        return cls(num_wires, dim, columns, pools, name=name)

    @classmethod
    def from_circuit(cls, circuit) -> "GateTable":
        """Build (or reuse) the table form of a circuit.

        Delegates to :meth:`~repro.qudit.circuit.QuditCircuit.to_table`, so
        the result is cached on the circuit.
        """
        return circuit.to_table()

    def select(self, keep) -> "GateTable":
        """A new table (sharing pools) with only the rows selected by ``keep``."""
        return GateTable(
            self.num_wires,
            self.dim,
            [column[keep] for column in self.columns],
            self.pools,
            name=self.name,
        )

    def replace_columns(self, **named) -> "GateTable":
        """A new table (sharing pools) with some columns swapped out."""
        columns = list(self.columns)
        for key, value in named.items():
            columns[COLUMNS.index(key)] = np.asarray(value, dtype=_WIRE_DTYPE)
        return GateTable(self.num_wires, self.dim, columns, self.pools, name=self.name)

    # ------------------------------------------------------------------
    # Row-level decoding (the boundary back to the object IR)
    # ------------------------------------------------------------------
    def _decode_row(self, row: Sequence[int]) -> BaseOp:
        opcode, target, wire_a, wire_b, pred_a, pred_b, payload, extra = (int(x) for x in row)
        preds = self.pools.preds
        controls: List[Tuple[int, object]] = []
        if opcode == OP_STAR:
            if wire_b >= 0:
                controls.append((wire_b, preds.predicate(pred_b)))
        else:
            if wire_a >= 0:
                controls.append((wire_a, preds.predicate(pred_a)))
            if wire_b >= 0:
                controls.append((wire_b, preds.predicate(pred_b)))
        if extra >= 0:
            controls.extend((w, preds.predicate(p)) for w, p in self.pools.extras.entry(extra))
        if opcode == OP_STAR:
            return StarShiftOp(wire_a, target, payload, controls)
        gate = (
            self.pools.perms.gate(payload)
            if opcode == OP_PERM
            else self.pools.unitaries.gate(payload)
        )
        return Operation(gate, target, controls)

    def _unique_rows(self) -> Tuple[np.ndarray, np.ndarray]:
        cached = self._cache.get("unique_rows")
        if cached is None:
            rows = np.stack(self.columns, axis=1) if len(self) else np.zeros((0, 8), np.int64)
            uniq, inverse = np.unique(rows, axis=0, return_inverse=True)
            cached = (uniq, inverse.ravel())
            self._cache["unique_rows"] = cached
        return cached

    def unique_ops(self) -> Tuple[List[BaseOp], np.ndarray]:
        """(one op per distinct row, row -> distinct-index map).

        Structurally identical rows share one operation *instance*, so the
        per-instance permutation-table caches are shared too — applying a
        table never hashes or rebuilds a gather table twice for the same
        gate form.
        """
        cached = self._cache.get("unique_ops")
        if cached is None:
            uniq, inverse = self._unique_rows()
            cached = ([self._decode_row(row) for row in uniq], inverse)
            self._cache["unique_ops"] = cached
        return cached

    def to_ops(self) -> List[BaseOp]:
        """Materialise the row sequence as operation objects (shared instances)."""
        ops, inverse = self.unique_ops()
        return [ops[i] for i in inverse.tolist()]

    def to_circuit(self, name: Optional[str] = None):
        """A :class:`~repro.qudit.circuit.QuditCircuit` backed by this table.

        The circuit materialises operation objects only when something
        actually iterates them; counting/depth/inverse queries keep running
        on the columns.
        """
        from repro.qudit.circuit import QuditCircuit

        return QuditCircuit.from_table(self, name=name)

    # ------------------------------------------------------------------
    # Column kernels: counting and structure queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.columns[0].shape[0])

    def num_ops(self) -> int:
        return len(self)

    @property
    def is_permutation(self) -> bool:
        return not bool((self.opcode == OP_UNITARY).any())

    def spans(self) -> np.ndarray:
        """Distinct-wire count per row (wires within a row never repeat)."""
        cached = self._cache.get("spans")
        if cached is None:
            spans = 1 + (self.wire_a >= 0).astype(np.int64) + (self.wire_b >= 0).astype(np.int64)
            extra = self.extra
            if (extra >= 0).any():
                lengths = self.pools.extras.lengths()
                spans = spans + np.where(extra >= 0, lengths[np.maximum(extra, 0)], 0)
            cached = spans
            self._cache["spans"] = cached
        return cached

    def two_qudit_count(self) -> int:
        return int((self.spans() == 2).sum())

    def multi_qudit_count(self) -> int:
        return int((self.spans() >= 3).sum())

    def single_qudit_count(self) -> int:
        return int((self.spans() == 1).sum())

    def max_span(self) -> int:
        spans = self.spans()
        return int(spans.max()) if len(self) else 0

    def g_gate_mask(self) -> np.ndarray:
        """Boolean row mask: is the row literally a G-gate for this ``dim``?"""
        cached = self._cache.get("g_gate_mask")
        if cached is None:
            perms = self.pools.perms
            m_perm = self.opcode == OP_PERM
            pay = np.where(m_perm, self.payload, 0)
            transposition = m_perm & perms.is_g_payload()[pay]
            uncontrolled = self.wire_a < 0
            one_control = (self.wire_a >= 0) & (self.wire_b < 0) & (self.extra < 0)
            pa = np.where(self.pred_a >= 0, self.pred_a, 0)
            zero_controlled = one_control & self.pools.preds.is_value0()[pa] & perms.is_x01()[pay]
            cached = transposition & (uncontrolled | zero_controlled)
            self._cache["g_gate_mask"] = cached
        return cached

    def g_gate_count(self) -> int:
        return int(self.g_gate_mask().sum())

    def controlled_g_gate_count(self) -> int:
        """G-gates carrying their single ``|0⟩`` control (the ``|0⟩-X01`` form)."""
        return int((self.g_gate_mask() & (self.wire_a >= 0)).sum())

    def is_g_circuit(self) -> bool:
        return bool(self.g_gate_mask().all())

    def used_wires(self) -> Tuple[int, ...]:
        wires = set(np.unique(self.target).tolist())
        for column in (self.wire_a, self.wire_b):
            wires.update(w for w in np.unique(column).tolist() if w >= 0)
        for eid in np.unique(self.extra).tolist():
            if eid >= 0:
                wires.update(w for w, _ in self.pools.extras.entry(eid))
        return tuple(sorted(wires))

    def targeted_wires(self) -> Tuple[int, ...]:
        return tuple(sorted(np.unique(self.target).tolist()))

    def depth(self) -> int:
        """Greedy as-soon-as-possible depth over the wire columns."""
        frontier = [0] * self.num_wires
        targets = self.target.tolist()
        wires_a = self.wire_a.tolist()
        wires_b = self.wire_b.tolist()
        extras = self.extra.tolist()
        entry = self.pools.extras.entry
        for i, t in enumerate(targets):
            level = frontier[t]
            a = wires_a[i]
            if a >= 0 and frontier[a] > level:
                level = frontier[a]
            b = wires_b[i]
            if b >= 0 and frontier[b] > level:
                level = frontier[b]
            eid = extras[i]
            if eid >= 0:
                for w, _ in entry(eid):
                    if frontier[w] > level:
                        level = frontier[w]
            level += 1
            frontier[t] = level
            if a >= 0:
                frontier[a] = level
            if b >= 0:
                frontier[b] = level
            if eid >= 0:
                for w, _ in entry(eid):
                    frontier[w] = level
        return max(frontier, default=0)

    def label_histogram(self) -> Counter:
        """Histogram keyed exactly like ``QuditCircuit.label_histogram``.

        Labels depend only on (opcode, predicates, payload), so the kernel
        runs one ``np.unique`` over those columns and formats each distinct
        combination once.
        """
        histogram: Counter = Counter()
        if not len(self):
            return histogram
        sub = np.stack([self.opcode, self.pred_a, self.pred_b, self.payload, self.extra], axis=1)
        uniq, counts = np.unique(sub, axis=0, return_counts=True)
        pred_labels = self.pools.preds.labels()
        for row, count in zip(uniq.tolist(), counts.tolist()):
            opcode, pred_a, pred_b, payload, extra = row
            ordered: List[int] = []
            if opcode == OP_STAR:
                key = "X+⋆" if payload > 0 else "X-⋆"
            else:
                pool = self.pools.perms if opcode == OP_PERM else self.pools.unitaries
                key = pool.gate(payload).label
                if pred_a >= 0:
                    ordered.append(pred_a)
            if pred_b >= 0:
                ordered.append(pred_b)
            if extra >= 0:
                ordered.extend(p for _, p in self.pools.extras.entry(extra))
            prefix = "".join(f"|{pred_labels[p]}⟩" for p in ordered)
            histogram[prefix + "-" + key if prefix else key] += count
        return histogram

    # ------------------------------------------------------------------
    # Column kernels: structural transforms
    # ------------------------------------------------------------------
    def inverse(self) -> "GateTable":
        """The adjoint table: rows reversed, payloads inverted, signs flipped."""
        reversed_columns = [column[::-1].copy() for column in self.columns]
        opcode, payload = reversed_columns[0], reversed_columns[6]
        new_payload = payload.copy()
        mask_star = opcode == OP_STAR
        if mask_star.any():
            new_payload[mask_star] = -payload[mask_star]
        for code, pool in ((OP_PERM, self.pools.perms), (OP_UNITARY, self.pools.unitaries)):
            mask = opcode == code
            if mask.any():
                inverse_map = np.array(
                    [pool.inverse_id(g) for g in range(len(pool))], dtype=np.int64
                )
                new_payload[mask] = inverse_map[payload[mask]]
        reversed_columns[6] = new_payload
        return GateTable(
            self.num_wires, self.dim, reversed_columns, self.pools, name=f"{self.name}†"
        )

    def remap_wires(
        self, mapping: Dict[int, int], num_wires: Optional[int] = None
    ) -> "GateTable":
        """Relabel every wire column through ``mapping`` (vectorized gather)."""
        for wire in self.used_wires():
            if wire not in mapping:
                raise WireError(f"wire {wire} missing from remap mapping")
        target_wires = num_wires if num_wires is not None else max(mapping.values()) + 1
        lookup = np.full(self.num_wires + 1, -1, dtype=_WIRE_DTYPE)
        for source, dest in mapping.items():
            if 0 <= source < self.num_wires:
                if not 0 <= dest < target_wires:
                    raise WireError(
                        f"remap sends wire {source} to {dest}, outside {target_wires} wires"
                    )
                lookup[source] = dest
        new_target = lookup[self.target]
        new_a = lookup[self.wire_a]
        new_b = lookup[self.wire_b]
        new_extra = self.extra
        if (self.extra >= 0).any():
            remapped: Dict[int, int] = {}
            for eid in np.unique(self.extra).tolist():
                if eid < 0:
                    continue
                entry = tuple((int(lookup[w]), p) for w, p in self.pools.extras.entry(eid))
                if any(w < 0 for w, _ in entry):
                    raise WireError("remap mapping misses an overflow control wire")
                remapped[eid] = self.pools.extras.intern(entry)
            new_extra = self.extra.copy()
            for eid, new_eid in remapped.items():
                new_extra[self.extra == eid] = new_eid
        out = GateTable(
            target_wires,
            self.dim,
            [
                self.opcode,
                new_target,
                new_a,
                new_b,
                self.pred_a,
                self.pred_b,
                self.payload,
                new_extra,
            ],
            self.pools,
            name=self.name,
        )
        out._check_distinct_wires()
        return out

    def _check_distinct_wires(self) -> None:
        clash = (self.wire_a >= 0) & (
            (self.wire_a == self.target)
            | ((self.wire_b >= 0) & (self.wire_a == self.wire_b))
        )
        clash |= (self.wire_b >= 0) & (self.wire_b == self.target)
        if clash.any():
            row = int(np.nonzero(clash)[0][0])
            raise WireError(f"operation uses a wire more than once: row {row}")
        for i in np.nonzero(self.extra >= 0)[0].tolist():
            op = self._decode_row([column[i] for column in self.columns])
            wires = op.wires()
            if len(set(wires)) != len(wires):  # pragma: no cover - decode validates
                raise WireError(f"operation uses a wire more than once: {wires}")

    # ------------------------------------------------------------------
    # Simulation support
    # ------------------------------------------------------------------
    def permutation_index_table(self) -> np.ndarray:
        """The table's action on the full flat basis as one gather array.

        Delegates to the segment layer: a permutation table is one maximal
        segment spanning every row, composed once (one cached gather per
        *distinct* row) and interned on the pools so derived tables share it.
        """
        if not self.is_permutation:
            raise GateError(
                "circuit contains non-permutation gates; use the statevector simulator"
            )
        cached = self._cache.get("perm_index_table")
        if cached is None:
            from repro.ir.segment import compose_gather

            cached = compose_gather(self, 0, len(self))
            self._cache["perm_index_table"] = cached
        return cached

    def apply_to_indices(self, indices, *, out=None, chunk_size: int = DEFAULT_INDEX_CHUNK) -> np.ndarray:
        """Images of a *batch* of flat basis indices under the whole table.

        The batched twin of :meth:`permutation_index_table`, and the core of
        the classical simulation path: each row is applied as direct stride
        arithmetic on the ``B`` requested indices
        (:meth:`repro.qudit.operations.BaseOp.map_indices`) — O(rows · B)
        time, O(min(B, chunk_size)) transient memory, and never a ``d^n``
        table, so it works on registers far beyond any statevector
        (``d^n >= 10^9``).  ``out=`` reuses a caller-provided ``int64``
        buffer of the same shape; batches larger than ``chunk_size`` are
        propagated in slices to bound the transient arrays.
        """
        if not self.is_permutation:
            row = int(np.nonzero(self.opcode == OP_UNITARY)[0][0])
            label = self.pools.unitaries.gate(int(self.payload[row])).label
            raise GateError(
                f"table {self.name!r} row {row} applies the dense unitary gate "
                f"{label!r}; basis indices only propagate through permutation "
                "rows — use the statevector simulator for this circuit"
            )
        acc = np.asarray(indices, dtype=np.int64)
        size = self.dim**self.num_wires
        if acc.size and (acc.min() < 0 or acc.max() >= size):
            raise WireError(
                f"basis index out of range for {self.num_wires} wires of dimension {self.dim}"
            )
        if out is None:
            out = np.empty(acc.shape, dtype=np.int64)
        else:
            out = np.asarray(out)
            if out.shape != acc.shape or out.dtype != np.int64:
                raise GateError(
                    f"out buffer must be int64 with shape {acc.shape}, "
                    f"got {out.dtype} with shape {out.shape}"
                )
            if not out.flags.c_contiguous:
                raise GateError("out buffer must be C-contiguous")
        chunk = max(1, int(chunk_size))
        ops, inverse = self.unique_ops()
        row_ops = [ops[u] for u in inverse.tolist()]
        flat_in = acc.reshape(-1)
        flat_out = out.reshape(-1)
        for lo in range(0, flat_in.size, chunk):
            seg = flat_in[lo : lo + chunk]
            for op in row_ops:
                seg = op.map_indices(seg, self.dim, self.num_wires)
            flat_out[lo : lo + chunk] = seg
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GateTable(name={self.name!r}, wires={self.num_wires}, dim={self.dim}, "
            f"rows={len(self)}, payloads={len(self.pools.perms)}+{len(self.pools.unitaries)})"
        )


class TableBuilder:
    """Accumulates rows and pre-encoded column blocks into one table.

    Used both by ``GateTable.from_ops`` style conversion (per-op rows) and by
    the template-expansion lowering, which appends whole numpy blocks of
    already-encoded rows at once.
    """

    def __init__(self, num_wires: int, dim: int, name: str = "table", pools=None):
        self.num_wires = num_wires
        self.dim = dim
        self.name = name
        self.pools = pools or PoolSet()
        self._pending: List[Tuple[int, ...]] = []
        self._blocks: List[np.ndarray] = []

    def _flush(self) -> None:
        if self._pending:
            self._blocks.append(np.asarray(self._pending, dtype=np.int64))
            self._pending = []

    def add_op(self, op: BaseOp) -> None:
        self._pending.append(encode_op(op, self.pools))

    def add_block(self, block: np.ndarray) -> None:
        """Append a pre-encoded ``(rows, 8)`` int block (already pool-resolved)."""
        if block.shape[0]:
            self._flush()
            self._blocks.append(block)

    def build(self) -> GateTable:
        self._flush()
        if self._blocks:
            matrix = np.concatenate(self._blocks, axis=0)
            columns = [matrix[:, i].astype(_WIRE_DTYPE) for i in range(len(COLUMNS))]
        else:
            columns = [np.zeros(0, dtype=_WIRE_DTYPE) for _ in COLUMNS]
        return GateTable(self.num_wires, self.dim, columns, self.pools, name=self.name)
