"""Lower synthesis output straight into a columnar gate table.

The object-level lowering (``ExpandMacros`` + peephole passes) spends almost
all of its time constructing tens of thousands of short-lived ``Operation``
objects — one per emitted G-gate — even though a lowered multi-controlled
circuit repeats the same few dozen *macro forms* over and over on different
wires, and every expansion rule in :mod:`repro.passes.expand_macros` is
wire-label independent.

This module exploits that: each distinct macro form is expanded **once** to
a canonical *template* (a pre-encoded ``(rows, 8)`` int block with wires
numbered ``0..m-1``), and every further occurrence is instantiated by a
vectorized gather that relabels the template's wire columns through the
op's actual wires.  A circuit with hundreds of macros and ~10^5 G-gates
therefore costs a handful of template expansions plus one numpy remap per
macro — no per-G-gate Python object is ever created.

:func:`lower_circuit_to_table` is the table engine behind
:func:`repro.core.lowering.lower_to_g_gates`; it runs the same pass order
as the object pipeline (drop → fuse → expand → cancel → drop) and is
gate-for-gate identical to it, which the test suite asserts.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.exceptions import SynthesisError
from repro.ir.rewrite import cancel_adjacent_inverses, drop_identities
from repro.ir.table import GateTable, TableBuilder, encode_op
from repro.qudit.circuit import QuditCircuit, _remap_op
from repro.qudit.operations import BaseOp, Operation, StarShiftOp

#: Canonical G-gate sequences per macro form, shared across lowering runs.
#: Keyed by the wire-independent structure of the macro; values are
#: ``(ops tuple with wires 0..m-1, borrow_used)``.
_TEMPLATE_OPS_CACHE: Dict[tuple, Tuple[Tuple[BaseOp, ...], bool]] = {}
_TEMPLATE_OPS_CACHE_MAX = 1024

_WIRE_COLUMNS = (1, 2, 3)  # target, wire_a, wire_b positions in a row block


def _template_key(op: BaseOp, dim: int) -> tuple:
    """The wire-independent structure that determines an op's expansion."""
    if isinstance(op, StarShiftOp):
        return ("star", dim, op.sign, tuple(pred for _, pred in op.controls))
    if isinstance(op, Operation):
        payload = op.gate.permutation() if op.gate.is_permutation else None
        return ("op", dim, payload, tuple(pred for _, pred in op.controls))
    raise SynthesisError(f"cannot lower unknown operation {op!r}")


def _canonical_expansion(op: BaseOp, dim: int, max_sweeps: int) -> Tuple[Tuple[BaseOp, ...], bool]:
    """Expand ``op`` with wires relabelled to ``0..m-1`` (cached globally)."""
    # Imported here: repro.passes.__init__ pulls in synthesis modules that
    # must not load while repro.ir is being imported at package-init time.
    from repro.passes.expand_macros import expand_fully

    key = _template_key(op, dim)
    cached = _TEMPLATE_OPS_CACHE.get(key)
    if cached is None:
        roles = {wire: slot for slot, wire in enumerate(op.wires())}
        canonical = _remap_op(op, roles)
        borrow_slot = len(roles)
        used = [False]

        def find_borrow(_child: BaseOp) -> int:
            used[0] = True
            return borrow_slot

        ops = tuple(expand_fully(canonical, dim, find_borrow, fuel=max_sweeps))
        cached = (ops, used[0])
        while len(_TEMPLATE_OPS_CACHE) >= _TEMPLATE_OPS_CACHE_MAX:
            _TEMPLATE_OPS_CACHE.pop(next(iter(_TEMPLATE_OPS_CACHE)))
        _TEMPLATE_OPS_CACHE[key] = cached
    return cached


def _lowest_idle_wire(num_wires: int, op: BaseOp) -> int:
    """The borrow wire the object engine would pick (one shared policy)."""
    from repro.passes.expand_macros import lowest_idle_wire

    return lowest_idle_wire(num_wires, op)


def expand_to_table(circuit: QuditCircuit, max_sweeps: int = 12) -> GateTable:
    """Expand every macro of ``circuit`` into a G-gate table via templates."""
    dim = circuit.dim
    builder = TableBuilder(circuit.num_wires, dim, name=circuit.name)
    # Per-run cache of encoded blocks: template ops only need interning into
    # this run's pools once, after which instantiation is pure numpy.
    blocks: Dict[tuple, Tuple[np.ndarray, bool, int]] = {}
    for op in circuit:
        if op.is_g_gate(dim):
            builder.add_op(op)
            continue
        key = _template_key(op, dim)
        entry = blocks.get(key)
        if entry is None:
            ops, borrow_used = _canonical_expansion(op, dim, max_sweeps)
            if ops:
                block = np.asarray([encode_op(g, builder.pools) for g in ops], dtype=np.int64)
            else:
                block = np.zeros((0, 8), dtype=np.int64)
            entry = (block, borrow_used, op.span())
            blocks[key] = entry
        block, borrow_used, _span = entry
        if not block.shape[0]:
            continue
        slots = list(op.wires())
        if borrow_used:
            slots.append(_lowest_idle_wire(circuit.num_wires, op))
        # Trailing -1 makes the absent-wire sentinel map to itself.
        slot_map = np.asarray(slots + [-1], dtype=np.int64)
        instance = block.copy()
        for column in _WIRE_COLUMNS:
            instance[:, column] = slot_map[block[:, column]]
        builder.add_block(instance)
    return builder.build()


def lower_circuit_to_table(circuit: QuditCircuit, max_sweeps: int = 12) -> GateTable:
    """The columnar twin of the default lowering pipeline.

    Stage order matches :func:`repro.passes.default_lowering_pipeline`:
    identity removal and single-qudit fusion at the (small, object-level)
    macro layer, template expansion into a table, then the columnar cancel
    and drop kernels.
    """
    # Imported lazily for the same package-init reason as above.
    from repro.passes.optimize import DropIdentities, FuseSingleQuditGates

    macro = FuseSingleQuditGates().run(DropIdentities().run(circuit))
    table = expand_to_table(macro, max_sweeps=max_sweeps)
    table = cancel_adjacent_inverses(table)
    table = drop_identities(table)
    table.name = circuit.name
    return table
