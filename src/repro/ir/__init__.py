"""Columnar compiled-circuit IR: struct-of-arrays gate tables.

``repro.ir`` is the array-backed twin of the object IR in ``repro.qudit``:
a :class:`GateTable` stores a circuit as eight parallel numpy int columns
(opcode, wire triple, control-predicate ids, payload id, overflow id) with
all Python payloads interned once into shared pools.  Conversion is
lossless in both directions (``QuditCircuit.to_table()`` /
``GateTable.to_circuit()``), counting/depth/inverse/remap queries run as
column kernels, the peephole passes have table-native linear rewrites
(:mod:`repro.ir.rewrite`), and :func:`lower_circuit_to_table` lowers
synthesis output straight into a table through cached wire-relabelled
expansion templates.
"""

from repro.ir.pools import (
    ExtraControlsPool,
    PermGatePool,
    PoolSet,
    PredicatePool,
    SegmentGatherCache,
    UnitaryGatePool,
)
from repro.ir.rewrite import (
    cancel_adjacent_inverses,
    drop_identities,
    fuse_single_qudit,
    segment_bounds,
)
from repro.ir.segment import Segment, compose_gather, segment_table
from repro.ir.table import OP_PERM, OP_STAR, OP_UNITARY, GateTable, TableBuilder
from repro.ir.lowering import expand_to_table, lower_circuit_to_table

__all__ = [
    "GateTable",
    "TableBuilder",
    "PoolSet",
    "PermGatePool",
    "UnitaryGatePool",
    "PredicatePool",
    "ExtraControlsPool",
    "SegmentGatherCache",
    "OP_PERM",
    "OP_UNITARY",
    "OP_STAR",
    "Segment",
    "compose_gather",
    "segment_table",
    "segment_bounds",
    "drop_identities",
    "cancel_adjacent_inverses",
    "fuse_single_qudit",
    "expand_to_table",
    "lower_circuit_to_table",
]
