"""Table-native peephole rewrites (the columnar form of ``repro.passes``).

Each kernel consumes a :class:`~repro.ir.table.GateTable` and returns a new
one sharing the same pools, implementing exactly the semantics of the
object-level passes in :mod:`repro.passes.optimize` — the two paths are
gate-for-gate identical, which the test suite asserts:

* :func:`drop_identities` — one vectorized mask over the payload/predicate
  annotation flags;
* :func:`cancel_adjacent_inverses` — a single linear sweep with per-wire
  last-op stacks (no backward rescans, no list copies) over plain int
  columns;
* :func:`fuse_single_qudit` — a single linear sweep with a per-wire
  last-touch index, composing payloads through the interned pools.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.ir.table import OP_PERM, OP_STAR, OP_UNITARY, GateTable


def segment_bounds(table: GateTable) -> List[tuple]:
    """``(start, stop, is_permutation)`` runs splitting the rows at unitary ops.

    One vectorized pass over the opcode column: every ``OP_UNITARY`` row is
    its own single-row run, and the maximal stretches between them (``OP_PERM``
    and ``OP_STAR`` rows — both permutations of the computational basis) are
    permutation runs.  The simulation layer composes each permutation run
    into one whole-basis gather (:mod:`repro.ir.segment`).
    """
    bounds: List[tuple] = []
    cursor = 0
    for row in np.flatnonzero(table.opcode == OP_UNITARY).tolist():
        if row > cursor:
            bounds.append((cursor, row, True))
        bounds.append((row, row + 1, False))
        cursor = row + 1
    if cursor < len(table):
        bounds.append((cursor, len(table), True))
    return bounds


def drop_identities(table: GateTable) -> GateTable:
    """Remove rows that act as the identity on every basis state.

    Mirrors ``DropIdentities``: only controlled-gate rows are candidates
    (star rows never are); a row is dropped when its payload is the identity
    or when a control predicate that can never fire precedes any predicate
    that is invalid for this ``dim`` (invalid predicates keep the row for the
    simulator to reject, exactly like the object pass's ``GateError`` branch).
    """
    n = len(table)
    if not n:
        return table
    preds = table.pools.preds
    never = preds.never_fires(table.dim)
    invalid = preds.invalid_for(table.dim)
    m_gate = table.opcode != OP_STAR

    pa = np.where(table.pred_a >= 0, table.pred_a, 0)
    pb = np.where(table.pred_b >= 0, table.pred_b, 0)
    has_a = table.wire_a >= 0
    has_b = table.wire_b >= 0
    # Position of the first never-firing / first invalid predicate, scanning
    # the controls in order (inline slot a, slot b, then the overflow list);
    # ``any(...)`` in the object pass stops at whichever comes first.
    big = np.iinfo(np.int64).max
    first_never = np.where(has_a & never[pa], 0, np.where(has_b & never[pb], 1, big))
    first_invalid = np.where(has_a & invalid[pa], 0, np.where(has_b & invalid[pb], 1, big))
    for i in np.nonzero(table.extra >= 0)[0].tolist():
        if first_never[i] != big or first_invalid[i] != big:
            continue
        for position, (_, pid) in enumerate(table.pools.extras.entry(int(table.extra[i])), 2):
            if never[pid]:
                first_never[i] = position
                break
            if invalid[pid]:
                first_invalid[i] = position
                break
    dead_controls = m_gate & (first_never < first_invalid)

    m_perm = table.opcode == OP_PERM
    m_unitary = table.opcode == OP_UNITARY
    identity_payload = (
        m_perm & table.pools.perms.is_identity()[np.where(m_perm, table.payload, 0)]
    ) | (m_unitary & table.pools.unitaries.is_identity()[np.where(m_unitary, table.payload, 0)])
    drop = dead_controls | (m_gate & identity_payload & (first_invalid == big))
    if not drop.any():
        return table
    return table.select(~drop)


def _row_wires(table: GateTable, i: int, targets, wires_a, wires_b, extras) -> List[int]:
    wires = [targets[i]]
    if wires_a[i] >= 0:
        wires.append(wires_a[i])
    if wires_b[i] >= 0:
        wires.append(wires_b[i])
    if extras[i] >= 0:
        wires.extend(w for w, _ in table.pools.extras.entry(extras[i]))
    return wires


def cancel_adjacent_inverses(table: GateTable) -> GateTable:
    """Remove ``U, U†`` row pairs separated only by wire-disjoint rows.

    Linear sweep: per-wire stacks of surviving row indices make "the nearest
    prior row sharing a wire" an O(1) lookup, and cancellation pops exactly
    the stack tops (two cancelling rows use identical wire sets), so the
    whole pass is O(rows + wire incidences).
    """
    n = len(table)
    if not n:
        return table
    opcode = table.opcode.tolist()
    targets = table.target.tolist()
    wires_a = table.wire_a.tolist()
    wires_b = table.wire_b.tolist()
    preds_a = table.pred_a.tolist()
    preds_b = table.pred_b.tolist()
    payloads = table.payload.tolist()
    extras = table.extra.tolist()

    perms = table.pools.perms
    struct = perms.struct_ids().tolist()
    inverse_struct = perms.inverse_struct_ids().tolist()
    unitaries = table.pools.unitaries

    def rows_cancel(j: int, i: int) -> bool:
        if (
            opcode[j] != opcode[i]
            or targets[j] != targets[i]
            or wires_a[j] != wires_a[i]
            or wires_b[j] != wires_b[i]
            or preds_a[j] != preds_a[i]
            or preds_b[j] != preds_b[i]
            or extras[j] != extras[i]
        ):
            return False
        code = opcode[j]
        if code == OP_STAR:
            return payloads[j] == -payloads[i]
        if code == OP_PERM:
            partner = inverse_struct[payloads[j]]
            return partner >= 0 and partner == struct[payloads[i]]
        return unitaries.cancels(payloads[j], payloads[i])

    alive = [True] * n
    stacks: List[List[int]] = [[] for _ in range(table.num_wires)]
    for i in range(n):
        wires = _row_wires(table, i, targets, wires_a, wires_b, extras)
        prior = -1
        for w in wires:
            stack = stacks[w]
            if stack and stack[-1] > prior:
                prior = stack[-1]
        if prior >= 0 and rows_cancel(prior, i):
            # Cancelling rows share one wire set, so ``prior`` tops them all.
            for w in wires:
                stacks[w].pop()
            alive[prior] = False
            alive[i] = False
            continue
        for w in wires:
            stacks[w].append(i)
    mask = np.asarray(alive, dtype=bool)
    if mask.all():
        return table
    return table.select(mask)


def fuse_single_qudit(table: GateTable) -> GateTable:
    """Fuse runs of uncontrolled single-qudit rows on one wire into one row.

    Mirrors ``FuseSingleQuditGates``: a per-wire last-touch index finds the
    nearest prior row on the target wire in O(1); when that row is itself an
    uncontrolled single-qudit gate the payloads compose through the pools
    (permutation·permutation stays a permutation, anything dense becomes a
    dense unitary) and the later row is dropped.
    """
    n = len(table)
    if not n:
        return table
    opcode = table.opcode.tolist()
    targets = table.target.tolist()
    wires_a = table.wire_a.tolist()
    wires_b = table.wire_b.tolist()
    payloads = table.payload.tolist()
    extras = table.extra.tolist()

    perms = table.pools.perms
    unitaries = table.pools.unitaries

    def fusable(i: int) -> bool:
        return opcode[i] != OP_STAR and wires_a[i] < 0

    alive = [True] * n
    last = [-1] * table.num_wires
    for i in range(n):
        if fusable(i):
            j = last[targets[i]]
            if j >= 0 and fusable(j):
                # ``j`` touches only its target, which equals this row's target.
                if opcode[j] == OP_PERM and opcode[i] == OP_PERM:
                    payloads[j] = perms.fuse_id(payloads[j], payloads[i])
                else:
                    first = (
                        unitaries.intern(perms.gate(payloads[j]))
                        if opcode[j] == OP_PERM
                        else payloads[j]
                    )
                    second = (
                        unitaries.intern(perms.gate(payloads[i]))
                        if opcode[i] == OP_PERM
                        else payloads[i]
                    )
                    payloads[j] = unitaries.fuse_id(first, second)
                    opcode[j] = OP_UNITARY
                alive[i] = False
                continue
        for w in _row_wires(table, i, targets, wires_a, wires_b, extras):
            last[w] = i
    mask = np.asarray(alive, dtype=bool)
    out = table.replace_columns(opcode=opcode, payload=payloads)
    if mask.all():
        return out
    return out.select(mask)
