"""Whole-circuit gather composition over maximal permutation segments.

PR 5 showed that composing a *permutation-only* table's rows into one
whole-basis index table turns thousands of per-op gathers into a single
gather.  This module generalises that to **any** table: the rows are
partitioned into maximal permutation-only runs separated by dense-unitary
rows (:func:`repro.ir.rewrite.segment_bounds`), and each permutation run is
composed into one index table.  A mixed circuit with ``u`` unitary rows then
simulates as at most ``u + 1`` fused gathers plus ``u`` einsum applications,
regardless of how many thousand permutation rows it contains.

Composed arrays are interned in the table's
:class:`~repro.ir.pools.SegmentGatherCache` keyed by the segment's row
content, so derived tables (``select``/``inverse`` twins, re-lowered
copies) and repeated simulate calls all share one composition per distinct
segment.

Conventions (matching ``BaseOp.permutation_table``): the *forward* table
``g`` maps basis state ``i`` to its image ``g[i]``, so a statevector evolves
by scatter ``new[g] = old``.  The *inverse* table is the gather form
``new[j] = old[g_inv[j]]`` — sequential writes, which is what the streaming
backend tiles over.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.exceptions import GateError
from repro.ir.rewrite import segment_bounds
from repro.ir.table import OP_UNITARY, GateTable


def _segment_key(table: GateTable, start: int, stop: int, inverse: bool) -> tuple:
    """Content key of a row range: the raw rows plus register shape.

    Rows reference pool ids, and the cache lives on the pool set itself, so
    equal keys imply identical semantics for every table sharing the pools.
    """
    block = np.stack([column[start:stop] for column in table.columns])
    return (table.num_wires, table.dim, bool(inverse), block.tobytes())


def compose_gather(
    table: GateTable, start: int, stop: int, *, inverse: bool = False
) -> np.ndarray:
    """Compose rows ``[start, stop)`` into one whole-basis index table.

    All rows in the range must be permutations.  The result is read-only and
    interned in ``table.pools.segments``; the inverse direction is derived
    from the (cached) forward table by one scatter, so requesting both costs
    one composition.
    """
    if bool((table.opcode[start:stop] == OP_UNITARY).any()):
        raise GateError(
            f"rows [{start}, {stop}) of {table.name!r} contain a dense unitary; "
            "only permutation segments compose into an index table"
        )

    def build() -> np.ndarray:
        if inverse:
            forward = compose_gather(table, start, stop)
            out = np.empty_like(forward)
            out[forward] = np.arange(forward.size)
        else:
            ops, row_map = table.unique_ops()
            out = np.arange(table.dim**table.num_wires)
            for u in row_map[start:stop].tolist():
                out = ops[u].permutation_table(table.dim, table.num_wires)[out]
        out.setflags(write=False)
        return out

    return table.pools.segments.intern(_segment_key(table, start, stop, inverse), build)


class Segment:
    """One maximal run of table rows applied as a single fused unit.

    ``kind`` is ``"perm"`` (a run of permutation rows, applied as one
    composed gather) or ``"unitary"`` (a single dense-unitary row, applied
    through the engine's einsum kernel).
    """

    __slots__ = ("table", "start", "stop", "kind")

    def __init__(self, table: GateTable, start: int, stop: int, kind: str):
        self.table = table
        self.start = int(start)
        self.stop = int(stop)
        self.kind = kind

    @property
    def num_rows(self) -> int:
        return self.stop - self.start

    def index_table(self) -> np.ndarray:
        """Forward composed table: basis state ``i`` maps to ``table[i]``."""
        return compose_gather(self.table, self.start, self.stop)

    def inverse_index_table(self) -> np.ndarray:
        """Gather form: output amplitude ``j`` pulls from ``table[j]``."""
        return compose_gather(self.table, self.start, self.stop, inverse=True)

    def op(self):
        """The decoded operation of a single-row (unitary) segment."""
        if self.num_rows != 1:
            raise GateError(f"segment spans {self.num_rows} rows; op() needs exactly one")
        ops, row_map = self.table.unique_ops()
        return ops[int(row_map[self.start])]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Segment({self.kind}, rows=[{self.start}, {self.stop}))"


def segment_table(table: GateTable) -> Tuple[Segment, ...]:
    """Partition ``table`` into maximal fused segments (cached on the table).

    A permutation-only table yields exactly one ``"perm"`` segment spanning
    every row; an empty table yields no segments.
    """
    cached = table._cache.get("segments")
    if cached is None:
        segments: List[Segment] = [
            Segment(table, start, stop, "perm" if is_perm else "unitary")
            for start, stop, is_perm in segment_bounds(table)
        ]
        cached = tuple(segments)
        table._cache["segments"] = cached
    return cached


__all__ = ["Segment", "compose_gather", "segment_table"]
