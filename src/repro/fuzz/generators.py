"""Seeded random generators for the differential fuzzing subsystem.

Three kinds of artifacts are generated, each fully determined by a seed:

* **circuits** (:func:`random_circuit`) — a weighted op mix over
  transpositions, general ``XPerm`` permutations, cyclic ``XPlus`` shifts,
  dense single-qudit unitaries and ``|⋆⟩``-star macros, with a configurable
  control-predicate mix (``Value`` / ``Odd`` / ``EvenNonZero`` / ``InSet``),
  wire count, dimension and depth.  ``lowerable=True`` restricts the stream
  to what the G-gate lowering engines accept (permutation payloads, at most
  two controls, one ordinary control per star gate) and enforces the
  ancilla discipline the even-``d`` gadget needs (one idle borrowable wire).
* **synthesis instances** (:func:`random_synthesis_instance`) — a
  ``(strategy, d, k)`` triple drawn from the registry, honouring each
  entry's :class:`~repro.synth.strategy.Capabilities` (parities, ``min_dim``,
  ``min_k``) with per-family size caps so instances stay materialisable.
* **pass pipelines** (:func:`random_pipeline`) — random orderings of the
  peephole passes, used to exercise ``Pass.run`` against ``run_table``.

Basis-state sampling delegates to
:func:`repro.sim.verify.sample_basis_states`, the same seeded code path the
sampled ``assert_*`` fallbacks and the test-suite ``conftest`` helpers use.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.qudit.circuit import QuditCircuit
from repro.qudit.controls import ControlPredicate, EvenNonZero, InSet, Odd, Value
from repro.qudit.gates import Gate, XPerm, XPlus
from repro.qudit.operations import BaseOp, Operation, StarShiftOp
from repro.passes import (
    CancelAdjacentInverses,
    DropIdentities,
    FuseSingleQuditGates,
    PassPipeline,
)
from repro.sim.verify import sample_basis_states

RngLike = Union[int, random.Random]

#: Default weights of the op mix (relative, not normalised).
DEFAULT_OP_WEIGHTS: Dict[str, float] = {
    "transposition": 4.0,  # the paper's Xij gates
    "perm": 2.0,           # general basis permutations
    "xplus": 2.0,          # cyclic shifts X+y
    "unitary": 1.0,        # dense single-qudit payloads
    "star": 1.0,           # the |⋆⟩-X±⋆ macro
}

#: Default weights of the control-predicate mix.
DEFAULT_PREDICATE_WEIGHTS: Dict[str, float] = {
    "value": 4.0,
    "odd": 1.0,
    "even": 1.0,
    "inset": 1.0,
}

#: Permutation-heavy op mix for the low-occupancy instance profile: the mix
#: of circuits the sparse engine's fast path sees in practice (lowered
#: permutation circuits with the rare dense payload).  Unitary rows stay
#: nonzero so expansion + merge-by-key is still exercised, but rarely
#: enough that a few-basis-state input stays far below the densify
#: threshold most of the time.
LOW_OCCUPANCY_OP_WEIGHTS: Dict[str, float] = {
    "transposition": 4.0,
    "perm": 3.0,
    "xplus": 3.0,
    "unitary": 0.5,
    "star": 1.5,
}


def _as_rng(seed: RngLike) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def _weighted_choice(rng: random.Random, weights: Dict[str, float]) -> str:
    names = [name for name, weight in weights.items() if weight > 0]
    return rng.choices(names, weights=[weights[name] for name in names], k=1)[0]


def random_predicate(
    rng: random.Random,
    dim: int,
    weights: Optional[Dict[str, float]] = None,
) -> ControlPredicate:
    """One control predicate drawn from the configured mix."""
    kind = _weighted_choice(rng, weights or DEFAULT_PREDICATE_WEIGHTS)
    if kind == "value":
        return Value(rng.randrange(dim))
    if kind == "odd":
        return Odd()
    if kind == "even":
        return EvenNonZero()
    size = rng.randrange(1, dim) if dim > 1 else 1
    return InSet(frozenset(rng.sample(range(dim), size)))


def random_gate(
    rng: random.Random,
    dim: int,
    weights: Optional[Dict[str, float]] = None,
) -> Gate:
    """One single-qudit gate payload drawn from the configured mix."""
    kind = _weighted_choice(rng, weights or DEFAULT_OP_WEIGHTS)
    if kind == "transposition":
        i, j = rng.sample(range(dim), 2)
        return XPerm.transposition(dim, i, j)
    if kind == "xplus":
        return XPlus(dim, rng.randrange(dim))
    if kind == "unitary":
        from repro.core.multi_controlled_unitary import random_unitary_gate

        return random_unitary_gate(dim, seed=rng.randrange(1_000_000))
    perm = list(range(dim))
    rng.shuffle(perm)
    return XPerm(tuple(perm))


def random_circuit(
    seed: RngLike,
    *,
    num_wires: int = 4,
    dim: int = 3,
    num_ops: int = 25,
    op_weights: Optional[Dict[str, float]] = None,
    predicate_weights: Optional[Dict[str, float]] = None,
    max_controls: int = 2,
    lowerable: bool = False,
    idle_wires: int = 0,
    name: Optional[str] = None,
) -> QuditCircuit:
    """A seeded random circuit over the configured op and predicate mix.

    ``lowerable=True`` keeps every op within what ``lower_to_g_gates``
    expands: permutation payloads only, at most two controls per op, at most
    one ordinary control per star gate — and, for even ``d``, leaves at
    least one wire idle so the Lemma III.1 gadget can borrow it.
    ``idle_wires`` reserves that many top wires untouched regardless (the
    borrowed-ancilla discipline).
    """
    rng = _as_rng(seed)
    weights = dict(op_weights or DEFAULT_OP_WEIGHTS)
    if lowerable:
        weights["unitary"] = 0.0
        max_controls = min(max_controls, 2)
        if dim % 2 == 0:
            idle_wires = max(idle_wires, 1)
    idle_wires = min(idle_wires, num_wires - 1)
    active = num_wires - idle_wires
    circuit = QuditCircuit(
        num_wires, dim, name=name or f"fuzz-{seed if isinstance(seed, int) else 'rng'}"
    )
    for _ in range(num_ops):
        kind = _weighted_choice(rng, weights)
        span = rng.randrange(1, min(max_controls + 1, active) + 1)
        if kind == "star":
            span = max(span, 2)  # a star op needs a star wire besides the target
        wires = rng.sample(range(active), min(span, active))
        target, rest = wires[0], wires[1:]
        if kind == "star" and rest:
            star, controls = rest[0], rest[1:]
            if lowerable:
                controls = controls[:1]
            circuit.append(
                StarShiftOp(
                    star,
                    target,
                    rng.choice([1, -1]),
                    [(w, random_predicate(rng, dim, predicate_weights)) for w in controls],
                )
            )
        else:
            gate_weights = {k: w for k, w in weights.items() if k != "star"}
            circuit.append(
                Operation(
                    random_gate(rng, dim, gate_weights),
                    target,
                    [(w, random_predicate(rng, dim, predicate_weights)) for w in rest],
                )
            )
    return circuit


def enrich_for_passes(rng: random.Random, circuit: QuditCircuit) -> QuditCircuit:
    """Seed guaranteed peephole opportunities into a random circuit.

    Inserts identity gates, appends the inverse of a random suffix (a
    cascade of exactly cancelling pairs) and duplicates some uncontrolled
    single-qudit ops (fusable runs) — the structures the optimization
    passes exist to remove, which pure uniform sampling rarely produces.
    """
    ops: List[BaseOp] = circuit.ops
    for _ in range(max(1, len(ops) // 4)):
        ops.insert(
            rng.randrange(len(ops) + 1),
            Operation(XPerm.identity(circuit.dim), rng.randrange(circuit.num_wires)),
        )
    for op in list(ops):
        if isinstance(op, Operation) and not op.controls and rng.random() < 0.3:
            ops.append(op)
    suffix = ops[rng.randrange(len(ops)) :]
    ops.extend(op.inverse() for op in reversed(suffix))
    return QuditCircuit(circuit.num_wires, circuit.dim, name=f"{circuit.name}+enriched").extend(
        ops
    )


def random_basis_state(rng: random.Random, dim: int, num_wires: int) -> Tuple[int, ...]:
    """One basis state through the shared seeded sampler."""
    return sample_basis_states(dim, num_wires, 1, rng.randrange(2**32))[0]


def random_circuit_scenario(rng: random.Random) -> Dict[str, object]:
    """Random circuit-shape knobs bounded for oracle feasibility.

    The cap on ``dim ** num_wires`` keeps every redundant path (dense and
    tensor statevectors, whole-basis gather tables) cheap per case.
    """
    dim = rng.choice([3, 3, 4, 5])
    max_wires = 1
    while dim ** (max_wires + 1) <= 4096 and max_wires < 6:
        max_wires += 1
    num_wires = rng.randrange(1, max_wires + 1)
    return {
        "num_wires": num_wires,
        "dim": dim,
        "num_ops": rng.randrange(1, 30),
        "max_controls": min(3, num_wires),
    }


def random_low_occupancy_case(
    rng: random.Random,
) -> Tuple["QuditCircuit", List[Tuple[int, ...]]]:
    """A permutation-heavy circuit plus a handful of basis-state inputs.

    The low-occupancy instance profile for the ``backends`` oracle: the
    returned inputs span at most four basis states, so a superposition built
    from them keeps the sparse engine on its O(nnz) fast path (index
    gathers and bounded unitary expansion) instead of its densify fallback,
    which dense random states would always trigger.
    """
    scenario = random_circuit_scenario(rng)
    circuit = random_circuit(
        rng,
        op_weights=LOW_OCCUPANCY_OP_WEIGHTS,
        name=f"fuzz-sparse-{rng.randrange(2**32)}",
        **scenario,
    )
    count = rng.randrange(1, 5)
    states = sample_basis_states(
        circuit.dim, circuit.num_wires, count, rng.randrange(2**32)
    )
    return circuit, states


# ----------------------------------------------------------------------
# Synthesis instances
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SynthesisInstance:
    """One registry scenario: ``(strategy name, d, k)``."""

    strategy: str
    dim: int
    k: int

    def describe(self) -> str:
        return f"{self.strategy}(d={self.dim}, k={self.k})"


#: Per-family caps keeping materialisation cheap: (max_dim, max_k).  ``k``
#: reaches past the estimator's affine stabilisation threshold for the
#: linear families, so estimate-vs-materialise is a genuine extrapolation
#: check, while the exponential-payload families stay tiny.
FAMILY_LIMITS: Dict[str, Tuple[int, int]] = {
    "toffoli": (6, 16),
    "pk": (6, 14),
    "mcu": (6, 10),
    "arithmetic": (5, 6),
    "reversible": (4, 2),
    "unitary": (3, 1),
}

#: Per-strategy overrides for constructions whose cost is exponential in
#: ``k`` — the family cap would make a single case take seconds.
STRATEGY_LIMITS: Dict[str, Tuple[int, int]] = {
    "mcu-exponential": (5, 9),
}


def _instance_limits(strategy) -> Tuple[int, int]:
    caps = strategy.capabilities
    return STRATEGY_LIMITS.get(strategy.name, FAMILY_LIMITS.get(caps.family, (4, 4)))


def supported_instances() -> List[SynthesisInstance]:
    """Every in-cap ``(strategy, d, k)`` the registry claims to support."""
    from repro.synth import registry

    instances: List[SynthesisInstance] = []
    for strategy in registry.all_strategies():
        caps = strategy.capabilities
        max_dim, max_k = _instance_limits(strategy)
        for dim in range(caps.min_dim, max_dim + 1):
            if not caps.supports_dim(dim):
                continue
            for k in range(max(caps.min_k, 1), max_k + 1):
                if strategy.supports(dim, k):
                    instances.append(SynthesisInstance(strategy.name, dim, k))
    return instances


def random_synthesis_instance(rng: random.Random) -> SynthesisInstance:
    """One registry scenario drawn uniformly over strategies, then (d, k)."""
    from repro.synth import registry

    strategies = registry.all_strategies()
    for _ in range(64):
        strategy = rng.choice(strategies)
        caps = strategy.capabilities
        max_dim, max_k = _instance_limits(strategy)
        dims = [d for d in range(caps.min_dim, max_dim + 1) if caps.supports_dim(d)]
        if not dims:
            continue
        dim = rng.choice(dims)
        low = max(caps.min_k, 1)
        if low > max_k:
            continue
        k = rng.randrange(low, max_k + 1)
        if strategy.supports(dim, k):
            return SynthesisInstance(strategy.name, dim, k)
    # The registry always contains mct with broad support; this is a backstop.
    return SynthesisInstance("mct", 3, 2)


# ----------------------------------------------------------------------
# Pass pipelines
# ----------------------------------------------------------------------
PEEPHOLE_PASSES = (DropIdentities, CancelAdjacentInverses, FuseSingleQuditGates)


def random_pipeline(rng: random.Random, *, min_passes: int = 1, max_passes: int = 4) -> PassPipeline:
    """A random ordering (with repetition) of the peephole passes."""
    count = rng.randrange(min_passes, max_passes + 1)
    passes = [rng.choice(PEEPHOLE_PASSES)() for _ in range(count)]
    return PassPipeline(passes, name="fuzz-peephole")


__all__ = [
    "DEFAULT_OP_WEIGHTS",
    "DEFAULT_PREDICATE_WEIGHTS",
    "FAMILY_LIMITS",
    "LOW_OCCUPANCY_OP_WEIGHTS",
    "PEEPHOLE_PASSES",
    "SynthesisInstance",
    "enrich_for_passes",
    "random_basis_state",
    "random_circuit",
    "random_low_occupancy_case",
    "random_circuit_scenario",
    "random_gate",
    "random_pipeline",
    "random_predicate",
    "random_synthesis_instance",
    "sample_basis_states",
    "supported_instances",
]
