"""Greedy delta-debugging of failing fuzz artifacts.

A fuzz divergence on a 60-op random circuit is nearly useless for
debugging; the same divergence on a 3-op circuit is a bug report.  The
shrinkers here minimise a failing artifact while a caller-supplied
predicate (``fails``) keeps returning ``True`` — the predicate is the
oracle that reported the divergence, so every intermediate candidate is a
genuine reproducer.

Circuit shrinking interleaves five reductions until a fixed point:

1. **drop ops** — ddmin-style chunk removal (halving chunk sizes);
2. **drop controls** — remove one control predicate at a time;
3. **simplify payloads** — replace gates by the plain ``X01`` transposition
   and predicates by ``Value(0)``;
4. **drop wires** — compact the register to the used wires (optionally
   keeping one idle borrow wire);
5. **shrink d** — re-express every op in a smaller dimension when all
   payloads restrict.

Instance shrinking walks ``k`` down to the strategy's ``min_k`` and then
``d`` down to ``min_dim``.  Note delta debugging only needs the *predicate*
preserved, not the circuit's semantics — a candidate may compute something
completely different as long as the oracle still flags it.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.qudit.circuit import QuditCircuit
from repro.qudit.controls import ControlPredicate, InSet, Value
from repro.qudit.gates import XPerm, XPlus
from repro.qudit.operations import BaseOp, Operation, StarShiftOp
from repro.fuzz.generators import SynthesisInstance

FailPredicate = Callable[[QuditCircuit], bool]


def _rebuild(
    num_wires: int, dim: int, ops: List[BaseOp], name: str = "shrunk"
) -> Optional[QuditCircuit]:
    try:
        return QuditCircuit(num_wires, dim, name=name).extend(ops)
    except Exception:  # noqa: BLE001 - invalid candidates are simply skipped
        return None


def _still_fails(fails: FailPredicate, candidate: Optional[QuditCircuit]) -> bool:
    if candidate is None:
        return False
    try:
        return bool(fails(candidate))
    except Exception:  # noqa: BLE001 - a crashing predicate never accepts
        return False


def _shrink_ops(circuit: QuditCircuit, fails: FailPredicate) -> Tuple[QuditCircuit, bool]:
    """ddmin-style greedy chunk removal over the op list."""
    ops = circuit.ops
    changed = False
    chunk = max(1, len(ops) // 2)
    while chunk >= 1:
        index = 0
        while index < len(ops):
            candidate_ops = ops[:index] + ops[index + chunk :]
            candidate = _rebuild(circuit.num_wires, circuit.dim, candidate_ops)
            if candidate_ops != ops and _still_fails(fails, candidate):
                ops = candidate_ops
                changed = True
            else:
                index += chunk
        chunk //= 2
    return (_rebuild(circuit.num_wires, circuit.dim, ops) or circuit), changed


def _op_without_control(op: BaseOp, control_index: int) -> Optional[BaseOp]:
    controls = list(op.controls)
    del controls[control_index]
    if isinstance(op, StarShiftOp):
        return StarShiftOp(op.star_wire, op.target, op.sign, controls)
    if isinstance(op, Operation):
        return Operation(op.gate, op.target, controls)
    return None


def _shrink_controls(circuit: QuditCircuit, fails: FailPredicate) -> Tuple[QuditCircuit, bool]:
    ops = circuit.ops
    changed = False
    for i, op in enumerate(ops):
        control_index = 0
        while control_index < len(ops[i].controls):
            simpler = _op_without_control(ops[i], control_index)
            if simpler is None:
                break
            candidate_ops = ops[:i] + [simpler] + ops[i + 1 :]
            candidate = _rebuild(circuit.num_wires, circuit.dim, candidate_ops)
            if _still_fails(fails, candidate):
                ops = candidate_ops
                changed = True
            else:
                control_index += 1
    return (_rebuild(circuit.num_wires, circuit.dim, ops) or circuit), changed


def _simpler_ops(op: BaseOp, dim: int) -> List[BaseOp]:
    """Candidate single-step payload simplifications of one op."""
    candidates: List[BaseOp] = []
    x01 = XPerm.transposition(dim, 0, 1)
    if isinstance(op, StarShiftOp):
        candidates.append(Operation(x01, op.target, op.controls))
        if op.sign < 0:
            candidates.append(StarShiftOp(op.star_wire, op.target, 1, op.controls))
    elif isinstance(op, Operation):
        if op.gate != x01:
            candidates.append(Operation(x01, op.target, op.controls))
        for index, (wire, predicate) in enumerate(op.controls):
            if not (isinstance(predicate, Value) and predicate.value == 0):
                controls = list(op.controls)
                controls[index] = (wire, Value(0))
                candidates.append(Operation(op.gate, op.target, controls))
    return candidates


def _simplify_payloads(circuit: QuditCircuit, fails: FailPredicate) -> Tuple[QuditCircuit, bool]:
    ops = circuit.ops
    changed = False
    for i in range(len(ops)):
        for simpler in _simpler_ops(ops[i], circuit.dim):
            candidate_ops = ops[:i] + [simpler] + ops[i + 1 :]
            candidate = _rebuild(circuit.num_wires, circuit.dim, candidate_ops)
            if _still_fails(fails, candidate):
                ops = candidate_ops
                changed = True
                break
    return (_rebuild(circuit.num_wires, circuit.dim, ops) or circuit), changed


def _compact_wires(circuit: QuditCircuit, fails: FailPredicate) -> Tuple[QuditCircuit, bool]:
    """Relabel the used wires to 0..m−1 and drop the rest (if still failing).

    Tried twice: a fully compact register, then one keeping a single idle
    wire (some oracles only fire when the lowering engines can borrow).
    """
    used = circuit.used_wires()
    if not used:
        return circuit, False
    mapping = {wire: index for index, wire in enumerate(used)}
    for extra in (0, 1):
        target_wires = len(used) + extra
        if target_wires >= circuit.num_wires:
            continue
        try:
            candidate = circuit.remap_wires(mapping, num_wires=target_wires)
        except Exception:  # noqa: BLE001
            continue
        if _still_fails(fails, candidate):
            return candidate, True
    return circuit, False


def _restrict_predicate(predicate: ControlPredicate, new_dim: int) -> Optional[ControlPredicate]:
    if isinstance(predicate, Value):
        return predicate if predicate.value < new_dim else None
    if isinstance(predicate, InSet):
        (values,) = predicate._key()  # the explicit firing-value tuple
        return predicate if max(values) < new_dim else None
    return predicate  # Odd / EvenNonZero restrict to any dimension


def _restrict_op(op: BaseOp, new_dim: int) -> Optional[BaseOp]:
    controls = []
    for wire, predicate in op.controls:
        restricted = _restrict_predicate(predicate, new_dim)
        if restricted is None:
            return None
        controls.append((wire, restricted))
    if isinstance(op, StarShiftOp):
        return StarShiftOp(op.star_wire, op.target, op.sign, controls)
    if not isinstance(op, Operation) or not op.gate.is_permutation:
        return None
    perm = op.gate.permutation()
    if any(perm[value] != value for value in range(new_dim, len(perm))):
        return None
    if isinstance(op.gate, XPlus):
        if op.gate.shift != 0:
            return None
        return Operation(XPlus(new_dim, 0), op.target, controls)
    return Operation(XPerm(tuple(perm[:new_dim])), op.target, controls)


def _shrink_dim(circuit: QuditCircuit, fails: FailPredicate) -> Tuple[QuditCircuit, bool]:
    for new_dim in range(2, circuit.dim):
        restricted: List[BaseOp] = []
        for op in circuit.ops:
            translated = _restrict_op(op, new_dim)
            if translated is None:
                break
            restricted.append(translated)
        else:
            candidate = _rebuild(circuit.num_wires, new_dim, restricted)
            if _still_fails(fails, candidate):
                return candidate, True
    return circuit, False


def shrink_circuit(
    circuit: QuditCircuit, fails: FailPredicate, *, max_rounds: int = 6
) -> QuditCircuit:
    """Minimise a failing circuit while ``fails`` keeps returning ``True``.

    The input must fail; the result is a (usually far smaller) circuit that
    still fails.  Each round applies every reduction once; rounds stop at a
    fixed point or after ``max_rounds``.
    """
    if not _still_fails(fails, circuit):
        raise ValueError("shrink_circuit needs an input on which the oracle fails")
    best = circuit
    for _ in range(max_rounds):
        round_changed = False
        for step in (_shrink_ops, _shrink_controls, _simplify_payloads, _compact_wires, _shrink_dim):
            best, changed = step(best, fails)
            round_changed = round_changed or changed
        if not round_changed:
            break
    best.name = f"{circuit.name} [shrunk]"
    return best


def shrink_instance(
    instance: SynthesisInstance, fails: Callable[[SynthesisInstance], bool]
) -> SynthesisInstance:
    """Walk a failing ``(strategy, d, k)`` down to minimal ``k``, then ``d``."""
    from repro.synth import registry

    strategy = registry.get(instance.strategy)
    caps = strategy.capabilities
    best = instance

    def still_fails(candidate: SynthesisInstance) -> bool:
        try:
            return bool(fails(candidate))
        except Exception:  # noqa: BLE001
            return False

    k = best.k
    while k - 1 >= max(caps.min_k, 1) and strategy.supports(best.dim, k - 1):
        candidate = SynthesisInstance(best.strategy, best.dim, k - 1)
        if not still_fails(candidate):
            break
        best = candidate
        k -= 1
    for dim in range(caps.min_dim, best.dim):
        if not strategy.supports(dim, best.k):
            continue
        candidate = SynthesisInstance(best.strategy, dim, best.k)
        if still_fails(candidate):
            best = candidate
            break
    return best


__all__ = ["shrink_circuit", "shrink_instance"]
