"""Differential oracles: run one artifact through every redundant path.

The repo deliberately carries redundant implementations of the same
semantics — object vs. columnar lowering engines, object vs. table pass
kernels, dense vs. tensor vs. whole-basis-gather simulation, analytic
estimation vs. materialised counting, circuits vs. their ``GateTable``
twins.  Each oracle here runs one generated artifact through two or more of
those paths and reports the first divergence as a human-readable message
(``None`` means every path agreed).

Oracles
-------
``round-trip``
    ``to_table()``/``to_circuit()`` is lossless: op identity gate-for-gate,
    and every column kernel (counts, depth, histogram, wires, inverse)
    agrees with the object implementation.
``backends``
    every registered simulation engine (``available_backends()`` — dense,
    tensor, sparse, streaming, numba where installed, anything registered by
    the caller), per-op vs. ``apply_table``, and (for permutation circuits)
    the whole-basis gather table vs. the scalar ``apply_to_basis`` path.
    A second, low-occupancy instance (permutation-heavy circuit, a
    superposition of a few basis states) targets the sparse engine's O(nnz)
    fast path, which dense random states would never reach.
``inverse``
    metamorphic check: ``circuit ∘ circuit.inverse()`` is the identity.
``passes``
    a random peephole pipeline run via ``Pass.run`` vs. ``run_table`` gives
    identical ops, identical history records, and preserves semantics.
``lowering``
    ``lower_to_g_gates(engine="object")`` vs. ``engine="table"``: both
    accept or both reject; on acceptance the outputs are gate-for-gate
    identical G-circuits implementing the input's permutation.
``estimator``
    analytic ``strategy.estimate(d, k)`` (exact strategies only) vs. the
    materialised-and-lowered ``count_gates`` metrics, wires and ancillas.
``synth-spec``
    refinement check: the synthesised circuit satisfies the strategy's own
    semantic specification (``strategy.verify``).

The module also hosts the fuzz driver (:func:`fuzz_run`): seeded case
generation, oracle dispatch, failure shrinking via :mod:`repro.fuzz.shrink`
and the JSON-able :class:`FuzzReport` the CLI and CI consume.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.gate_counts import count_gates
from repro.core.lowering import lower_to_g_gates
from repro.exceptions import EstimationError, SynthesisError, VerificationError
from repro.passes import PassPipeline
from repro.qudit.circuit import QuditCircuit
from repro.qudit.operations import Operation, StarShiftOp
from repro.resources.estimator import METRIC_FIELDS
from repro.sim import available_backends, get_backend
from repro.sim.permutation import apply_to_basis, permutation_index_table
from repro.verify import VerificationBudget
from repro.utils.indexing import indices_to_digits
from repro.fuzz.generators import (
    SynthesisInstance,
    enrich_for_passes,
    random_circuit,
    random_circuit_scenario,
    random_low_occupancy_case,
    random_pipeline,
    random_synthesis_instance,
    sample_basis_states,
)

#: Registry of oracle names (the CLI's ``--oracle`` accepts any subset).
ORACLE_NAMES: Tuple[str, ...] = (
    "round-trip",
    "cache",
    "backends",
    "inverse",
    "passes",
    "lowering",
    "estimator",
    "synth-spec",
)

#: Largest basis a synthesis-instance semantic check will enumerate.
#: Beyond it the check switches to batched sampled index propagation
#: (exact per state, O(rows · samples), any register size) — never skips.
_SPEC_BASIS_LIMIT = 30_000

#: Samples for the batched index-propagation verify beyond the basis limit.
_SPEC_SAMPLES = 128

#: Tighter cap for dense-unitary verifies, which build a basis² matrix.
_SPEC_UNITARY_LIMIT = 1_024

#: Up to this basis, strategies advertising ``supports_sampled_columns``
#: are verified by evolving a few pinned+sampled basis columns as one batch
#: instead of skipping — one (basis, columns) array, no basis² matrix.
_SPEC_SAMPLED_UNITARY_LIMIT = 65_536

#: Columns drawn for the sampled-column unitary verify (the strategy pins
#: its fired block on top of these).
_SPEC_COLUMN_SAMPLES = 4

#: Default budget of the ``synth-spec`` oracle: the historical caps above
#: expressed as one :class:`repro.verify.VerificationBudget`, so the full
#: fuzz sweep keeps its pre-tiered coverage exactly.  ``--verify-tier``
#: swaps in a preset (e.g. ``smoke``) instead.
FUZZ_VERIFY_BUDGET = VerificationBudget(
    max_basis_states=_SPEC_BASIS_LIMIT,
    samples=_SPEC_SAMPLES,
    max_dense_dim=_SPEC_UNITARY_LIMIT,
    sampled_columns=_SPEC_COLUMN_SAMPLES,
    max_column_basis=_SPEC_SAMPLED_UNITARY_LIMIT,
)


# ----------------------------------------------------------------------
# Op-level comparison shared by several oracles
# ----------------------------------------------------------------------
def describe_op_difference(first: QuditCircuit, second: QuditCircuit) -> Optional[str]:
    """First gate-for-gate difference between two circuits, or ``None``."""
    if len(first) != len(second):
        return f"op count differs: {len(first)} vs {len(second)}"
    for i, (a, b) in enumerate(zip(first.ops, second.ops)):
        if type(a) is not type(b):
            return f"op {i}: type {type(a).__name__} vs {type(b).__name__}"
        if a.target != b.target:
            return f"op {i}: target {a.target} vs {b.target}"
        if a.controls != b.controls:
            return f"op {i}: controls {a.controls} vs {b.controls}"
        if isinstance(a, StarShiftOp):
            if (a.star_wire, a.sign) != (b.star_wire, b.sign):
                return f"op {i}: star ({a.star_wire}, {a.sign}) vs ({b.star_wire}, {b.sign})"
        elif isinstance(a, Operation):
            if a.gate != b.gate:
                return f"op {i}: gate {a.gate.label} vs {b.gate.label}"
    return None


def _plain_copy(circuit: QuditCircuit) -> QuditCircuit:
    """The same op list with no cached table — forces the object paths."""
    return QuditCircuit(circuit.num_wires, circuit.dim, name=circuit.name).extend(circuit.ops)


# ----------------------------------------------------------------------
# Circuit oracles
# ----------------------------------------------------------------------
def check_table_round_trip(circuit: QuditCircuit) -> Optional[str]:
    """``to_table().to_circuit()`` is lossless and kernels match object code."""
    plain = _plain_copy(circuit)
    table = circuit.to_table()
    back = table.to_circuit()
    difference = describe_op_difference(plain, back)
    if difference:
        return f"round-trip changed ops: {difference}"
    queries: Sequence[Tuple[str, Callable[[QuditCircuit], object]]] = (
        ("num_ops", lambda c: c.num_ops()),
        ("depth", lambda c: c.depth()),
        ("two_qudit_count", lambda c: c.two_qudit_count()),
        ("single_qudit_count", lambda c: c.single_qudit_count()),
        ("multi_qudit_count", lambda c: c.multi_qudit_count()),
        ("g_gate_count", lambda c: c.g_gate_count()),
        ("controlled_g_gate_count", lambda c: c.controlled_g_gate_count()),
        ("max_span", lambda c: c.max_span()),
        ("used_wires", lambda c: c.used_wires()),
        ("targeted_wires", lambda c: c.targeted_wires()),
        ("label_histogram", lambda c: c.label_histogram()),
        ("is_permutation", lambda c: c.is_permutation),
        ("is_g_circuit", lambda c: c.is_g_circuit()),
    )
    for name, query in queries:
        object_value = query(plain)
        table_value = query(back)
        if object_value != table_value:
            return f"column kernel {name}: object {object_value!r} vs table {table_value!r}"
    inverse_difference = describe_op_difference(
        _plain_copy(circuit).inverse(), table.inverse().to_circuit()
    )
    if inverse_difference:
        return f"inverse kernel: {inverse_difference}"
    return None


def check_cache_serialization(circuit: QuditCircuit) -> Optional[str]:
    """Compile-cache oracle: a serialized-and-reloaded table equals a fresh one.

    Mirrors what the persistent cache does (``GateTable`` → ``.npz`` bytes →
    ``GateTable``) and compares the reloaded table against the freshly built
    one: identical columns, gate-for-gate identical ops, agreeing column
    kernels and identical simulation behaviour.
    """
    import io

    from repro.exec.serialize import load_table, save_table

    fresh = _plain_copy(circuit).to_table()
    buffer = io.BytesIO()
    save_table(buffer, fresh)
    buffer.seek(0)
    reloaded = load_table(buffer)
    if (reloaded.num_wires, reloaded.dim) != (fresh.num_wires, fresh.dim):
        return (
            f"reloaded shape ({reloaded.num_wires}, {reloaded.dim}) vs "
            f"({fresh.num_wires}, {fresh.dim})"
        )
    for name, fresh_col, reloaded_col in zip(
        ("opcode", "target", "wire_a", "wire_b", "pred_a", "pred_b", "payload", "extra"),
        fresh.columns,
        reloaded.columns,
    ):
        if not np.array_equal(fresh_col, reloaded_col):
            first = int(np.nonzero(fresh_col != reloaded_col)[0][0])
            return (
                f"column {name} changed at row {first}: "
                f"{int(fresh_col[first])} -> {int(reloaded_col[first])}"
            )
    difference = describe_op_difference(fresh.to_circuit(), reloaded.to_circuit())
    if difference:
        return f"deserialized ops differ: {difference}"
    kernels: Sequence[Tuple[str, Callable[[object], object]]] = (
        ("num_ops", lambda t: t.num_ops()),
        ("depth", lambda t: t.depth()),
        ("two_qudit_count", lambda t: t.two_qudit_count()),
        ("g_gate_count", lambda t: t.g_gate_count()),
        ("label_histogram", lambda t: t.label_histogram()),
        ("used_wires", lambda t: t.used_wires()),
        ("is_permutation", lambda t: t.is_permutation),
    )
    for name, kernel in kernels:
        fresh_value = kernel(fresh)
        reloaded_value = kernel(reloaded)
        if fresh_value != reloaded_value:
            return f"kernel {name}: fresh {fresh_value!r} vs reloaded {reloaded_value!r}"
    if fresh.is_permutation:
        if not np.array_equal(
            fresh.permutation_index_table(), reloaded.permutation_index_table()
        ):
            return "deserialized table simulates differently (gather tables differ)"
    else:
        data = _random_state(circuit.dim, circuit.num_wires, 7)
        dense = get_backend("dense")
        fresh_out = dense.apply_table(data.copy(), fresh)
        reloaded_out = dense.apply_table(data.copy(), reloaded)
        if not np.allclose(fresh_out, reloaded_out, atol=1e-12):
            deviation = float(np.max(np.abs(fresh_out - reloaded_out)))
            return f"deserialized table simulates differently (deviation {deviation:.3e})"
    return None


def _random_state(dim: int, num_wires: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    size = dim**num_wires
    data = rng.normal(size=size) + 1j * rng.normal(size=size)
    return data / np.linalg.norm(data)


def check_backends(circuit: QuditCircuit, state_seed: int) -> Optional[str]:
    """Every *registered* simulation path agrees on a random state.

    The oracle iterates :func:`repro.sim.backend.available_backends`, so a
    backend registered after import (``streaming`` with a tiny budget, the
    ``numba`` engine where installed, a user's custom engine) is fuzzed
    automatically — both its per-op ``apply_circuit`` walk and its fused
    ``apply_table`` path — against the dense per-op reference.
    """
    data = _random_state(circuit.dim, circuit.num_wires, state_seed)
    plain = _plain_copy(circuit)
    dense = get_backend("dense")
    reference = data.copy()
    for op in plain:
        reference = dense.apply_op(reference, op, circuit.dim, circuit.num_wires)
    table = circuit.to_table()
    paths: List[Tuple[str, Callable[[], np.ndarray]]] = []
    for backend_name in available_backends():
        engine = get_backend(backend_name)
        if backend_name != "dense":
            paths.append(
                (
                    f"{backend_name} per-op",
                    lambda engine=engine: engine.apply_circuit(data.copy(), plain),
                )
            )
        paths.append(
            (
                f"{backend_name} apply_table",
                lambda engine=engine: engine.apply_table(data.copy(), table),
            )
        )
    for name, evolve in paths:
        evolved = np.asarray(evolve())
        if not np.allclose(evolved, reference, atol=1e-9):
            deviation = float(np.max(np.abs(evolved - reference)))
            return f"{name} deviates from dense per-op by {deviation:.3e}"
    if not circuit.is_permutation:
        return None
    object_table = permutation_index_table(plain)
    columnar_table = table.permutation_index_table()
    if not np.array_equal(object_table, columnar_table):
        first = int(np.nonzero(object_table != columnar_table)[0][0])
        return (
            f"permutation gather tables differ at flat index {first}: "
            f"object {int(object_table[first])} vs table {int(columnar_table[first])}"
        )
    images = indices_to_digits(object_table, circuit.dim, circuit.num_wires)
    for state in sample_basis_states(circuit.dim, circuit.num_wires, 4, state_seed):
        flat = 0
        for digit in state:
            flat = flat * circuit.dim + digit
        scalar = apply_to_basis(plain, state)
        gathered = tuple(int(x) for x in images[flat])
        if scalar != gathered:
            return (
                f"apply_to_basis maps {state} to {scalar} but the gather table "
                f"gives {gathered}"
            )
    return None


def check_backends_sparse(
    circuit: QuditCircuit, states: Sequence[Tuple[int, ...]]
) -> Optional[str]:
    """The sparse engine's O(nnz) *fast path* agrees with the dense engine.

    :func:`check_backends` feeds every engine dense random states (occupancy
    1.0), which only ever exercises the sparse engine's densify fallback.
    This check builds a superposition over a handful of basis states —
    the low-occupancy instance profile — so the index-gather and
    bounded-expansion path actually runs, and additionally pushes the same
    input through the :class:`~repro.sim.sparse.SparseState`-native entry
    point, asserting its sorted-unique index invariant on the way out.
    Permutation circuits must match **bit-for-bit** (indices propagate by
    exact integer arithmetic; amplitudes are only carried).
    """
    if "sparse" not in available_backends():  # pragma: no cover - always registered
        return None
    from repro.sim.sparse import SparseState

    dim, num_wires = circuit.dim, circuit.num_wires
    size = dim**num_wires
    # Normalise sampled states to the circuit (the shrinker may have dropped
    # wires or reduced the dimension since they were drawn).
    rows = [
        [(state[w] if w < len(state) else 0) % dim for w in range(num_wires)]
        for state in states
    ] or [[0] * num_wires]
    digits = np.asarray(rows, dtype=np.int64)
    strides = np.array([dim**e for e in range(num_wires - 1, -1, -1)], dtype=np.int64)
    indices = np.unique(digits @ strides)
    amplitudes = np.arange(1, indices.size + 1, dtype=complex)
    amplitudes /= np.linalg.norm(amplitudes)
    data = np.zeros(size, dtype=complex)
    data[indices] = amplitudes

    table = circuit.to_table()
    reference = get_backend("dense").apply_table(data.copy(), table)
    engine = get_backend("sparse")
    evolved = np.asarray(engine.apply_table(data.copy(), table))
    if circuit.is_permutation:
        if not np.array_equal(evolved, reference):
            first = int(np.nonzero(evolved != reference)[0][0])
            return (
                f"sparse apply_table differs from dense on a permutation circuit "
                f"at flat index {first}: {evolved[first]} vs {reference[first]} "
                "(must be bit-for-bit)"
            )
    elif not np.allclose(evolved, reference, atol=1e-9):
        deviation = float(np.max(np.abs(evolved - reference)))
        return f"sparse apply_table deviates from dense by {deviation:.3e}"

    state = SparseState(num_wires, dim, indices, amplitudes)
    out = engine.apply_table_sparse(state, table)
    if out.nnz:
        if out.indices.min() < 0 or out.indices.max() >= size:
            return "sparse-native result holds an out-of-range basis index"
        if out.nnz > 1 and not bool((np.diff(out.indices) > 0).all()):
            return "sparse-native result broke the sorted-unique index invariant"
    dense_of_sparse = out.to_dense()
    if circuit.is_permutation:
        if not np.array_equal(dense_of_sparse, reference):
            return "SparseState-native path differs from dense on a permutation circuit"
    elif not np.allclose(dense_of_sparse, reference, atol=1e-9):
        deviation = float(np.max(np.abs(dense_of_sparse - reference)))
        return f"SparseState-native path deviates from dense by {deviation:.3e}"
    return None


def check_inverse_identity(circuit: QuditCircuit, state_seed: int) -> Optional[str]:
    """Metamorphic: applying the circuit then its inverse is the identity."""
    composed = _plain_copy(circuit).compose(circuit.inverse())
    if circuit.is_permutation:
        table = permutation_index_table(composed)
        if not np.array_equal(table, np.arange(table.size)):
            offender = int(np.nonzero(table != np.arange(table.size))[0][0])
            return (
                f"circuit∘inverse moves basis state {offender} to {int(table[offender])}"
            )
        return None
    data = _random_state(circuit.dim, circuit.num_wires, state_seed)
    evolved = get_backend("dense").apply_circuit(data.copy(), composed)
    if not np.allclose(evolved, data, atol=1e-8):
        deviation = float(np.max(np.abs(evolved - data)))
        return f"circuit∘inverse deviates from identity by {deviation:.3e}"
    return None


def check_pass_equivalence(circuit: QuditCircuit, pipeline: PassPipeline) -> Optional[str]:
    """``Pass.run`` vs ``run_table``: identical output, records, semantics."""
    plain = _plain_copy(circuit)
    expected = pipeline.run(plain)
    object_history = [(r.pass_name, r.ops_before, r.ops_after) for r in pipeline.history]
    actual_table = pipeline.run_table(circuit.to_table())
    table_history = [(r.pass_name, r.ops_before, r.ops_after) for r in pipeline.history]
    if object_history != table_history:
        return f"pipeline records differ: object {object_history} vs table {table_history}"
    difference = describe_op_difference(expected, actual_table.to_circuit())
    if difference:
        return f"object vs table pass output: {difference}"
    if expected.num_ops() > plain.num_ops():
        return (
            f"optimization passes grew the circuit: {plain.num_ops()} -> "
            f"{expected.num_ops()} ops"
        )
    if circuit.is_permutation:
        before = permutation_index_table(_plain_copy(circuit))
        after = permutation_index_table(_plain_copy(expected))
        if not np.array_equal(before, after):
            offender = int(np.nonzero(before != after)[0][0])
            return (
                f"pass pipeline changed semantics: basis state {offender} maps to "
                f"{int(before[offender])} before but {int(after[offender])} after"
            )
    return None


def check_lowering_engines(circuit: QuditCircuit) -> Optional[str]:
    """Object vs table lowering: same acceptance, gate-for-gate same output."""
    outcomes = {}
    for engine in ("object", "table"):
        try:
            outcomes[engine] = lower_to_g_gates(_plain_copy(circuit), engine=engine)
        except SynthesisError as error:
            outcomes[engine] = error
    object_out, table_out = outcomes["object"], outcomes["table"]
    if isinstance(object_out, SynthesisError) != isinstance(table_out, SynthesisError):
        accepted = "table" if isinstance(object_out, SynthesisError) else "object"
        rejected_error = object_out if isinstance(object_out, SynthesisError) else table_out
        return (
            f"only the {accepted} engine lowered the circuit; the other raised: "
            f"{rejected_error}"
        )
    if isinstance(object_out, SynthesisError):
        return None  # both engines agree the circuit is not lowerable
    for engine, lowered in (("object", object_out), ("table", table_out)):
        if not lowered.is_g_circuit():
            return f"{engine} engine output is not a G-circuit"
    difference = describe_op_difference(object_out, table_out)
    if difference:
        return f"object vs table lowering: {difference}"
    before = permutation_index_table(_plain_copy(circuit))
    after = permutation_index_table(table_out)
    if not np.array_equal(before, after):
        offender = int(np.nonzero(before != after)[0][0])
        return (
            f"lowering changed semantics: basis state {offender} maps to "
            f"{int(before[offender])} before but {int(after[offender])} after lowering"
        )
    return None


# ----------------------------------------------------------------------
# Synthesis-instance oracles
# ----------------------------------------------------------------------
def check_estimator(instance: SynthesisInstance) -> Optional[str]:
    """Analytic prediction vs materialised counts (exact strategies only).

    Strategies whose estimate legitimately does not exist at an instance
    (non-affine calibration, no borrowable wire at tiny ``k``) and model
    (``exact=False``) estimates are skipped — the oracle checks the exact
    analytic path, where any mismatch is a bug by definition.
    """
    from repro.synth import registry

    strategy = registry.get(instance.strategy)
    try:
        resources = strategy.estimate(instance.dim, instance.k)
    except (EstimationError, SynthesisError):
        return None
    if not resources.exact:
        return None
    result = strategy.synthesize(instance.dim, instance.k)
    report = count_gates(result, lower=True)
    for metric in METRIC_FIELDS:
        predicted = getattr(resources, metric)
        measured = getattr(report, metric)
        if predicted != measured:
            return (
                f"{instance.describe()}: estimator predicts {metric}={predicted} "
                f"but the materialised circuit has {measured}"
            )
    if resources.num_wires != report.num_wires:
        return (
            f"{instance.describe()}: estimator predicts {resources.num_wires} wires "
            f"but the circuit has {report.num_wires}"
        )
    if dict(resources.ancillas) != dict(report.ancillas):
        return (
            f"{instance.describe()}: estimator predicts ancillas "
            f"{dict(resources.ancillas)} but the circuit has {dict(report.ancillas)}"
        )
    return None


def check_synthesis_semantics(
    instance: SynthesisInstance,
    *,
    budget=None,
    tier_hits: Optional[Dict[str, int]] = None,
) -> Optional[str]:
    """Refinement check: the synthesised circuit meets its own specification.

    Routed through the tiered verifier (:mod:`repro.verify`): the strategy's
    ``verify`` escalates structural → sampled → exhaustive under ``budget``
    (default :data:`FUZZ_VERIFY_BUDGET`, which mirrors the oracle's historical
    caps — exhaustive up to ``_SPEC_BASIS_LIMIT`` basis states, then batched
    sampled index propagation; dense unitary compares up to
    ``_SPEC_UNITARY_LIMIT``, then sampled columns up to
    ``_SPEC_SAMPLED_UNITARY_LIMIT``).  A budget too tight to decide an
    instance counts as a skip, never a pass.  ``tier_hits`` (when given)
    accumulates one count per decided instance keyed by the deciding tier
    name, plus ``"undecided"`` for the skips — the CI fuzz report exposes
    these counters.
    """
    from repro.synth import registry

    strategy = registry.get(instance.strategy)
    try:
        result = strategy.synthesize(instance.dim, instance.k)
    except SynthesisError as error:
        return f"{instance.describe()}: supported instance failed to synthesise: {error}"
    if budget is None:
        budget = FUZZ_VERIFY_BUDGET
    try:
        outcome = strategy.verify(result, instance.dim, instance.k, budget=budget)
    except NotImplementedError:
        return None
    except VerificationError as error:
        return f"{instance.describe()}: {error}"
    if tier_hits is not None:
        decided = getattr(outcome, "decided_by", None) or "undecided"
        tier_hits[decided] = tier_hits.get(decided, 0) + 1
    return None


# ----------------------------------------------------------------------
# Driver: seeded cases, dispatch, shrinking, report
# ----------------------------------------------------------------------
@dataclass
class Divergence:
    """One confirmed disagreement between redundant paths."""

    oracle: str
    case_seed: int
    message: str
    circuit: Optional[QuditCircuit] = None
    instance: Optional[SynthesisInstance] = None
    original_ops: Optional[int] = None
    recheck: Optional[Callable] = None

    def to_json(self) -> Dict[str, object]:
        entry: Dict[str, object] = {
            "oracle": self.oracle,
            "case_seed": self.case_seed,
            "message": self.message,
        }
        if self.circuit is not None:
            entry["reproducer"] = {
                "num_wires": self.circuit.num_wires,
                "dim": self.circuit.dim,
                "num_ops": self.circuit.num_ops(),
                "ops": [repr(op) for op in self.circuit.ops],
            }
            if self.original_ops is not None:
                entry["original_ops"] = self.original_ops
        if self.instance is not None:
            entry["instance"] = {
                "strategy": self.instance.strategy,
                "d": self.instance.dim,
                "k": self.instance.k,
            }
        return entry


@dataclass
class FuzzReport:
    """Outcome of one fuzzing session (JSON-able for the CI artifact)."""

    seed: int
    cases: int = 0
    elapsed_seconds: float = 0.0
    oracle_runs: Dict[str, int] = field(default_factory=dict)
    divergences: List[Divergence] = field(default_factory=list)
    #: Per-tier decision counters from the ``synth-spec`` oracle: how many
    #: instances each verification tier decided (plus ``"undecided"`` skips).
    tier_hits: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def to_json(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "cases": self.cases,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "oracle_runs": dict(self.oracle_runs),
            "tier_hits": dict(self.tier_hits),
            "ok": self.ok,
            "divergences": [d.to_json() for d in self.divergences],
        }


def _record(report: FuzzReport, oracle: str) -> None:
    report.oracle_runs[oracle] = report.oracle_runs.get(oracle, 0) + 1


def _guard(oracle: str, check: Callable[[], Optional[str]]) -> Optional[str]:
    """Run one oracle; an unexpected crash is itself a reportable finding."""
    try:
        return check()
    except Exception as error:  # noqa: BLE001 - crashes are fuzz findings
        return f"oracle crashed: {type(error).__name__}: {error}"


def fuzz_case(
    case_seed: int,
    enabled: Sequence[str],
    report: FuzzReport,
    verify_budget=None,
) -> List[Divergence]:
    """Generate one seeded case and run every enabled oracle on it."""
    rng = random.Random(case_seed)
    found: List[Divergence] = []

    def run(oracle: str, circuit: Optional[QuditCircuit], check: Callable[[], Optional[str]],
            recheck: Optional[Callable] = None, instance: Optional[SynthesisInstance] = None) -> None:
        if oracle not in enabled:
            return
        _record(report, oracle)
        message = _guard(oracle, check)
        if message is not None:
            found.append(
                Divergence(
                    oracle=oracle,
                    case_seed=case_seed,
                    message=message,
                    circuit=circuit,
                    instance=instance,
                    original_ops=circuit.num_ops() if circuit is not None else None,
                    recheck=recheck,
                )
            )

    # -- general circuit: round-trip / backends / inverse -------------------
    scenario = random_circuit_scenario(rng)
    state_seed = rng.randrange(2**32)
    general = random_circuit(rng, **scenario)
    run("round-trip", general, lambda: check_table_round_trip(general),
        recheck=check_table_round_trip)
    run("cache", general, lambda: check_cache_serialization(general),
        recheck=check_cache_serialization)
    run("backends", general, lambda: check_backends(general, state_seed),
        recheck=lambda c: check_backends(c, state_seed))

    # -- low-occupancy profile: the sparse engine's fast path ---------------
    sparse_circuit, sparse_states = random_low_occupancy_case(rng)
    run("backends", sparse_circuit,
        lambda: check_backends_sparse(sparse_circuit, sparse_states),
        recheck=lambda c: check_backends_sparse(c, sparse_states))
    run("inverse", general, lambda: check_inverse_identity(general, state_seed),
        recheck=lambda c: check_inverse_identity(c, state_seed))

    # -- enriched circuit through a random peephole pipeline ----------------
    pipeline = random_pipeline(rng)
    enriched = enrich_for_passes(rng, general)
    run("passes", enriched, lambda: check_pass_equivalence(enriched, pipeline),
        recheck=lambda c: check_pass_equivalence(c, pipeline))

    # -- lowerable circuit through both lowering engines --------------------
    lowerable_scenario = random_circuit_scenario(rng)
    lowerable_scenario["num_wires"] = max(2, int(lowerable_scenario["num_wires"]))
    lowerable = random_circuit(rng, lowerable=True, **lowerable_scenario)
    run("lowering", lowerable, lambda: check_lowering_engines(lowerable),
        recheck=check_lowering_engines)

    # -- synthesis instance: estimator + semantic spec ----------------------
    instance = random_synthesis_instance(rng)
    run("estimator", None, lambda: check_estimator(instance),
        recheck=check_estimator, instance=instance)
    run("synth-spec", None,
        lambda: check_synthesis_semantics(
            instance, budget=verify_budget, tier_hits=report.tier_hits
        ),
        recheck=lambda inst: check_synthesis_semantics(inst, budget=verify_budget),
        instance=instance)

    return found


def _shrink_divergence(divergence: Divergence) -> None:
    """Minimise the failing artifact in place (never raises)."""
    from repro.fuzz.shrink import shrink_circuit, shrink_instance

    recheck = divergence.recheck
    if recheck is None:
        return

    def fails(artifact) -> bool:
        try:
            return _guard(divergence.oracle, lambda: recheck(artifact)) is not None
        except Exception:  # pragma: no cover - _guard already catches
            return False

    try:
        if divergence.circuit is not None:
            divergence.circuit = shrink_circuit(divergence.circuit, fails)
        elif divergence.instance is not None:
            divergence.instance = shrink_instance(divergence.instance, fails)
    except Exception:  # noqa: BLE001 - shrinking must never mask the finding
        pass


def fuzz_run(
    *,
    seed: int = 0,
    time_budget: Optional[float] = None,
    max_cases: Optional[int] = None,
    oracles: Optional[Sequence[str]] = None,
    shrink: bool = True,
    stop_on_first: bool = False,
    verify_budget=None,
) -> FuzzReport:
    """Fuzz until the wall-clock budget or the case budget is exhausted.

    Case ``i`` of a session with seed ``s`` is fully reproduced by
    ``fuzz_case(s + i, ...)`` — the report records each failing case's seed
    so a CI finding replays locally with ``--seed``.

    ``verify_budget`` (a :class:`repro.verify.VerificationBudget` or preset
    name) bounds the ``synth-spec`` oracle's verification cost; ``None``
    keeps the full-strength :data:`FUZZ_VERIFY_BUDGET`.
    """
    enabled = tuple(oracles) if oracles else ORACLE_NAMES
    unknown = [name for name in enabled if name not in ORACLE_NAMES]
    if unknown:
        raise ValueError(f"unknown oracle(s) {unknown}; known: {list(ORACLE_NAMES)}")
    if time_budget is None and max_cases is None:
        raise ValueError("fuzz_run needs a time_budget or a max_cases bound")
    report = FuzzReport(seed=seed)
    start = time.monotonic()
    index = 0
    while True:
        if max_cases is not None and index >= max_cases:
            break
        if time_budget is not None and time.monotonic() - start >= time_budget:
            break
        found = fuzz_case(seed + index, enabled, report, verify_budget=verify_budget)
        if shrink:
            for divergence in found:
                _shrink_divergence(divergence)
        report.divergences.extend(found)
        report.cases += 1
        index += 1
        if stop_on_first and report.divergences:
            break
    report.elapsed_seconds = time.monotonic() - start
    return report


__all__ = [
    "FUZZ_VERIFY_BUDGET",
    "ORACLE_NAMES",
    "Divergence",
    "FuzzReport",
    "check_backends",
    "check_cache_serialization",
    "check_estimator",
    "check_inverse_identity",
    "check_lowering_engines",
    "check_pass_equivalence",
    "check_synthesis_semantics",
    "check_table_round_trip",
    "describe_op_difference",
    "fuzz_case",
    "fuzz_run",
]
