"""Differential fuzzing: generators, cross-engine oracles, failure shrinking.

The repo carries four independent implementations of the paper's circuit
semantics (object vs. columnar lowering, object vs. table pass kernels,
dense vs. tensor vs. whole-basis-gather simulation, analytic estimation vs.
materialised counting).  This package turns that redundancy into a test
oracle: seeded random artifacts (:mod:`repro.fuzz.generators`) are pushed
through every redundant path (:mod:`repro.fuzz.oracles`), and any
divergence is minimised to a few-op reproducer
(:mod:`repro.fuzz.shrink`).

Entry points::

    python -m repro fuzz --seed 0 --time-budget 10          # CLI
    from repro.fuzz import fuzz_run
    report = fuzz_run(seed=0, max_cases=25)                  # library
    assert report.ok, report.to_json()

Failures are reported with the seed of the failing case, so any finding is
replayed exactly with ``fuzz_case(seed, ...)`` or ``--seed``.  Shrunk
reproducers should be checked in as pinned cases in
``tests/test_fuzz_regressions.py``.
"""

from repro.fuzz.generators import (
    SynthesisInstance,
    enrich_for_passes,
    random_basis_state,
    random_circuit,
    random_circuit_scenario,
    random_gate,
    random_low_occupancy_case,
    random_pipeline,
    random_predicate,
    random_synthesis_instance,
    sample_basis_states,
    supported_instances,
)
from repro.fuzz.oracles import (
    ORACLE_NAMES,
    Divergence,
    FuzzReport,
    check_backends,
    check_backends_sparse,
    check_cache_serialization,
    check_estimator,
    check_inverse_identity,
    check_lowering_engines,
    check_pass_equivalence,
    check_synthesis_semantics,
    check_table_round_trip,
    describe_op_difference,
    fuzz_case,
    fuzz_run,
)
from repro.fuzz.shrink import shrink_circuit, shrink_instance

__all__ = [
    "ORACLE_NAMES",
    "Divergence",
    "FuzzReport",
    "SynthesisInstance",
    "check_backends",
    "check_backends_sparse",
    "check_cache_serialization",
    "check_estimator",
    "check_inverse_identity",
    "check_lowering_engines",
    "check_pass_equivalence",
    "check_synthesis_semantics",
    "check_table_round_trip",
    "describe_op_difference",
    "enrich_for_passes",
    "fuzz_case",
    "fuzz_run",
    "random_basis_state",
    "random_circuit",
    "random_circuit_scenario",
    "random_gate",
    "random_low_occupancy_case",
    "random_pipeline",
    "random_predicate",
    "random_synthesis_instance",
    "sample_basis_states",
    "shrink_circuit",
    "shrink_instance",
    "supported_instances",
]
