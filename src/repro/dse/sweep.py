"""Parallel design-space sweeps over strategy × pipeline × (d, k).

A :class:`SweepSpec` names the grid; :func:`plan_sweep` chunks it into
independent work units; :func:`run_sweep` evaluates the chunks — on the
``repro.exec`` fork-pool pattern when ``jobs > 1``, each worker holding its
own :class:`~repro.exec.cache.CompileCache` on a shared directory — and
streams the results into a columnar :class:`PointStore` (struct-of-arrays,
the ``GateTable`` house style).

Two chunk modes:

* ``analytic`` — the default pipeline's costs come straight from the
  vectorized batch estimator
  (:meth:`~repro.synth.strategy.Synthesizer.estimate_batch`): one
  calibration per residue class, then O(1) numpy per point.  A chunk whose
  batch raises (e.g. the clean-ladder baseline at even d, k = 2, which has
  no lowered form) degrades to a per-point loop that records the failing
  points as ``status = STATUS_ERROR`` rows — the same points live
  ``auto_select`` skips with a "no estimate" note.
* ``materialized`` — non-default :data:`PIPELINE_VARIANTS` have no affine
  calibration, so their points synthesise the macro circuit (through the
  compile cache) and run the variant pipeline on its table.  These are
  bounded by ``SweepSpec.max_materialized_k``.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import (
    DimensionError,
    DSEError,
    EstimationError,
    SynthesisError,
)
from repro.resources.estimator import INT64_MAX, METRIC_FIELDS
from repro.synth.strategy import AncillaBudget

#: Ancilla kinds stored as dedicated columns (``AncillaKind`` values).
ANCILLA_KINDS: Tuple[str, ...] = ("clean", "borrowed", "burnable", "garbage")

#: Row status: an exact (or model) estimate.
STATUS_OK = 0
#: Row status: metrics saturated at int64 (the Θ(2^k) baseline at k > 62).
STATUS_OFFSCALE = 1
#: Row status: the estimator raised — live ``auto_select`` skips the point.
STATUS_ERROR = 2


def _pipeline_expand_only():
    from repro.passes import ExpandMacros, PassPipeline

    return PassPipeline([ExpandMacros()], name="expand-only")


def _pipeline_no_fuse():
    from repro.passes import (
        CancelAdjacentInverses,
        DropIdentities,
        ExpandMacros,
        PassPipeline,
    )

    return PassPipeline(
        [DropIdentities(), ExpandMacros(), CancelAdjacentInverses(), DropIdentities()],
        name="no-fuse",
    )


#: Named pass-pipeline variants a sweep can cover.  ``"default"`` is the
#: production lowering pipeline, answered analytically by the estimator;
#: the other entries are factories materialised per point.
PIPELINE_VARIANTS = {
    "default": None,
    "expand-only": _pipeline_expand_only,
    "no-fuse": _pipeline_no_fuse,
}


def _parse_budget(raw) -> Optional[AncillaBudget]:
    if raw is None:
        return None
    if isinstance(raw, AncillaBudget):
        return raw
    if not isinstance(raw, dict):
        raise DSEError(f"an ancilla budget must be an object or null, got {raw!r}")
    unknown = set(raw) - {"clean", "borrowed", "total"}
    if unknown:
        raise DSEError(f"unknown ancilla budget field(s) {sorted(unknown)}")
    return AncillaBudget(
        clean=raw.get("clean"), borrowed=raw.get("borrowed"), total=raw.get("total")
    )


def _budget_dict(budget: Optional[AncillaBudget]):
    if budget is None:
        return None
    out = {}
    for name in ("clean", "borrowed", "total"):
        value = getattr(budget, name)
        if value is not None:
            out[name] = value
    return out


@dataclass(frozen=True)
class SweepSpec:
    """One design-space sweep: which grid to cover and how.

    ``strategies=()`` means "every dispatchable strategy of ``family``";
    ``budgets`` parameterise the frontier report (budgets never change a
    point's cost, only which points a query may pick).  ``k_stop`` is
    inclusive, matching how scenario ranges are quoted in the paper.
    """

    strategies: Tuple[str, ...] = ()
    family: str = "toffoli"
    dims: Tuple[int, ...] = (3, 4)
    k_start: int = 0
    k_stop: int = 64
    k_step: int = 1
    budgets: Tuple[Optional[AncillaBudget], ...] = (None,)
    pipelines: Tuple[str, ...] = ("default",)
    #: Non-default pipelines synthesise real circuits; cap their k range.
    max_materialized_k: int = 12
    #: Grid points per work unit handed to a pool worker.
    chunk_points: int = 4096

    def __post_init__(self):
        if self.k_start < 0 or self.k_stop < self.k_start or self.k_step < 1:
            raise DSEError(
                f"bad k range: start={self.k_start}, stop={self.k_stop}, "
                f"step={self.k_step}"
            )
        if not self.dims:
            raise DSEError("a sweep needs at least one dimension")
        if any(d < 3 for d in self.dims):
            raise DSEError(f"dimensions must be >= 3, got {list(self.dims)}")
        for name in self.pipelines:
            if name not in PIPELINE_VARIANTS:
                raise DSEError(
                    f"unknown pipeline variant {name!r}; "
                    f"known: {sorted(PIPELINE_VARIANTS)}"
                )
        if self.chunk_points < 1:
            raise DSEError("chunk_points must be >= 1")

    def ks(self) -> np.ndarray:
        return np.arange(self.k_start, self.k_stop + 1, self.k_step, dtype=np.int64)

    def resolve_strategies(self) -> List[str]:
        """The strategy names this sweep covers, in registration order."""
        from repro.synth import registry

        if self.strategies:
            return [registry.get(name).name for name in self.strategies]
        return [
            s.name
            for s in registry.all_strategies()
            if s.capabilities.family == self.family and s.capabilities.dispatchable
        ]

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "SweepSpec":
        if not isinstance(raw, dict):
            raise DSEError(f"a sweep spec must be an object, got {type(raw).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = set(raw) - known
        if unknown:
            raise DSEError(f"unknown sweep spec field(s) {sorted(unknown)}")
        kwargs = dict(raw)
        for name in ("strategies", "pipelines"):
            if name in kwargs:
                kwargs[name] = tuple(str(x) for x in kwargs[name])
        if "dims" in kwargs:
            kwargs["dims"] = tuple(int(d) for d in kwargs["dims"])
        if "budgets" in kwargs:
            kwargs["budgets"] = tuple(_parse_budget(b) for b in kwargs["budgets"])
        return cls(**kwargs)

    def to_dict(self) -> Dict[str, object]:
        return {
            "strategies": list(self.strategies),
            "family": self.family,
            "dims": list(self.dims),
            "k_start": self.k_start,
            "k_stop": self.k_stop,
            "k_step": self.k_step,
            "budgets": [_budget_dict(b) for b in self.budgets],
            "pipelines": list(self.pipelines),
            "max_materialized_k": self.max_materialized_k,
            "chunk_points": self.chunk_points,
        }


@dataclass(frozen=True)
class _Chunk:
    """One independent work unit of a sweep."""

    mode: str  # "analytic" | "materialized"
    strategy: str
    pipeline: str
    dim: int
    k_start: int
    k_stop: int  # inclusive
    k_step: int

    def ks(self) -> np.ndarray:
        return np.arange(self.k_start, self.k_stop + 1, self.k_step, dtype=np.int64)


def plan_sweep(spec: SweepSpec) -> List[_Chunk]:
    """Chunk the sweep grid into independent per-(strategy, pipeline, d) runs."""
    chunks: List[_Chunk] = []
    strategies = spec.resolve_strategies()
    for pipeline in spec.pipelines:
        materialized = PIPELINE_VARIANTS[pipeline] is not None
        for strategy in strategies:
            for dim in spec.dims:
                ks = spec.ks()
                if materialized:
                    ks = ks[ks <= spec.max_materialized_k]
                if not ks.size:
                    continue
                step = spec.k_step
                for start in range(0, ks.size, spec.chunk_points):
                    part = ks[start : start + spec.chunk_points]
                    chunks.append(
                        _Chunk(
                            mode="materialized" if materialized else "analytic",
                            strategy=strategy,
                            pipeline=pipeline,
                            dim=dim,
                            k_start=int(part[0]),
                            k_stop=int(part[-1]),
                            k_step=step,
                        )
                    )
    return chunks


# ----------------------------------------------------------------------
# Columnar point store
# ----------------------------------------------------------------------
#: Integer columns of the store beyond the metric fields.
_EXTRA_COLUMNS = ("num_wires",) + tuple(f"anc_{kind}" for kind in ANCILLA_KINDS)


@dataclass
class PointStore:
    """Struct-of-arrays accumulator for swept design points.

    One row per (strategy, pipeline, d, k); strategy and pipeline names are
    interned into id columns (``strategies[strategy_id[i]]``), metric and
    layout columns are dense int64 arrays, ``status`` encodes whether the
    row is exact, saturated (:data:`STATUS_OFFSCALE`) or a recorded
    estimator failure (:data:`STATUS_ERROR`).
    """

    strategies: List[str] = field(default_factory=list)
    pipelines: List[str] = field(default_factory=list)
    columns: Dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self):
        if not self.columns:
            self.columns = {name: np.zeros(0, dtype=np.int64) for name in self.column_names()}
            self.columns["exact"] = np.zeros(0, dtype=bool)
            self.columns["status"] = np.zeros(0, dtype=np.int8)

    @staticmethod
    def column_names() -> Tuple[str, ...]:
        return ("strategy_id", "pipeline_id", "dim", "k") + METRIC_FIELDS + _EXTRA_COLUMNS

    def __len__(self) -> int:
        return int(self.columns["k"].shape[0])

    def _intern(self, names: List[str], value: str) -> int:
        try:
            return names.index(value)
        except ValueError:
            names.append(value)
            return len(names) - 1

    def extend(self, chunk_result: Dict[str, object]) -> None:
        """Append one evaluated chunk (as produced by ``_eval_chunk``)."""
        n = int(np.asarray(chunk_result["k"]).shape[0])
        if n == 0:
            return
        sid = self._intern(self.strategies, str(chunk_result["strategy"]))
        pid = self._intern(self.pipelines, str(chunk_result["pipeline"]))
        new: Dict[str, np.ndarray] = {
            "strategy_id": np.full(n, sid, dtype=np.int64),
            "pipeline_id": np.full(n, pid, dtype=np.int64),
            "dim": np.full(n, int(chunk_result["dim"]), dtype=np.int64),
            "k": np.asarray(chunk_result["k"], dtype=np.int64),
            "exact": np.asarray(chunk_result["exact"], dtype=bool),
            "status": np.asarray(chunk_result["status"], dtype=np.int8),
        }
        for name in METRIC_FIELDS + _EXTRA_COLUMNS:
            new[name] = np.asarray(chunk_result[name], dtype=np.int64)
        for name, column in new.items():
            self.columns[name] = np.concatenate([self.columns[name], column])

    def counts(self) -> Dict[str, int]:
        status = self.columns["status"]
        return {
            "points": len(self),
            "ok": int(np.sum(status == STATUS_OK)),
            "offscale": int(np.sum(status == STATUS_OFFSCALE)),
            "error": int(np.sum(status == STATUS_ERROR)),
        }


# ----------------------------------------------------------------------
# Chunk evaluation
# ----------------------------------------------------------------------
_POINT_ERRORS = (EstimationError, SynthesisError, DimensionError)


def _blank_result(chunk: _Chunk, n: int) -> Dict[str, object]:
    out: Dict[str, object] = {
        "strategy": chunk.strategy,
        "pipeline": chunk.pipeline,
        "dim": chunk.dim,
        "k": np.zeros(n, dtype=np.int64),
        "exact": np.ones(n, dtype=bool),
        "status": np.zeros(n, dtype=np.int8),
    }
    for name in METRIC_FIELDS + _EXTRA_COLUMNS:
        out[name] = np.zeros(n, dtype=np.int64)
    return out


def _fill_layout_row(out: Dict[str, object], index: int, strategy, dim: int, k: int) -> None:
    wires, histogram = strategy.layout(dim, k)
    out["num_wires"][index] = wires
    for kind in ANCILLA_KINDS:
        out[f"anc_{kind}"][index] = histogram.get(kind, 0)


def _eval_analytic(chunk: _Chunk) -> Dict[str, object]:
    from repro.synth import registry

    strategy = registry.get(chunk.strategy)
    ks = chunk.ks()
    ks = ks[strategy.supports_batch(chunk.dim, ks)]
    out = _blank_result(chunk, ks.size)
    out["k"] = ks
    if not ks.size:
        return out
    try:
        batch = strategy.estimate_batch(chunk.dim, ks)
    except _POINT_ERRORS:
        # One failing calibration point poisons the whole batch; degrade to
        # scalar estimates and record per-point failures as STATUS_ERROR.
        for index, k in enumerate(ks.tolist()):
            _fill_layout_row(out, index, strategy, chunk.dim, int(k))
            try:
                resources = strategy.estimate(chunk.dim, int(k))
            except _POINT_ERRORS:
                out["status"][index] = STATUS_ERROR
                continue
            out["exact"][index] = resources.exact
            for name, value in zip(METRIC_FIELDS, resources.metrics()):
                if value > INT64_MAX:
                    out["status"][index] = STATUS_OFFSCALE
                    value = INT64_MAX
                out[name][index] = value
        return out
    for name in METRIC_FIELDS:
        out[name] = batch.metrics[name]
    out["exact"] = batch.exact
    out["num_wires"] = batch.num_wires
    for kind in ANCILLA_KINDS:
        column = batch.ancillas.get(kind)
        if column is not None:
            out[f"anc_{kind}"] = np.asarray(column, dtype=np.int64)
    out["status"] = np.where(batch.offscale, STATUS_OFFSCALE, STATUS_OK).astype(np.int8)
    return out


def _eval_materialized(chunk: _Chunk, cache) -> Dict[str, object]:
    from repro.synth import registry

    strategy = registry.get(chunk.strategy)
    pipeline = PIPELINE_VARIANTS[chunk.pipeline]()
    ks = chunk.ks()
    ks = ks[strategy.supports_batch(chunk.dim, ks)]
    out = _blank_result(chunk, ks.size)
    out["k"] = ks
    for index, k in enumerate(ks.tolist()):
        _fill_layout_row(out, index, strategy, chunk.dim, int(k))
        try:
            result = registry.synthesize(chunk.strategy, chunk.dim, int(k), cache=cache)
            macro = result.circuit
            table = pipeline.run_table(macro.to_table())
        except _POINT_ERRORS:
            out["status"][index] = STATUS_ERROR
            continue
        # Mirror count_gates(..., lower=True) field by field on the
        # variant-lowered table.
        out["macro_ops"][index] = macro.num_ops()
        out["two_qudit_gates"][index] = table.two_qudit_count()
        out["g_gates"][index] = table.g_gate_count()
        out["depth"][index] = table.depth()
        out["single_qudit_gates"][index] = table.single_qudit_count()
        out["controlled_x01"][index] = table.controlled_g_gate_count()
    return out


def _eval_chunk(chunk: _Chunk, cache=None) -> Dict[str, object]:
    if chunk.mode == "analytic":
        return _eval_analytic(chunk)
    return _eval_materialized(chunk, cache)


# ----------------------------------------------------------------------
# The parallel driver (fork-pool pattern of repro.exec.workload)
# ----------------------------------------------------------------------
_SWEEP_CACHE = None


def _init_sweep_worker(cache_dir: Optional[str], salt: str) -> None:
    global _SWEEP_CACHE
    from repro.exec.cache import CompileCache

    _SWEEP_CACHE = CompileCache(cache_dir, salt=salt)


def _worker_eval(chunk: _Chunk) -> Dict[str, object]:
    return _eval_chunk(chunk, cache=_SWEEP_CACHE)


def run_sweep(
    spec: SweepSpec,
    *,
    jobs: int = 1,
    cache_dir: Optional[os.PathLike] = None,
) -> PointStore:
    """Evaluate every chunk of ``spec`` and collect a :class:`PointStore`.

    ``jobs > 1`` fans chunks over a ``fork`` pool whose workers each hold a
    :class:`~repro.exec.cache.CompileCache` on ``cache_dir`` (materialized
    chunks share synthesised macro circuits through it); platforms without
    ``fork`` fall back to serial evaluation.  Chunk results arrive in a
    worker-dependent order, so the store is sorted downstream (the tuning
    DB build) rather than here.
    """
    from repro.exec.keys import CODE_VERSION

    chunks = plan_sweep(spec)
    store = PointStore()
    use_pool = jobs > 1 and len(chunks) > 1
    if use_pool:
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-posix platforms
            use_pool = False
    if not use_pool:
        from repro.exec.cache import CompileCache

        cache = CompileCache(cache_dir) if cache_dir is not None else CompileCache(None)
        for chunk in chunks:
            store.extend(_eval_chunk(chunk, cache=cache))
        return store
    with context.Pool(
        processes=min(jobs, len(chunks)),
        initializer=_init_sweep_worker,
        initargs=(str(cache_dir) if cache_dir is not None else None, CODE_VERSION),
    ) as pool:
        for result in pool.imap(_worker_eval, chunks, chunksize=1):
            store.extend(result)
    return store
