"""Design-space exploration: parallel sweeps, Pareto frontiers, tuning DBs.

The estimator answers one ``(strategy, d, k)`` point in microseconds; this
package turns that into a *map* of the whole design space:

* :mod:`repro.dse.sweep` — a :class:`SweepSpec` planner that chunks the
  strategy × pipeline × (d, k) grid and evaluates it on the ``repro.exec``
  fork pool, streaming results into a columnar :class:`PointStore`;
* :mod:`repro.dse.frontier` — a vectorized Pareto skyline kernel over
  (gates, depth, two-qudit count, ancilla) objectives plus report/chart
  emitters;
* :mod:`repro.dse.tuning` — the persisted, content-addressed
  :class:`TuningDB` that ``auto_select`` consults before falling back to
  live estimation.
"""

from repro.dse.frontier import frontier_report, pareto_mask, scenario_frontiers
from repro.dse.sweep import (
    PIPELINE_VARIANTS,
    PointStore,
    SweepSpec,
    plan_sweep,
    run_sweep,
)
from repro.dse.tuning import TuningDB

__all__ = [
    "PIPELINE_VARIANTS",
    "PointStore",
    "SweepSpec",
    "TuningDB",
    "frontier_report",
    "pareto_mask",
    "plan_sweep",
    "run_sweep",
    "scenario_frontiers",
]
