"""Pareto skyline kernel and frontier reports over swept design points.

:func:`pareto_mask` is the generic kernel: given an ``(n, m)`` cost matrix
(every objective minimised), it marks the non-dominated rows.  A point is
dominated iff some other point is ≤ in **every** objective and < in at
least one; duplicates of a frontier point all stay on the frontier (the
semantics a brute-force double loop gives, which the tests cross-check).

:func:`scenario_frontiers` applies the kernel per scenario: for every
``(d, k)`` of a sweep it marks which strategies are Pareto-optimal across
(G-gates, depth, two-qudit gates, total ancillas) — the paper's cost axes.
Strategy counts are tiny (≤ 16), so all scenarios are judged at once with
one vectorized S × S pairwise comparison over the whole k grid instead of
n independent skyline calls.

:func:`frontier_report` packages the per-dimension winner tables, frontier
memberships and an ASCII winner chart into one JSON-able report (the shape
hardware DSE flows emit for area/timing sweeps).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import DSEError
from repro.dse.sweep import STATUS_ERROR, PointStore

#: Default frontier objectives (all minimised).  ``ancilla_total`` is the
#: sum of the four ancilla-kind columns.
DEFAULT_OBJECTIVES: Tuple[str, ...] = (
    "g_gates",
    "depth",
    "two_qudit_gates",
    "ancilla_total",
)


def pareto_mask(costs: np.ndarray) -> np.ndarray:
    """Boolean mask of Pareto-optimal rows of an ``(n, m)`` cost matrix.

    Every objective is minimised.  Exact for duplicates and degenerate
    (constant) objectives: a row is kept iff **no** row strictly dominates
    it.  Two objectives use the O(n log n) sort + running-minimum skyline;
    more use a lexsorted compression scan over the unique rows (worst-case
    quadratic in the frontier size, near-linear on real cost clouds).
    """
    costs = np.asarray(costs)
    if costs.ndim != 2:
        raise DSEError(f"pareto_mask needs an (n, m) matrix, got shape {costs.shape}")
    n, m = costs.shape
    if n == 0:
        return np.zeros(0, dtype=bool)
    if m == 0:
        raise DSEError("pareto_mask needs at least one objective column")
    unique, inverse = np.unique(costs, axis=0, return_inverse=True)
    if m == 1:
        unique_mask = unique[:, 0] == unique[:, 0].min()
    elif m == 2:
        unique_mask = _pareto_unique_2d(unique)
    else:
        unique_mask = _pareto_unique_nd(unique)
    return unique_mask[inverse.reshape(-1)]


def _pareto_unique_2d(unique: np.ndarray) -> np.ndarray:
    """Skyline of unique rows sorted by (x asc, y asc): keep strict y minima."""
    # np.unique already lexsorted the rows, so y is ascending within equal
    # x: only the first row of each x group can survive, and it does iff
    # its y beats every earlier group's best y.
    x, y = unique[:, 0], unique[:, 1]
    first_of_group = np.empty(len(unique), dtype=bool)
    first_of_group[0] = True
    first_of_group[1:] = x[1:] != x[:-1]
    best_before = np.minimum.accumulate(y)  # includes self; shift below
    mask = np.empty(len(unique), dtype=bool)
    mask[0] = True
    mask[1:] = y[1:] < best_before[:-1]
    return mask & first_of_group


def _pareto_unique_nd(unique: np.ndarray) -> np.ndarray:
    """Compression scan over unique rows (is-pareto-efficient style).

    Rows are pre-sorted by objective sum so early candidates kill many
    later rows at once.  Because the rows are unique, "no objective of the
    candidate is beaten" (``not any(<)``) is exactly weak domination, so
    one pass per surviving candidate suffices.
    """
    order = np.argsort(unique.sum(axis=1), kind="stable")
    costs = unique[order]
    surviving = np.arange(len(costs))
    cursor = 0
    while cursor < len(costs):
        keep = np.any(costs < costs[cursor], axis=1)
        keep[cursor] = True
        surviving = surviving[keep]
        costs = costs[keep]
        cursor = int(np.sum(keep[:cursor])) + 1
    mask = np.zeros(len(unique), dtype=bool)
    mask[order[surviving]] = True
    return mask


# ----------------------------------------------------------------------
# Scenario frontiers over a point store
# ----------------------------------------------------------------------
def _objective_cube(
    store: PointStore, dim: int, pipeline: str, objectives: Sequence[str]
) -> Tuple[np.ndarray, List[str], np.ndarray, np.ndarray]:
    """Align one dimension's points on a common k grid.

    Returns ``(ks, strategy_names, cube, valid)`` where ``cube`` has shape
    ``(S, len(ks), len(objectives))`` and ``valid`` marks (strategy, k)
    cells that hold a usable row (present and not a recorded failure).
    """
    cols = store.columns
    try:
        pid = store.pipelines.index(pipeline)
    except ValueError:
        raise DSEError(
            f"pipeline {pipeline!r} is not in this store (has {store.pipelines})"
        ) from None
    rows = (cols["dim"] == dim) & (cols["pipeline_id"] == pid)
    if not rows.any():
        raise DSEError(f"store has no points at d={dim} for pipeline {pipeline!r}")
    ks = np.unique(cols["k"][rows])
    sids = np.unique(cols["strategy_id"][rows])
    names = [store.strategies[int(s)] for s in sids]
    ancilla_total = (
        cols["anc_clean"] + cols["anc_borrowed"] + cols["anc_burnable"] + cols["anc_garbage"]
    )
    cube = np.zeros((len(sids), len(ks), len(objectives)), dtype=np.int64)
    valid = np.zeros((len(sids), len(ks)), dtype=bool)
    for si, sid in enumerate(sids):
        mine = rows & (cols["strategy_id"] == sid)
        k_index = np.searchsorted(ks, cols["k"][mine])
        valid[si, k_index] = cols["status"][mine] != STATUS_ERROR
        for oi, objective in enumerate(objectives):
            if objective == "ancilla_total":
                column = ancilla_total[mine]
            elif objective in cols:
                column = cols[objective][mine]
            else:
                raise DSEError(
                    f"unknown objective {objective!r}; store columns: "
                    f"{sorted(store.column_names())} + ancilla_total"
                )
            cube[si, k_index, oi] = column
    return ks, names, cube, valid


def scenario_frontiers(
    store: PointStore,
    dim: int,
    *,
    pipeline: str = "default",
    objectives: Sequence[str] = DEFAULT_OBJECTIVES,
) -> Dict[str, object]:
    """Pareto-optimal strategies per ``k`` at one dimension.

    Returns ``{"ks": (n,), "strategies": [names], "frontier": (S, n) bool,
    "valid": (S, n) bool}``; ``frontier[s, i]`` says strategy ``s`` is
    non-dominated at ``(dim, ks[i])``.  All k points are judged at once:
    dominance is an S × S pairwise comparison vectorized over the k axis.
    """
    ks, names, cube, valid = _objective_cube(store, dim, pipeline, objectives)
    S = len(names)
    dominated = np.zeros((S, len(ks)), dtype=bool)
    for s in range(S):
        for t in range(S):
            if s == t:
                continue
            # t dominates s wherever both are valid, t ≤ s everywhere and
            # t < s somewhere.
            le = np.all(cube[t] <= cube[s], axis=-1)
            lt = np.any(cube[t] < cube[s], axis=-1)
            dominated[s] |= valid[t] & valid[s] & le & lt
    return {
        "ks": ks,
        "strategies": names,
        "frontier": valid & ~dominated,
        "valid": valid,
    }


# ----------------------------------------------------------------------
# Report / chart emission
# ----------------------------------------------------------------------
def _winner_chart(ks: np.ndarray, names: List[str], winners: np.ndarray, width: int = 64) -> List[str]:
    """ASCII winner-by-region chart: one glyph per sampled k."""
    glyphs = "ABCDEFGHIJKLMNOP"
    if len(ks) == 0:
        return []
    sample = np.linspace(0, len(ks) - 1, min(width, len(ks))).astype(int)
    line = "".join(
        glyphs[int(winners[i]) % len(glyphs)] if winners[i] >= 0 else "." for i in sample
    )
    legend = [f"{glyphs[i % len(glyphs)]}={name}" for i, name in enumerate(names)]
    return [
        f"k {int(ks[sample[0]])} .. {int(ks[sample[-1]])}",
        line,
        "legend: " + ", ".join(legend) + " (.=no applicable strategy)",
    ]


def frontier_report(
    store: PointStore,
    *,
    pipeline: str = "default",
    metric: str = "two_qudit_gates",
    objectives: Sequence[str] = DEFAULT_OBJECTIVES,
    sample_points: int = 8,
) -> Dict[str, object]:
    """JSON-able frontier summary of one swept store.

    Per dimension: the cheapest strategy by ``metric`` over the k grid
    (with win counts and crossover points), the Pareto frontier membership
    at sampled ks, and an ASCII winner chart.
    """
    dims = sorted(int(d) for d in np.unique(store.columns["dim"]))
    report: Dict[str, object] = {
        "pipeline": pipeline,
        "metric": metric,
        "objectives": list(objectives),
        "points": store.counts(),
        "dims": {},
    }
    for dim in dims:
        ks, names, cube, valid = _objective_cube(store, dim, pipeline, (metric,))
        costs = cube[:, :, 0].astype(float)
        costs[~valid] = np.inf
        any_valid = valid.any(axis=0)
        winners = np.where(any_valid, np.argmin(costs, axis=0), -1)
        frontiers = scenario_frontiers(
            store, dim, pipeline=pipeline, objectives=objectives
        )
        sample = np.linspace(0, len(ks) - 1, min(sample_points, len(ks))).astype(int)
        crossovers = [
            {"k": int(ks[i]), "from": names[int(winners[i - 1])], "to": names[int(winners[i])]}
            for i in range(1, len(ks))
            if winners[i] != winners[i - 1] and winners[i] >= 0 and winners[i - 1] >= 0
        ]
        report["dims"][str(dim)] = {
            "ks": {"start": int(ks[0]), "stop": int(ks[-1]), "count": len(ks)},
            "strategies": names,
            "win_counts": {
                name: int(np.sum(winners == i)) for i, name in enumerate(names)
            },
            "crossovers": crossovers,
            "frontier_samples": [
                {
                    "k": int(ks[i]),
                    "frontier": [
                        names[s] for s in range(len(names)) if frontiers["frontier"][s, i]
                    ],
                }
                for i in sample
            ],
            "chart": _winner_chart(ks, names, winners),
        }
    return report


def render_report(report: Dict[str, object]) -> str:
    """Human-readable rendering of a :func:`frontier_report` dict."""
    lines = [
        f"DSE frontier report — metric={report['metric']}, "
        f"pipeline={report['pipeline']}, points={report['points']['points']}"
    ]
    for dim, block in sorted(report["dims"].items(), key=lambda kv: int(kv[0])):
        lines.append(f"\nd={dim}  (k {block['ks']['start']}..{block['ks']['stop']})")
        for name, wins in sorted(
            block["win_counts"].items(), key=lambda kv: -kv[1]
        ):
            lines.append(f"  wins[{name}] = {wins}")
        for crossover in block["crossovers"]:
            lines.append(
                f"  crossover at k={crossover['k']}: "
                f"{crossover['from']} -> {crossover['to']}"
            )
        lines.extend("  " + line for line in block["chart"])
        for sample in block["frontier_samples"]:
            lines.append(
                f"  pareto k={sample['k']}: {', '.join(sample['frontier']) or '-'}"
            )
    return "\n".join(lines)
