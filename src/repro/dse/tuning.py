"""The persisted tuning database behind data-driven ``auto_select``.

A :class:`TuningDB` is the columnar result of a sweep, sorted and indexed
for O(1) point lookups and saved as one ``.npz`` archive that is

* **content-addressed** — the metadata carries a SHA-256 digest over the
  sorted columns + names, recomputed and checked on load, so a corrupted
  or hand-edited database is refused rather than silently trusted;
* **code-version salted** — the archive embeds the ``repro.exec``
  :data:`~repro.exec.keys.CODE_VERSION`; loading under a different salt
  raises :class:`~repro.exceptions.DSEError`, because costs measured by an
  older compiler are not answers about the current one.

``select`` replays live ``auto_select`` semantics row-for-row (same
candidate order, same budget filter, same skip-on-no-estimate handling)
and answers from the arrays; whenever the database cannot *prove* it would
answer identically — a supported candidate has no row, or the would-be
winner is an offscale (int64-saturated) row — it returns ``None`` and the
caller falls back to live estimation.  That contract is what makes the
bit-for-bit pick-parity guarantee testable instead of aspirational.
"""

from __future__ import annotations

import hashlib
import io
import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import DSEError
from repro.dse.sweep import (
    ANCILLA_KINDS,
    STATUS_ERROR,
    STATUS_OK,
    PointStore,
)
from repro.resources.estimator import METRIC_FIELDS, Resources
from repro.synth.registry import DEFAULT_METRIC as _DEFAULT_METRIC

#: Archive format version (bumped on column-layout changes).
DB_FORMAT = 1

#: Default pipeline whose rows answer ``auto_select`` queries.
DEFAULT_PIPELINE = "default"

#: Bounded memo of select() outcomes per DB instance.
SELECT_MEMO_ENTRIES = 8192

#: Memo-miss sentinel (``None`` is a legitimate cached outcome: fall back).
_MISS = object()

_COLUMNS: Tuple[str, ...] = (
    ("strategy_id", "pipeline_id", "dim", "k")
    + METRIC_FIELDS
    + ("num_wires",)
    + tuple(f"anc_{kind}" for kind in ANCILLA_KINDS)
    + ("exact", "status")
)

# Composite-key field widths: k < 2^32, dim < 2^16, ids < 2^8.
_K_BITS, _DIM_BITS, _SID_BITS = 32, 16, 8


class TuningDB:
    """Sorted, indexed, persistable design-point database."""

    def __init__(
        self,
        columns: Dict[str, np.ndarray],
        strategies: List[str],
        pipelines: List[str],
        *,
        salt: str,
    ):
        self.columns = columns
        self.strategies = list(strategies)
        self.pipelines = list(pipelines)
        self.salt = str(salt)
        self._keys = self._composite_keys(
            columns["pipeline_id"], columns["strategy_id"], columns["dim"], columns["k"]
        )
        if np.any(self._keys[1:] <= self._keys[:-1]):
            raise DSEError("tuning DB rows are not strictly sorted (duplicate points?)")
        self._memo: Dict[tuple, object] = {}
        self.digest = self._compute_digest()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @staticmethod
    def _composite_keys(pid, sid, dim, k) -> np.ndarray:
        for name, column, bits in (
            ("pipeline_id", pid, _SID_BITS),
            ("strategy_id", sid, _SID_BITS),
            ("dim", dim, _DIM_BITS),
            ("k", k, _K_BITS),
        ):
            if column.size and (column.min() < 0 or column.max() >= (1 << bits)):
                raise DSEError(f"tuning DB column {name!r} exceeds {bits} key bits")
        key = pid.astype(np.uint64)
        key = (key << np.uint64(_SID_BITS)) | sid.astype(np.uint64)
        key = (key << np.uint64(_DIM_BITS)) | dim.astype(np.uint64)
        key = (key << np.uint64(_K_BITS)) | k.astype(np.uint64)
        return key

    @classmethod
    def from_sweep(cls, store: PointStore, *, salt: Optional[str] = None) -> "TuningDB":
        """Sort a :class:`PointStore` into a queryable database."""
        from repro.exec.keys import CODE_VERSION

        cols = store.columns
        order = np.lexsort(
            (cols["k"], cols["dim"], cols["strategy_id"], cols["pipeline_id"])
        )
        columns = {name: np.ascontiguousarray(cols[name][order]) for name in _COLUMNS}
        return cls(
            columns,
            store.strategies,
            store.pipelines,
            salt=salt if salt is not None else CODE_VERSION,
        )

    def _compute_digest(self) -> str:
        hasher = hashlib.sha256()
        header = json.dumps(
            {
                "format": DB_FORMAT,
                "salt": self.salt,
                "strategies": self.strategies,
                "pipelines": self.pipelines,
                "columns": list(_COLUMNS),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        hasher.update(header.encode("ascii"))
        for name in _COLUMNS:
            column = np.ascontiguousarray(self.columns[name])
            hasher.update(name.encode("ascii"))
            hasher.update(str(column.dtype).encode("ascii"))
            hasher.update(column.tobytes())
        return hasher.hexdigest()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path) -> str:
        """Write the archive atomically; returns its content digest."""
        from repro.exec.cache import atomic_write_bytes

        meta = {
            "format": DB_FORMAT,
            "salt": self.salt,
            "digest": self.digest,
            "strategies": self.strategies,
            "pipelines": self.pipelines,
            "points": len(self),
        }
        buffer = io.BytesIO()
        np.savez(
            buffer,
            meta=np.bytes_(json.dumps(meta, sort_keys=True).encode("utf-8")),
            **{name: self.columns[name] for name in _COLUMNS},
        )
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_bytes(path, buffer.getvalue())
        return self.digest

    @classmethod
    def load(cls, path, *, salt: Optional[str] = None) -> "TuningDB":
        """Load and verify an archive (salt match + content digest)."""
        from repro.exec.keys import CODE_VERSION

        expected_salt = salt if salt is not None else CODE_VERSION
        path = Path(path)
        try:
            with np.load(path) as data:
                raw_meta = data["meta"][()]
                meta = json.loads(bytes(raw_meta).decode("utf-8"))
                columns = {name: np.array(data[name]) for name in _COLUMNS}
        except (OSError, ValueError, KeyError) as error:
            raise DSEError(f"cannot read tuning DB {path}: {error}") from error
        if meta.get("format") != DB_FORMAT:
            raise DSEError(
                f"tuning DB {path} has format {meta.get('format')!r}, "
                f"this code reads {DB_FORMAT}"
            )
        if meta.get("salt") != expected_salt:
            raise DSEError(
                f"tuning DB {path} was swept under code version "
                f"{meta.get('salt')!r} but this build is {expected_salt!r}; "
                f"re-run the sweep to regenerate it"
            )
        db = cls(
            columns,
            [str(s) for s in meta.get("strategies", [])],
            [str(p) for p in meta.get("pipelines", [])],
            salt=str(meta["salt"]),
        )
        if meta.get("digest") != db.digest:
            raise DSEError(
                f"tuning DB {path} content digest mismatch "
                f"(stored {str(meta.get('digest'))[:12]}…, computed {db.digest[:12]}…)"
            )
        return db

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.columns["k"].shape[0])

    def _row_index(self, pipeline: str, strategy: str, dim: int, k: int) -> Optional[int]:
        try:
            pid = self.pipelines.index(pipeline)
            sid = self.strategies.index(strategy)
        except ValueError:
            return None
        if not (0 <= k < (1 << _K_BITS) and 0 <= dim < (1 << _DIM_BITS)):
            return None
        key = np.uint64(
            (((pid << _SID_BITS | sid) << _DIM_BITS | dim) << _K_BITS) | k
        )
        index = int(np.searchsorted(self._keys, key))
        if index < len(self._keys) and self._keys[index] == key:
            return index
        return None

    def _row_resources(self, index: int, strategy: str) -> Resources:
        cols = self.columns
        ancillas = {
            kind: int(cols[f"anc_{kind}"][index])
            for kind in ANCILLA_KINDS
            if cols[f"anc_{kind}"][index]
        }
        fields = {name: int(cols[name][index]) for name in METRIC_FIELDS}
        return Resources(
            strategy=strategy,
            dim=int(cols["dim"][index]),
            k=int(cols["k"][index]),
            num_wires=int(cols["num_wires"][index]),
            ancillas=ancillas,
            exact=bool(cols["exact"][index]),
            **fields,
        )

    def select(
        self,
        dim: int,
        k: int,
        *,
        family: str = "toffoli",
        budget=None,
        metric: Optional[str] = None,
    ):
        """DB-backed ``auto_select``, or ``None`` when live must answer.

        Replays the live candidate loop against stored rows.  Falls back
        (returns ``None``) when any supported candidate lacks a row or the
        would-be winner is an int64-saturated row — both cases where the
        arrays cannot reproduce the live comparison bit for bit.

        The memo hit path is deliberately import-free: this is the inner
        loop of DB-backed ``auto_select``, and the ≥20x-over-live benchmark
        floor is won or lost here.
        """
        if metric is None:
            metric = _DEFAULT_METRIC
        memo_key = (dim, k, family, budget, metric)
        cached = self._memo.get(memo_key, _MISS)
        if cached is not _MISS:
            return cached
        choice = self._select_uncached(dim, k, family=family, budget=budget, metric=metric)
        if len(self._memo) >= SELECT_MEMO_ENTRIES:
            self._memo.clear()
        self._memo[memo_key] = choice
        return choice

    def _select_uncached(self, dim: int, k: int, *, family: str, budget, metric: str):
        from repro.synth import registry
        considered = []
        best: Optional[Tuple[object, Resources, int]] = None
        for strategy in registry.all_strategies():
            caps = strategy.capabilities
            if caps.family != family or not caps.dispatchable:
                continue
            if not strategy.supports(dim, k):
                considered.append((strategy.name, None, f"unsupported for d={dim}, k={k}"))
                continue
            index = self._row_index(DEFAULT_PIPELINE, strategy.name, dim, k)
            if index is None:
                return None  # off the swept region: live must answer
            cols = self.columns
            histogram = {
                kind: int(cols[f"anc_{kind}"][index])
                for kind in ANCILLA_KINDS
                if cols[f"anc_{kind}"][index]
            }
            if budget is not None and not budget.permits(histogram):
                considered.append((strategy.name, None, "over ancilla budget"))
                continue
            status = int(cols["status"][index])
            if status == STATUS_ERROR:
                considered.append((strategy.name, None, "no estimate (recorded failure)"))
                continue
            resources = self._row_resources(index, strategy.name)
            note = "" if resources.exact else "model estimate"
            considered.append((strategy.name, resources, note))
            cost = getattr(resources, metric)
            if best is None or cost < getattr(best[1], metric):
                best = (strategy, resources, status)
        if best is None:
            return None  # live raises its "nothing applicable" error
        if best[2] != STATUS_OK:
            # The winner's stored cost is a saturation, not the true value;
            # only live estimation can rank it honestly.
            return None
        choice = registry.AutoChoice(
            strategy=best[0],
            resources=best[1],
            considered=considered,
            source="tuning-db",
        )
        return choice

    def describe(self) -> Dict[str, object]:
        """JSON-able summary (the CLI's ``--db`` inspection output)."""
        cols = self.columns
        status = cols["status"]
        out: Dict[str, object] = {
            "points": len(self),
            "digest": self.digest,
            "salt": self.salt,
            "strategies": list(self.strategies),
            "pipelines": list(self.pipelines),
            "ok": int(np.sum(status == STATUS_OK)),
            "offscale": int(np.sum(status == 1)),
            "error": int(np.sum(status == STATUS_ERROR)),
        }
        if len(self):
            out["dims"] = sorted(int(d) for d in np.unique(cols["dim"]))
            out["k_min"] = int(cols["k"].min())
            out["k_max"] = int(cols["k"].max())
        return out
