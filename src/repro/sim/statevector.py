"""Dense statevector simulation of qudit circuits.

Used for the constructions that involve genuine unitaries rather than
basis-state permutations: the ``|0^k⟩-U`` gate of Fig. 1(b), the unitary
synthesis of Theorem IV.1, the d-ary Grover application, and the
root-of-``X`` baselines.  Gate application is delegated to one of the
vectorized engines in :mod:`repro.sim.backend` (``dense`` by default,
``tensor`` as the axis-wise alternative) — there is no per-basis-index
Python loop anywhere on the hot path.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.exceptions import DimensionError, WireError
from repro.qudit.circuit import QuditCircuit
from repro.qudit.operations import BaseOp
from repro.sim.backend import BackendLike, get_backend
from repro.utils.indexing import digits_to_index, index_to_digits


class Statevector:
    """A dense statevector over ``num_wires`` qudits of dimension ``dim``.

    ``backend`` selects the simulation engine by name (``"dense"``,
    ``"tensor"``, ``"streaming"``, or any name registered through
    :func:`repro.sim.backend.register_backend`), or accepts a configured
    instance directly — e.g. ``StreamingBackend("8M")`` to evolve a state
    larger than a byte budget out-of-core; ``None`` uses the process
    default.  :attr:`nbytes` reports the amplitude footprint the engines'
    memory models are expressed in (see README "Simulation backends").
    """

    def __init__(
        self,
        num_wires: int,
        dim: int,
        data: Optional[np.ndarray] = None,
        *,
        backend: BackendLike = None,
        copy: bool = True,
    ):
        if dim < 2:
            raise DimensionError(f"qudit dimension must be at least 2, got {dim}")
        self.num_wires = num_wires
        self.dim = dim
        self.backend = get_backend(backend)
        size = dim**num_wires
        if data is None:
            self.data = np.zeros(size, dtype=complex)
            self.data[0] = 1.0
        else:
            data = np.asarray(data, dtype=complex)
            if data.shape != (size,):
                raise DimensionError(f"statevector must have {size} amplitudes, got {data.shape}")
            self.data = data.copy() if copy else data

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_basis_state(
        cls, digits: Sequence[int], dim: int, *, backend: BackendLike = None
    ) -> "Statevector":
        """The computational basis state ``|digits⟩``."""
        state = cls(len(digits), dim, backend=backend)
        state.data[:] = 0.0
        state.data[digits_to_index(digits, dim)] = 1.0
        return state

    @classmethod
    def uniform(cls, num_wires: int, dim: int, *, backend: BackendLike = None) -> "Statevector":
        """The uniform superposition over every basis state."""
        state = cls(num_wires, dim, backend=backend)
        size = dim**num_wires
        state.data[:] = 1.0 / np.sqrt(size)
        return state

    def copy(self) -> "Statevector":
        """An independent copy (exactly one buffer copy)."""
        return Statevector(
            self.num_wires, self.dim, self.data.copy(), backend=self.backend, copy=False
        )

    @property
    def nbytes(self) -> int:
        """Amplitude bytes (``16·dⁿ``) — the ``S`` of the backend memory
        models; compare against a streaming ``memory_budget`` to predict
        whether evolution stays in RAM."""
        return int(self.data.nbytes)

    # ------------------------------------------------------------------
    # Evolution
    # ------------------------------------------------------------------
    def apply_circuit(
        self,
        circuit: QuditCircuit,
        *,
        out: Optional["Statevector"] = None,
        backend: BackendLike = None,
    ) -> "Statevector":
        """Apply every operation of ``circuit`` and return the evolved state.

        By default the state evolves in place and ``self`` is returned.  Pass
        ``out=`` (a statevector of the same shape) to leave ``self`` untouched
        and write the result into ``out`` instead; ``backend=`` overrides the
        engine for this call only.
        """
        if circuit.num_wires != self.num_wires or circuit.dim != self.dim:
            raise WireError("circuit and statevector shapes do not match")
        engine = self.backend if backend is None else get_backend(backend)
        target = self if out is None else out
        if target is not self:
            if not isinstance(target, Statevector):
                raise WireError(f"out= must be a Statevector, got {target!r}")
            if target.num_wires != self.num_wires or target.dim != self.dim:
                raise WireError("out= statevector shape does not match")
        data = engine.apply_circuit(self.data, circuit)
        if target is not self and data is self.data:
            data = data.copy()  # empty circuit: never alias the buffers
        target.data = data
        return target

    def apply_op(self, op: BaseOp) -> None:
        """Apply one operation in place."""
        self.data = self.backend.apply_op(self.data, op, self.dim, self.num_wires)

    # ------------------------------------------------------------------
    # Measurement-style queries
    # ------------------------------------------------------------------
    def amplitude(self, digits: Sequence[int]) -> complex:
        return complex(self.data[digits_to_index(digits, self.dim)])

    def probability(self, digits: Sequence[int]) -> float:
        return float(abs(self.amplitude(digits)) ** 2)

    def probabilities(self) -> np.ndarray:
        return np.abs(self.data) ** 2

    def norm(self) -> float:
        return float(np.linalg.norm(self.data))

    def fidelity(self, other: "Statevector") -> float:
        """Squared overlap ``|⟨self|other⟩|^2``."""
        return float(abs(np.vdot(self.data, other.data)) ** 2)

    def most_probable(self) -> Sequence[int]:
        """Digits of the most probable basis state."""
        return index_to_digits(int(np.argmax(self.probabilities())), self.dim, self.num_wires)
