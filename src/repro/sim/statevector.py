"""Dense statevector simulation of qudit circuits.

Used for the constructions that involve genuine unitaries rather than
basis-state permutations: the ``|0^k⟩-U`` gate of Fig. 1(b), the unitary
synthesis of Theorem IV.1, the d-ary Grover application, and the
root-of-``X`` baselines.  The simulator is a straightforward dense
implementation intended for small systems (``d^n`` up to a few thousand
amplitudes), which is all the verification and benchmarks need.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.exceptions import DimensionError, GateError, WireError
from repro.qudit.circuit import QuditCircuit
from repro.qudit.operations import BaseOp, Operation, StarShiftOp
from repro.utils.indexing import digits_to_index, index_to_digits


class Statevector:
    """A dense statevector over ``num_wires`` qudits of dimension ``dim``."""

    def __init__(self, num_wires: int, dim: int, data: Optional[np.ndarray] = None):
        if dim < 2:
            raise DimensionError(f"qudit dimension must be at least 2, got {dim}")
        self.num_wires = num_wires
        self.dim = dim
        size = dim**num_wires
        if data is None:
            self.data = np.zeros(size, dtype=complex)
            self.data[0] = 1.0
        else:
            data = np.asarray(data, dtype=complex)
            if data.shape != (size,):
                raise DimensionError(f"statevector must have {size} amplitudes, got {data.shape}")
            self.data = data.copy()

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_basis_state(cls, digits: Sequence[int], dim: int) -> "Statevector":
        """The computational basis state ``|digits⟩``."""
        state = cls(len(digits), dim)
        state.data[:] = 0.0
        state.data[digits_to_index(digits, dim)] = 1.0
        return state

    @classmethod
    def uniform(cls, num_wires: int, dim: int) -> "Statevector":
        """The uniform superposition over every basis state."""
        state = cls(num_wires, dim)
        size = dim**num_wires
        state.data[:] = 1.0 / np.sqrt(size)
        return state

    def copy(self) -> "Statevector":
        return Statevector(self.num_wires, self.dim, self.data)

    # ------------------------------------------------------------------
    # Evolution
    # ------------------------------------------------------------------
    def apply_circuit(self, circuit: QuditCircuit) -> "Statevector":
        """Apply every operation of ``circuit`` in place and return ``self``."""
        if circuit.num_wires != self.num_wires or circuit.dim != self.dim:
            raise WireError("circuit and statevector shapes do not match")
        for op in circuit:
            self.apply_op(op)
        return self

    def apply_op(self, op: BaseOp) -> None:
        """Apply one operation in place."""
        if op.is_permutation:
            self._apply_permutation_op(op)
        elif isinstance(op, Operation):
            self._apply_unitary_op(op)
        else:  # pragma: no cover - defensive
            raise GateError(f"cannot simulate operation {op!r}")

    def _apply_permutation_op(self, op: BaseOp) -> None:
        size = self.dim**self.num_wires
        new_index = np.arange(size)
        for index in range(size):
            digits = list(index_to_digits(index, self.dim, self.num_wires))
            op.apply_to_basis(digits, self.dim)
            new_index[index] = digits_to_index(digits, self.dim)
        new_data = np.zeros_like(self.data)
        new_data[new_index] = self.data
        self.data = new_data

    def _apply_unitary_op(self, op: Operation) -> None:
        matrix = op.gate.matrix()
        d = self.dim
        size = d**self.num_wires
        new_data = self.data.copy()
        # Group basis indices by the value of every wire except the target;
        # within a group the target digit enumerates a d-dimensional block.
        target = op.target
        stride = d ** (self.num_wires - 1 - target)
        for index in range(size):
            digits = index_to_digits(index, self.dim, self.num_wires)
            if digits[target] != 0:
                continue
            if not op.controls_fire(digits, self.dim):
                continue
            block_indices = [index + value * stride for value in range(d)]
            block = self.data[block_indices]
            new_data[block_indices] = matrix @ block
        self.data = new_data

    # ------------------------------------------------------------------
    # Measurement-style queries
    # ------------------------------------------------------------------
    def amplitude(self, digits: Sequence[int]) -> complex:
        return complex(self.data[digits_to_index(digits, self.dim)])

    def probability(self, digits: Sequence[int]) -> float:
        return float(abs(self.amplitude(digits)) ** 2)

    def probabilities(self) -> np.ndarray:
        return np.abs(self.data) ** 2

    def norm(self) -> float:
        return float(np.linalg.norm(self.data))

    def fidelity(self, other: "Statevector") -> float:
        """Squared overlap ``|⟨self|other⟩|^2``."""
        return float(abs(np.vdot(self.data, other.data)) ** 2)

    def most_probable(self) -> Sequence[int]:
        """Digits of the most probable basis state."""
        return index_to_digits(int(np.argmax(self.probabilities())), self.dim, self.num_wires)
