"""Memory-tiled streaming simulation: statevectors larger than the budget.

The ``streaming`` backend applies each fused segment of a circuit
tile-by-tile over the ``(d^n,)`` or ``(d^n, B)`` amplitude array under an
explicit ``memory_budget`` (bytes).  Arrays that fit the budget live in RAM;
anything larger is allocated as an ``np.memmap`` over an unlinked scratch
file, and written tiles are flushed and dropped from the page cache
(``madvise(MADV_DONTNEED)``) as the sweep advances — peak residency stays
near the budget while the statevector itself can exceed RAM.

Results are **bit-for-bit** equal to the ``dense`` engine:

* permutation segments are applied in gather form ``out[j] = in[inv[j]]``
  through the composed *inverse* segment table
  (:meth:`repro.ir.segment.Segment.inverse_index_table`) — integer
  composition and gather are exact, and gather-form writes are sequential,
  which is what makes tiling natural;
* unitary rows run the same ``np.einsum("ij,ajbk->aibk", ...)`` contraction
  as the dense engine over ``(a, b)`` blocks of the ``(pre, d, post, B)``
  cube — with the default non-optimized einsum every output element is the
  same fixed-order sum over the gate index regardless of block extents, so
  blocking does not change a single ulp.

The minimum tile is one basis row (``B`` amplitudes) for gathers and one
``(1, d, 1, B)`` pencil for unitaries; budgets smaller than that still
simulate correctly, just without the residency bound for the single tile.
"""

from __future__ import annotations

import mmap
import os
import re
import tempfile

import numpy as np

from repro.exceptions import GateError
from repro.qudit.circuit import QuditCircuit
from repro.sim.backend import SimulationBackend, register_backend

#: Default per-array budget: small enough to exercise tiling on the large
#: lowered circuits, large enough that every test-sized state stays in RAM.
DEFAULT_MEMORY_BUDGET = 64 * 1024 * 1024

_UNITS = {"": 1, "k": 1024, "m": 1024**2, "g": 1024**3}
_BUDGET_PATTERN = re.compile(r"^(\d+)\s*([kmg]?)(i?b)?$")


def parse_memory_budget(text) -> int:
    """Parse a byte count like ``"8M"``, ``"512k"``, ``"1GiB"`` or ``"4096"``.

    Suffixes are binary multiples (K=KiB, M=MiB, G=GiB), case-insensitive,
    with an optional trailing ``b``/``ib``.  Plain integers pass through.
    """
    if isinstance(text, (int, np.integer)):
        value = int(text)
    else:
        match = _BUDGET_PATTERN.match(str(text).strip().lower())
        if match is None:
            raise GateError(
                f"cannot parse memory budget {text!r} (expected e.g. 8M, 512K, 4096)"
            )
        value = int(match.group(1)) * _UNITS[match.group(2)]
    if value < 1:
        raise GateError(f"memory budget must be positive, got {text!r}")
    return value


class StreamingBackend(SimulationBackend):
    """Tile-by-tile engine with an explicit byte budget per working array."""

    name = "streaming"

    def __init__(self, memory_budget: int = DEFAULT_MEMORY_BUDGET):
        self.memory_budget = parse_memory_budget(memory_budget)

    # ------------------------------------------------------------------
    # Scratch allocation and residency control
    # ------------------------------------------------------------------
    def _alloc(self, shape, dtype) -> np.ndarray:
        """An output array: RAM when it fits the budget, memmap scratch else.

        The scratch file is unlinked immediately (the mapping keeps it
        alive), so nothing leaks even on a crashed run.
        """
        nbytes = int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
        if nbytes <= self.memory_budget:
            return np.empty(shape, dtype=dtype)
        fd, path = tempfile.mkstemp(prefix="repro-streaming-", suffix=".scratch")
        os.close(fd)
        try:
            out = np.memmap(path, dtype=dtype, mode="w+", shape=shape)
        finally:
            os.unlink(path)
        return out

    @staticmethod
    def _drop_pages(array) -> None:
        """Best-effort: flush a memmap's dirty pages and evict them from RAM."""
        raw = getattr(array, "_mmap", None)
        if raw is None:
            return
        try:
            array.flush()
            raw.madvise(mmap.MADV_DONTNEED)
        except (AttributeError, OSError, ValueError):  # pragma: no cover - platform
            pass

    def _tile_rows(self, total_rows: int, row_bytes: int) -> int:
        """Rows per tile so one input tile + one output tile fit the budget."""
        return max(1, min(total_rows, self.memory_budget // max(2 * row_bytes, 1)))

    # ------------------------------------------------------------------
    # Fused-segment kernels
    # ------------------------------------------------------------------
    def _permute_tiled(self, data: np.ndarray, inverse_gather: np.ndarray) -> np.ndarray:
        """Gather form ``out[j] = data[inverse_gather[j]]``, one tile at a time."""
        out = self._alloc(data.shape, data.dtype)
        row_bytes = data.dtype.itemsize * (
            int(np.prod(data.shape[1:], dtype=np.int64)) if data.ndim > 1 else 1
        )
        step = self._tile_rows(data.shape[0], row_bytes)
        for lo in range(0, data.shape[0], step):
            out[lo : lo + step] = data[inverse_gather[lo : lo + step]]
            self._drop_pages(out)
        self._drop_pages(data)
        return out

    def _unitary_tiled(self, data: np.ndarray, op, dim: int, num_wires: int) -> np.ndarray:
        """The dense einsum kernel over ``(a, b)`` blocks of the state cube."""
        matrix = op.gate.matrix()
        pre = dim**op.target
        post = dim ** (num_wires - 1 - op.target)
        out = self._alloc(data.shape, data.dtype)
        cube_in = data.reshape(pre, dim, post, -1)
        cube_out = out.reshape(pre, dim, post, -1)
        batch = cube_in.shape[3]
        mask = op.control_mask(dim, num_wires, flat=True).reshape(pre, dim, post, 1)
        # A block's working set is ~3x its size (input view, rotated, where);
        # the minimum grain is one (1, dim, 1, batch) pencil.
        cell = dim * batch * data.dtype.itemsize
        block_budget = max(self.memory_budget // 3, 1)
        a_step = max(1, block_budget // max(post * cell, 1))
        b_step = post if a_step > 1 else max(1, block_budget // cell)
        for a0 in range(0, pre, a_step):
            a1 = min(a0 + a_step, pre)
            for b0 in range(0, post, b_step):
                b1 = min(b0 + b_step, post)
                block = cube_in[a0:a1, :, b0:b1, :]
                rotated = np.einsum("ij,ajbk->aibk", matrix, block)
                cube_out[a0:a1, :, b0:b1, :] = np.where(
                    mask[a0:a1, :, b0:b1, :], rotated, block
                )
            self._drop_pages(out)
        self._drop_pages(data)
        return out

    # ------------------------------------------------------------------
    # Backend interface
    # ------------------------------------------------------------------
    def apply_table(self, data: np.ndarray, table) -> np.ndarray:
        from repro.ir.segment import segment_table

        for segment in segment_table(table):
            if segment.kind == "perm":
                data = self._permute_tiled(data, segment.inverse_index_table())
            else:
                data = self._unitary_tiled(data, segment.op(), table.dim, table.num_wires)
        return data

    def apply_circuit(self, data: np.ndarray, circuit: QuditCircuit) -> np.ndarray:
        # Always lower to the columnar form: streaming wants maximal fused
        # segments, and to_table() is cached on the circuit.
        return self.apply_table(data, circuit.to_table())

    def apply_table_batch(self, data: np.ndarray, table) -> np.ndarray:
        if data.ndim != 2:
            raise GateError(
                f"apply_table_batch expects (basis, batch) data, got shape {data.shape}"
            )
        return self.apply_table(data, table)

    def apply_circuit_batch(self, data: np.ndarray, circuit: QuditCircuit) -> np.ndarray:
        if data.ndim != 2:
            raise GateError(
                f"apply_circuit_batch expects (basis, batch) data, got shape {data.shape}"
            )
        return self.apply_circuit(data, circuit)

    # Per-op fallbacks (Statevector.apply_op and raw-circuit paths).
    def _apply_permutation(self, data, op, dim, num_wires):
        forward = op.permutation_table(dim, num_wires)
        inverse = np.empty_like(forward)
        inverse[forward] = np.arange(forward.size)
        return self._permute_tiled(data, inverse)

    def _apply_unitary(self, data, op, dim, num_wires):
        return self._unitary_tiled(data, op, dim, num_wires)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<StreamingBackend budget={self.memory_budget}>"


register_backend(StreamingBackend())

__all__ = ["DEFAULT_MEMORY_BUDGET", "StreamingBackend", "parse_memory_budget"]
