"""Full-unitary construction for small circuits.

Builds the ``d^n x d^n`` matrix implemented by a circuit.  For permutation
circuits the matrix is assembled in one shot from the vectorized basis
permutation table; for genuine unitary circuits all ``d^n`` identity columns
are evolved *simultaneously* through a simulation backend (the engines treat
trailing axes as batch dimensions).  Used by the verification helpers for the
unitary-level constructions (controlled-U, Theorem IV.1 unitary synthesis,
root-of-X baselines) and by the tests that compare against numpy ground
truth.
"""

from __future__ import annotations

import numpy as np

from repro.qudit.circuit import QuditCircuit
from repro.sim.backend import BackendLike, get_backend
from repro.sim.permutation import permutation_index_table


def circuit_unitary(circuit: QuditCircuit, *, backend: BackendLike = None) -> np.ndarray:
    """Return the dense unitary matrix implemented by ``circuit``.

    ``backend`` selects the simulation engine used for non-permutation
    circuits (``None`` uses the process default).
    """
    size = circuit.dim**circuit.num_wires
    if circuit.is_permutation:
        table = permutation_index_table(circuit)
        matrix = np.zeros((size, size), dtype=complex)
        matrix[table, np.arange(size)] = 1.0
        return matrix
    engine = get_backend(backend)
    return engine.apply_circuit(np.eye(size, dtype=complex), circuit)


def controlled_unitary_matrix(dim: int, control_value: int, unitary: np.ndarray) -> np.ndarray:
    """Matrix of the two-qudit gate ``|control_value⟩-U`` (control wire first)."""
    size = dim * dim
    matrix = np.eye(size, dtype=complex)
    block = slice(control_value * dim, (control_value + 1) * dim)
    matrix[block, block] = unitary
    return matrix


def multi_controlled_unitary_matrix(
    dim: int, num_controls: int, unitary: np.ndarray, control_values=None
) -> np.ndarray:
    """Matrix of ``|c_1 ... c_k⟩-U`` with the target as the last wire.

    ``control_values`` defaults to all zeros (the paper's ``|0^k⟩-U``).
    """
    if control_values is None:
        control_values = (0,) * num_controls
    size = dim ** (num_controls + 1)
    matrix = np.eye(size, dtype=complex)
    offset = 0
    for value in control_values:
        offset = offset * dim + value
    block = slice(offset * dim, (offset + 1) * dim)
    matrix[block, block] = unitary
    return matrix
