"""Batched statevector simulation: B states evolved per gate application.

A :class:`BatchedStatevector` holds ``B`` states of the same ``(num_wires,
dim)`` register as one ``(d**n, B)`` array — the basis index leading, the
batch axis trailing, exactly the layout every engine in
:mod:`repro.sim.backend` carries through its kernels.  Applying a lowered
circuit routes through :meth:`SimulationBackend.apply_table_batch`: on the
dense engine the whole batch moves with **one gather per distinct gate
form**, amortising the gather tables across the batch instead of replaying
them per state; engines without a native batch kernel (the tensor engine)
fall back to a per-state loop with identical results.

For purely classical workloads (a permutation circuit applied to basis
states) :func:`apply_to_basis_indices` propagates just the ``B`` flat
indices through the table — O(rows · B) instead of O(rows · d^n) amplitude
traffic.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.exceptions import DimensionError, WireError
from repro.qudit.circuit import QuditCircuit
from repro.sim.backend import BackendLike, get_backend
from repro.sim.statevector import Statevector
from repro.utils.indexing import digits_to_index, indices_to_digits


class BatchedStatevector:
    """``B`` dense statevectors sharing one register shape.

    ``data`` has shape ``(dim**num_wires, batch_size)``; column ``b`` is the
    ``b``-th state.  The default constructor initialises every column to
    ``|0...0⟩``.
    """

    def __init__(
        self,
        num_wires: int,
        dim: int,
        batch_size: int,
        data: Optional[np.ndarray] = None,
        *,
        backend: BackendLike = None,
        copy: bool = True,
    ):
        if dim < 2:
            raise DimensionError(f"qudit dimension must be at least 2, got {dim}")
        if batch_size < 1:
            raise DimensionError(f"batch size must be at least 1, got {batch_size}")
        self.num_wires = int(num_wires)
        self.dim = int(dim)
        self.batch_size = int(batch_size)
        self.backend = get_backend(backend)
        size = dim**num_wires
        if data is None:
            self.data = np.zeros((size, batch_size), dtype=complex)
            self.data[0, :] = 1.0
        else:
            data = np.asarray(data, dtype=complex)
            if data.shape != (size, batch_size):
                raise DimensionError(
                    f"batched statevector needs shape {(size, batch_size)}, got {data.shape}"
                )
            self.data = data.copy() if copy else data

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_basis_states(
        cls,
        rows: Sequence[Sequence[int]],
        dim: int,
        *,
        backend: BackendLike = None,
    ) -> "BatchedStatevector":
        """One column per digit row: ``|rows[b]⟩`` in column ``b``."""
        if not rows:
            raise DimensionError("from_basis_states needs at least one basis state")
        num_wires = len(rows[0])
        batch = cls(num_wires, dim, len(rows), backend=backend)
        batch.data[0, :] = 0.0
        for b, digits in enumerate(rows):
            if len(digits) != num_wires:
                raise WireError(
                    f"basis state {b} has {len(digits)} digits, expected {num_wires}"
                )
            batch.data[digits_to_index(digits, dim), b] = 1.0
        return batch

    @classmethod
    def from_statevectors(cls, states: Iterable[Statevector]) -> "BatchedStatevector":
        """Stack independent :class:`Statevector` objects into one batch."""
        states = list(states)
        if not states:
            raise DimensionError("from_statevectors needs at least one state")
        first = states[0]
        for state in states[1:]:
            if state.num_wires != first.num_wires or state.dim != first.dim:
                raise WireError("all batched states must share one register shape")
        data = np.stack([state.data for state in states], axis=1)
        return cls(
            first.num_wires,
            first.dim,
            len(states),
            data,
            backend=first.backend,
            copy=False,
        )

    def copy(self) -> "BatchedStatevector":
        return BatchedStatevector(
            self.num_wires,
            self.dim,
            self.batch_size,
            self.data.copy(),
            backend=self.backend,
            copy=False,
        )

    @property
    def nbytes(self) -> int:
        """Amplitude bytes (``16·dⁿ·B``) — the batch's ``S`` in the backend
        memory models (README "Simulation backends")."""
        return int(self.data.nbytes)

    # ------------------------------------------------------------------
    # Evolution
    # ------------------------------------------------------------------
    def apply_circuit(
        self, circuit: QuditCircuit, *, backend: BackendLike = None
    ) -> "BatchedStatevector":
        """Apply ``circuit`` to every column in place and return ``self``.

        Routes through the engine's batched kernels: one
        ``apply_table_batch`` call when the circuit has a live columnar
        table, the engine's batched per-op path otherwise.
        """
        if circuit.num_wires != self.num_wires or circuit.dim != self.dim:
            raise WireError("circuit and batched statevector shapes do not match")
        engine = self.backend if backend is None else get_backend(backend)
        self.data = engine.apply_circuit_batch(self.data, circuit)
        return self

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def state(self, b: int) -> Statevector:
        """An independent :class:`Statevector` copy of column ``b``."""
        return Statevector(
            self.num_wires,
            self.dim,
            np.ascontiguousarray(self.data[:, b]),
            backend=self.backend,
            copy=False,
        )

    def states(self) -> List[Statevector]:
        return [self.state(b) for b in range(self.batch_size)]

    def probabilities(self) -> np.ndarray:
        """Per-column probabilities, shape ``(dim**num_wires, batch_size)``."""
        return np.abs(self.data) ** 2

    def most_probable(self) -> List[tuple]:
        """The most probable basis digits of every column."""
        flat = np.argmax(self.probabilities(), axis=0)
        digits = indices_to_digits(flat, self.dim, self.num_wires)
        return [tuple(int(x) for x in row) for row in digits]

    def __len__(self) -> int:
        return self.batch_size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BatchedStatevector(wires={self.num_wires}, dim={self.dim}, "
            f"batch={self.batch_size}, backend={self.backend.name!r})"
        )


def apply_to_basis_indices(circuit: QuditCircuit, indices) -> np.ndarray:
    """Classical batched path: images of flat basis indices under ``circuit``.

    Requires a permutation circuit; propagates only the requested indices
    through the columnar table (building it if necessary), one length-``B``
    gather per row.
    """
    return circuit.to_table().apply_to_indices(indices)
