"""Sparse amplitude-map simulation: O(nnz) work for low-occupancy states.

The circuits this repo synthesises are overwhelmingly *permutation*
circuits, and their hot inputs (basis states, truth-table probes, oracle
queries) touch a handful of amplitudes — yet every statevector engine pays
O(d^n) time and memory per application.  The ``sparse`` engine stores a
state as the pair (sorted-unique ``int64`` flat indices, complex
amplitudes) and evolves it with the O(batch) index arithmetic of
:meth:`repro.qudit.operations.BaseOp.map_indices`:

* each maximal permutation segment (PR 6's
  :func:`repro.ir.segment.segment_table` machinery) becomes ONE pass of
  per-row stride arithmetic over the *live indices only* — never a composed
  ``d^n`` gather table — so a basis-state input costs O(rows · nnz)
  regardless of register size (``d^n >= 10^9`` works);
* a controlled-unitary row expands only the matched indices (predicate
  evaluated on decoded digits) into ``<= d`` successors each, then merges
  duplicates by key (``np.unique`` + ``np.add.at``) and prunes amplitudes
  below ``eps``;
* a configurable occupancy threshold (``SparseBackend(max_occupancy=,
  densify_to='dense')``) densifies transparently — on entry for dense
  inputs that are already too full, or mid-run when unitary expansion
  crosses the threshold — so the engine is *total*: it accepts every
  circuit the dense engine does and merely stops being asymptotically
  cheaper when the state stops being sparse.

Application counters (segments gathered, rows expanded, densify crossovers,
whole-run dense fallbacks, pruned amplitudes) are exposed
``cache_stats()``-style for tests and benchmarks.

On the permutation path the engine is **bit-for-bit** equal to ``dense``:
index propagation is exact integer arithmetic and amplitudes are only
permuted, never recomputed.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import GateError, WireError
from repro.qudit.circuit import QuditCircuit
from repro.sim.backend import SimulationBackend, get_backend, register_backend
from repro.utils.indexing import digits_to_index, indices_to_digits

#: Largest dense register ``to_dense`` / transparent densification will
#: materialise (amplitude count; 2 GiB of complex128).  Beyond this the
#: sparse representation is the only one that exists, so crossing the
#: occupancy threshold raises instead of thrashing the machine.
MATERIALIZE_LIMIT = 1 << 27


class SparseState:
    """A statevector stored as (sorted-unique flat indices, amplitudes).

    ``indices`` is strictly increasing ``int64``, ``amplitudes`` the matching
    complex coefficients; every basis state not listed has amplitude zero.
    ``num_wires`` / ``dim`` fix the register, whose size ``dim ** num_wires``
    may vastly exceed what any dense array could hold — only ``nnz``
    amplitudes are ever materialised.
    """

    __slots__ = ("num_wires", "dim", "indices", "amplitudes")

    def __init__(
        self,
        num_wires: int,
        dim: int,
        indices,
        amplitudes,
        *,
        copy: bool = True,
        validate: bool = True,
    ):
        self.num_wires = int(num_wires)
        self.dim = int(dim)
        if copy:
            indices = np.array(indices, dtype=np.int64).reshape(-1)
            amplitudes = np.array(amplitudes, dtype=complex).reshape(-1)
        else:
            indices = np.asarray(indices, dtype=np.int64).reshape(-1)
            amplitudes = np.asarray(amplitudes, dtype=complex).reshape(-1)
        if validate:
            if self.dim < 2:
                raise GateError(f"qudit dimension must be >= 2, got {self.dim}")
            if self.num_wires < 1:
                raise WireError(f"need at least one wire, got {self.num_wires}")
            if indices.shape != amplitudes.shape:
                raise GateError(
                    f"indices and amplitudes must match: {indices.shape} vs {amplitudes.shape}"
                )
            if indices.size:
                if indices.min() < 0 or indices.max() >= self.size:
                    raise WireError(
                        f"basis index out of range for {self.num_wires} wires of "
                        f"dimension {self.dim}"
                    )
                if indices.size > 1 and not bool((np.diff(indices) > 0).all()):
                    raise GateError("sparse indices must be strictly increasing and unique")
        self.indices = indices
        self.amplitudes = amplitudes

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_basis_state(cls, digits: Sequence[int], dim: int) -> "SparseState":
        """The computational basis state ``|digits>`` — nnz is exactly 1."""
        digits = [int(v) for v in digits]
        if not digits:
            raise WireError("need at least one wire")
        if any(not 0 <= v < dim for v in digits):
            raise GateError(f"digits {digits} out of range for dimension {dim}")
        index = digits_to_index(digits, dim)
        return cls(len(digits), dim, [index], [1.0 + 0.0j], copy=False, validate=False)

    @classmethod
    def from_dense(
        cls, data, dim: int, num_wires: int, *, eps: float = 0.0
    ) -> "SparseState":
        """Compress a flat dense statevector, dropping |amp| <= ``eps``."""
        data = np.asarray(data, dtype=complex).reshape(-1)
        if data.size != dim**num_wires:
            raise GateError(
                f"dense state of length {data.size} does not match "
                f"{num_wires} wires of dimension {dim}"
            )
        live = np.nonzero(np.abs(data) > eps)[0]
        return cls(
            num_wires, dim, live.astype(np.int64), data[live], copy=False, validate=False
        )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Full basis size ``dim ** num_wires`` (a Python int — never overflows)."""
        return self.dim**self.num_wires

    @property
    def nnz(self) -> int:
        """Number of stored (nonzero) amplitudes."""
        return int(self.indices.size)

    @property
    def nbytes(self) -> int:
        """Bytes held by the index and amplitude arrays."""
        return int(self.indices.nbytes + self.amplitudes.nbytes)

    @property
    def occupancy(self) -> float:
        """Fraction of the basis carrying amplitude, ``nnz / d^n``."""
        return self.nnz / self.size

    def norm(self) -> float:
        return float(np.linalg.norm(self.amplitudes))

    def to_dense(self) -> np.ndarray:
        """Materialise the full ``(d^n,)`` complex statevector."""
        if self.size > MATERIALIZE_LIMIT:
            raise GateError(
                f"register of {self.size} basis states ({self.num_wires} wires of "
                f"dimension {self.dim}) is too large to materialise densely "
                f"(limit {MATERIALIZE_LIMIT} amplitudes); keep it sparse"
            )
        data = np.zeros(self.size, dtype=complex)
        data[self.indices] = self.amplitudes
        return data

    def digit_rows(self) -> np.ndarray:
        """The stored indices decoded to a ``(nnz, num_wires)`` digit matrix."""
        return indices_to_digits(self.indices, self.dim, self.num_wires)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SparseState(wires={self.num_wires}, dim={self.dim}, "
            f"nnz={self.nnz}, occupancy={self.occupancy:.3g})"
        )


class SparseBackend(SimulationBackend):
    """Amplitude-map engine: O(nnz) per row, dense only past ``max_occupancy``.

    Dense ndarray inputs are accepted everywhere the other engines accept
    them (compressed on entry, expanded on exit) so the registry treats the
    engine as a drop-in; :class:`SparseState` inputs go through
    :meth:`apply_table_sparse` / :meth:`apply_circuit_sparse` and stay
    sparse end-to-end, which is the only way to touch registers beyond the
    dense limit.
    """

    name = "sparse"

    def __init__(
        self,
        max_occupancy: float = 0.25,
        densify_to: str = "dense",
        eps: float = 1e-12,
    ):
        max_occupancy = float(max_occupancy)
        if not 0.0 < max_occupancy <= 1.0:
            raise GateError(
                f"max_occupancy must be in (0, 1], got {max_occupancy}"
            )
        self.max_occupancy = max_occupancy
        self.densify_to = densify_to
        self.eps = float(eps)
        self._stats = {
            "sparse_applies": 0,
            "perm_segments": 0,
            "unitary_expands": 0,
            "densifies": 0,
            "dense_fallbacks": 0,
            "pruned": 0,
        }

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------
    def cache_stats(self) -> dict:
        """Application counters: segment gathers, expansions, densifications."""
        return dict(self._stats)

    def reset_stats(self) -> None:
        for key in self._stats:
            self._stats[key] = 0

    # ------------------------------------------------------------------
    # Sparse-native entry points
    # ------------------------------------------------------------------
    def apply_table_sparse(self, state: SparseState, table) -> SparseState:
        """Evolve a :class:`SparseState` through a columnar table.

        Stays sparse unless unitary expansion pushes occupancy past
        ``max_occupancy``, in which case the state densifies mid-run (the
        register must then fit :data:`MATERIALIZE_LIMIT`) and the result is
        re-compressed on exit so the return type is stable.
        """
        result = self._run(state, table)
        if isinstance(result, SparseState):
            return result
        return SparseState.from_dense(result, table.dim, table.num_wires, eps=self.eps)

    def apply_circuit_sparse(self, state: SparseState, circuit: QuditCircuit) -> SparseState:
        return self.apply_table_sparse(state, self._table_of(circuit))

    # ------------------------------------------------------------------
    # Registry interface (dense ndarray in, dense ndarray out)
    # ------------------------------------------------------------------
    def apply_table(self, data, table):
        if isinstance(data, SparseState):
            return self.apply_table_sparse(data, table)
        data = np.asarray(data, dtype=complex)
        if data.ndim > 1:
            flat = data.reshape(data.shape[0], -1)
            columns = [
                self.apply_table(np.ascontiguousarray(flat[:, b]), table)
                for b in range(flat.shape[1])
            ]
            return np.stack(columns, axis=1).reshape(data.shape)
        size = table.dim**table.num_wires
        nnz = int(np.count_nonzero(np.abs(data) > self.eps))
        if nnz > self.max_occupancy * size:
            self._stats["dense_fallbacks"] += 1
            return get_backend(self.densify_to).apply_table(data, table)
        state = SparseState.from_dense(data, table.dim, table.num_wires, eps=self.eps)
        result = self._run(state, table)
        if isinstance(result, SparseState):
            return result.to_dense()
        return result

    def apply_circuit(self, data, circuit: QuditCircuit):
        return self.apply_table(data, self._table_of(circuit))

    def apply_table_batch(self, data, table):
        if data.ndim != 2:
            raise GateError(
                f"apply_table_batch expects (basis, batch) data, got shape {data.shape}"
            )
        return self.apply_table(data, table)

    def apply_circuit_batch(self, data, circuit: QuditCircuit):
        if data.ndim != 2:
            raise GateError(
                f"apply_circuit_batch expects (basis, batch) data, got shape {data.shape}"
            )
        return self.apply_table(data, self._table_of(circuit))

    def apply_op(self, data, op, dim, num_wires):
        """Single-op path (``Statevector.apply_op``): one-row sparse pass."""
        data = np.asarray(data, dtype=complex)
        if data.ndim > 1:
            flat = data.reshape(data.shape[0], -1)
            columns = [
                self.apply_op(np.ascontiguousarray(flat[:, b]), op, dim, num_wires)
                for b in range(flat.shape[1])
            ]
            return np.stack(columns, axis=1).reshape(data.shape)
        size = dim**num_wires
        nnz = int(np.count_nonzero(np.abs(data) > self.eps))
        if nnz > self.max_occupancy * size:
            self._stats["dense_fallbacks"] += 1
            return get_backend(self.densify_to).apply_op(data, op, dim, num_wires)
        state = SparseState.from_dense(data, dim, num_wires, eps=self.eps)
        if op.is_permutation:
            state = self._map_permutation_rows(state, [op])
            self._stats["perm_segments"] += 1
        else:
            state = self._expand_unitary_row(state, op)
        if state.nnz > self.max_occupancy * size:
            return self._densify(state)
        return state.to_dense()

    # ------------------------------------------------------------------
    # Core sparse evolution
    # ------------------------------------------------------------------
    def _table_of(self, circuit: QuditCircuit):
        table = getattr(circuit, "cached_table", None)
        return table if table is not None else circuit.to_table()

    def _run(self, state: SparseState, table):
        """Evolve segment by segment; returns SparseState or a dense array.

        Once densified (occupancy crossover), the remaining segments run on
        the dense array through the ``densify_to`` engine's kernels — the
        engine is total, it just stops being sparse.
        """
        from repro.ir.segment import segment_table

        self._stats["sparse_applies"] += 1
        dim, num_wires = table.dim, table.num_wires
        size = dim**num_wires
        ops, row_map = table.unique_ops()
        threshold = self.max_occupancy * size
        data = state
        for segment in segment_table(table):
            if isinstance(data, SparseState):
                if segment.kind == "perm":
                    rows = [ops[u] for u in row_map[segment.start : segment.stop].tolist()]
                    data = self._map_permutation_rows(data, rows)
                    self._stats["perm_segments"] += 1
                else:
                    data = self._expand_unitary_row(data, segment.op())
                    if data.nnz > threshold:
                        data = self._densify(data)
            else:
                engine = get_backend(self.densify_to)
                if segment.kind == "perm":
                    gather = segment.index_table()
                    out = np.empty_like(data)
                    out[gather] = data
                    data = out
                else:
                    data = engine._apply_unitary(data, segment.op(), dim, num_wires)
        return data

    def _map_permutation_rows(self, state: SparseState, rows) -> SparseState:
        """One permutation segment: stride arithmetic on the live indices only.

        Amplitudes are carried, never recomputed — the permutation path is
        bit-for-bit identical to the dense engine.  One sort at segment end
        restores the sorted-unique invariant (a permutation cannot create
        duplicates).
        """
        indices = state.indices
        for op in rows:
            indices = op.map_indices(indices, state.dim, state.num_wires)
        order = np.argsort(indices, kind="stable")
        return SparseState(
            state.num_wires,
            state.dim,
            indices[order],
            state.amplitudes[order],
            copy=False,
            validate=False,
        )

    def _expand_unitary_row(self, state: SparseState, op) -> SparseState:
        """One controlled-unitary row: expand matched indices into <= d successors."""
        dim, num_wires = state.dim, state.num_wires
        indices, amplitudes = state.indices, state.amplitudes
        if op.controls:
            fired = op.controls_fire_flat(indices, dim, num_wires)
        else:
            fired = np.ones(indices.shape, dtype=bool)
        keep_idx = indices[~fired]
        keep_amp = amplitudes[~fired]
        hit_idx = indices[fired]
        hit_amp = amplitudes[fired]
        if hit_idx.size:
            stride = dim ** (num_wires - 1 - op.target)
            tdig = (hit_idx // stride) % dim
            base = hit_idx - tdig * stride
            matrix = np.asarray(op.gate.matrix(), dtype=complex)
            successors = base[:, None] + np.arange(dim, dtype=np.int64) * stride
            successor_amps = matrix[:, tdig].T * hit_amp[:, None]
            all_idx = np.concatenate([keep_idx, successors.reshape(-1)])
            all_amp = np.concatenate([keep_amp, successor_amps.reshape(-1)])
        else:
            all_idx, all_amp = keep_idx, keep_amp
        unique, inverse = np.unique(all_idx, return_inverse=True)
        merged = np.zeros(unique.size, dtype=complex)
        np.add.at(merged, inverse, all_amp)
        live = np.abs(merged) > self.eps
        self._stats["unitary_expands"] += 1
        self._stats["pruned"] += int(unique.size - np.count_nonzero(live))
        return SparseState(
            num_wires, dim, unique[live], merged[live], copy=False, validate=False
        )

    def _densify(self, state: SparseState) -> np.ndarray:
        self._stats["densifies"] += 1
        return state.to_dense()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SparseBackend max_occupancy={self.max_occupancy} "
            f"densify_to={self.densify_to!r}>"
        )


register_backend(SparseBackend())

__all__ = ["MATERIALIZE_LIMIT", "SparseBackend", "SparseState"]
