"""Optional numba-JIT simulation backend — never a hard dependency.

When numba imports, a ``numba`` backend registers with parallel fused
gather-and-predicate kernels: permutation segments stream through a
``prange`` gather (``out[j] = data[src[j]]``, the predicate already folded
into the composed segment table), and raw controlled permutation ops run a
masked variant (``out[j] = mask[j] ? data[src[j]] : data[j]``) that fuses
the control predicate into the same single pass — no boolean temporaries,
no ``np.where`` intermediates.  Dense-unitary rows fall back to the dense
engine's einsum kernel, so results are identical to ``dense``.

When numba is absent (or broken), importing this module is still safe: the
backend is simply not registered, and
:func:`repro.sim.backend.backend_availability` reports the one-line reason —
``python -m repro list`` surfaces it to users.
"""

from __future__ import annotations

import numpy as np

from repro.qudit.operations import Operation
from repro.sim.backend import (
    DenseBackend,
    register_backend,
    register_unavailable_backend,
)

try:  # pragma: no cover - exercised only where numba is installed
    import numba
except Exception as _error:  # ImportError or a broken installation
    numba = None
    NUMBA_REASON = (
        f"unavailable — numba is not importable ({type(_error).__name__}); "
        "pip install numba to enable the JIT backend"
    )
else:  # pragma: no cover - exercised only where numba is installed
    NUMBA_REASON = "available"

NUMBA_AVAILABLE = numba is not None


if NUMBA_AVAILABLE:  # pragma: no cover - exercised only where numba is installed

    @numba.njit(parallel=True, nogil=True, cache=True)
    def _gather_1d(out, src, data):
        for j in numba.prange(out.shape[0]):
            out[j] = data[src[j]]

    @numba.njit(parallel=True, nogil=True, cache=True)
    def _gather_2d(out, src, data):
        for j in numba.prange(out.shape[0]):
            for b in range(out.shape[1]):
                out[j, b] = data[src[j], b]

    @numba.njit(parallel=True, nogil=True, cache=True)
    def _gather_where_1d(out, src, mask, data):
        for j in numba.prange(out.shape[0]):
            out[j] = data[src[j]] if mask[j] else data[j]

    @numba.njit(parallel=True, nogil=True, cache=True)
    def _gather_where_2d(out, src, mask, data):
        for j in numba.prange(out.shape[0]):
            k = src[j] if mask[j] else j
            for b in range(out.shape[1]):
                out[j, b] = data[k, b]

    def _invert(forward: np.ndarray) -> np.ndarray:
        inverse = np.empty_like(forward)
        inverse[forward] = np.arange(forward.size)
        return inverse

    class NumbaBackend(DenseBackend):
        """Dense engine with the gather hot paths JIT-compiled and parallel."""

        name = "numba"

        def _gather(self, data, src):
            out = np.empty_like(data)
            data = np.ascontiguousarray(data)
            if data.ndim == 1:
                _gather_1d(out, src, data)
            elif data.ndim == 2:
                _gather_2d(out, src, data)
            else:  # rare >2-D batch shapes: numpy fancy indexing
                return data[src]
            return out

        def apply_table(self, data, table):
            from repro.ir.segment import segment_table

            for segment in segment_table(table):
                if segment.kind == "perm":
                    data = self._gather(data, segment.inverse_index_table())
                else:
                    data = self._apply_unitary(
                        data, segment.op(), table.dim, table.num_wires
                    )
            return data

        def _apply_permutation(self, data, op, dim, num_wires):
            if isinstance(op, Operation) and op.controls and data.ndim <= 2:
                # Predicate-fused path: gather through the *uncontrolled*
                # permutation, masking per basis state in the same pass.
                # The permutation only moves the target wire, so the mask is
                # invariant under it and gather-side masking is exact.
                bare = Operation(op.gate, op.target)
                src = _invert(bare.permutation_table(dim, num_wires))
                mask = op.control_mask(dim, num_wires, flat=True)
                out = np.empty_like(data)
                data = np.ascontiguousarray(data)
                if data.ndim == 1:
                    _gather_where_1d(out, src, mask, data)
                else:
                    _gather_where_2d(out, src, mask, data)
                return out
            return self._gather(data, _invert(op.permutation_table(dim, num_wires)))

    register_backend(NumbaBackend())
else:
    register_unavailable_backend("numba", NUMBA_REASON)


__all__ = ["NUMBA_AVAILABLE", "NUMBA_REASON"]
