"""Pluggable vectorized simulation engines.

The dense simulators used to iterate over all ``d^n`` basis indices in pure
Python per gate, which made verification of lowered circuits (thousands of
G-gates) take minutes.  This module replaces that with a small registry of
*backends*, each of which applies one operation to the amplitude data with
fully vectorized numpy — no per-index Python loop anywhere:

* ``dense`` — keeps the state as a flat array; a permutation operation is a
  single gather through the precomputed index table cached on the op
  (:meth:`repro.qudit.operations.BaseOp.permutation_table`), a controlled
  unitary is one ``einsum`` over the target-axis blocks masked by the
  vectorized control predicate.
* ``tensor`` — views the state as a ``(d,) * n`` ndarray; permutation gates
  become an axis-wise ``np.take``, star shifts become per-star-value rolls of
  the target axis, unitaries become a ``tensordot`` on the target axis, all
  masked by the broadcastable control mask.
* ``streaming`` (:mod:`repro.sim.streaming`) — applies each fused segment
  tile-by-tile under an explicit ``memory_budget``, spilling scratch arrays
  to ``np.memmap`` when the statevector exceeds the budget.
* ``numba`` (:mod:`repro.sim.jit`) — optional parallel JIT gather kernels;
  registered only when numba imports
  (:func:`backend_availability` reports why it is absent otherwise).

Further engines plug in through :func:`register_backend`; optional engines
whose dependencies are missing record a reason through
:func:`register_unavailable_backend` instead.

Every engine accepts data whose *leading* axis is the flat basis index of
size ``dim ** num_wires``; trailing axes are batch dimensions carried through
unchanged.  The unitary builder exploits this to evolve all ``d^n`` columns of
an identity matrix simultaneously.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.exceptions import GateError
from repro.qudit.circuit import QuditCircuit
from repro.qudit.operations import BaseOp, Operation, StarShiftOp
from repro.utils import permutations as perm_utils


class SimulationBackend:
    """Interface shared by every simulation engine.

    Subclasses implement :meth:`_apply_permutation` and :meth:`_apply_unitary`
    on ndarrays whose leading axis enumerates the flat basis (trailing axes
    are batch dimensions); both return a new array of the same shape.
    """

    #: Registry key; subclasses override.
    name = "abstract"

    def apply_op(self, data: np.ndarray, op: BaseOp, dim: int, num_wires: int) -> np.ndarray:
        """Apply one operation to ``data`` and return the evolved array."""
        if isinstance(op, Operation) and not op.gate.is_permutation:
            return self._apply_unitary(data, op, dim, num_wires)
        if op.is_permutation:
            return self._apply_permutation(data, op, dim, num_wires)
        raise GateError(f"backend {self.name!r} cannot simulate operation {op!r}")

    def apply_circuit(self, data: np.ndarray, circuit: QuditCircuit) -> np.ndarray:
        """Apply every operation of ``circuit`` and return the evolved array.

        Circuits with a live columnar table (e.g. the output of
        ``lower_to_g_gates``) take the :meth:`apply_table` fast path, which
        never materialises per-op Python objects.
        """
        table = getattr(circuit, "cached_table", None)
        if table is not None:
            return self.apply_table(data, table)
        for op in circuit:
            data = self.apply_op(data, op, circuit.dim, circuit.num_wires)
        return data

    def apply_table(self, data: np.ndarray, table) -> np.ndarray:
        """Apply a columnar :class:`~repro.ir.table.GateTable` to ``data``.

        Segment-fused: the rows are partitioned into maximal permutation-only
        runs separated by dense-unitary rows
        (:func:`repro.ir.segment.segment_table`), and each permutation run is
        applied as ONE composed whole-basis gather — a table of thousands of
        permutation rows between two unitaries costs one scatter, not
        thousands.  Composed tables are interned on the pools, so repeated
        applications (and derived tables) reuse them.  Unitary rows go
        through the engine's own ``_apply_unitary``; both kernels carry
        trailing batch axes natively.  Integer index composition is exact,
        so fusing never changes a single bit of the result.
        """
        from repro.ir.segment import segment_table

        dim, num_wires = table.dim, table.num_wires
        for segment in segment_table(table):
            if segment.kind == "perm":
                gather = segment.index_table()
                out = np.empty_like(data)
                out[gather] = data
                data = out
            else:
                data = self._apply_unitary(data, segment.op(), dim, num_wires)
        return data

    def apply_table_batch(self, data: np.ndarray, table) -> np.ndarray:
        """Apply a table to ``(basis, B)`` data: B states evolved in one call.

        The base implementation loops over the batch axis, one
        :meth:`apply_table` per column — correct for every engine.  Engines
        whose kernels vectorize over trailing axes (the dense gather/einsum
        path) override this to evolve all ``B`` states per gather.
        """
        if data.ndim != 2:
            raise GateError(
                f"apply_table_batch expects (basis, batch) data, got shape {data.shape}"
            )
        columns = [self.apply_table(np.ascontiguousarray(data[:, b]), table)
                   for b in range(data.shape[1])]
        return np.stack(columns, axis=1)

    def apply_circuit_batch(self, data: np.ndarray, circuit: QuditCircuit) -> np.ndarray:
        """Batched :meth:`apply_circuit`: route through the table fast path."""
        table = getattr(circuit, "cached_table", None)
        if table is not None:
            return self.apply_table_batch(data, table)
        if data.ndim != 2:
            raise GateError(
                f"apply_circuit_batch expects (basis, batch) data, got shape {data.shape}"
            )
        columns = [self.apply_circuit(np.ascontiguousarray(data[:, b]), circuit)
                   for b in range(data.shape[1])]
        return np.stack(columns, axis=1)

    def _apply_permutation(self, data, op, dim, num_wires) -> np.ndarray:
        raise NotImplementedError

    def _apply_unitary(self, data, op, dim, num_wires) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class DenseBackend(SimulationBackend):
    """Flat-index engine: permutation ops are one precomputed-table gather."""

    name = "dense"

    def apply_table_batch(self, data, table):
        """Native batch axis: the whole batch evolves per fused segment.

        :meth:`SimulationBackend.apply_table` is already segment-fused and
        its gather/einsum kernels carry trailing axes natively, so a
        permutation table moves the entire batch with ONE composed gather —
        the composition costs about one looped state and every state after
        that is pure gather, the amortisation the batch executor's ≥3x floor
        measures.  Mixed tables cost one gather per permutation segment plus
        one batched einsum per unitary row.
        """
        if data.ndim != 2:
            raise GateError(
                f"apply_table_batch expects (basis, batch) data, got shape {data.shape}"
            )
        return self.apply_table(data, table)

    def apply_circuit_batch(self, data, circuit):
        table = getattr(circuit, "cached_table", None)
        if table is not None:
            return self.apply_table_batch(data, table)
        if data.ndim != 2:
            raise GateError(
                f"apply_circuit_batch expects (basis, batch) data, got shape {data.shape}"
            )
        return self.apply_circuit(data, circuit)

    def _apply_permutation(self, data, op, dim, num_wires):
        table = op.permutation_table(dim, num_wires)
        out = np.empty_like(data)
        out[table] = data
        return out

    def _apply_unitary(self, data, op, dim, num_wires):
        matrix = op.gate.matrix()
        pre = dim**op.target
        post = dim ** (num_wires - 1 - op.target)
        cube = data.reshape(pre, dim, post, -1)
        rotated = np.einsum("ij,ajbk->aibk", matrix, cube)
        mask = op.control_mask(dim, num_wires, flat=True).reshape(pre, dim, post, 1)
        return np.where(mask, rotated, cube).reshape(data.shape)


class TensorBackend(SimulationBackend):
    """Axis-wise engine over the state viewed as a ``(d,) * n`` tensor."""

    name = "tensor"

    @staticmethod
    def _shaped(data, dim, num_wires):
        return data.reshape((dim,) * num_wires + (-1,))

    @staticmethod
    def _mask(op, dim, num_wires):
        # Trailing singleton aligns the mask with the batch axis.
        return op.control_mask(dim, num_wires)[..., None]

    def _apply_permutation(self, data, op, dim, num_wires):
        psi = self._shaped(data, dim, num_wires)
        if isinstance(op, StarShiftOp):
            out = self._apply_star(psi, op, dim, num_wires)
        else:
            inverse = perm_utils.invert(op.gate.permutation())
            moved = np.take(psi, inverse, axis=op.target)
            out = np.where(self._mask(op, dim, num_wires), moved, psi)
        return out.reshape(data.shape)

    def _apply_star(self, psi, op, dim, num_wires):
        out = psi.copy()
        mask = np.take(op.control_mask(dim, num_wires), 0, axis=op.star_wire)[..., None]
        # Removing the star axis shifts later axes down by one.
        roll_axis = op.target if op.target < op.star_wire else op.target - 1
        index = [slice(None)] * (num_wires + 1)
        for star in range(1, dim):
            index[op.star_wire] = star
            sub = psi[tuple(index)]
            rolled = np.roll(sub, op.sign * star, axis=roll_axis)
            out[tuple(index)] = np.where(mask, rolled, sub)
        return out

    def _apply_unitary(self, data, op, dim, num_wires):
        psi = self._shaped(data, dim, num_wires)
        matrix = op.gate.matrix()
        rotated = np.moveaxis(np.tensordot(matrix, psi, axes=([1], [op.target])), 0, op.target)
        out = np.where(self._mask(op, dim, num_wires), rotated, psi)
        return out.reshape(data.shape)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
BackendLike = Union[str, SimulationBackend, None]

_REGISTRY: Dict[str, SimulationBackend] = {}
_DEFAULT_NAME = "dense"

#: Backends that failed to register (name -> one-line reason), e.g. the
#: numba engine on an interpreter without numba.  Purely informational:
#: ``available_backends()`` never lists them, ``backend_availability()`` does.
_UNAVAILABLE: Dict[str, str] = {}


def register_backend(backend, *, name: Optional[str] = None) -> SimulationBackend:
    """Register a backend instance (or class) under ``name`` and return it."""
    instance = backend() if isinstance(backend, type) else backend
    if not isinstance(instance, SimulationBackend):
        raise GateError(f"{backend!r} is not a SimulationBackend")
    registered = name or instance.name
    _REGISTRY[registered] = instance
    _UNAVAILABLE.pop(registered, None)
    return instance


def unregister_backend(name: str) -> None:
    """Remove a registered backend (no-op when absent; the default survives
    as ``dense`` only if re-registered — callers removing the default must
    set a new one first)."""
    _REGISTRY.pop(name, None)


def register_unavailable_backend(name: str, reason: str) -> None:
    """Record that ``name`` could not be registered, with a one-line reason.

    Used by optional engines (the numba JIT backend) so ``python -m repro
    list`` can report *why* a backend is missing instead of silently
    omitting it.  A later successful :func:`register_backend` of the same
    name clears the record.
    """
    if name not in _REGISTRY:
        _UNAVAILABLE[name] = str(reason)


def available_backends() -> Tuple[str, ...]:
    """Sorted names of every registered simulation backend."""
    return tuple(sorted(_REGISTRY))


def backend_availability() -> Dict[str, str]:
    """Every known backend name -> ``"available"`` or the reason it is not."""
    out = {name: "available" for name in _REGISTRY}
    out.update({name: reason for name, reason in _UNAVAILABLE.items() if name not in out})
    return dict(sorted(out.items()))


def get_backend(backend: BackendLike = None) -> SimulationBackend:
    """Resolve a backend name (or instance, or None for the default)."""
    if backend is None:
        backend = _DEFAULT_NAME
    if isinstance(backend, SimulationBackend):
        return backend
    try:
        return _REGISTRY[backend]
    except KeyError:
        raise GateError(
            f"unknown simulation backend {backend!r}; available: {available_backends()}"
        ) from None


def default_backend() -> SimulationBackend:
    """The backend used when none is requested explicitly."""
    return _REGISTRY[_DEFAULT_NAME]


def set_default_backend(backend: BackendLike) -> SimulationBackend:
    """Change the process-wide default backend; returns the new default.

    Passing an instance (re)registers it under its own ``name``, so the
    default always resolves to exactly the object that was passed.
    """
    global _DEFAULT_NAME
    if isinstance(backend, SimulationBackend):
        if _REGISTRY.get(backend.name) is not backend:
            register_backend(backend)
        instance = backend
    else:
        instance = get_backend(backend)
    _DEFAULT_NAME = instance.name
    return instance


register_backend(DenseBackend)
register_backend(TensorBackend)
