"""Classical basis-state simulation of permutation circuits.

Every synthesis in the paper (k-Toffoli, P_k, reversible functions) produces
a *classical reversible* circuit: each operation maps computational basis
states to computational basis states without introducing phases.  Such
circuits are verified exhaustively by running every basis state through the
circuit, which is dramatically cheaper than dense unitary simulation
(``O(d^n * size)`` instead of ``O(d^{2n} * size)``) and is exact.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from repro.exceptions import GateError
from repro.qudit.circuit import QuditCircuit
from repro.utils.indexing import digits_to_index, index_to_digits, iterate_basis

BasisState = Tuple[int, ...]


def apply_to_basis(circuit: QuditCircuit, state: Sequence[int]) -> BasisState:
    """Apply ``circuit`` to one computational basis state and return the result."""
    if len(state) != circuit.num_wires:
        raise GateError(
            f"basis state has {len(state)} digits, circuit has {circuit.num_wires} wires"
        )
    if not circuit.is_permutation:
        raise GateError("circuit contains non-permutation gates; use the statevector simulator")
    working: List[int] = list(state)
    for digit in working:
        if not 0 <= digit < circuit.dim:
            raise GateError(f"basis digit {digit} out of range for dimension {circuit.dim}")
    for op in circuit:
        op.apply_to_basis(working, circuit.dim)
    return tuple(working)


def permutation_table(circuit: QuditCircuit) -> List[int]:
    """Return the full permutation of flat basis indices implemented by ``circuit``.

    Only feasible for small systems (``dim ** num_wires`` entries).
    """
    table: List[int] = []
    for state in iterate_basis(circuit.dim, circuit.num_wires):
        output = apply_to_basis(circuit, state)
        table.append(digits_to_index(output, circuit.dim))
    return table


def function_table(circuit: QuditCircuit) -> Dict[BasisState, BasisState]:
    """Return the circuit's action as a mapping of digit tuples."""
    return {
        state: apply_to_basis(circuit, state)
        for state in iterate_basis(circuit.dim, circuit.num_wires)
    }


def permutation_parity(circuit: QuditCircuit) -> int:
    """Return the sign parity (0 even / 1 odd) of the permutation the circuit
    implements on the full computational basis.

    Used to reproduce the paper's argument that for even ``d`` the k-Toffoli
    (an odd permutation) cannot be built from G-gates (even permutations)
    without an extra wire.
    """
    table = permutation_table(circuit)
    visited = [False] * len(table)
    transposition_count = 0
    for start in range(len(table)):
        if visited[start]:
            continue
        length = 0
        current = start
        while not visited[current]:
            visited[current] = True
            current = table[current]
            length += 1
        transposition_count += length - 1
    return transposition_count % 2


def states_differing_on(
    circuit: QuditCircuit, wires: Iterable[int]
) -> List[Tuple[BasisState, BasisState]]:
    """Return (input, output) pairs where the circuit changed any of ``wires``.

    Handy when debugging control-preservation or borrowed-ancilla violations.
    """
    wires = tuple(wires)
    offenders = []
    for state in iterate_basis(circuit.dim, circuit.num_wires):
        output = apply_to_basis(circuit, state)
        if any(state[w] != output[w] for w in wires):
            offenders.append((state, output))
    return offenders


def evaluate_spec(
    spec: Callable[[BasisState], BasisState], dim: int, num_wires: int
) -> Dict[BasisState, BasisState]:
    """Tabulate a semantic specification function over the full basis."""
    table = {}
    for state in iterate_basis(dim, num_wires):
        image = tuple(spec(state))
        if len(image) != num_wires:
            raise GateError("specification returned a state of the wrong length")
        table[state] = image
    return table


def index_permutation_to_digit_map(table: Sequence[int], dim: int, num_wires: int) -> Dict[BasisState, BasisState]:
    """Convert a flat-index permutation table into a digit-tuple mapping."""
    return {
        index_to_digits(i, dim, num_wires): index_to_digits(image, dim, num_wires)
        for i, image in enumerate(table)
    }
