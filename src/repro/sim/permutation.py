"""Classical basis-state simulation of permutation circuits.

Every synthesis in the paper (k-Toffoli, P_k, reversible functions) produces
a *classical reversible* circuit: each operation maps computational basis
states to computational basis states without introducing phases.  Such
circuits are verified exhaustively by running every basis state through the
circuit, which is dramatically cheaper than dense unitary simulation
(``O(d^n * size)`` instead of ``O(d^{2n} * size)``) and is exact.

The whole-basis queries are vectorized: :func:`permutation_index_table`
composes the per-operation gather tables exposed by
:meth:`repro.qudit.operations.BaseOp.permutation_table` (cached per
``(op, n, d)``), so a circuit of ``m`` gates costs ``m`` numpy gathers
instead of ``m * d^n`` Python-level gate applications.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.exceptions import GateError
from repro.qudit.circuit import QuditCircuit
from repro.utils.indexing import digit_matrix, indices_to_digits, iterate_basis

BasisState = Tuple[int, ...]


def apply_to_basis(circuit: QuditCircuit, state: Sequence[int]) -> BasisState:
    """Apply ``circuit`` to one computational basis state and return the result."""
    if len(state) != circuit.num_wires:
        raise GateError(
            f"basis state has {len(state)} digits, circuit has {circuit.num_wires} wires"
        )
    if not circuit.is_permutation:
        raise GateError("circuit contains non-permutation gates; use the statevector simulator")
    working: List[int] = list(state)
    for digit in working:
        if not 0 <= digit < circuit.dim:
            raise GateError(f"basis digit {digit} out of range for dimension {circuit.dim}")
    for op in circuit:
        op.apply_to_basis(working, circuit.dim)
    return tuple(working)


def permutation_index_table(circuit: QuditCircuit) -> np.ndarray:
    """The circuit's action on the full flat basis as one numpy index array.

    Entry ``i`` is the flat index of the image of basis state ``i``.  Built by
    composing the cached per-operation gather tables — fully vectorized.
    Only feasible for small systems (``dim ** num_wires`` entries).
    """
    cached = getattr(circuit, "cached_table", None)
    if cached is not None:
        # Columnar fast path: compose one gather per *distinct* row without
        # materialising op objects.
        return cached.permutation_index_table()
    if not circuit.is_permutation:
        raise GateError("circuit contains non-permutation gates; use the statevector simulator")
    table = np.arange(circuit.dim**circuit.num_wires)
    for op in circuit:
        table = op.permutation_table(circuit.dim, circuit.num_wires)[table]
    return table


def permutation_table(circuit: QuditCircuit) -> List[int]:
    """Return the full permutation of flat basis indices implemented by ``circuit``.

    Plain-list version of :func:`permutation_index_table`, kept for callers
    that expect Python integers.
    """
    return permutation_index_table(circuit).tolist()


def function_table(circuit: QuditCircuit) -> Dict[BasisState, BasisState]:
    """Return the circuit's action as a mapping of digit tuples."""
    table = permutation_index_table(circuit)
    sources = digit_matrix(circuit.dim, circuit.num_wires).tolist()
    images = indices_to_digits(table, circuit.dim, circuit.num_wires).tolist()
    return {tuple(source): tuple(image) for source, image in zip(sources, images)}


def permutation_parity(circuit: QuditCircuit) -> int:
    """Return the sign parity (0 even / 1 odd) of the permutation the circuit
    implements on the full computational basis.

    Used to reproduce the paper's argument that for even ``d`` the k-Toffoli
    (an odd permutation) cannot be built from G-gates (even permutations)
    without an extra wire.
    """
    table = permutation_index_table(circuit).tolist()
    visited = [False] * len(table)
    transposition_count = 0
    for start in range(len(table)):
        if visited[start]:
            continue
        length = 0
        current = start
        while not visited[current]:
            visited[current] = True
            current = table[current]
            length += 1
        transposition_count += length - 1
    return transposition_count % 2


def states_differing_on(
    circuit: QuditCircuit, wires: Iterable[int]
) -> List[Tuple[BasisState, BasisState]]:
    """Return (input, output) pairs where the circuit changed any of ``wires``.

    Handy when debugging control-preservation or borrowed-ancilla violations.
    """
    wires = list(wires)
    table = permutation_index_table(circuit)
    sources = digit_matrix(circuit.dim, circuit.num_wires)
    images = indices_to_digits(table, circuit.dim, circuit.num_wires)
    changed = (sources[:, wires] != images[:, wires]).any(axis=1)
    return [
        (tuple(sources[i].tolist()), tuple(images[i].tolist()))
        for i in np.nonzero(changed)[0]
    ]


def evaluate_spec(
    spec: Callable[[BasisState], BasisState], dim: int, num_wires: int
) -> Dict[BasisState, BasisState]:
    """Tabulate a semantic specification function over the full basis."""
    table = {}
    for state in iterate_basis(dim, num_wires):
        image = tuple(spec(state))
        if len(image) != num_wires:
            raise GateError("specification returned a state of the wrong length")
        table[state] = image
    return table


def index_permutation_to_digit_map(table: Sequence[int], dim: int, num_wires: int) -> Dict[BasisState, BasisState]:
    """Convert a flat-index permutation table into a digit-tuple mapping."""
    sources = indices_to_digits(np.arange(len(table)), dim, num_wires).tolist()
    images = indices_to_digits(np.asarray(table), dim, num_wires).tolist()
    return {tuple(source): tuple(image) for source, image in zip(sources, images)}
