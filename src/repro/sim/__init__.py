"""Simulators and verification helpers for qudit circuits."""

from repro.sim.permutation import (
    apply_to_basis,
    function_table,
    permutation_parity,
    permutation_table,
    states_differing_on,
)
from repro.sim.statevector import Statevector
from repro.sim.unitary import (
    circuit_unitary,
    controlled_unitary_matrix,
    multi_controlled_unitary_matrix,
)
from repro.sim.verify import (
    assert_implements_permutation,
    assert_mct_spec,
    assert_permutation_equals_function,
    assert_unitary_equiv,
    assert_unitary_equiv_with_clean_ancillas,
    assert_wires_preserved,
    mc_shift_spec,
    mct_spec,
)

__all__ = [
    "apply_to_basis",
    "function_table",
    "permutation_parity",
    "permutation_table",
    "states_differing_on",
    "Statevector",
    "circuit_unitary",
    "controlled_unitary_matrix",
    "multi_controlled_unitary_matrix",
    "assert_implements_permutation",
    "assert_mct_spec",
    "assert_permutation_equals_function",
    "assert_unitary_equiv",
    "assert_unitary_equiv_with_clean_ancillas",
    "assert_wires_preserved",
    "mc_shift_spec",
    "mct_spec",
]
