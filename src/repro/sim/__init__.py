"""Simulators and verification helpers for qudit circuits.

The simulation engines live in :mod:`repro.sim.backend` and are selected by
name (``"dense"``, ``"tensor"``, ``"sparse"``, ``"streaming"``, and
``"numba"`` when numba is installed) wherever a ``backend=`` parameter
appears —
:class:`Statevector`, :func:`circuit_unitary` and the ``assert_*`` helpers.
:func:`backend_availability` reports every known engine with a one-line
reason when one could not register.
"""

from repro.sim.backend import (
    DenseBackend,
    SimulationBackend,
    TensorBackend,
    available_backends,
    backend_availability,
    default_backend,
    get_backend,
    register_backend,
    register_unavailable_backend,
    set_default_backend,
    unregister_backend,
)
from repro.sim.streaming import (
    DEFAULT_MEMORY_BUDGET,
    StreamingBackend,
    parse_memory_budget,
)
from repro.sim.sparse import (
    MATERIALIZE_LIMIT,
    SparseBackend,
    SparseState,
)
from repro.sim import jit as _jit  # registers the numba backend when importable
from repro.sim.jit import NUMBA_AVAILABLE, NUMBA_REASON
from repro.sim.permutation import (
    apply_to_basis,
    function_table,
    permutation_index_table,
    permutation_parity,
    permutation_table,
    states_differing_on,
)
from repro.sim.batch import BatchedStatevector, apply_to_basis_indices
from repro.sim.statevector import Statevector
from repro.sim.unitary import (
    circuit_unitary,
    controlled_unitary_matrix,
    multi_controlled_unitary_matrix,
)
from repro.sim.verify import (
    assert_implements_permutation,
    assert_mct_spec,
    assert_permutation_equals_function,
    assert_unitary_equiv,
    assert_unitary_equiv_with_clean_ancillas,
    assert_wires_preserved,
    mc_shift_spec,
    mct_spec,
    sample_basis_states,
)

__all__ = [
    "DenseBackend",
    "SimulationBackend",
    "SparseBackend",
    "SparseState",
    "StreamingBackend",
    "TensorBackend",
    "DEFAULT_MEMORY_BUDGET",
    "MATERIALIZE_LIMIT",
    "NUMBA_AVAILABLE",
    "NUMBA_REASON",
    "available_backends",
    "backend_availability",
    "default_backend",
    "get_backend",
    "parse_memory_budget",
    "register_backend",
    "register_unavailable_backend",
    "set_default_backend",
    "unregister_backend",
    "apply_to_basis",
    "function_table",
    "permutation_index_table",
    "permutation_parity",
    "permutation_table",
    "states_differing_on",
    "BatchedStatevector",
    "apply_to_basis_indices",
    "Statevector",
    "circuit_unitary",
    "controlled_unitary_matrix",
    "multi_controlled_unitary_matrix",
    "assert_implements_permutation",
    "assert_mct_spec",
    "assert_permutation_equals_function",
    "assert_unitary_equiv",
    "assert_unitary_equiv_with_clean_ancillas",
    "assert_wires_preserved",
    "mc_shift_spec",
    "mct_spec",
    "sample_basis_states",
]
