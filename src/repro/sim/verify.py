"""Verification helpers (thin wrappers over :mod:`repro.verify`).

Every synthesis routine in the library is checked against a *semantic
specification* rather than against a reference circuit:

* :func:`assert_implements_permutation` — exhaustive basis-state check that
  the circuit realises a given classical map (used for k-Toffoli, P_k,
  reversible functions, two-controlled gadgets);
* :func:`assert_mct_spec` — convenience wrapper building the multi-controlled
  ``Xij`` specification used throughout Section III;
* :func:`assert_wires_preserved` — checks that designated wires (controls,
  borrowed ancillas) are returned unchanged for every basis input, which is
  part of the paper's correctness statements;
* :func:`assert_unitary_equiv` — dense matrix comparison (optionally up to a
  global phase) for the unitary-level constructions;
* sampled variants of the above for systems too large to enumerate.

Since the tiered-verifier refactor each helper routes through
:class:`repro.verify.TieredVerifier`: the legacy keyword arguments
(``max_states`` / ``samples`` / ``seed``) are folded into a
:class:`repro.verify.VerificationBudget` reproducing the historical
behavior exactly, and each helper *returns* the
:class:`repro.verify.VerificationReport` (tier decided, states checked,
replay recipe) after raising on failure.  Pass ``budget=`` — a budget or a
preset name (``"smoke"``/``"standard"``/``"audit"``) — to override the cost
dial instead; an explicit budget takes precedence over the legacy keywords.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.qudit.circuit import QuditCircuit
from repro.sim.backend import BackendLike
from repro.verify import (
    UNBOUNDED,
    TieredVerifier,
    VerificationBudget,
    VerificationReport,
    checks,
    resolve_budget,
)
from repro.verify.checks import (
    BasisState,
    Spec,
    mc_shift_spec,
    mct_spec,
    sample_basis_states,
)

#: Systems with at most this many basis states are verified exhaustively.
EXHAUSTIVE_LIMIT = 200_000

#: Backward-compatible alias for the batched sample-propagation kernel.
_propagate_samples = checks.propagate_samples

BudgetLike = Optional[object]  # VerificationBudget | preset name | None


def assert_implements_permutation(
    circuit: QuditCircuit,
    spec: Spec,
    *,
    max_states: int = EXHAUSTIVE_LIMIT,
    samples: int = 2000,
    seed: int = 7,
    clean_wires: Sequence[int] = (),
    budget: BudgetLike = None,
) -> VerificationReport:
    """Check that ``circuit`` maps every basis state exactly as ``spec`` does.

    If the basis is larger than ``max_states`` the check falls back to
    ``samples`` random basis states (still exact per state).

    ``clean_wires`` lists wires that the circuit assumes start in ``|0⟩``
    (clean or burnable ancillas); basis states with other values on those
    wires are outside the circuit's contract and are skipped.
    """
    if budget is None:
        budget = VerificationBudget(max_basis_states=max_states, samples=samples, seed=seed)
    report = TieredVerifier(resolve_budget(budget)).verify_permutation(
        circuit, spec, clean_wires=clean_wires
    )
    return report.raise_if_failed()


def assert_wires_preserved(
    circuit: QuditCircuit,
    wires: Sequence[int],
    *,
    max_states: int = EXHAUSTIVE_LIMIT,
    samples: int = 2000,
    seed: int = 11,
    budget: BudgetLike = None,
) -> VerificationReport:
    """Check that the circuit restores ``wires`` for every basis input.

    This is the borrowed-ancilla / control-preservation invariant.
    """
    if budget is None:
        budget = VerificationBudget(max_basis_states=max_states, samples=samples, seed=seed)
    report = TieredVerifier(resolve_budget(budget)).verify_wires_preserved(circuit, wires)
    return report.raise_if_failed()


def assert_mct_spec(
    circuit: QuditCircuit,
    controls: Sequence[int],
    target: int,
    *,
    control_values: Optional[Sequence[int]] = None,
    swap: Tuple[int, int] = (0, 1),
    max_states: int = EXHAUSTIVE_LIMIT,
    samples: int = 2000,
    clean_wires: Sequence[int] = (),
    budget: BudgetLike = None,
) -> VerificationReport:
    """Exhaustively check that ``circuit`` is the multi-controlled ``Xij``
    on the given wires and acts as the identity on every other wire.

    ``clean_wires`` restricts the check to inputs where those wires are
    ``|0⟩`` (the contract of clean ancillas)."""
    spec = mct_spec(controls, target, circuit.dim, control_values=control_values, swap=swap)
    return assert_implements_permutation(
        circuit,
        spec,
        max_states=max_states,
        samples=samples,
        clean_wires=clean_wires,
        budget=budget,
    )


def assert_unitary_equiv(
    circuit: QuditCircuit,
    expected: np.ndarray,
    *,
    atol: float = 1e-8,
    up_to_global_phase: bool = False,
    backend: BackendLike = None,
    budget: BudgetLike = None,
) -> VerificationReport:
    """Check that the circuit's unitary equals ``expected`` (dense compare).

    ``backend`` selects the simulation engine used to build the circuit's
    unitary (``None`` uses the process default).
    """
    if budget is None:
        budget = VerificationBudget(max_dense_dim=UNBOUNDED)
    report = TieredVerifier(resolve_budget(budget)).verify_unitary(
        circuit,
        expected=np.asarray(expected),
        up_to_global_phase=up_to_global_phase,
        atol=atol,
        backend=backend,
    )
    return report.raise_if_failed()


def assert_unitary_columns_equiv(
    circuit: QuditCircuit,
    expected_column: Callable[[int], np.ndarray],
    *,
    samples: int = 8,
    required_columns: Sequence[int] = (),
    seed: int = 13,
    atol: float = 1e-8,
    up_to_global_phase: bool = False,
    backend: BackendLike = None,
    budget: BudgetLike = None,
) -> VerificationReport:
    """Sampled-column unitary check for bases too large to build a matrix.

    See :func:`repro.verify.checks.unitary_columns` for the cost model and
    sampling strategy (columns are drawn one digit per wire, so the check
    scales past ``int64`` register sizes up to the memory wall of one
    statevector batch).
    """
    if budget is None:
        budget = VerificationBudget(
            sampled_columns=max(int(samples), 1),
            seed=seed,
            max_column_basis=UNBOUNDED,
            allow_dense=False,
        )
    report = TieredVerifier(resolve_budget(budget)).verify_unitary(
        circuit,
        expected_column=expected_column,
        required_columns=required_columns,
        up_to_global_phase=up_to_global_phase,
        atol=atol,
        backend=backend,
    )
    return report.raise_if_failed()


def assert_unitary_equiv_with_clean_ancillas(
    circuit: QuditCircuit,
    expected: np.ndarray,
    data_wires: Sequence[int],
    clean_wires: Sequence[int],
    *,
    atol: float = 1e-8,
    backend: BackendLike = None,
    budget: BudgetLike = None,
) -> VerificationReport:
    """Check a circuit that uses clean ancillas against a data-wire unitary.

    The circuit is only required to implement ``expected`` on the subspace
    where every clean ancilla starts in ``|0⟩`` and to return the ancillas to
    ``|0⟩`` (i.e. not leak amplitude outside that subspace).  ``expected``
    acts on the data wires only.
    """
    if budget is None:
        budget = VerificationBudget(max_dense_dim=UNBOUNDED)
    report = TieredVerifier(resolve_budget(budget)).verify_unitary_clean_ancillas(
        circuit,
        np.asarray(expected),
        data_wires,
        clean_wires,
        atol=atol,
        backend=backend,
    )
    return report.raise_if_failed()


def assert_permutation_equals_function(
    circuit: QuditCircuit,
    function: Callable[[BasisState], Sequence[int]],
    wires: Sequence[int],
    *,
    max_states: int = EXHAUSTIVE_LIMIT,
    samples: int = 2000,
    clean_wires: Sequence[int] = (),
    budget: BudgetLike = None,
) -> VerificationReport:
    """Check that the circuit implements ``function`` on a subset of wires and
    the identity elsewhere.

    ``function`` receives and returns digit tuples of length ``len(wires)``.
    Used for reversible-function synthesis (Theorem IV.2), where the function
    acts on the ``n`` data wires and any extra wire is a borrowed ancilla.
    """
    from repro.exceptions import VerificationError

    wires = tuple(wires)

    def spec(state: BasisState) -> BasisState:
        output = list(state)
        image = tuple(function(tuple(state[w] for w in wires)))
        if len(image) != len(wires):
            raise VerificationError("reference function returned wrong arity")
        for wire, digit in zip(wires, image):
            output[wire] = digit
        return tuple(output)

    return assert_implements_permutation(
        circuit,
        spec,
        max_states=max_states,
        samples=samples,
        clean_wires=clean_wires,
        budget=budget,
    )
