"""Verification helpers.

Every synthesis routine in the library is checked against a *semantic
specification* rather than against a reference circuit:

* :func:`assert_implements_permutation` — exhaustive basis-state check that
  the circuit realises a given classical map (used for k-Toffoli, P_k,
  reversible functions, two-controlled gadgets);
* :func:`assert_mct_spec` — convenience wrapper building the multi-controlled
  ``Xij`` specification used throughout Section III;
* :func:`assert_wires_preserved` — checks that designated wires (controls,
  borrowed ancillas) are returned unchanged for every basis input, which is
  part of the paper's correctness statements;
* :func:`assert_unitary_equiv` — dense matrix comparison (optionally up to a
  global phase) for the unitary-level constructions;
* sampled variants of the above for systems too large to enumerate.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import VerificationError
from repro.qudit.circuit import QuditCircuit
from repro.sim.backend import BackendLike
from repro.sim.permutation import (
    permutation_index_table,
    states_differing_on,
)
from repro.sim.unitary import circuit_unitary
from repro.utils.indexing import digit_matrix, indices_to_digits

BasisState = Tuple[int, ...]
Spec = Callable[[BasisState], Sequence[int]]

#: Systems with at most this many basis states are verified exhaustively.
EXHAUSTIVE_LIMIT = 200_000


def sample_basis_states(
    dim: int,
    num_wires: int,
    samples: int,
    seed: int,
    *,
    clean_wires: Sequence[int] = (),
) -> List[BasisState]:
    """Deterministic sample of basis states, shared by every sampled check.

    One seeded :class:`numpy.random.Generator` drives the sampled fallbacks
    of the ``assert_*`` helpers, the test-suite samplers in ``conftest`` and
    the fuzz generators, so a failure reported with its seed reproduces the
    exact state sequence anywhere.  Wires listed in ``clean_wires`` are
    pinned to ``0`` (the clean-ancilla contract).
    """
    rng = np.random.default_rng(seed)
    states = rng.integers(0, dim, size=(samples, num_wires))
    clean = [w for w in clean_wires]
    if clean:
        states[:, clean] = 0
    return [tuple(int(digit) for digit in row) for row in states]


def _propagate_samples(
    circuit: QuditCircuit, states: Sequence[BasisState]
) -> List[List[int]]:
    """Images of sampled basis states, all propagated in ONE batched pass.

    Encodes the digit rows to flat indices, pushes them through
    :meth:`repro.ir.table.GateTable.apply_to_indices` (per-row stride
    arithmetic on just the batch — no ``d^n`` table), and decodes back.
    Row order is preserved, so callers can recover the failing sample index.
    """
    if not states:
        return []
    strides = np.array(
        [circuit.dim**e for e in range(circuit.num_wires - 1, -1, -1)], dtype=np.int64
    )
    indices = np.asarray(states, dtype=np.int64) @ strides
    images = circuit.to_table().apply_to_indices(indices)
    return indices_to_digits(images, circuit.dim, circuit.num_wires).tolist()


def assert_implements_permutation(
    circuit: QuditCircuit,
    spec: Spec,
    *,
    max_states: int = EXHAUSTIVE_LIMIT,
    samples: int = 2000,
    seed: int = 7,
    clean_wires: Sequence[int] = (),
) -> None:
    """Check that ``circuit`` maps every basis state exactly as ``spec`` does.

    If the basis is larger than ``max_states`` the check falls back to
    ``samples`` random basis states (still exact per state).

    ``clean_wires`` lists wires that the circuit assumes start in ``|0⟩``
    (clean or burnable ancillas); basis states with other values on those
    wires are outside the circuit's contract and are skipped.
    """
    clean = tuple(clean_wires)
    total = circuit.dim**circuit.num_wires
    if total <= max_states:
        # Exhaustive check: compute the circuit's whole-basis action once with
        # the vectorized gather tables, then compare state by state against
        # the (Python-level) specification callback.
        table = permutation_index_table(circuit)
        sources = digit_matrix(circuit.dim, circuit.num_wires).tolist()
        images = indices_to_digits(table, circuit.dim, circuit.num_wires).tolist()
        for source, image in zip(sources, images):
            state = tuple(source)
            if any(state[w] != 0 for w in clean):
                continue
            expected = tuple(spec(state))
            actual = tuple(image)
            if actual != expected:
                raise VerificationError(
                    f"circuit {circuit.name!r} maps {state} to {actual}, expected {expected}"
                )
        return
    states = sample_basis_states(
        circuit.dim, circuit.num_wires, samples, seed, clean_wires=clean
    )
    # All samples propagate through ONE batched index pass (O(rows · samples)
    # stride arithmetic, no d^n table and no per-state Python loop), so the
    # sampled branch works on registers far beyond any statevector; only the
    # spec callback runs per state.
    images = _propagate_samples(circuit, states)
    for row, (state, image) in enumerate(zip(states, images)):
        expected = tuple(spec(state))
        actual = tuple(image)
        if actual != expected:
            recipe = f"sample_basis_states({circuit.dim}, {circuit.num_wires}, {samples}, {seed}"
            recipe += f", clean_wires={clean})" if clean else ")"
            raise VerificationError(
                f"circuit {circuit.name!r} maps {state} to {actual}, expected {expected} "
                f"(sampled check, seed={seed}, failing row {row}; rerun with {recipe}[{row}])"
            )


def assert_wires_preserved(
    circuit: QuditCircuit,
    wires: Sequence[int],
    *,
    max_states: int = EXHAUSTIVE_LIMIT,
    samples: int = 2000,
    seed: int = 11,
) -> None:
    """Check that the circuit restores ``wires`` for every basis input.

    This is the borrowed-ancilla / control-preservation invariant.
    """
    wires = tuple(wires)
    total = circuit.dim**circuit.num_wires
    if total <= max_states:
        # Fully vectorized: states_differing_on compares the watched wires of
        # every basis state with its image under the composed gather table.
        offenders = states_differing_on(circuit, wires)
        if offenders:
            state, output = offenders[0]
            mismatch = [w for w in wires if output[w] != state[w]]
            raise VerificationError(
                f"circuit {circuit.name!r} modified wires {mismatch} on input {state}: {output}"
            )
    else:
        states = sample_basis_states(circuit.dim, circuit.num_wires, samples, seed)
        # Batched like assert_implements_permutation: one index pass for all
        # samples, then a vectorized compare of just the watched wires.
        images = np.asarray(_propagate_samples(circuit, states))
        sources = np.asarray(states)
        watched = list(wires)
        diff = images[:, watched] != sources[:, watched]
        bad_rows = np.nonzero(diff.any(axis=1))[0]
        if bad_rows.size:
            row = int(bad_rows[0])
            state = tuple(int(v) for v in sources[row])
            output = tuple(int(v) for v in images[row])
            mismatch = [w for w in wires if output[w] != state[w]]
            raise VerificationError(
                f"circuit {circuit.name!r} modified wires {mismatch} on input "
                f"{state}: {output} (sampled check, seed={seed}, failing row "
                f"{row}; rerun with sample_basis_states({circuit.dim}, "
                f"{circuit.num_wires}, {samples}, {seed})[{row}])"
            )


def mct_spec(
    controls: Sequence[int],
    target: int,
    dim: int,
    *,
    control_values: Optional[Sequence[int]] = None,
    swap: Tuple[int, int] = (0, 1),
) -> Spec:
    """Return the specification of a multi-controlled ``X_{ij}`` gate.

    The returned function maps a basis state to the state with the target
    digit swapped between ``swap[0]`` and ``swap[1]`` exactly when every
    control digit matches its control value (default all zeros, the paper's
    ``|0^k⟩-Xij``); every other wire, and in particular any ancilla wire, is
    left untouched.
    """
    values = tuple(control_values) if control_values is not None else (0,) * len(controls)
    if len(values) != len(controls):
        raise VerificationError("control_values length must match the number of controls")
    i, j = swap

    def spec(state: BasisState) -> BasisState:
        output = list(state)
        if all(state[c] == v for c, v in zip(controls, values)):
            if output[target] == i:
                output[target] = j
            elif output[target] == j:
                output[target] = i
        return tuple(output)

    return spec


def mc_shift_spec(
    controls: Sequence[int],
    target: int,
    dim: int,
    shift: int = 1,
    *,
    control_values: Optional[Sequence[int]] = None,
) -> Spec:
    """Specification of the multi-controlled ``X+shift`` gate (``|0^k⟩-X+y``)."""
    values = tuple(control_values) if control_values is not None else (0,) * len(controls)

    def spec(state: BasisState) -> BasisState:
        output = list(state)
        if all(state[c] == v for c, v in zip(controls, values)):
            output[target] = (output[target] + shift) % dim
        return tuple(output)

    return spec


def assert_mct_spec(
    circuit: QuditCircuit,
    controls: Sequence[int],
    target: int,
    *,
    control_values: Optional[Sequence[int]] = None,
    swap: Tuple[int, int] = (0, 1),
    max_states: int = EXHAUSTIVE_LIMIT,
    samples: int = 2000,
    clean_wires: Sequence[int] = (),
) -> None:
    """Exhaustively check that ``circuit`` is the multi-controlled ``Xij``
    on the given wires and acts as the identity on every other wire.

    ``clean_wires`` restricts the check to inputs where those wires are
    ``|0⟩`` (the contract of clean ancillas)."""
    spec = mct_spec(controls, target, circuit.dim, control_values=control_values, swap=swap)
    assert_implements_permutation(
        circuit, spec, max_states=max_states, samples=samples, clean_wires=clean_wires
    )


def assert_unitary_equiv(
    circuit: QuditCircuit,
    expected: np.ndarray,
    *,
    atol: float = 1e-8,
    up_to_global_phase: bool = False,
    backend: BackendLike = None,
) -> None:
    """Check that the circuit's unitary equals ``expected`` (dense compare).

    ``backend`` selects the simulation engine used to build the circuit's
    unitary (``None`` uses the process default).
    """
    actual = circuit_unitary(circuit, backend=backend)
    if actual.shape != expected.shape:
        raise VerificationError(
            f"unitary shape mismatch: circuit {actual.shape}, expected {expected.shape}"
        )
    if up_to_global_phase:
        # Align phases using the largest-magnitude entry of the expected matrix.
        index = np.unravel_index(np.argmax(np.abs(expected)), expected.shape)
        if abs(actual[index]) < atol:
            raise VerificationError("cannot align global phase: mismatched support")
        phase = expected[index] / actual[index]
        actual = actual * phase
    if not np.allclose(actual, expected, atol=atol):
        deviation = float(np.max(np.abs(actual - expected)))
        raise VerificationError(
            f"circuit {circuit.name!r} deviates from the expected unitary by {deviation:.3e}"
        )


def assert_unitary_columns_equiv(
    circuit: QuditCircuit,
    expected_column: Callable[[int], np.ndarray],
    *,
    samples: int = 8,
    required_columns: Sequence[int] = (),
    seed: int = 13,
    atol: float = 1e-8,
    up_to_global_phase: bool = False,
    backend: BackendLike = None,
) -> None:
    """Sampled-column unitary check for bases too large to build a matrix.

    :func:`assert_unitary_equiv` materialises two ``basis²`` matrices, which
    caps it near basis 1024.  This variant evolves ``samples`` distinct basis
    columns as ONE ``(d^n, s)`` batch through the simulation engine — about
    the cost of a few statevector evolutions, no matrix anywhere — and
    compares each against ``expected_column(flat_index)``, which callers can
    usually compute in closed form (e.g. a multi-controlled unitary is the
    identity column everywhere outside the fired block).
    ``required_columns`` pins columns that must always be checked (the fired
    block), since a uniform draw over a huge basis would almost never hit
    them.  With ``up_to_global_phase`` one phase is aligned on the first
    column and must fit every other column — per-column phases would accept
    circuits that differ by a non-global diagonal.
    """
    from repro.sim.backend import get_backend

    size = circuit.dim**circuit.num_wires
    rng = np.random.default_rng(seed)
    drawn = rng.integers(0, size, size=max(int(samples), 1))
    pinned = np.asarray(list(required_columns), dtype=np.int64)
    columns = np.unique(np.concatenate([pinned, drawn.astype(np.int64)]))
    if columns.size and (columns.min() < 0 or columns.max() >= size):
        raise VerificationError(f"required column out of range for basis {size}")
    data = np.zeros((size, columns.size), dtype=complex)
    data[columns, np.arange(columns.size)] = 1.0
    evolved = np.asarray(get_backend(backend).apply_circuit_batch(data, circuit))
    phase = None
    for b, col in enumerate(columns.tolist()):
        expected = np.asarray(expected_column(int(col)), dtype=complex).reshape(-1)
        if expected.shape != (size,):
            raise VerificationError(
                f"expected_column({col}) returned shape {expected.shape}, want ({size},)"
            )
        actual = evolved[:, b]
        if up_to_global_phase:
            index = int(np.argmax(np.abs(expected)))
            if abs(actual[index]) < atol:
                raise VerificationError(
                    f"cannot align global phase on column {col}: mismatched support"
                )
            column_phase = expected[index] / actual[index]
            if phase is None:
                phase = column_phase
            elif abs(column_phase - phase) > 10 * atol:
                raise VerificationError(
                    f"circuit {circuit.name!r} phase on column {col} disagrees with "
                    f"column {int(columns[0])} — not a global phase "
                    f"(sampled-column check, seed={seed})"
                )
            actual = actual * phase
        if not np.allclose(actual, expected, atol=atol):
            deviation = float(np.max(np.abs(actual - expected)))
            raise VerificationError(
                f"circuit {circuit.name!r} column {col} deviates from the expected "
                f"unitary column by {deviation:.3e} (sampled-column check, "
                f"seed={seed}, {columns.size} columns)"
            )


def assert_unitary_equiv_with_clean_ancillas(
    circuit: QuditCircuit,
    expected: np.ndarray,
    data_wires: Sequence[int],
    clean_wires: Sequence[int],
    *,
    atol: float = 1e-8,
    backend: BackendLike = None,
) -> None:
    """Check a circuit that uses clean ancillas against a data-wire unitary.

    The circuit is only required to implement ``expected`` on the subspace
    where every clean ancilla starts in ``|0⟩`` and to return the ancillas to
    ``|0⟩`` (i.e. not leak amplitude outside that subspace).  ``expected``
    acts on the data wires only.
    """
    data_wires = tuple(data_wires)
    clean_wires = tuple(clean_wires)
    full = circuit_unitary(circuit, backend=backend)
    dim = circuit.dim
    size_data = dim ** len(data_wires)
    if expected.shape != (size_data, size_data):
        raise VerificationError("expected matrix shape does not match the data wires")

    block = np.zeros((size_data, size_data), dtype=complex)
    leakage = 0.0
    for col_data in range(size_data):
        col_digits = _merge_digits(circuit, data_wires, clean_wires, col_data)
        col_index = sum(
            digit * dim ** (circuit.num_wires - 1 - wire) for wire, digit in col_digits.items()
        )
        column = full[:, col_index]
        for row_index, amplitude in enumerate(column):
            if abs(amplitude) < 1e-14:
                continue
            digits = list(_index_digits(row_index, dim, circuit.num_wires))
            if any(digits[w] != 0 for w in clean_wires):
                leakage = max(leakage, abs(amplitude))
                continue
            row_data = 0
            for wire in data_wires:
                row_data = row_data * dim + digits[wire]
            block[row_data, col_data] += amplitude
    if leakage > atol:
        raise VerificationError(
            f"circuit {circuit.name!r} leaks amplitude {leakage:.3e} into non-zero ancilla states"
        )
    if not np.allclose(block, expected, atol=atol):
        deviation = float(np.max(np.abs(block - expected)))
        raise VerificationError(
            f"circuit {circuit.name!r} deviates from the expected unitary by {deviation:.3e} "
            "on the clean-ancilla subspace"
        )


def _merge_digits(circuit, data_wires, clean_wires, data_index):
    dim = circuit.dim
    digits = {wire: 0 for wire in range(circuit.num_wires)}
    remaining = data_index
    for wire in reversed(data_wires):
        digits[wire] = remaining % dim
        remaining //= dim
    for wire in clean_wires:
        digits[wire] = 0
    return digits


def _index_digits(index, dim, num_wires):
    digits = [0] * num_wires
    for position in range(num_wires - 1, -1, -1):
        digits[position] = index % dim
        index //= dim
    return digits


def assert_permutation_equals_function(
    circuit: QuditCircuit,
    function: Callable[[BasisState], Sequence[int]],
    wires: Sequence[int],
    *,
    max_states: int = EXHAUSTIVE_LIMIT,
    samples: int = 2000,
    clean_wires: Sequence[int] = (),
) -> None:
    """Check that the circuit implements ``function`` on a subset of wires and
    the identity elsewhere.

    ``function`` receives and returns digit tuples of length ``len(wires)``.
    Used for reversible-function synthesis (Theorem IV.2), where the function
    acts on the ``n`` data wires and any extra wire is a borrowed ancilla.
    """
    wires = tuple(wires)

    def spec(state: BasisState) -> BasisState:
        output = list(state)
        image = tuple(function(tuple(state[w] for w in wires)))
        if len(image) != len(wires):
            raise VerificationError("reference function returned wrong arity")
        for wire, digit in zip(wires, image):
            output[wire] = digit
        return tuple(output)

    assert_implements_permutation(
        circuit, spec, max_states=max_states, samples=samples, clean_wires=clean_wires
    )
