"""A small stdlib HTTP client for the serve daemon.

Used by the test suite and the CI smoke script; also a reasonable example
of talking to the daemon from Python.  Supports both transports:

>>> client = ServeClient("http://127.0.0.1:8752")     # TCP
>>> client = ServeClient("unix:/tmp/repro-serve.sock")  # unix socket
>>> status, payload = client.submit({"requests": [
...     {"kind": "estimate", "strategy": "mct", "d": 3, "k": 100}]})

Every call returns ``(status_code, decoded_json)``; transport failures
raise :class:`~repro.exceptions.ServeError`.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Dict, Optional, Tuple

from repro.exceptions import ServeError


class _UnixHTTPConnection(http.client.HTTPConnection):
    """``http.client`` over an ``AF_UNIX`` socket."""

    def __init__(self, path: str, timeout: float):
        super().__init__("localhost", timeout=timeout)
        self._path = path

    def connect(self) -> None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        sock.connect(self._path)
        self.sock = sock


class ServeClient:
    """Blocking JSON client for one daemon address."""

    def __init__(self, address: str, timeout: float = 60.0):
        self.timeout = float(timeout)
        address = address.strip()
        if address.startswith("unix:"):
            self._unix_path: Optional[str] = address[len("unix:"):]
            self._host, self._port = "localhost", 0
        else:
            self._unix_path = None
            if address.startswith("http://"):
                address = address[len("http://"):]
            address = address.rstrip("/")
            host, _, port = address.rpartition(":")
            if not host or not port.isdigit():
                raise ServeError(
                    f"cannot parse daemon address {address!r} "
                    '(expected "http://host:port" or "unix:/path.sock")'
                )
            self._host, self._port = host, int(port)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def request(
        self,
        method: str,
        path: str,
        payload: Optional[object] = None,
    ) -> Tuple[int, Dict[str, object]]:
        if self._unix_path is not None:
            connection: http.client.HTTPConnection = _UnixHTTPConnection(
                self._unix_path, self.timeout
            )
        else:
            connection = http.client.HTTPConnection(
                self._host, self._port, timeout=self.timeout
            )
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        try:
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            text = response.read().decode("utf-8")
            status = response.status
        except (OSError, http.client.HTTPException) as error:
            raise ServeError(f"daemon request {method} {path} failed: {error}") from error
        finally:
            connection.close()
        try:
            decoded = json.loads(text) if text else {}
        except ValueError as error:
            raise ServeError(
                f"daemon returned non-JSON for {method} {path}: {error}"
            ) from error
        return status, decoded

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def submit(self, spec: object) -> Tuple[int, Dict[str, object]]:
        """POST a workload spec (dict or bare request list)."""
        return self.request("POST", "/v1/workload", spec)

    def metrics(self) -> Tuple[int, Dict[str, object]]:
        return self.request("GET", "/metrics")

    def healthz(self) -> Tuple[int, Dict[str, object]]:
        return self.request("GET", "/healthz")

    def wait_ready(self, deadline: float = 10.0) -> Dict[str, object]:
        """Poll ``/healthz`` until the daemon answers (startup helper)."""
        end = time.monotonic() + deadline
        last_error: Optional[ServeError] = None
        while time.monotonic() < end:
            try:
                status, payload = self.healthz()
            except ServeError as error:
                last_error = error
                time.sleep(0.05)
                continue
            if status == 200:
                return payload
            time.sleep(0.05)
        raise ServeError(
            f"daemon did not become ready within {deadline:g}s: {last_error}"
        )
