"""Live metrics for the serve daemon.

Everything the ``/metrics`` endpoint reports is accumulated here: request
counters (accepted / completed / failed / rejected-by-reason), queue and
in-flight gauges, per-kind latency histograms, queue-wait latency, and the
compile-cache counters folded in from the workers' per-request
:class:`~repro.exec.cache.CacheStats` deltas — the *real* counters (see
``repro.exec.workload.execute_with_stats``), so daemon hit rates match
what :attr:`CompileCache.stats` would say, eviction counts included.

Histograms are Prometheus-shaped: cumulative ``le`` buckets over seconds,
plus ``count`` and ``sum``.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.exec.workload import merge_cache_stats, zero_cache_stats

#: Upper bounds (seconds) of the latency buckets; +Inf is implicit.
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Reasons a submit can be rejected (mirrors the admission errors).
REJECT_REASONS = ("queue_full", "draining", "oversize", "bad_request")


class LatencyHistogram:
    """Fixed-bucket latency histogram (seconds)."""

    __slots__ = ("bounds", "counts", "count", "sum_seconds")

    def __init__(self, bounds=DEFAULT_BUCKETS):
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)  # last slot = +Inf
        self.count = 0
        self.sum_seconds = 0.0

    def observe(self, seconds: float) -> None:
        seconds = max(0.0, float(seconds))
        self.count += 1
        self.sum_seconds += seconds
        for slot, bound in enumerate(self.bounds):
            if seconds <= bound:
                self.counts[slot] += 1
                return
        self.counts[-1] += 1

    def as_dict(self) -> Dict[str, object]:
        buckets: Dict[str, int] = {}
        running = 0
        for bound, hits in zip(self.bounds, self.counts):
            running += hits
            buckets[f"{bound:g}"] = running
        buckets["+Inf"] = running + self.counts[-1]
        return {
            "count": self.count,
            "sum_seconds": round(self.sum_seconds, 6),
            "buckets": buckets,
        }


class ServeMetrics:
    """One daemon's counters; snapshotted by ``/metrics`` and ``/healthz``."""

    def __init__(self):
        self.started_at = time.time()
        self._started_monotonic = time.monotonic()
        self.accepted = 0
        self.completed = 0
        self.failed = 0
        self.rejected: Dict[str, int] = {reason: 0 for reason in REJECT_REASONS}
        self.in_flight = 0
        self.queue_wait = LatencyHistogram()
        self.request_latency: Dict[str, LatencyHistogram] = {}
        self.cache_stats = zero_cache_stats()
        #: Startup warming provenance: disk scan + warmup-spec replay.
        self.warm: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_accepted(self, count: int) -> None:
        self.accepted += int(count)

    def record_rejected(self, reason: str, count: int = 1) -> None:
        self.rejected[reason] = self.rejected.get(reason, 0) + int(count)

    def record_queue_wait(self, seconds: float) -> None:
        self.queue_wait.observe(seconds)

    def record_request(self, kind: str, seconds: float, ok: bool) -> None:
        histogram = self.request_latency.get(kind)
        if histogram is None:
            histogram = self.request_latency[kind] = LatencyHistogram()
        histogram.observe(seconds)
        if ok:
            self.completed += 1
        else:
            self.failed += 1

    def record_cache_delta(self, delta: Optional[Dict[str, int]]) -> None:
        if delta:
            merge_cache_stats(self.cache_stats, delta)

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------
    @property
    def cache_hit_rate(self) -> Optional[float]:
        hits = self.cache_stats["memo_hits"] + self.cache_stats["disk_hits"]
        lookups = hits + self.cache_stats["misses"]
        if lookups == 0:
            return None
        return hits / lookups

    def snapshot(
        self,
        *,
        queue_depth: int,
        draining: bool,
        jobs: int,
    ) -> Dict[str, object]:
        hit_rate = self.cache_hit_rate
        return {
            "uptime_seconds": round(time.monotonic() - self._started_monotonic, 3),
            "draining": bool(draining),
            "jobs": int(jobs),
            "queue_depth": int(queue_depth),
            "in_flight": int(self.in_flight),
            "requests": {
                "accepted": self.accepted,
                "completed": self.completed,
                "failed": self.failed,
                "rejected": dict(self.rejected),
            },
            "queue_wait": self.queue_wait.as_dict(),
            "latency": {
                kind: histogram.as_dict()
                for kind, histogram in sorted(self.request_latency.items())
            },
            "cache": {
                **dict(self.cache_stats),
                "hit_rate": None if hit_rate is None else round(hit_rate, 6),
            },
            "warm": dict(self.warm),
        }
