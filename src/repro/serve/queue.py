"""Bounded priority queue for the serve daemon.

One :class:`Job` per workload request.  Ordering is ``(priority, arrival)``:
lower priority values run first, FIFO within a class, so cheap
verify/estimate traffic overtakes heavy simulates that arrived earlier but
can never starve anything already running.  The queue is *bounded*:
``put_nowait`` past ``max_queued`` raises :class:`QueueFullError` instead
of blocking — admission control turns that into a 429 so callers back off
rather than pile up inside the daemon.

Everything here runs on one asyncio event loop; the synchronous mutators
are safe because nothing awaits between check and update.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.exceptions import ServeError

#: Priority classes (lower runs first).
PRIORITY_HIGH = 0
PRIORITY_NORMAL = 1
PRIORITY_LOW = 2
PRIORITY_NAMES: Dict[int, str] = {
    PRIORITY_HIGH: "high",
    PRIORITY_NORMAL: "normal",
    PRIORITY_LOW: "low",
}

#: Default admission bound: how many jobs may wait in the queue.
DEFAULT_MAX_QUEUED = 256


class QueueFullError(ServeError):
    """The queue cannot take the submitted requests (back off and retry)."""

    status = 429


class DrainingError(ServeError):
    """The daemon is draining (SIGTERM received) and accepts no new work."""

    status = 503


class OversizeError(ServeError):
    """One submit carried more requests than the admission policy allows."""

    status = 413


@dataclass(eq=False)
class Job:
    """One queued request: its raw dict, workload position, and result future."""

    index: int
    raw: Dict[str, object]
    priority: int
    future: "asyncio.Future"
    #: ``time.monotonic()`` at enqueue, for queue-wait latency metrics.
    enqueued_at: float = field(default=0.0)


class JobQueue:
    """Heap-ordered bounded job queue with async consumers."""

    def __init__(self, max_queued: int = DEFAULT_MAX_QUEUED):
        self.max_queued = int(max_queued)
        self._heap: List[Tuple[int, int, Job]] = []
        self._seq = itertools.count()
        self._nonempty = asyncio.Event()
        self._closed = False

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def depth(self) -> int:
        return len(self._heap)

    @property
    def closed(self) -> bool:
        return self._closed

    def has_room_for(self, count: int) -> bool:
        return len(self._heap) + count <= self.max_queued

    def put_nowait(self, job: Job) -> None:
        if self._closed:
            raise DrainingError("queue is closed (daemon draining)")
        if len(self._heap) >= self.max_queued:
            raise QueueFullError(
                f"queue full: {len(self._heap)}/{self.max_queued} jobs queued"
            )
        job.enqueued_at = time.monotonic()
        heapq.heappush(self._heap, (job.priority, next(self._seq), job))
        self._nonempty.set()

    def put_batch(self, jobs: List[Job]) -> None:
        """All-or-nothing admission of one submit's jobs."""
        if self._closed:
            raise DrainingError("queue is closed (daemon draining)")
        if not self.has_room_for(len(jobs)):
            raise QueueFullError(
                f"queue full: {len(jobs)} requests submitted, "
                f"{self.max_queued - len(self._heap)} slots free "
                f"({len(self._heap)}/{self.max_queued} queued)"
            )
        for job in jobs:
            self.put_nowait(job)

    async def get(self) -> Optional[Job]:
        """Next job by ``(priority, arrival)``; ``None`` once closed *and* empty.

        Queued work submitted before :meth:`close` is still handed out — a
        drain finishes the backlog, it does not discard it.
        """
        while True:
            if self._heap:
                _, _, job = heapq.heappop(self._heap)
                if not self._heap:
                    self._nonempty.clear()
                return job
            if self._closed:
                return None
            self._nonempty.clear()
            await self._nonempty.wait()

    def close(self) -> None:
        """Stop admitting; wake idle consumers so they can exit."""
        self._closed = True
        self._nonempty.set()
