"""The persistent compile/simulate daemon: ``python -m repro serve``.

A stdlib-only JSON-over-HTTP service on a TCP port or unix socket that
accepts :class:`~repro.exec.workload.WorkloadSpec`-shaped submits and runs
them through the existing planner / compile-cache / fork-pool machinery:

* ``POST /v1/workload`` — body ``{"requests": [...]}`` (or a bare list);
  each request may add an integer ``"priority"`` override.  Responds with
  the per-request rows once every row has executed; rejects the *whole*
  submit with 429 (queue full), 413 (oversized batch) or 503 (draining).
* ``GET  /healthz`` — liveness: status, queue depth, in-flight gauge.
* ``GET  /metrics`` — counters, per-kind latency histograms, queue-wait
  histogram and the merged compile-cache statistics (see
  :mod:`repro.serve.metrics`).

Requests are queued by ``(priority, arrival)`` — verify/estimate traffic
overtakes heavy simulates — and executed by a worker pool: the PR-5 fork
pool sharing one :class:`~repro.exec.cache.CompileCache` directory when
``jobs > 1``, an in-process thread otherwise.  Startup warms the cache
(:meth:`CompileCache.warm_scan` plus an optional warmup-spec replay) and
``SIGTERM`` drains gracefully: admission closes, queued and in-flight work
finishes (pending submits still get their responses), then the daemon
exits 0.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import signal
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.bench.formatting import json_safe
from repro.exceptions import ReproError, ServeError, WorkloadError
from repro.exec.cache import CompileCache
from repro.exec.keys import CODE_VERSION
from repro.exec.workload import (
    WorkloadSpec,
    _init_worker,
    _worker_execute,
    execute_with_stats,
    plan_workload,
    zero_cache_stats,
)
from repro.serve.admission import (
    DEFAULT_MAX_BATCH,
    AdmissionController,
    AdmissionPolicy,
    priority_for,
)
from repro.serve.metrics import ServeMetrics
from repro.serve.queue import (
    DEFAULT_MAX_QUEUED,
    DrainingError,
    Job,
    JobQueue,
    OversizeError,
    QueueFullError,
)

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Reject-counter label for each admission error type.
_REJECT_REASON = {
    QueueFullError: "queue_full",
    DrainingError: "draining",
    OversizeError: "oversize",
}


@dataclass
class ServeConfig:
    """Everything ``python -m repro serve`` exposes as flags."""

    host: str = "127.0.0.1"
    port: int = 8752
    #: Serve on this unix socket instead of TCP when set.
    unix_socket: Optional[str] = None
    jobs: int = 1
    cache_dir: Optional[str] = None
    salt: str = CODE_VERSION
    max_queued: int = DEFAULT_MAX_QUEUED
    max_batch: int = DEFAULT_MAX_BATCH
    #: Warmup workload replayed through the pool before serving: a spec
    #: path, a raw dict, or a parsed :class:`WorkloadSpec`.
    warmup: Optional[Union[str, Dict[str, object], WorkloadSpec]] = None
    #: Pre-load the newest on-disk cache entries at startup.
    warm_scan: bool = True
    #: Upper bound on the SIGTERM drain (seconds).
    drain_grace: float = 60.0


class WorkerPool:
    """Executes raw workload requests for the daemon.

    ``jobs > 1`` reuses the batch runner's ``fork`` pool — the same
    ``_init_worker`` / ``_worker_execute`` functions, each worker holding a
    :class:`CompileCache` on the shared directory — so the daemon and
    ``python -m repro batch`` exercise identical execution code.  ``jobs=1``
    (or platforms without ``fork``) runs in-process on a single worker
    thread with one shared cache.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[str] = None,
        salt: str = CODE_VERSION,
    ):
        self.jobs = max(1, int(jobs))
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.salt = salt
        self.mode = "thread"
        self._pool = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._cache: Optional[CompileCache] = None
        if self.jobs > 1:
            if self.cache_dir is None:
                raise ServeError(
                    "serve with jobs > 1 needs a cache directory "
                    "(workers share compiled artifacts through it)"
                )
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-posix platforms
                self.jobs = 1
            else:
                self._pool = context.Pool(
                    processes=self.jobs,
                    initializer=_init_worker,
                    initargs=(self.cache_dir, salt),
                )
                self.mode = "fork"
        if self._pool is None:
            self.jobs = 1
            self._cache = CompileCache(self.cache_dir, salt=salt)
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-serve"
            )

    def warm(self, limit: Optional[int] = None) -> Dict[str, int]:
        """Scan the on-disk store so the first requests start warm.

        Thread mode warms the serving cache's own memo; fork mode scans
        through a parent-side cache, which faults the mmap'd archives into
        the OS page cache that the forked workers share (their per-process
        memos still fill on first use).
        """
        if self.mode == "thread":
            assert self._cache is not None
            return self._cache.warm_scan(limit)
        scratch = CompileCache(self.cache_dir, salt=self.salt)
        return scratch.warm_scan(limit)

    async def execute(self, index: int, raw: Dict[str, object]) -> Dict[str, object]:
        """One request through a worker; returns ``{"row", "cache_stats"}``."""
        loop = asyncio.get_running_loop()
        if self.mode == "fork":
            future: "asyncio.Future" = loop.create_future()

            def _deliver(result):
                loop.call_soon_threadsafe(
                    lambda: future.done() or future.set_result(result)
                )

            def _fail(error):
                loop.call_soon_threadsafe(
                    lambda: future.done() or future.set_exception(error)
                )

            self._pool.apply_async(
                _worker_execute,
                ((int(index), dict(raw)),),
                callback=_deliver,
                error_callback=_fail,
            )
            return await future
        return await loop.run_in_executor(
            self._executor, execute_with_stats, dict(raw), int(index), self._cache
        )

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None


class ServeDaemon:
    """The daemon: queue + admission + worker pool + HTTP front end."""

    def __init__(self, config: Optional[ServeConfig] = None):
        self.config = config or ServeConfig()
        self.queue = JobQueue(self.config.max_queued)
        self.metrics = ServeMetrics()
        self.admission = AdmissionController(
            self.queue,
            AdmissionPolicy(
                max_queued=self.config.max_queued, max_batch=self.config.max_batch
            ),
        )
        self.pool: Optional[WorkerPool] = None
        self.address: Optional[str] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._consumers: List["asyncio.Task"] = []
        self._connections: Set["asyncio.Task"] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> str:
        """Warm the cache, replay the warmup spec, bind, begin serving."""
        config = self.config
        self.pool = WorkerPool(config.jobs, config.cache_dir, config.salt)
        if config.warm_scan and config.cache_dir is not None:
            self.metrics.warm["scan"] = self.pool.warm()
        if config.warmup is not None:
            await self._run_warmup(self._load_warmup(config.warmup))
        self._consumers = [
            asyncio.get_running_loop().create_task(self._consume())
            for _ in range(self.pool.jobs)
        ]
        if config.unix_socket is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_client, path=config.unix_socket
            )
            self.address = f"unix:{config.unix_socket}"
        else:
            self._server = await asyncio.start_server(
                self._handle_client, host=config.host, port=config.port
            )
            host, port = self._server.sockets[0].getsockname()[:2]
            self.address = f"http://{host}:{port}"
        return self.address

    async def drain(self) -> None:
        """Graceful shutdown: finish every queued and in-flight row.

        Admission closes first (submits get 503), the queue is closed so
        consumers exit once the backlog is done, pending submit handlers
        write their responses, and only then do the listener and the pool
        shut down.
        """
        self.admission.begin_drain()
        self.queue.close()
        grace = self.config.drain_grace
        if self._consumers:
            _, pending = await asyncio.wait(self._consumers, timeout=grace)
            for task in pending:  # pragma: no cover - pathological hang
                task.cancel()
        if self._connections:
            await asyncio.wait(self._connections, timeout=grace)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.pool is not None:
            self.pool.close()

    @staticmethod
    def _load_warmup(warmup) -> WorkloadSpec:
        if isinstance(warmup, WorkloadSpec):
            return warmup
        if isinstance(warmup, (dict, list)):
            return WorkloadSpec.from_dict(warmup)
        return WorkloadSpec.from_json(Path(warmup))

    async def _run_warmup(self, spec: WorkloadSpec) -> None:
        """Replay the warmup spec through the pool before accepting traffic.

        Cache deltas fold into the serving counters (keeping ``/metrics``
        equal to the sum of the workers' real :class:`CacheStats`); row
        outcomes are recorded under ``warm.warmup`` only, so request
        latency histograms describe served traffic exclusively.
        """
        results = await asyncio.gather(
            *(
                self.pool.execute(index, request.to_dict())
                for index, request in enumerate(spec.requests)
            )
        )
        ok = 0
        for item in results:
            self.metrics.record_cache_delta(item.get("cache_stats"))
            if item["row"].get("ok"):
                ok += 1
        self.metrics.warm["warmup"] = {"rows": len(results), "ok": ok}

    # ------------------------------------------------------------------
    # Consumers
    # ------------------------------------------------------------------
    async def _consume(self) -> None:
        while True:
            job = await self.queue.get()
            if job is None:  # queue closed and empty: drain complete
                return
            self.metrics.record_queue_wait(time.monotonic() - job.enqueued_at)
            self.metrics.in_flight += 1
            try:
                result = await self.pool.execute(job.index, job.raw)
            except Exception as error:  # pool infrastructure failure
                result = {
                    "row": {
                        "index": job.index,
                        "ok": False,
                        "error": f"{type(error).__name__}: {error}",
                    },
                    "cache_stats": zero_cache_stats(),
                }
            finally:
                self.metrics.in_flight -= 1
            row = result["row"]
            self.metrics.record_cache_delta(result.get("cache_stats"))
            self.metrics.record_request(
                str(row.get("kind", "unknown")),
                float(row.get("seconds", 0.0) or 0.0),
                ok=bool(row.get("ok")),
            )
            if not job.future.done():
                job.future.set_result(row)

    # ------------------------------------------------------------------
    # HTTP front end
    # ------------------------------------------------------------------
    async def _handle_client(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            request_line = await asyncio.wait_for(reader.readline(), timeout=30.0)
            if not request_line:
                return
            parts = request_line.decode("latin-1").strip().split()
            if len(parts) != 3:
                await self._respond(writer, 400, {"error": "malformed request line"})
                return
            method, target, _ = parts
            headers: Dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length") or 0)
            body = await reader.readexactly(length) if length else b""
            status, payload = await self._route(method.upper(), target.split("?")[0], body)
            await self._respond(writer, status, payload)
        except (asyncio.IncompleteReadError, asyncio.TimeoutError, ConnectionError):
            pass  # client went away mid-request; nothing to answer
        finally:
            self._connections.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, object]]:
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "healthz is GET-only"}
            return 200, self._health_payload()
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": "metrics is GET-only"}
            return 200, self.metrics.snapshot(
                queue_depth=self.queue.depth,
                draining=self.admission.draining,
                jobs=self.pool.jobs if self.pool is not None else 0,
            )
        if path == "/v1/workload":
            if method != "POST":
                return 405, {"error": "submit workloads with POST /v1/workload"}
            return await self._submit(body)
        return 404, {
            "error": f"unknown path {path!r}",
            "paths": ["POST /v1/workload", "GET /metrics", "GET /healthz"],
        }

    def _health_payload(self) -> Dict[str, object]:
        return {
            "status": "draining" if self.admission.draining else "ok",
            "queue_depth": self.queue.depth,
            "in_flight": self.metrics.in_flight,
            "jobs": self.pool.jobs if self.pool is not None else 0,
        }

    async def _submit(self, body: bytes) -> Tuple[int, Dict[str, object]]:
        try:
            raw = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as error:
            self.metrics.record_rejected("bad_request")
            return 400, {"error": f"body is not valid JSON: {error}"}
        if isinstance(raw, list):  # bare-list shorthand, like WorkloadSpec
            raw = {"requests": raw}
        if not isinstance(raw, dict) or not isinstance(raw.get("requests"), list):
            self.metrics.record_rejected("bad_request")
            return 400, {"error": 'a submit needs a "requests" list'}
        try:
            cleaned: List[Dict[str, object]] = []
            priorities: List[int] = []
            for item in raw["requests"]:
                if not isinstance(item, dict):
                    raise ServeError(
                        f"every request must be an object, got {type(item).__name__}"
                    )
                priorities.append(priority_for(item))
                cleaned.append({k: v for k, v in item.items() if k != "priority"})
            # Full spec validation up front: a malformed request rejects the
            # submit with a 400 naming it, before anything is queued.
            spec = WorkloadSpec.from_dict({"requests": cleaned})
        except (WorkloadError, ServeError) as error:
            self.metrics.record_rejected("bad_request")
            return 400, {"error": f"{type(error).__name__}: {error}"}
        try:
            plan = plan_workload(spec, salt=self.config.salt)
        except ReproError:  # e.g. "auto" resolution failed; workers will report
            plan = None
        start = time.perf_counter()
        try:
            jobs = self.admission.admit(
                [request.to_dict() for request in spec.requests], priorities
            )
        except ServeError as error:
            self.metrics.record_rejected(_REJECT_REASON.get(type(error), "bad_request"))
            return error.status, {"error": str(error), "rejected": len(spec.requests)}
        self.metrics.record_accepted(len(jobs))
        rows = await asyncio.gather(*(job.future for job in jobs))
        payload: Dict[str, object] = {
            "ok": all(row.get("ok") for row in rows),
            "rows": list(rows),
            "seconds": round(time.perf_counter() - start, 6),
        }
        if plan is not None:
            payload["unique_compiles"] = len(plan.compiles)
            payload["dedup_savings"] = plan.dedup_savings
        return 200, payload

    @staticmethod
    async def _respond(writer, status: int, payload: Dict[str, object]) -> None:
        body = json.dumps(json_safe(payload), ensure_ascii=False).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()


# ----------------------------------------------------------------------
# CLI entry point
# ----------------------------------------------------------------------
async def _amain(config: ServeConfig) -> int:
    daemon = ServeDaemon(config)
    address = await daemon.start()
    print(f"serving on {address}", flush=True)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except NotImplementedError:  # pragma: no cover - windows
            signal.signal(signum, lambda *_: stop.set())
    await stop.wait()
    print("drain: finishing queued and in-flight work...", file=sys.stderr, flush=True)
    await daemon.drain()
    print("drained cleanly", file=sys.stderr, flush=True)
    return 0


def run_daemon(config: Optional[ServeConfig] = None) -> int:
    """Run the daemon until SIGTERM/SIGINT; returns the exit code."""
    return asyncio.run(_amain(config or ServeConfig()))
