"""Admission control for the serve daemon.

Every submit passes through one :class:`AdmissionController` before any
work is queued.  Decisions are all-or-nothing per submit (a workload either
runs completely or is rejected completely — partial admission would return
reports with silently missing rows) and map onto HTTP statuses:

* daemon draining                        → 503 :class:`DrainingError`
* more requests than ``max_batch``       → 413 :class:`OversizeError`
* queue cannot take the whole batch      → 429 :class:`QueueFullError`

Priorities: an explicit integer ``"priority"`` field on a request wins;
otherwise ``estimate`` requests and anything carrying a ``verify`` level
are high (they are cheap or latency-sensitive checks), ``synthesize`` is
normal, and ``simulate`` — the statevector-heavy kind — is low.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.exceptions import ServeError
from repro.serve.queue import (
    DEFAULT_MAX_QUEUED,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NAMES,
    PRIORITY_NORMAL,
    DrainingError,
    Job,
    JobQueue,
    OversizeError,
)

#: Default cap on requests per submit.
DEFAULT_MAX_BATCH = 64


def priority_for(raw: Dict[str, object]) -> int:
    """The admission priority of one raw request dict."""
    if not isinstance(raw, dict):
        return PRIORITY_LOW
    if "priority" in raw:
        try:
            value = int(raw["priority"])  # type: ignore[arg-type]
        except (TypeError, ValueError):
            raise ServeError(
                f"request priority must be an integer in {sorted(PRIORITY_NAMES)}, "
                f"got {raw['priority']!r}"
            ) from None
        if value not in PRIORITY_NAMES:
            raise ServeError(
                f"request priority {value} out of range; "
                f"expected one of {sorted(PRIORITY_NAMES)}"
            )
        return value
    kind = raw.get("kind")
    if kind == "estimate" or raw.get("verify"):
        return PRIORITY_HIGH
    if kind == "synthesize":
        return PRIORITY_NORMAL
    return PRIORITY_LOW


@dataclass(frozen=True)
class AdmissionPolicy:
    """The knobs the controller enforces."""

    max_queued: int = DEFAULT_MAX_QUEUED
    max_batch: int = DEFAULT_MAX_BATCH


class AdmissionController:
    """Gate between parsed submits and the job queue."""

    def __init__(self, queue: JobQueue, policy: Optional[AdmissionPolicy] = None):
        self.queue = queue
        self.policy = policy or AdmissionPolicy(max_queued=queue.max_queued)
        self._draining = False

    @property
    def draining(self) -> bool:
        return self._draining

    def begin_drain(self) -> None:
        """Refuse all further submits (queued/in-flight work still finishes)."""
        self._draining = True

    def admit(
        self,
        raws: List[Dict[str, object]],
        priorities: Optional[List[int]] = None,
    ) -> List[Job]:
        """Queue one submit's requests, or raise with an HTTP-able status.

        ``priorities`` lets the server pass classes computed from the
        *original* request dicts (any ``"priority"`` override field must be
        split off before execution, since the workload parser rejects
        unknown fields); when omitted they are derived from ``raws``
        directly.  The returned jobs carry the futures the submit handler
        awaits.
        """
        if self._draining:
            raise DrainingError("daemon is draining; submit rejected")
        if not raws:
            raise ServeError("a submit needs at least one request")
        if len(raws) > self.policy.max_batch:
            raise OversizeError(
                f"submit carries {len(raws)} requests; the admission policy "
                f"allows at most {self.policy.max_batch} per submit"
            )
        if priorities is None:
            priorities = [priority_for(raw) for raw in raws]
        loop = asyncio.get_running_loop()
        jobs = [
            Job(index=index, raw=raw, priority=priority, future=loop.create_future())
            for index, (raw, priority) in enumerate(zip(raws, priorities))
        ]
        self.queue.put_batch(jobs)  # all-or-nothing; raises QueueFullError
        return jobs
