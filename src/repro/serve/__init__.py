"""Persistent compile/simulate service: the ``python -m repro serve`` daemon.

``repro.serve`` promotes the one-shot batch runner (:mod:`repro.exec`)
into a long-running service —

* :mod:`repro.serve.queue` — :class:`JobQueue`, a bounded
  ``(priority, arrival)`` heap with async consumers; priorities let cheap
  verify/estimate traffic overtake heavy simulates;
* :mod:`repro.serve.admission` — :class:`AdmissionController`,
  all-or-nothing submit gating mapped onto 429/413/503 rejections;
* :mod:`repro.serve.metrics` — :class:`ServeMetrics`, request counters,
  latency histograms and the merged real compile-cache statistics behind
  ``GET /metrics``;
* :mod:`repro.serve.server` — :class:`ServeDaemon`, the stdlib asyncio
  JSON-over-HTTP front end (TCP or unix socket) over the shared
  fork-pool/:class:`~repro.exec.cache.CompileCache` execution machinery,
  with startup cache warming and graceful SIGTERM drain;
* :mod:`repro.serve.client` — :class:`ServeClient`, a small stdlib client
  used by the tests and the CI smoke step.
"""

from repro.serve.admission import (
    DEFAULT_MAX_BATCH,
    AdmissionController,
    AdmissionPolicy,
    priority_for,
)
from repro.serve.client import ServeClient
from repro.serve.metrics import DEFAULT_BUCKETS, LatencyHistogram, ServeMetrics
from repro.serve.queue import (
    DEFAULT_MAX_QUEUED,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NAMES,
    PRIORITY_NORMAL,
    DrainingError,
    Job,
    JobQueue,
    OversizeError,
    QueueFullError,
)
from repro.serve.server import ServeConfig, ServeDaemon, WorkerPool, run_daemon

__all__ = [
    "DEFAULT_BUCKETS",
    "DEFAULT_MAX_BATCH",
    "DEFAULT_MAX_QUEUED",
    "PRIORITY_HIGH",
    "PRIORITY_LOW",
    "PRIORITY_NAMES",
    "PRIORITY_NORMAL",
    "AdmissionController",
    "AdmissionPolicy",
    "DrainingError",
    "Job",
    "JobQueue",
    "LatencyHistogram",
    "OversizeError",
    "QueueFullError",
    "ServeClient",
    "ServeConfig",
    "ServeDaemon",
    "ServeMetrics",
    "WorkerPool",
    "priority_for",
    "run_daemon",
]
