"""Verification reports: which tier decided, why, and how to replay it."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.exceptions import VerificationError

#: Report / tier-record statuses.
STATUS_VERIFIED = "verified"
STATUS_FAILED = "failed"
STATUS_UNDECIDED = "undecided"
STATUS_SKIPPED = "skipped"
STATUS_PASSED = "passed"  # tier ran and found nothing, but did not decide
STATUS_DECIDED = "decided"  # tier ran and its verdict settles the check


@dataclass
class TierRecord:
    """What one tier did during a verification run."""

    tier: int
    name: str
    status: str  # "decided" | "passed" | "failed" | "skipped"
    detail: str = ""
    states_checked: int = 0
    seed: Optional[int] = None

    def to_json(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "tier": self.tier,
            "name": self.name,
            "status": self.status,
            "detail": self.detail,
            "states_checked": self.states_checked,
        }
        if self.seed is not None:
            payload["seed"] = self.seed
        return payload

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "TierRecord":
        return cls(
            tier=int(payload["tier"]),
            name=str(payload["name"]),
            status=str(payload["status"]),
            detail=str(payload.get("detail", "")),
            states_checked=int(payload.get("states_checked", 0)),
            seed=payload.get("seed"),
        )


@dataclass
class VerificationReport:
    """Outcome of a tiered verification run.

    ``status`` is ``"verified"`` when some tier decided the check and it
    passed, ``"failed"`` when a tier found a divergence, and ``"undecided"``
    when the budget ruled out every tier that could have decided (callers
    treat that as a skip, never as a pass).  ``decided_by`` names the
    deciding tier; ``replay`` holds a copy-pasteable recipe regenerating the
    exact sampled states when a sampled tier decided.
    """

    kind: str
    circuit: str
    status: str
    decided_by: Optional[str] = None
    tier_reached: int = 0
    states_checked: int = 0
    error: Optional[str] = None
    replay: Optional[str] = None
    records: List[TierRecord] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True only when a tier decided the check and it passed."""
        return self.status == STATUS_VERIFIED

    @property
    def undecided(self) -> bool:
        return self.status == STATUS_UNDECIDED

    def raise_if_failed(self) -> "VerificationReport":
        """Re-raise the recorded failure; returns ``self`` otherwise."""
        if self.status == STATUS_FAILED:
            raise VerificationError(self.error or f"{self.kind} verification failed")
        return self

    def summary(self) -> str:
        """One-line human summary."""
        if self.status == STATUS_VERIFIED:
            return (
                f"{self.kind}: verified by {self.decided_by} tier "
                f"({self.states_checked} states checked)"
            )
        if self.status == STATUS_FAILED:
            return f"{self.kind}: FAILED at {self.decided_by} tier — {self.error}"
        return f"{self.kind}: undecided (budget ruled out every deciding tier)"

    def to_json(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "kind": self.kind,
            "circuit": self.circuit,
            "status": self.status,
            "decided_by": self.decided_by,
            "tier_reached": self.tier_reached,
            "states_checked": self.states_checked,
            "records": [record.to_json() for record in self.records],
        }
        if self.error is not None:
            payload["error"] = self.error
        if self.replay is not None:
            payload["replay"] = self.replay
        return payload

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "VerificationReport":
        return cls(
            kind=str(payload["kind"]),
            circuit=str(payload["circuit"]),
            status=str(payload["status"]),
            decided_by=payload.get("decided_by"),
            tier_reached=int(payload.get("tier_reached", 0)),
            states_checked=int(payload.get("states_checked", 0)),
            error=payload.get("error"),
            replay=payload.get("replay"),
            records=[TierRecord.from_json(r) for r in payload.get("records", [])],
        )
