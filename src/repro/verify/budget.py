"""Cost budgets for tiered verification.

A :class:`VerificationBudget` is the single dial that decides how much a
verification run is allowed to spend.  The :class:`~repro.verify.verifier.
TieredVerifier` reads it to pick the cheapest tier that can *decide* a
check:

====  ==================  ==========================================  ==========================
tier  name                cost model                                  budget knobs
====  ==================  ==========================================  ==========================
1     structural          ``O(rows)`` column scans on the GateTable   always runs
2     index-propagation   ``O(rows · samples)`` batched indices       ``samples``
3     sampled-columns     a few statevector evolutions                ``sampled_columns``,
                          (``O(rows · d^n · cols)``)                  ``max_column_basis``
4     dense               ``O(d^n)`` gather table (permutations) or   ``max_basis_states``,
                          ``O(d^2n)`` matrices (unitaries)            ``max_dense_dim``,
                                                                      ``allow_dense``
====  ==================  ==========================================  ==========================

Budgets are immutable; derive variants with :meth:`VerificationBudget.replace`
or start from a named preset (``smoke`` / ``standard`` / ``audit``) via
:meth:`VerificationBudget.preset`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from repro.exceptions import VerificationError

#: Tier numbers, in escalation order.
TIER_STRUCTURAL = 1
TIER_INDEX = 2
TIER_COLUMNS = 3
TIER_DENSE = 4

#: Human-readable tier names (used in reports and tier-hit counters).
TIER_NAMES = {
    TIER_STRUCTURAL: "structural",
    TIER_INDEX: "index-propagation",
    TIER_COLUMNS: "sampled-columns",
    TIER_DENSE: "dense",
}

#: Sentinel meaning "no limit" for the basis-size knobs.  Only ever compared
#: as a Python int, so it can (and must) exceed int64 — a register can be
#: bigger than ``2^63`` states, and a tier asked to handle one should reach
#: its own overflow guard rather than be silently skipped by the budget.
UNBOUNDED = 1 << 127


@dataclass(frozen=True)
class VerificationBudget:
    """How much a verification run may spend, per tier.

    ``max_basis_states``
        Permutation checks enumerate the whole basis (tier 4) only when
        ``d^n`` is at most this; larger systems fall back to the sampled
        index-propagation tier.
    ``samples``
        Number of seeded basis states pushed through the batched
        index-propagation tier.
    ``max_dense_dim``
        Dense unitary compares (tier 4) build two ``d^n × d^n`` matrices;
        they are only attempted when ``d^n`` is at most this.
    ``sampled_columns``
        Number of random basis columns evolved by the sampled-column tier
        (on top of any caller-pinned required columns).
    ``max_column_basis``
        The sampled-column tier evolves a ``(d^n, cols)`` batch; it is only
        attempted when ``d^n`` is at most this.
    ``allow_dense``
        Master switch for tier 4.  ``False`` caps escalation at tier 3.
    ``prefer_columns``
        Take the sampled-column tier even when a dense compare would fit the
        budget (the smoke preset uses this to stay cheap).
    ``seed``
        Overrides the per-check default seeds of the sampled tiers, so a
        whole run can be replayed under one seed.
    ``atol``
        Overrides the per-check numeric tolerance when set.
    """

    max_basis_states: int = 200_000
    samples: int = 2000
    max_dense_dim: int = 1024
    sampled_columns: int = 8
    max_column_basis: int = 65_536
    allow_dense: bool = True
    prefer_columns: bool = False
    seed: Optional[int] = None
    atol: Optional[float] = None

    def replace(self, **overrides: object) -> "VerificationBudget":
        """Return a copy with ``overrides`` applied (unknown fields raise)."""
        known = {f.name for f in dataclasses.fields(self)}
        unknown = sorted(set(overrides) - known)
        if unknown:
            raise VerificationError(
                f"unknown budget field(s) {unknown}; valid fields: {sorted(known)}"
            )
        return dataclasses.replace(self, **overrides)

    @classmethod
    def preset(cls, name: str) -> "VerificationBudget":
        """Return a named preset budget (``smoke``/``standard``/``audit``)."""
        try:
            return PRESETS[name]
        except KeyError:
            raise VerificationError(
                f"unknown verification preset {name!r}; "
                f"choose from {sorted(PRESETS)}"
            ) from None

    def describe(self) -> str:
        """One-line summary used by CLI output and reports."""
        return (
            f"basis<={self.max_basis_states} samples={self.samples} "
            f"dense<={self.max_dense_dim} cols={self.sampled_columns} "
            f"col_basis<={self.max_column_basis} "
            f"dense={'on' if self.allow_dense else 'off'}"
            f"{' prefer-columns' if self.prefer_columns else ''}"
        )


#: Named budget presets.  ``smoke`` decides everything it can below the dense
#: tier (CI smoke runs); ``standard`` mirrors the library's historical
#: defaults; ``audit`` spends an order of magnitude more everywhere.
PRESETS = {
    "smoke": VerificationBudget(
        max_basis_states=0,
        samples=128,
        max_dense_dim=128,
        sampled_columns=4,
        max_column_basis=65_536,
        prefer_columns=True,
    ),
    "standard": VerificationBudget(),
    "audit": VerificationBudget(
        max_basis_states=1_000_000,
        samples=100_000,
        max_dense_dim=4096,
        sampled_columns=128,
        max_column_basis=262_144,
    ),
}

#: Preset names accepted by ``--verify-tier`` and workload requests.
PRESET_NAMES = tuple(sorted(PRESETS))
