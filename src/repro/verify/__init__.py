"""Tiered verification: one budgeted verifier behind every entry point.

This package unifies the library's verification paths — the ``assert_*``
helpers in :mod:`repro.sim.verify`, the per-strategy
:meth:`~repro.synth.strategy.Synthesizer.verify` implementations, the fuzz
``synth-spec`` oracle, the CLI and the workload runner — behind one
:class:`TieredVerifier` that escalates cheap → expensive under a
:class:`VerificationBudget`:

>>> from repro.verify import TieredVerifier, VerificationBudget
>>> verifier = TieredVerifier(VerificationBudget.preset("smoke"))
>>> report = verifier.verify_permutation(circuit, spec)   # doctest: +SKIP
>>> report.decided_by, report.states_checked              # doctest: +SKIP
('index-propagation', 128)

For backward compatibility ``repro.verify`` also re-exports everything from
:mod:`repro.sim` (the module historically aliased to this name), so
``repro.verify.Statevector`` and ``repro.verify.assert_mct_spec`` keep
working.  The re-export is lazy to avoid a circular import —
``repro.sim.verify`` itself routes through this package.
"""

from __future__ import annotations

import importlib

from repro.verify.budget import (
    PRESET_NAMES,
    PRESETS,
    TIER_COLUMNS,
    TIER_DENSE,
    TIER_INDEX,
    TIER_NAMES,
    TIER_STRUCTURAL,
    UNBOUNDED,
    VerificationBudget,
)
from repro.verify.report import TierRecord, VerificationReport
from repro.verify.verifier import TieredVerifier, Verifier, resolve_budget
from repro.verify import checks

__all__ = [
    "PRESET_NAMES",
    "PRESETS",
    "TIER_COLUMNS",
    "TIER_DENSE",
    "TIER_INDEX",
    "TIER_NAMES",
    "TIER_STRUCTURAL",
    "UNBOUNDED",
    "VerificationBudget",
    "TierRecord",
    "VerificationReport",
    "TieredVerifier",
    "Verifier",
    "resolve_budget",
    "checks",
]


def __getattr__(name: str):
    """Fall back to :mod:`repro.sim` for the historical ``repro.verify`` API."""
    sim = importlib.import_module("repro.sim")
    try:
        return getattr(sim, name)
    except AttributeError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
