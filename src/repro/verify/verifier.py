"""The tiered verifier: escalate cheap → expensive until a tier decides.

:class:`Verifier` is the abstract interface every verification entry point
routes through; :class:`TieredVerifier` is the budgeted implementation.  For
each check it runs the structural tier first (always affordable), then picks
the cheapest *deciding* tier the :class:`~repro.verify.budget.
VerificationBudget` allows:

* permutation / wire-preservation checks decide at the **dense** tier
  (exhaustive gather-table enumeration) when the basis fits
  ``max_basis_states``, else at the **index-propagation** tier (sampled
  batched :meth:`~repro.ir.table.GateTable.apply_to_indices`);
* unitary checks decide at the **dense** tier (matrix compare) when the
  basis fits ``max_dense_dim``, else at the **sampled-columns** tier when a
  column oracle is available and the basis fits ``max_column_basis``.

When the budget rules out every deciding tier the report comes back
``undecided`` — never a silent pass.  Every run returns a
:class:`~repro.verify.report.VerificationReport` recording which tier
decided and why, the states checked, the seeds, and a replay recipe.
"""

from __future__ import annotations

import abc
from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.verify import checks
from repro.verify.budget import (
    TIER_COLUMNS,
    TIER_DENSE,
    TIER_INDEX,
    TIER_NAMES,
    TIER_STRUCTURAL,
    VerificationBudget,
)
from repro.verify.report import (
    STATUS_DECIDED,
    STATUS_FAILED,
    STATUS_PASSED,
    STATUS_SKIPPED,
    STATUS_UNDECIDED,
    STATUS_VERIFIED,
    TierRecord,
    VerificationReport,
)
from repro.exceptions import VerificationError

#: Historical default seeds of the sampled checks (kept so failure messages
#: and replay recipes stay byte-compatible with the pre-tiered helpers).
DEFAULT_SPEC_SEED = 7
DEFAULT_WIRES_SEED = 11
DEFAULT_COLUMNS_SEED = 13

BudgetLike = Union[VerificationBudget, str, None]


def resolve_budget(budget: BudgetLike) -> VerificationBudget:
    """Coerce ``None`` / preset-name / budget into a :class:`VerificationBudget`."""
    if budget is None:
        return VerificationBudget.preset("standard")
    if isinstance(budget, str):
        return VerificationBudget.preset(budget)
    return budget


class Verifier(abc.ABC):
    """Interface shared by every verification entry point.

    Implementations return a :class:`VerificationReport`; they never raise on
    divergence themselves (callers that want exceptions use
    :meth:`VerificationReport.raise_if_failed`).
    """

    @abc.abstractmethod
    def verify_permutation(
        self,
        circuit,
        spec: checks.Spec,
        *,
        clean_wires: Sequence[int] = (),
    ) -> VerificationReport:
        """Check that ``circuit`` maps basis states exactly as ``spec`` does."""

    @abc.abstractmethod
    def verify_wires_preserved(
        self, circuit, wires: Sequence[int]
    ) -> VerificationReport:
        """Check that ``circuit`` restores ``wires`` on every basis input."""

    @abc.abstractmethod
    def verify_unitary(
        self,
        circuit,
        expected: Optional[np.ndarray] = None,
        *,
        expected_factory: Optional[Callable[[], np.ndarray]] = None,
        expected_column: Optional[Callable[[int], np.ndarray]] = None,
        required_columns: Sequence[int] = (),
        up_to_global_phase: bool = False,
        atol: float = 1e-8,
        backend=None,
    ) -> VerificationReport:
        """Check the circuit's unitary against a matrix and/or column oracle."""

    @abc.abstractmethod
    def verify_unitary_clean_ancillas(
        self,
        circuit,
        expected: np.ndarray,
        data_wires: Sequence[int],
        clean_wires: Sequence[int],
        *,
        atol: float = 1e-8,
        backend=None,
    ) -> VerificationReport:
        """Check ``expected`` on the clean-ancilla ``|0…0⟩`` subspace."""


class TieredVerifier(Verifier):
    """Budget-driven verifier escalating structural → sampled → exhaustive."""

    def __init__(self, budget: BudgetLike = None):
        self.budget = resolve_budget(budget)

    # ------------------------------------------------------------------
    # Shared plumbing
    # ------------------------------------------------------------------

    def _structural(self, circuit, report: VerificationReport) -> bool:
        """Run tier 1; on failure finalize ``report`` and return ``False``."""
        report.tier_reached = TIER_STRUCTURAL
        try:
            stats = checks.structural_check(circuit)
        except VerificationError as exc:
            report.records.append(
                TierRecord(
                    TIER_STRUCTURAL,
                    TIER_NAMES[TIER_STRUCTURAL],
                    STATUS_FAILED,
                    detail=str(exc),
                )
            )
            report.status = STATUS_FAILED
            report.decided_by = TIER_NAMES[TIER_STRUCTURAL]
            report.error = str(exc)
            return False
        detail = f"{stats['rows']} rows scanned"
        if stats["never_fire_controls"]:
            detail += f", {stats['never_fire_controls']} never-firing control(s)"
        report.records.append(
            TierRecord(
                TIER_STRUCTURAL, TIER_NAMES[TIER_STRUCTURAL], STATUS_PASSED, detail=detail
            )
        )
        return True

    def _decide(
        self,
        report: VerificationReport,
        tier: int,
        detail: str,
        kernel,
        *,
        seed: Optional[int] = None,
    ) -> VerificationReport:
        """Run the deciding ``kernel`` and finalize ``report`` from it.

        ``kernel`` returns either ``states_checked`` or ``(states_checked,
        replay_recipe)`` and raises :class:`VerificationError` on divergence.
        """
        name = TIER_NAMES[tier]
        report.tier_reached = tier
        report.decided_by = name
        try:
            outcome = kernel()
        except VerificationError as exc:
            report.records.append(
                TierRecord(tier, name, STATUS_FAILED, detail=str(exc), seed=seed)
            )
            report.status = STATUS_FAILED
            report.error = str(exc)
            return report
        if isinstance(outcome, tuple):
            checked, replay = outcome
            report.replay = replay
        else:
            checked = int(outcome)
        report.records.append(
            TierRecord(
                tier, name, STATUS_DECIDED, detail=detail, states_checked=checked, seed=seed
            )
        )
        report.status = STATUS_VERIFIED
        report.states_checked = checked
        return report

    @staticmethod
    def _skip(report: VerificationReport, tier: int, reason: str) -> None:
        report.records.append(
            TierRecord(tier, TIER_NAMES[tier], STATUS_SKIPPED, detail=reason)
        )

    # ------------------------------------------------------------------
    # Permutation-level checks
    # ------------------------------------------------------------------

    def verify_permutation(
        self,
        circuit,
        spec: checks.Spec,
        *,
        clean_wires: Sequence[int] = (),
    ) -> VerificationReport:
        budget = self.budget
        report = VerificationReport(
            kind="permutation", circuit=circuit.name, status=STATUS_UNDECIDED
        )
        if not self._structural(circuit, report):
            return report
        size = checks.basis_size(circuit.dim, circuit.num_wires)
        clean = tuple(clean_wires)
        if size <= budget.max_basis_states:
            self._skip(report, TIER_INDEX, "subsumed by exhaustive enumeration")
            return self._decide(
                report,
                TIER_DENSE,
                f"exhaustive gather-table enumeration of {size} basis states",
                lambda: checks.spec_exhaustive(circuit, spec, clean),
            )
        dense_reason = f"basis {size} exceeds max_basis_states={budget.max_basis_states}"
        if budget.samples <= 0:
            # Zero samples would "decide" without checking anything — a
            # vacuous pass.  Report undecided instead.
            self._skip(report, TIER_INDEX, "budget draws no samples")
            self._skip(report, TIER_DENSE, dense_reason)
            return report
        seed = budget.seed if budget.seed is not None else DEFAULT_SPEC_SEED
        decided = self._decide(
            report,
            TIER_INDEX,
            f"batched index propagation of {budget.samples} sampled states",
            lambda: checks.spec_sampled(circuit, spec, budget.samples, seed, clean),
            seed=seed,
        )
        self._skip(report, TIER_DENSE, dense_reason)
        return decided

    def verify_wires_preserved(
        self, circuit, wires: Sequence[int]
    ) -> VerificationReport:
        budget = self.budget
        report = VerificationReport(
            kind="wires-preserved", circuit=circuit.name, status=STATUS_UNDECIDED
        )
        if not self._structural(circuit, report):
            return report
        size = checks.basis_size(circuit.dim, circuit.num_wires)
        if size <= budget.max_basis_states:
            self._skip(report, TIER_INDEX, "subsumed by exhaustive enumeration")
            return self._decide(
                report,
                TIER_DENSE,
                f"exhaustive gather-table enumeration of {size} basis states",
                lambda: checks.wires_preserved_exhaustive(circuit, wires),
            )
        dense_reason = f"basis {size} exceeds max_basis_states={budget.max_basis_states}"
        if budget.samples <= 0:
            self._skip(report, TIER_INDEX, "budget draws no samples")
            self._skip(report, TIER_DENSE, dense_reason)
            return report
        seed = budget.seed if budget.seed is not None else DEFAULT_WIRES_SEED
        decided = self._decide(
            report,
            TIER_INDEX,
            f"batched index propagation of {budget.samples} sampled states",
            lambda: checks.wires_preserved_sampled(circuit, wires, budget.samples, seed),
            seed=seed,
        )
        self._skip(report, TIER_DENSE, dense_reason)
        return decided

    # ------------------------------------------------------------------
    # Unitary-level checks
    # ------------------------------------------------------------------

    def verify_unitary(
        self,
        circuit,
        expected: Optional[np.ndarray] = None,
        *,
        expected_factory: Optional[Callable[[], np.ndarray]] = None,
        expected_column: Optional[Callable[[int], np.ndarray]] = None,
        required_columns: Sequence[int] = (),
        up_to_global_phase: bool = False,
        atol: float = 1e-8,
        backend=None,
    ) -> VerificationReport:
        if expected is None and expected_factory is None and expected_column is None:
            raise VerificationError(
                "verify_unitary needs an expected matrix, matrix factory, "
                "or column oracle"
            )
        budget = self.budget
        report = VerificationReport(
            kind="unitary", circuit=circuit.name, status=STATUS_UNDECIDED
        )
        if not self._structural(circuit, report):
            return report
        size = checks.basis_size(circuit.dim, circuit.num_wires)
        tolerance = budget.atol if budget.atol is not None else atol

        column_fn = expected_column
        pinned = tuple(required_columns)
        if column_fn is None and expected is not None:
            matrix = np.asarray(expected)

            def column_fn(col: int, _matrix=matrix) -> np.ndarray:
                return _matrix[:, col]

        columns_possible = (
            column_fn is not None
            and budget.sampled_columns > 0
            and size <= budget.max_column_basis
        )
        dense_possible = (
            budget.allow_dense
            and (expected is not None or expected_factory is not None)
            and size <= budget.max_dense_dim
        )

        if columns_possible and (budget.prefer_columns or not dense_possible):
            seed = budget.seed if budget.seed is not None else DEFAULT_COLUMNS_SEED
            decided = self._decide(
                report,
                TIER_COLUMNS,
                f"{budget.sampled_columns} sampled + {len(pinned)} pinned columns",
                lambda: checks.unitary_columns(
                    circuit,
                    column_fn,
                    samples=budget.sampled_columns,
                    required_columns=pinned,
                    seed=seed,
                    atol=tolerance,
                    up_to_global_phase=up_to_global_phase,
                    backend=backend,
                ),
                seed=seed,
            )
            reason = (
                "sampled columns decided first (prefer_columns)"
                if dense_possible
                else self._dense_skip_reason(budget, size, expected, expected_factory)
            )
            self._skip(report, TIER_DENSE, reason)
            return decided

        if dense_possible:
            if column_fn is None:
                self._skip(report, TIER_COLUMNS, "no column oracle available")
            else:
                self._skip(report, TIER_COLUMNS, "dense compare within budget")

            def dense_kernel():
                matrix = expected if expected is not None else expected_factory()
                return checks.unitary_dense(
                    circuit,
                    np.asarray(matrix),
                    atol=tolerance,
                    up_to_global_phase=up_to_global_phase,
                    backend=backend,
                )

            return self._decide(
                report,
                TIER_DENSE,
                f"dense compare of two {size}×{size} matrices",
                dense_kernel,
            )

        # Budget rules out every deciding tier: report undecided, never pass.
        if column_fn is None:
            self._skip(report, TIER_COLUMNS, "no column oracle available")
        elif budget.sampled_columns <= 0:
            self._skip(report, TIER_COLUMNS, "budget draws no sampled columns")
        else:
            self._skip(
                report,
                TIER_COLUMNS,
                f"basis {size} exceeds max_column_basis={budget.max_column_basis}",
            )
        self._skip(
            report,
            TIER_DENSE,
            self._dense_skip_reason(budget, size, expected, expected_factory),
        )
        report.status = STATUS_UNDECIDED
        return report

    @staticmethod
    def _dense_skip_reason(budget, size, expected, expected_factory) -> str:
        if not budget.allow_dense:
            return "dense tier disabled by budget"
        if expected is None and expected_factory is None:
            return "no expected matrix available"
        return f"basis {size} exceeds max_dense_dim={budget.max_dense_dim}"

    def verify_unitary_clean_ancillas(
        self,
        circuit,
        expected: np.ndarray,
        data_wires: Sequence[int],
        clean_wires: Sequence[int],
        *,
        atol: float = 1e-8,
        backend=None,
    ) -> VerificationReport:
        budget = self.budget
        report = VerificationReport(
            kind="unitary-clean-ancillas", circuit=circuit.name, status=STATUS_UNDECIDED
        )
        if not self._structural(circuit, report):
            return report
        size = checks.basis_size(circuit.dim, circuit.num_wires)
        tolerance = budget.atol if budget.atol is not None else atol
        if not (budget.allow_dense and size <= budget.max_dense_dim):
            # The subspace check needs the full matrix; no cheaper tier can
            # decide it, so an insufficient budget means undecided.
            self._skip(
                report,
                TIER_DENSE,
                self._dense_skip_reason(budget, size, expected, None),
            )
            return report
        return self._decide(
            report,
            TIER_DENSE,
            f"clean-ancilla subspace compare on a {size}×{size} unitary",
            lambda: checks.unitary_clean_subspace(
                circuit,
                expected,
                data_wires,
                clean_wires,
                atol=tolerance,
                backend=backend,
            ),
        )
