"""Tier check kernels shared by the tiered verifier and the ``assert_*`` API.

Each function here is one *check kernel*: it runs a single verification
strategy to completion and raises :class:`~repro.exceptions.VerificationError`
on divergence, returning how many states it examined (and, for sampled
kernels, a replay recipe).  The :class:`~repro.verify.verifier.TieredVerifier`
sequences kernels by cost; the legacy ``assert_*`` helpers in
:mod:`repro.sim.verify` are thin wrappers over the same kernels, so every
entry point shares one set of (corrected) semantics.

All imports from :mod:`repro.sim` are deferred to call time: ``repro.sim``
imports :mod:`repro.verify` while building its public API, so a module-level
import here would be circular.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import VerificationError
from repro.utils.indexing import digit_matrix, indices_to_digits

BasisState = Tuple[int, ...]
Spec = Callable[[BasisState], Sequence[int]]

#: Largest flat basis index representable by the batched int64 index paths.
INT64_MAX = int(np.iinfo(np.int64).max)


def basis_size(dim: int, num_wires: int) -> int:
    """``d^n`` as an exact Python integer (never overflows)."""
    return int(dim) ** int(num_wires)


def require_int64_basis(dim: int, num_wires: int, context: str) -> int:
    """Return ``d^n`` or raise when flat indices would overflow ``int64``.

    The batched index paths (:func:`propagate_samples`, the sampled-column
    kernel) encode basis states as flat ``int64`` indices; past ``2^63 - 1``
    the stride arithmetic silently wraps, so refuse with a clear error.
    """
    size = basis_size(dim, num_wires)
    if size > INT64_MAX:
        raise VerificationError(
            f"{context}: basis of {dim}^{num_wires} states exceeds the int64 "
            f"flat-index range (2^63 - 1); this register is too large for the "
            f"batched index paths"
        )
    return size


def sample_basis_states(
    dim: int,
    num_wires: int,
    samples: int,
    seed: int,
    *,
    clean_wires: Sequence[int] = (),
) -> List[BasisState]:
    """Deterministic sample of basis states, shared by every sampled check.

    One seeded :class:`numpy.random.Generator` drives the sampled fallbacks
    of the ``assert_*`` helpers, the test-suite samplers in ``conftest`` and
    the fuzz generators, so a failure reported with its seed reproduces the
    exact state sequence anywhere.  Wires listed in ``clean_wires`` are
    pinned to ``0`` (the clean-ancilla contract).  States are drawn one digit
    per wire, so the sampler works on registers far beyond ``int64`` flat
    indices.
    """
    rng = np.random.default_rng(seed)
    states = rng.integers(0, dim, size=(samples, num_wires))
    clean = [w for w in clean_wires]
    if clean:
        states[:, clean] = 0
    return [tuple(int(digit) for digit in row) for row in states]


def propagate_samples(circuit, states: Sequence[BasisState]) -> List[List[int]]:
    """Images of sampled basis states, all propagated in ONE batched pass.

    Encodes the digit rows to flat indices, pushes them through
    :meth:`repro.ir.table.GateTable.apply_to_indices` (per-row stride
    arithmetic on just the batch — no ``d^n`` table), and decodes back.
    Row order is preserved, so callers can recover the failing sample index.
    """
    if not states:
        return []
    require_int64_basis(circuit.dim, circuit.num_wires, "sampled index propagation")
    strides = np.array(
        [circuit.dim**e for e in range(circuit.num_wires - 1, -1, -1)], dtype=np.int64
    )
    indices = np.asarray(states, dtype=np.int64) @ strides
    images = circuit.to_table().apply_to_indices(indices)
    return indices_to_digits(images, circuit.dim, circuit.num_wires).tolist()


def sample_recipe(
    dim: int, num_wires: int, samples: int, seed: int, clean_wires: Sequence[int] = ()
) -> str:
    """The copy-pasteable recipe regenerating a sampled state sequence."""
    recipe = f"sample_basis_states({dim}, {num_wires}, {samples}, {seed}"
    clean = tuple(clean_wires)
    return recipe + (f", clean_wires={clean})" if clean else ")")


# ----------------------------------------------------------------------
# Tier 1 — structural checks on the GateTable columns
# ----------------------------------------------------------------------


def structural_check(circuit) -> Dict[str, int]:
    """Cheap ``O(rows)`` sanity scan of the circuit's columnar form.

    Validates opcodes, wire ranges and distinctness, predicate/payload pool
    ids, and that every referenced control predicate is *valid* for the
    circuit dimension (a control value ``>= d`` can never fire, which turns
    the row into a silent identity).  Returns summary stats; raises
    :class:`VerificationError` naming the first offending rows otherwise.
    """
    from repro.ir.table import OP_PERM, OP_STAR, OP_UNITARY

    table = circuit.to_table()
    num_wires = table.num_wires
    dim = table.dim
    pools = table.pools
    problems: List[str] = []

    def note(mask: np.ndarray, describe: Callable[[int], str]) -> None:
        rows = np.nonzero(mask)[0]
        for row in rows[:3]:
            problems.append(describe(int(row)))

    opcode = table.opcode
    note(
        (opcode < OP_PERM) | (opcode > OP_STAR),
        lambda r: f"row {r}: unknown opcode {int(opcode[r])}",
    )
    target = table.target
    note(
        (target < 0) | (target >= num_wires),
        lambda r: f"row {r}: target wire {int(target[r])} out of range for "
        f"{num_wires} wires",
    )
    star = opcode == OP_STAR
    for label, wires in (("wire_a", table.wire_a), ("wire_b", table.wire_b)):
        note(
            (wires < -1) | (wires >= num_wires),
            lambda r, label=label, wires=wires: f"row {r}: {label} "
            f"{int(wires[r])} out of range for {num_wires} wires",
        )
    note(star & (table.wire_a < 0), lambda r: f"row {r}: star row has no star wire")
    note(
        (table.wire_a >= 0) & (table.wire_a == target),
        lambda r: f"row {r}: control wire {int(table.wire_a[r])} duplicates the target",
    )
    note(
        (table.wire_b >= 0) & (table.wire_b == target),
        lambda r: f"row {r}: control wire {int(table.wire_b[r])} duplicates the target",
    )
    note(
        (table.wire_a >= 0) & (table.wire_a == table.wire_b),
        lambda r: f"row {r}: duplicate control wire {int(table.wire_a[r])}",
    )

    num_preds = len(pools.preds)
    for label, wires, preds in (
        ("pred_a", table.wire_a, table.pred_a),
        ("pred_b", table.wire_b, table.pred_b),
    ):
        ordinary = ~star if label == "pred_a" else np.ones(len(table), dtype=bool)
        note(
            ordinary & (wires >= 0) & ((preds < 0) | (preds >= num_preds)),
            lambda r, label=label, preds=preds: f"row {r}: {label} id "
            f"{int(preds[r])} outside the predicate pool (size {num_preds})",
        )
    payload = table.payload
    note(
        (opcode == OP_PERM) & ((payload < 0) | (payload >= max(len(pools.perms), 1))),
        lambda r: f"row {r}: permutation payload id {int(payload[r])} outside "
        f"the pool (size {len(pools.perms)})",
    )
    note(
        (opcode == OP_UNITARY)
        & ((payload < 0) | (payload >= max(len(pools.unitaries), 1))),
        lambda r: f"row {r}: unitary payload id {int(payload[r])} outside "
        f"the pool (size {len(pools.unitaries)})",
    )
    note(
        star & (payload != 1) & (payload != -1),
        lambda r: f"row {r}: star shift sign must be ±1, got {int(payload[r])}",
    )
    num_extras = len(pools.extras)
    extra = table.extra
    note(
        (extra < -1) | (extra >= num_extras),
        lambda r: f"row {r}: extra-controls id {int(extra[r])} outside the "
        f"pool (size {num_extras})",
    )

    # Predicate validity for this dimension: a referenced predicate whose
    # control value is >= d can never fire, so the row silently degenerates
    # to the identity — exactly the vacuous-verification trap.
    used: List[int] = []
    for slot, wires, preds in (
        ("a", table.wire_a, table.pred_a),
        ("b", table.wire_b, table.pred_b),
    ):
        mask = ~star if slot == "a" else np.ones(len(table), bool)
        ids = preds[mask & (wires >= 0) & (preds >= 0) & (preds < num_preds)]
        used.extend(int(p) for p in ids)
    for eid in np.unique(extra[(extra >= 0) & (extra < num_extras)]):
        for wire, pid in pools.extras.entry(int(eid)):
            if not 0 <= wire < num_wires:
                problems.append(
                    f"extra-controls entry {int(eid)}: control wire {wire} out of "
                    f"range for {num_wires} wires"
                )
            if 0 <= pid < num_preds:
                used.append(int(pid))
            else:
                problems.append(
                    f"extra-controls entry {int(eid)}: predicate id {pid} outside "
                    f"the pool (size {num_preds})"
                )
    never_fire = 0
    if used:
        used_ids = np.unique(np.asarray(used, dtype=np.int64))
        invalid = pools.preds.invalid_for(dim)
        for pid in used_ids[invalid[used_ids]]:
            problems.append(
                f"control predicate {pools.preds.labels()[int(pid)]!r} is invalid "
                f"for dimension d={dim} (it can never fire)"
            )
        never_fire = int(pools.preds.never_fires(dim)[used_ids].sum())

    if problems:
        shown = "; ".join(problems[:5])
        more = f" (+{len(problems) - 5} more)" if len(problems) > 5 else ""
        raise VerificationError(
            f"circuit {circuit.name!r} failed the structural check: {shown}{more}"
        )
    return {
        "rows": len(table),
        "never_fire_controls": never_fire,
    }


# ----------------------------------------------------------------------
# Tiers 2 & 4 — permutation-spec and wire-preservation kernels
# ----------------------------------------------------------------------


def spec_exhaustive(circuit, spec: Spec, clean_wires: Sequence[int] = ()) -> int:
    """Whole-basis gather-table check of ``circuit`` against ``spec``."""
    from repro.sim.permutation import permutation_index_table

    clean = tuple(clean_wires)
    table = permutation_index_table(circuit)
    sources = digit_matrix(circuit.dim, circuit.num_wires).tolist()
    images = indices_to_digits(table, circuit.dim, circuit.num_wires).tolist()
    checked = 0
    for source, image in zip(sources, images):
        state = tuple(source)
        if any(state[w] != 0 for w in clean):
            continue
        checked += 1
        expected = tuple(spec(state))
        actual = tuple(image)
        if actual != expected:
            raise VerificationError(
                f"circuit {circuit.name!r} maps {state} to {actual}, expected {expected}"
            )
    return checked


def spec_sampled(
    circuit,
    spec: Spec,
    samples: int,
    seed: int,
    clean_wires: Sequence[int] = (),
) -> Tuple[int, str]:
    """Sampled batched index-propagation check of ``circuit`` vs ``spec``.

    All samples propagate through ONE batched index pass (O(rows · samples)
    stride arithmetic, no ``d^n`` table and no per-state Python loop), so the
    sampled branch works on registers far beyond any statevector; only the
    spec callback runs per state.  Returns ``(states_checked, replay)``.
    """
    clean = tuple(clean_wires)
    states = sample_basis_states(
        circuit.dim, circuit.num_wires, samples, seed, clean_wires=clean
    )
    images = propagate_samples(circuit, states)
    recipe = sample_recipe(circuit.dim, circuit.num_wires, samples, seed, clean)
    for row, (state, image) in enumerate(zip(states, images)):
        expected = tuple(spec(state))
        actual = tuple(image)
        if actual != expected:
            raise VerificationError(
                f"circuit {circuit.name!r} maps {state} to {actual}, expected {expected} "
                f"(sampled check, seed={seed}, failing row {row}; rerun with {recipe}[{row}])"
            )
    return len(states), recipe


def wires_preserved_exhaustive(circuit, wires: Sequence[int]) -> int:
    """Whole-basis check that ``circuit`` restores the watched wires."""
    from repro.sim.permutation import states_differing_on

    wires = tuple(wires)
    # Fully vectorized: states_differing_on compares the watched wires of
    # every basis state with its image under the composed gather table.
    offenders = states_differing_on(circuit, wires)
    if offenders:
        state, output = offenders[0]
        mismatch = [w for w in wires if output[w] != state[w]]
        raise VerificationError(
            f"circuit {circuit.name!r} modified wires {mismatch} on input {state}: {output}"
        )
    return basis_size(circuit.dim, circuit.num_wires)


def wires_preserved_sampled(
    circuit, wires: Sequence[int], samples: int, seed: int
) -> Tuple[int, str]:
    """Sampled batched check that ``circuit`` restores the watched wires."""
    wires = tuple(wires)
    states = sample_basis_states(circuit.dim, circuit.num_wires, samples, seed)
    # Batched like the permutation-spec kernel: one index pass for all
    # samples, then a vectorized compare of just the watched wires.
    images = np.asarray(propagate_samples(circuit, states))
    sources = np.asarray(states)
    watched = list(wires)
    diff = images[:, watched] != sources[:, watched]
    bad_rows = np.nonzero(diff.any(axis=1))[0]
    recipe = sample_recipe(circuit.dim, circuit.num_wires, samples, seed)
    if bad_rows.size:
        row = int(bad_rows[0])
        state = tuple(int(v) for v in sources[row])
        output = tuple(int(v) for v in images[row])
        mismatch = [w for w in wires if output[w] != state[w]]
        raise VerificationError(
            f"circuit {circuit.name!r} modified wires {mismatch} on input "
            f"{state}: {output} (sampled check, seed={seed}, failing row "
            f"{row}; rerun with sample_basis_states({circuit.dim}, "
            f"{circuit.num_wires}, {samples}, {seed})[{row}])"
        )
    return len(states), recipe


# ----------------------------------------------------------------------
# Tiers 3 & 4 — unitary kernels
# ----------------------------------------------------------------------


def _alignment_phase(expected_value: complex, actual_value: complex, atol: float, where: str):
    """The unit-modulus alignment factor, or raise if none exists.

    A *global phase* has unit modulus by definition; accepting any complex
    ratio here would let ``actual = 0.5 * expected`` pass as "equal up to a
    phase".
    """
    phase = expected_value / actual_value
    modulus = abs(phase)
    if abs(modulus - 1.0) > max(atol, 1e-12):
        raise VerificationError(
            f"cannot align global phase{where}: alignment factor has modulus "
            f"{modulus:.6g}, not a unit phase (is the circuit a scaled copy "
            f"of the expected unitary?)"
        )
    return phase


def unitary_dense(
    circuit,
    expected: np.ndarray,
    *,
    atol: float = 1e-8,
    up_to_global_phase: bool = False,
    backend=None,
) -> int:
    """Dense matrix compare of the circuit's unitary against ``expected``."""
    from repro.sim.unitary import circuit_unitary

    actual = circuit_unitary(circuit, backend=backend)
    if actual.shape != expected.shape:
        raise VerificationError(
            f"unitary shape mismatch: circuit {actual.shape}, expected {expected.shape}"
        )
    if up_to_global_phase:
        # Align phases using the largest-magnitude entry of the expected matrix.
        index = np.unravel_index(np.argmax(np.abs(expected)), expected.shape)
        if abs(actual[index]) < atol:
            raise VerificationError("cannot align global phase: mismatched support")
        actual = actual * _alignment_phase(expected[index], actual[index], atol, "")
    if not np.allclose(actual, expected, atol=atol):
        deviation = float(np.max(np.abs(actual - expected)))
        raise VerificationError(
            f"circuit {circuit.name!r} deviates from the expected unitary by {deviation:.3e}"
        )
    return expected.shape[1] if expected.ndim == 2 else 1


def unitary_columns(
    circuit,
    expected_column: Callable[[int], np.ndarray],
    *,
    samples: int = 8,
    required_columns: Sequence[int] = (),
    seed: int = 13,
    atol: float = 1e-8,
    up_to_global_phase: bool = False,
    backend=None,
) -> Tuple[int, str]:
    """Sampled-column unitary check for bases too large to build a matrix.

    The dense compare materialises two ``basis²`` matrices, which caps it
    near basis 1024.  This kernel evolves ``samples`` distinct basis columns
    as ONE ``(d^n, s)`` batch through the simulation engine — about the cost
    of a few statevector evolutions, no matrix anywhere — and compares each
    against ``expected_column(flat_index)``, which callers can usually
    compute in closed form (e.g. a multi-controlled unitary is the identity
    column everywhere outside the fired block).  Columns are drawn one digit
    per wire (never through a flat ``rng.integers(0, d^n)``, which breaks
    past ``int64``).  ``required_columns`` pins columns that must always be
    checked (the fired block), since a uniform draw over a huge basis would
    almost never hit them.  With ``up_to_global_phase`` one phase is aligned
    on the first column and must fit every other column — per-column phases
    would accept circuits that differ by a non-global diagonal.
    """
    from repro.sim.backend import get_backend

    size = require_int64_basis(circuit.dim, circuit.num_wires, "sampled-column check")
    rng = np.random.default_rng(seed)
    digits = rng.integers(
        0, circuit.dim, size=(max(int(samples), 1), circuit.num_wires)
    )
    strides = np.array(
        [circuit.dim**e for e in range(circuit.num_wires - 1, -1, -1)], dtype=np.int64
    )
    drawn = digits.astype(np.int64) @ strides
    pinned = np.asarray(list(required_columns), dtype=np.int64)
    columns = np.unique(np.concatenate([pinned, drawn]))
    if columns.size and (columns.min() < 0 or columns.max() >= size):
        raise VerificationError(f"required column out of range for basis {size}")
    data = np.zeros((size, columns.size), dtype=complex)
    data[columns, np.arange(columns.size)] = 1.0
    evolved = np.asarray(get_backend(backend).apply_circuit_batch(data, circuit))
    recipe = (
        f"unitary_columns(circuit, expected_column, samples={samples}, "
        f"required_columns={tuple(int(c) for c in pinned.tolist())}, seed={seed})"
    )
    phase = None
    for b, col in enumerate(columns.tolist()):
        expected = np.asarray(expected_column(int(col)), dtype=complex).reshape(-1)
        if expected.shape != (size,):
            raise VerificationError(
                f"expected_column({col}) returned shape {expected.shape}, want ({size},)"
            )
        actual = evolved[:, b]
        if up_to_global_phase:
            index = int(np.argmax(np.abs(expected)))
            if abs(actual[index]) < atol:
                raise VerificationError(
                    f"cannot align global phase on column {col}: mismatched support"
                )
            column_phase = _alignment_phase(
                expected[index], actual[index], atol, f" on column {col}"
            )
            if phase is None:
                phase = column_phase
            elif abs(column_phase - phase) > 10 * atol:
                raise VerificationError(
                    f"circuit {circuit.name!r} phase on column {col} disagrees with "
                    f"column {int(columns[0])} — not a global phase "
                    f"(sampled-column check, seed={seed})"
                )
            actual = actual * phase
        if not np.allclose(actual, expected, atol=atol):
            deviation = float(np.max(np.abs(actual - expected)))
            raise VerificationError(
                f"circuit {circuit.name!r} column {col} deviates from the expected "
                f"unitary column by {deviation:.3e} (sampled-column check, "
                f"seed={seed}, {columns.size} columns)"
            )
    return int(columns.size), recipe


def unitary_clean_subspace(
    circuit,
    expected: np.ndarray,
    data_wires: Sequence[int],
    clean_wires: Sequence[int],
    *,
    atol: float = 1e-8,
    backend=None,
) -> int:
    """Check a circuit that uses clean ancillas against a data-wire unitary.

    The circuit is only required to implement ``expected`` on the subspace
    where every clean ancilla starts in ``|0⟩`` and to return the ancillas to
    ``|0⟩`` (i.e. not leak amplitude outside that subspace).  ``expected``
    acts on the data wires only.
    """
    from repro.sim.unitary import circuit_unitary

    data_wires = tuple(data_wires)
    clean_wires = tuple(clean_wires)
    full = circuit_unitary(circuit, backend=backend)
    dim = circuit.dim
    size_data = dim ** len(data_wires)
    if expected.shape != (size_data, size_data):
        raise VerificationError("expected matrix shape does not match the data wires")

    block = np.zeros((size_data, size_data), dtype=complex)
    leakage = 0.0
    for col_data in range(size_data):
        col_digits = _merge_digits(circuit, data_wires, clean_wires, col_data)
        col_index = sum(
            digit * dim ** (circuit.num_wires - 1 - wire) for wire, digit in col_digits.items()
        )
        column = full[:, col_index]
        for row_index, amplitude in enumerate(column):
            if abs(amplitude) < 1e-14:
                continue
            digits = list(_index_digits(row_index, dim, circuit.num_wires))
            if any(digits[w] != 0 for w in clean_wires):
                leakage = max(leakage, abs(amplitude))
                continue
            row_data = 0
            for wire in data_wires:
                row_data = row_data * dim + digits[wire]
            block[row_data, col_data] += amplitude
    if leakage > atol:
        raise VerificationError(
            f"circuit {circuit.name!r} leaks amplitude {leakage:.3e} into non-zero ancilla states"
        )
    if not np.allclose(block, expected, atol=atol):
        deviation = float(np.max(np.abs(block - expected)))
        raise VerificationError(
            f"circuit {circuit.name!r} deviates from the expected unitary by {deviation:.3e} "
            "on the clean-ancilla subspace"
        )
    return size_data


def _merge_digits(circuit, data_wires, clean_wires, data_index):
    dim = circuit.dim
    digits = {wire: 0 for wire in range(circuit.num_wires)}
    remaining = data_index
    for wire in reversed(data_wires):
        digits[wire] = remaining % dim
        remaining //= dim
    for wire in clean_wires:
        digits[wire] = 0
    return digits


def _index_digits(index, dim, num_wires):
    digits = [0] * num_wires
    for position in range(num_wires - 1, -1, -1):
        digits[position] = index % dim
        index //= dim
    return digits


# ----------------------------------------------------------------------
# Spec builders
# ----------------------------------------------------------------------


def _check_digit_range(label: str, digits: Sequence[int], dim: int) -> None:
    """Reject spec digits outside ``0..dim-1``.

    An out-of-range control value or swap digit can never match any basis
    digit, so the spec silently degenerates toward the identity and the
    verification passes vacuously.
    """
    bad = sorted({int(v) for v in digits if not 0 <= int(v) < dim})
    if bad:
        raise VerificationError(
            f"{label} {bad} out of range for dimension d={dim} "
            f"(digits must be in 0..{dim - 1})"
        )


def mct_spec(
    controls: Sequence[int],
    target: int,
    dim: int,
    *,
    control_values: Optional[Sequence[int]] = None,
    swap: Tuple[int, int] = (0, 1),
) -> Spec:
    """Return the specification of a multi-controlled ``X_{ij}`` gate.

    The returned function maps a basis state to the state with the target
    digit swapped between ``swap[0]`` and ``swap[1]`` exactly when every
    control digit matches its control value (default all zeros, the paper's
    ``|0^k⟩-Xij``); every other wire, and in particular any ancilla wire, is
    left untouched.  Control values and swap digits are validated against
    ``dim`` — out-of-range digits would make the spec vacuous.
    """
    values = tuple(control_values) if control_values is not None else (0,) * len(controls)
    if len(values) != len(controls):
        raise VerificationError("control_values length must match the number of controls")
    _check_digit_range("control values", values, dim)
    i, j = swap
    _check_digit_range("swap digits", (i, j), dim)
    if i == j:
        raise VerificationError(f"swap digits must be distinct, got {tuple(swap)}")

    def spec(state: BasisState) -> BasisState:
        output = list(state)
        if all(state[c] == v for c, v in zip(controls, values)):
            if output[target] == i:
                output[target] = j
            elif output[target] == j:
                output[target] = i
        return tuple(output)

    return spec


def mc_shift_spec(
    controls: Sequence[int],
    target: int,
    dim: int,
    shift: int = 1,
    *,
    control_values: Optional[Sequence[int]] = None,
) -> Spec:
    """Specification of the multi-controlled ``X+shift`` gate (``|0^k⟩-X+y``)."""
    values = tuple(control_values) if control_values is not None else (0,) * len(controls)
    if len(values) != len(controls):
        raise VerificationError("control_values length must match the number of controls")
    _check_digit_range("control values", values, dim)

    def spec(state: BasisState) -> BasisState:
        output = list(state)
        if all(state[c] == v for c, v in zip(controls, values)):
            output[target] = (output[target] + shift) % dim
        return tuple(output)

    return spec
