"""Tests for the lowering pass and gate-count reporting."""

import pytest

from repro.core.gate_counts import count_gates
from repro.core.lowering import lower_to_g_gates
from repro.core.toffoli import synthesize_mct
from repro.exceptions import SynthesisError
from repro.qudit.ancilla import AncillaKind, SynthesisResult
from repro.qudit.circuit import QuditCircuit
from repro.qudit.controls import EvenNonZero, Odd, Value
from repro.qudit.gates import SingleQuditUnitary, XPerm, XPlus
from repro.qudit.operations import Operation, StarShiftOp
from repro.sim import apply_to_basis, assert_implements_permutation
from repro.utils.indexing import iterate_basis

import numpy as np


def lowering_preserves_behaviour(circuit):
    lowered = lower_to_g_gates(circuit)
    assert lowered.is_g_circuit()
    for state in iterate_basis(circuit.dim, circuit.num_wires):
        assert apply_to_basis(lowered, state) == apply_to_basis(circuit, state)
    return lowered


class TestLowering:
    def test_uncontrolled_permutation(self):
        circuit = QuditCircuit(1, 5)
        circuit.add_gate(XPlus(5, 2), 0)
        lowered = lowering_preserves_behaviour(circuit)
        assert lowered.num_ops() >= 2

    @pytest.mark.parametrize("predicate", [Value(0), Value(2), Odd(), EvenNonZero()])
    def test_single_controlled_shift(self, predicate):
        circuit = QuditCircuit(2, 5)
        circuit.add_gate(XPlus(5, 1), 1, [(0, predicate)])
        lowering_preserves_behaviour(circuit)

    @pytest.mark.parametrize("dim", [3, 5])
    def test_two_controlled_odd(self, dim):
        circuit = QuditCircuit(3, dim)
        circuit.add_gate(
            XPerm.transposition(dim, 0, 2), 2, [(0, Value(1)), (1, Value(0))]
        )
        lowering_preserves_behaviour(circuit)

    @pytest.mark.parametrize("dim", [4, 6])
    def test_two_controlled_even_borrows_idle_wire(self, dim):
        circuit = QuditCircuit(4, dim)
        circuit.add_gate(
            XPerm.transposition(dim, 0, 1), 2, [(0, Value(0)), (1, Value(0))]
        )
        lowering_preserves_behaviour(circuit)

    def test_two_controlled_even_without_idle_wire_fails(self):
        circuit = QuditCircuit(3, 4)
        circuit.add_gate(
            XPerm.transposition(4, 0, 1), 2, [(0, Value(0)), (1, Value(0))]
        )
        with pytest.raises(SynthesisError):
            lower_to_g_gates(circuit)

    def test_star_gate(self):
        circuit = QuditCircuit(3, 3)
        circuit.append(StarShiftOp(0, 2, +1, [(1, Value(0))]))
        lowering_preserves_behaviour(circuit)

    def test_star_gate_negative(self):
        circuit = QuditCircuit(3, 5)
        circuit.append(StarShiftOp(0, 2, -1, [(1, Value(0))]))
        lowering_preserves_behaviour(circuit)

    def test_identity_gate_disappears(self):
        circuit = QuditCircuit(2, 3)
        circuit.add_gate(XPlus(3, 0), 0)
        assert lower_to_g_gates(circuit).num_ops() == 0

    def test_three_controls_rejected(self):
        circuit = QuditCircuit(4, 3)
        circuit.add_gate(
            XPerm.transposition(3, 0, 1),
            3,
            [(0, Value(0)), (1, Value(0)), (2, Value(0))],
        )
        with pytest.raises(SynthesisError):
            lower_to_g_gates(circuit)

    def test_unitary_payload_rejected(self):
        circuit = QuditCircuit(2, 3)
        circuit.add_gate(SingleQuditUnitary(np.diag([1, 1j, -1])), 1, [(0, Value(0))])
        with pytest.raises(SynthesisError):
            lower_to_g_gates(circuit)

    def test_already_g_circuit_is_stable(self):
        circuit = QuditCircuit(2, 3)
        circuit.add_gate(XPerm.transposition(3, 0, 1), 1, [(0, Value(0))])
        lowered = lower_to_g_gates(circuit)
        assert lowered.num_ops() == 1


class TestGateCounts:
    def test_counts_for_circuit(self):
        circuit = QuditCircuit(2, 3)
        circuit.add_gate(XPerm.transposition(3, 0, 1), 1, [(0, Value(0))])
        circuit.add_gate(XPerm.transposition(3, 1, 2), 0)
        report = count_gates(circuit)
        assert report.g_gates == 2
        assert report.two_qudit_gates == 1
        assert report.single_qudit_gates == 1
        assert report.macro_ops == 2

    def test_counts_for_synthesis_result(self):
        result = synthesize_mct(3, 3)
        report = count_gates(result)
        assert report.g_gates > 0
        assert report.ancillas == {}
        row = report.as_row()
        assert row["g_gates"] == report.g_gates

    def test_ancilla_histogram(self):
        result = synthesize_mct(4, 3)
        report = count_gates(result)
        assert report.ancillas == {AncillaKind.BORROWED.value: 1}
        assert report.as_row()["ancilla_borrowed"] == 1

    def test_count_without_lowering(self):
        result = synthesize_mct(3, 4)
        report = count_gates(result, lower=False)
        assert report.macro_ops == result.circuit.num_ops()

    def test_rejects_unknown_source(self):
        with pytest.raises(TypeError):
            count_gates(42)

    def test_depth_positive(self):
        report = count_gates(synthesize_mct(3, 3))
        assert 0 < report.depth <= report.g_gates
