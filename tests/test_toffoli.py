"""Tests for the k-Toffoli synthesis (Theorems III.2 and III.6)."""

import pytest

from repro.core.gate_counts import count_gates
from repro.core.lowering import lower_to_g_gates
from repro.core.toffoli import mct_ops, synthesize_mct
from repro.core.toffoli_even import synthesize_mct_even
from repro.core.toffoli_odd import synthesize_mct_odd
from repro.exceptions import DimensionError, SynthesisError
from repro.qudit.ancilla import AncillaKind
from repro.qudit.circuit import QuditCircuit
from repro.sim import assert_mct_spec, assert_wires_preserved, permutation_parity


class TestOddToffoli:
    @pytest.mark.parametrize("dim,k", [(3, 1), (3, 2), (3, 3), (3, 4), (3, 5), (5, 2), (5, 3), (7, 2)])
    def test_matches_spec(self, dim, k):
        result = synthesize_mct_odd(dim, k)
        assert_mct_spec(result.circuit, result.controls, result.target)

    @pytest.mark.parametrize("dim,k", [(3, 3), (3, 4), (5, 3)])
    def test_controls_preserved(self, dim, k):
        result = synthesize_mct_odd(dim, k)
        assert_wires_preserved(result.circuit, result.controls)

    @pytest.mark.parametrize("k", [2, 3, 4, 5, 6])
    def test_ancilla_free(self, k):
        result = synthesize_mct_odd(3, k)
        assert result.ancilla_count() == 0
        assert result.circuit.num_wires == k + 1

    def test_rejects_even_dimension(self):
        with pytest.raises(DimensionError):
            synthesize_mct_odd(4, 3)

    def test_custom_swap(self):
        result = synthesize_mct_odd(5, 3, swap=(2, 4))
        assert_mct_spec(result.circuit, result.controls, result.target, swap=(2, 4))


class TestEvenToffoli:
    @pytest.mark.parametrize("dim,k", [(4, 1), (4, 2), (4, 3), (4, 4), (4, 5), (6, 2), (6, 3)])
    def test_matches_spec(self, dim, k):
        result = synthesize_mct_even(dim, k)
        assert_mct_spec(result.circuit, result.controls, result.target)

    @pytest.mark.parametrize("dim,k", [(4, 3), (4, 4), (6, 3)])
    def test_borrowed_ancilla_restored(self, dim, k):
        result = synthesize_mct_even(dim, k)
        assert_wires_preserved(result.circuit, result.controls + result.borrowed_wires())

    @pytest.mark.parametrize("k", [2, 3, 4, 5])
    def test_exactly_one_borrowed_ancilla(self, k):
        result = synthesize_mct_even(4, k)
        assert result.ancilla_count(AncillaKind.BORROWED) == 1
        assert result.ancilla_count(AncillaKind.CLEAN) == 0

    def test_k1_needs_no_ancilla(self):
        assert synthesize_mct_even(4, 1).ancilla_count() == 0

    def test_rejects_odd_dimension(self):
        with pytest.raises(DimensionError):
            synthesize_mct_even(5, 3)

    def test_rejects_d2(self):
        with pytest.raises(DimensionError):
            synthesize_mct_even(2, 3)

    def test_parity_argument(self):
        """The remark after Theorem III.2: for even d the k-Toffoli on k+1
        wires is an odd permutation, while every G-gate is even — so the
        borrowed ancilla is necessary."""
        dim, k = 4, 2
        # Direct spec circuit: a single macro op representing |00⟩-X01.
        from repro.qudit.controls import Value
        from repro.qudit.gates import XPerm
        from repro.qudit.operations import Operation

        spec_circuit = QuditCircuit(k + 1, dim)
        spec_circuit.append(
            Operation(XPerm.transposition(dim, 0, 1), k, [(0, Value(0)), (1, Value(0))])
        )
        assert permutation_parity(spec_circuit) == 1
        g_gate_circuit = QuditCircuit(k + 1, dim)
        g_gate_circuit.append(Operation(XPerm.transposition(dim, 0, 1), 0))
        assert permutation_parity(g_gate_circuit) == 0


class TestDispatcher:
    @pytest.mark.parametrize("dim", [3, 4, 5, 6])
    def test_dispatch_matches_parity(self, dim):
        result = synthesize_mct(dim, 3)
        expected_ancillas = 0 if dim % 2 else 1
        assert result.ancilla_count() == expected_ancillas
        assert_mct_spec(result.circuit, result.controls, result.target)

    @pytest.mark.parametrize("dim", [3, 4])
    def test_control_values(self, dim):
        values = [1, 2, 0]
        result = synthesize_mct(dim, 3, control_values=values)
        assert_mct_spec(result.circuit, result.controls, result.target, control_values=values)

    def test_control_values_and_swap(self):
        result = synthesize_mct(5, 2, control_values=[3, 1], swap=(2, 3))
        assert_mct_spec(
            result.circuit, result.controls, result.target, control_values=[3, 1], swap=(2, 3)
        )

    def test_rejects_small_dimension(self):
        with pytest.raises(DimensionError):
            mct_ops(2, [0, 1], 2)

    def test_rejects_degenerate_swap(self):
        with pytest.raises(SynthesisError):
            mct_ops(3, [0, 1], 2, swap=(1, 1))

    def test_k0_is_plain_gate(self):
        result = synthesize_mct(3, 0)
        assert result.circuit.num_ops() == 1


class TestGLevel:
    @pytest.mark.parametrize("dim,k", [(3, 2), (3, 3), (4, 2), (5, 2)])
    def test_lowered_circuit_still_correct(self, dim, k):
        result = synthesize_mct(dim, k)
        lowered = lower_to_g_gates(result.circuit)
        assert lowered.is_g_circuit()
        assert_mct_spec(lowered, result.controls, result.target)

    def test_linear_growth_in_k_odd(self):
        """Theorem III.6: the G-gate count grows linearly in k for fixed d.

        Past the initial transient the per-control increment settles into a
        period-2 pattern (odd/even k differ because of the ⌈k/2⌉ split in
        Fig. 9), so linearity shows up as (i) equal increments two steps
        apart and (ii) bounded odd/even asymmetry.
        """
        counts = [count_gates(synthesize_mct(3, k)).g_gates for k in range(8, 13)]
        increments = [b - a for a, b in zip(counts, counts[1:])]
        # Same-parity increments agree to within 15%.
        assert abs(increments[0] - increments[2]) <= 0.15 * increments[0] + 10
        assert abs(increments[1] - increments[3]) <= 0.15 * increments[1] + 10
        # Odd/even asymmetry is a bounded constant factor, not polynomial growth.
        assert max(increments) <= 2.5 * min(increments)

    def test_linear_growth_in_k_even(self):
        counts = [count_gates(synthesize_mct(4, k)).g_gates for k in range(6, 10)]
        increments = [b - a for a, b in zip(counts, counts[1:])]
        assert max(increments) <= 2.5 * min(increments) + 200

    def test_macro_size_linear_in_k(self):
        """At the macro level the increments are exactly periodic (50/74 for
        d = 3), the cleanest signature of the O(k) bound."""
        sizes = [synthesize_mct(3, k).circuit.num_ops() for k in range(7, 16)]
        increments = [b - a for a, b in zip(sizes, sizes[1:])]
        assert increments[0::2] == [increments[0]] * len(increments[0::2])
        assert increments[1::2] == [increments[1]] * len(increments[1::2])
