"""Tests for the Λ-ladders of Figs. 3 and 7 (Lemma III.4 / Theorem III.2)."""

import pytest

from repro.core.lambda_ladder import (
    ladder_even,
    ladder_odd,
    multi_controlled_payload_even_ops,
    multi_controlled_shift_ops,
    multi_controlled_star_ops,
    shift_top_builder,
)
from repro.exceptions import SynthesisError
from repro.qudit.circuit import QuditCircuit
from repro.qudit.controls import Odd
from repro.qudit.gates import XPerm
from repro.sim import assert_implements_permutation, assert_wires_preserved, mc_shift_spec


class TestOddLadder:
    @pytest.mark.parametrize("dim,k", [(3, 2), (3, 3), (3, 4), (3, 5), (5, 3)])
    def test_multi_controlled_shift(self, dim, k):
        """Lemma III.4: |0^k⟩-X+1 with k−2 borrowed ancillas."""
        controls = list(range(k))
        target = k
        borrow_pool = list(range(k + 1, k + 1 + max(k - 2, 0)))
        num_wires = k + 1 + len(borrow_pool)
        circuit = QuditCircuit(num_wires, dim, name=f"mcshift(k={k})")
        circuit.extend(multi_controlled_shift_ops(dim, controls, target, borrow_pool))
        assert_implements_permutation(circuit, mc_shift_spec(controls, target, dim, 1))
        # Borrowed ancillas (and controls) must be restored.
        assert_wires_preserved(circuit, controls + borrow_pool)

    @pytest.mark.parametrize("dim,k", [(3, 1), (3, 0)])
    def test_degenerate_small_k(self, dim, k):
        controls = list(range(k))
        circuit = QuditCircuit(k + 1, dim)
        circuit.extend(multi_controlled_shift_ops(dim, controls, k, []))
        assert_implements_permutation(circuit, mc_shift_spec(controls, k, dim, 1))

    def test_ladder_requires_enough_ancillas(self):
        with pytest.raises(SynthesisError):
            ladder_odd(3, [0, 1, 2, 3], 4, [], shift_top_builder(3, 1))

    def test_ladder_rejects_single_control(self):
        with pytest.raises(SynthesisError):
            ladder_odd(3, [0], 1, [], shift_top_builder(3, 1))

    @pytest.mark.parametrize("dim,m,sign", [(3, 1, +1), (3, 2, -1), (3, 3, +1), (5, 2, -1)])
    def test_multi_controlled_star(self, dim, m, sign):
        """|⋆⟩|0^m⟩-X±⋆ built from the ladder with a star top gate."""
        star = 0
        zero_controls = list(range(1, 1 + m))
        target = 1 + m
        borrow_pool = list(range(2 + m, 2 + m + max(m - 1, 0)))
        circuit = QuditCircuit(2 + m + len(borrow_pool), dim)
        circuit.extend(
            multi_controlled_star_ops(dim, star, zero_controls, target, sign, borrow_pool)
        )

        def spec(state):
            out = list(state)
            if all(state[c] == 0 for c in zero_controls):
                out[target] = (out[target] + sign * state[star]) % dim
            return out

        assert_implements_permutation(circuit, spec)
        assert_wires_preserved(circuit, [star] + zero_controls + borrow_pool)


class TestEvenLadder:
    @pytest.mark.parametrize("dim,k", [(4, 2), (4, 3), (4, 4), (6, 3)])
    def test_multi_controlled_xeo(self, dim, k):
        """Fig. 3: |0^k⟩-X^e_eo with borrowed wires from a pool."""
        controls = list(range(k))
        target = k
        pool = list(range(k + 1, k + 1 + max(k - 2, 0) + 1))
        circuit = QuditCircuit(k + 1 + len(pool), dim, name=f"mcxeo(k={k})")
        payload = XPerm.even_odd_swap(dim)
        circuit.extend(
            multi_controlled_payload_even_ops(dim, controls, target, payload, pool)
        )
        table = payload.permutation()

        def spec(state):
            out = list(state)
            if all(state[c] == 0 for c in controls):
                out[target] = table[out[target]]
            return out

        assert_implements_permutation(circuit, spec)
        assert_wires_preserved(circuit, controls + pool)

    def test_first_predicate_variant(self):
        """The |o⟩|0^{k-1}⟩ variant used inside Fig. 4."""
        dim, k = 4, 3
        controls = list(range(k))
        target = k
        pool = [k + 1, k + 2]
        circuit = QuditCircuit(k + 2 + len(pool) - 1, dim)
        payload = XPerm.transposition(dim, 0, 1)
        circuit.extend(
            multi_controlled_payload_even_ops(
                dim, controls, target, payload, pool, first_predicate=Odd()
            )
        )

        def spec(state):
            out = list(state)
            if state[0] % 2 == 1 and state[1] == 0 and state[2] == 0:
                out[target] = {0: 1, 1: 0}.get(out[target], out[target])
            return out

        assert_implements_permutation(circuit, spec)

    def test_even_ladder_requires_enough_ancillas(self):
        with pytest.raises(SynthesisError):
            ladder_even(4, [0, 1, 2, 3], 4, [], XPerm.transposition(4, 0, 1))
