"""Tests for the tiered verification subsystem (:mod:`repro.verify`).

Covers the tier-escalation order and budget gating of
:class:`~repro.verify.TieredVerifier`, the :class:`~repro.verify.
VerificationReport` replay round-trip, and — as failing-before /
passing-after regressions — the three verification soundness fixes that
shipped with the subsystem:

1. global-phase alignment must reject non-unit scalings
   (``actual = 0.5 * expected`` used to pass ``up_to_global_phase=True``);
2. ``mct_spec`` / ``mc_shift_spec`` must reject out-of-range control
   values and swap digits (the spec silently degenerated to the identity,
   so any circuit passed vacuously);
3. the batched int64 index paths must refuse registers with ``d^n > 2^63``
   instead of silently wrapping their stride arithmetic.
"""

import json

import numpy as np
import pytest

from repro.exceptions import VerificationError, WorkloadError
from repro.qudit.circuit import QuditCircuit
from repro.qudit.controls import Value
from repro.qudit.gates import SingleQuditUnitary, XPerm
from repro.sim import (
    assert_implements_permutation,
    assert_mct_spec,
    assert_unitary_equiv,
    mc_shift_spec,
    mct_spec,
)
from repro.sim.verify import assert_unitary_columns_equiv
from repro.verify import (
    PRESET_NAMES,
    TIER_DENSE,
    TIER_INDEX,
    TIER_STRUCTURAL,
    TieredVerifier,
    VerificationBudget,
    VerificationReport,
    checks,
    resolve_budget,
)


def cx01_circuit(dim=3, num_wires=2, name="cx01"):
    """X01 on the last wire, controlled on wire 0 being |0>."""
    circuit = QuditCircuit(num_wires, dim, name=name)
    circuit.add_gate(XPerm.transposition(dim, 0, 1), num_wires - 1, [(0, Value(0))])
    return circuit


def cx01_spec(dim, num_wires):
    return mct_spec([0], num_wires - 1, dim)


# ----------------------------------------------------------------------
# Regression 1 — global-phase alignment rejects non-unit scalings
# ----------------------------------------------------------------------
class TestGlobalPhaseScaling:
    def fourier_circuit(self, dim=3):
        circuit = QuditCircuit(1, dim, name="fourier")
        matrix = np.fft.fft(np.eye(dim)) / np.sqrt(dim)
        circuit.add_gate(SingleQuditUnitary(matrix), 0)
        return circuit, matrix

    def test_scaled_copy_rejected_dense(self):
        circuit, matrix = self.fourier_circuit()
        with pytest.raises(VerificationError, match="not a unit phase"):
            assert_unitary_equiv(circuit, 0.5 * matrix, up_to_global_phase=True)

    def test_scaled_copy_rejected_sampled_columns(self):
        circuit, matrix = self.fourier_circuit()
        scaled = 2.0 * matrix
        with pytest.raises(VerificationError, match="not a unit phase"):
            assert_unitary_columns_equiv(
                circuit,
                lambda col: scaled[:, col],
                required_columns=(0,),
                up_to_global_phase=True,
            )

    def test_true_global_phase_still_accepted(self):
        circuit, matrix = self.fourier_circuit()
        rotated = np.exp(0.7j) * matrix
        assert assert_unitary_equiv(circuit, rotated, up_to_global_phase=True).ok
        assert assert_unitary_columns_equiv(
            circuit,
            lambda col: rotated[:, col],
            required_columns=(0, 1, 2),
            up_to_global_phase=True,
        ).ok


# ----------------------------------------------------------------------
# Regression 2 — spec builders reject out-of-range digits
# ----------------------------------------------------------------------
class TestSpecDigitValidation:
    def test_mct_control_value_out_of_range(self):
        with pytest.raises(VerificationError, match="out of range for dimension d=3"):
            mct_spec([0], 1, 3, control_values=[3])

    def test_mct_swap_digit_out_of_range(self):
        with pytest.raises(VerificationError, match="swap digits"):
            mct_spec([0], 1, 3, swap=(0, 3))

    def test_mct_swap_digits_must_differ(self):
        with pytest.raises(VerificationError, match="must be distinct"):
            mct_spec([0], 1, 3, swap=(1, 1))

    def test_mc_shift_control_value_out_of_range(self):
        with pytest.raises(VerificationError, match="out of range for dimension d=3"):
            mc_shift_spec([0], 1, 3, control_values=[5])

    def test_mc_shift_control_values_length(self):
        with pytest.raises(VerificationError, match="length must match"):
            mc_shift_spec([0, 1], 2, 3, control_values=[0])

    def test_vacuous_pass_now_bites(self):
        # Before the fix, control_values=[d] made the spec the identity, so
        # the *identity circuit* sailed through assert_mct_spec unchecked.
        identity = QuditCircuit(2, 3, name="noop")
        with pytest.raises(VerificationError, match="out of range"):
            assert_mct_spec(identity, [0], 1, control_values=[3])


# ----------------------------------------------------------------------
# Regression 3 — int64 overflow guard on huge registers
# ----------------------------------------------------------------------
class TestInt64Guard:
    def huge_circuit(self):
        # 5^28 > 2^63 - 1 > 5^27: the smallest power-of-5 register whose
        # flat indices overflow int64.
        circuit = QuditCircuit(28, 5, name="huge")
        circuit.add_gate(XPerm.transposition(5, 0, 1), 27, [(0, Value(0))])
        return circuit

    def test_boundary(self):
        assert checks.basis_size(5, 27) <= checks.INT64_MAX
        assert checks.basis_size(5, 28) > checks.INT64_MAX
        assert checks.require_int64_basis(5, 27, "t") == 5**27
        with pytest.raises(VerificationError, match="int64"):
            checks.require_int64_basis(5, 28, "t")

    def test_propagate_samples_refuses_overflow(self):
        circuit = self.huge_circuit()
        states = checks.sample_basis_states(5, 28, 4, 7)
        with pytest.raises(VerificationError, match="int64"):
            checks.propagate_samples(circuit, states)

    def test_sampler_itself_scales_past_int64(self):
        # The state sampler draws one digit per wire, so it works fine on
        # registers whose flat indices do not fit int64.
        states = checks.sample_basis_states(5, 40, 6, 7)
        assert len(states) == 6
        assert all(len(s) == 40 and all(0 <= x < 5 for x in s) for s in states)

    def test_permutation_check_surfaces_guard(self):
        circuit = self.huge_circuit()
        with pytest.raises(VerificationError, match="int64"):
            assert_implements_permutation(circuit, lambda s: s, samples=4)

    def test_sampled_columns_surface_guard(self):
        circuit = self.huge_circuit()
        with pytest.raises(VerificationError, match="int64"):
            assert_unitary_columns_equiv(circuit, lambda col: None, samples=1)


# ----------------------------------------------------------------------
# Tier escalation and budget gating
# ----------------------------------------------------------------------
class TestTierEscalation:
    def test_small_basis_decides_dense(self):
        circuit = cx01_circuit()
        report = TieredVerifier("standard").verify_permutation(circuit, cx01_spec(3, 2))
        assert report.ok and report.decided_by == "dense"
        assert report.states_checked == 9
        assert [(r.tier, r.status) for r in report.records] == [
            (TIER_STRUCTURAL, "passed"),
            (TIER_INDEX, "skipped"),
            (TIER_DENSE, "decided"),
        ]

    def test_smoke_budget_decides_by_index_propagation(self):
        circuit = cx01_circuit()
        report = TieredVerifier("smoke").verify_permutation(circuit, cx01_spec(3, 2))
        assert report.ok and report.decided_by == "index-propagation"
        assert report.states_checked == 128
        assert report.replay == "sample_basis_states(3, 2, 128, 7)"
        statuses = {r.tier: r.status for r in report.records}
        assert statuses[TIER_DENSE] == "skipped"
        # records stay in escalation order
        assert [r.tier for r in report.records] == sorted(r.tier for r in report.records)

    def test_budget_seed_overrides_default(self):
        circuit = cx01_circuit()
        budget = VerificationBudget.preset("smoke").replace(seed=99)
        report = TieredVerifier(budget).verify_permutation(circuit, cx01_spec(3, 2))
        assert report.ok and report.replay == "sample_basis_states(3, 2, 128, 99)"

    def test_structural_tier_catches_invalid_predicate(self):
        circuit = QuditCircuit(2, 3, name="badctl")
        circuit.add_gate(XPerm.transposition(3, 0, 1), 1, [(0, Value(3))])
        report = TieredVerifier("smoke").verify_permutation(circuit, lambda s: s)
        assert report.status == "failed"
        assert report.decided_by == "structural"
        assert "can never fire" in report.error
        with pytest.raises(VerificationError, match="can never fire"):
            report.raise_if_failed()

    def test_failure_records_deciding_tier_and_replay(self):
        circuit = cx01_circuit()  # NOT the identity

        report = TieredVerifier("smoke").verify_permutation(circuit, lambda s: tuple(s))
        assert report.status == "failed" and not report.ok
        assert report.decided_by == "index-propagation"
        assert "rerun with sample_basis_states(3, 2, 128, 7)" in report.error

    def test_unitary_undecided_when_budget_rules_out_tiers(self):
        circuit, matrix = TestGlobalPhaseScaling().fourier_circuit()
        budget = VerificationBudget(allow_dense=False, sampled_columns=0)
        report = TieredVerifier(budget).verify_unitary(circuit, matrix)
        assert report.undecided and not report.ok
        reasons = {r.tier: r.detail for r in report.records if r.status == "skipped"}
        assert "budget draws no sampled columns" in reasons[3]
        assert "dense tier disabled" in reasons[TIER_DENSE]

    def test_zero_samples_is_undecided_not_a_pass(self):
        # samples=0 must not let the index tier "decide" on zero states.
        circuit = cx01_circuit()
        budget = VerificationBudget(max_basis_states=0, samples=0)
        report = TieredVerifier(budget).verify_permutation(circuit, cx01_spec(3, 2))
        assert report.undecided and not report.ok
        assert report.states_checked == 0
        skipped = {r.tier: r.detail for r in report.records if r.status == "skipped"}
        assert skipped[TIER_INDEX] == "budget draws no samples"
        wires = TieredVerifier(budget).verify_wires_preserved(circuit, [0])
        assert wires.undecided and not wires.ok

    def test_unitary_needs_some_oracle(self):
        circuit = cx01_circuit()
        with pytest.raises(VerificationError, match="needs an expected matrix"):
            TieredVerifier("standard").verify_unitary(circuit)

    def test_budget_replace_rejects_unknown_fields(self):
        with pytest.raises(VerificationError, match="unknown budget field"):
            VerificationBudget().replace(max_dense=5)

    def test_unknown_preset_rejected(self):
        with pytest.raises(VerificationError, match="unknown verification preset"):
            VerificationBudget.preset("bogus")

    def test_resolve_budget_coercions(self):
        assert resolve_budget(None) == VerificationBudget.preset("standard")
        assert resolve_budget("smoke") == VerificationBudget.preset("smoke")
        custom = VerificationBudget(samples=3)
        assert resolve_budget(custom) is custom
        assert PRESET_NAMES == ("audit", "smoke", "standard")


# ----------------------------------------------------------------------
# Report replay round-trip
# ----------------------------------------------------------------------
class TestReportRoundTrip:
    def test_json_round_trip_preserves_replay(self):
        circuit = cx01_circuit()
        report = TieredVerifier("smoke").verify_permutation(circuit, cx01_spec(3, 2))
        payload = json.loads(json.dumps(report.to_json()))
        clone = VerificationReport.from_json(payload)
        assert clone == report
        assert clone.replay == report.replay
        assert [r.to_json() for r in clone.records] == [
            r.to_json() for r in report.records
        ]

    def test_replay_recipe_regenerates_the_sampled_states(self):
        circuit = cx01_circuit()
        report = TieredVerifier("smoke").verify_permutation(circuit, cx01_spec(3, 2))
        states = eval(  # the recipe is a copy-pasteable expression by design
            report.replay, {"sample_basis_states": checks.sample_basis_states}
        )
        assert len(states) == 128
        assert states == checks.sample_basis_states(3, 2, 128, 7)

    def test_summary_lines(self):
        circuit = cx01_circuit()
        ok = TieredVerifier("smoke").verify_permutation(circuit, cx01_spec(3, 2))
        assert "verified by index-propagation tier" in ok.summary()
        bad = TieredVerifier("smoke").verify_permutation(circuit, lambda s: tuple(s))
        assert bad.summary().startswith("permutation: FAILED")


# ----------------------------------------------------------------------
# Entry points route through the verifier
# ----------------------------------------------------------------------
class TestEntryPointRouting:
    def test_assert_helpers_return_reports(self):
        circuit = cx01_circuit()
        report = assert_mct_spec(circuit, [0], 1)
        assert isinstance(report, VerificationReport) and report.ok
        assert report.decided_by == "dense"
        smoke = assert_mct_spec(circuit, [0], 1, budget="smoke")
        assert smoke.decided_by == "index-propagation"

    def test_strategy_verify_accepts_budget(self):
        from repro.synth import registry

        strategy = registry.get("mct")
        result = strategy.synthesize(3, 4)
        report = strategy.verify(result, 3, 4, budget="smoke")
        assert report.ok and report.decided_by == "index-propagation"
        full = strategy.verify(result, 3, 4)
        assert full.ok and full.decided_by == "dense"

    def test_workload_verify_field(self):
        from repro.exec.workload import WorkloadSpec, run_workload

        spec = WorkloadSpec.from_dict(
            {
                "requests": [
                    {"kind": "synthesize", "strategy": "mct", "d": 3, "k": 3,
                     "verify": "smoke"}
                ]
            }
        )
        row = run_workload(spec).rows[0]
        assert row["ok"] and row["verify"] == "smoke"
        assert row["verify_result"]["status"] == "verified"
        assert row["verify_result"]["tier"] == "index-propagation"

    def test_workload_rejects_bad_verify(self):
        from repro.exec.workload import WorkloadSpec

        with pytest.raises(WorkloadError, match="does not apply to estimate"):
            WorkloadSpec.from_dict(
                {"requests": [{"kind": "estimate", "strategy": "mct", "d": 3,
                               "k": 2, "verify": "smoke"}]}
            )
        with pytest.raises(WorkloadError, match="unknown verify level"):
            WorkloadSpec.from_dict(
                {"requests": [{"kind": "synthesize", "strategy": "mct", "d": 3,
                               "k": 2, "verify": "huge"}]}
            )


# ----------------------------------------------------------------------
# Acceptance: the smoke budget decides nearly everything below dense
# ----------------------------------------------------------------------
class TestSmokeBudgetSweep:
    def test_smoke_decides_at_least_90_percent_below_dense(self):
        from repro.fuzz.generators import supported_instances
        from repro.fuzz.oracles import check_synthesis_semantics

        instances = supported_instances()[::13]  # deterministic subsample
        assert len(instances) >= 20
        tier_hits = {}
        budget = VerificationBudget.preset("smoke")
        for instance in instances:
            error = check_synthesis_semantics(
                instance, budget=budget, tier_hits=tier_hits
            )
            assert error is None, error
        assert tier_hits.get("dense", 0) == 0
        decided = sum(n for name, n in tier_hits.items() if name != "undecided")
        total = sum(tier_hits.values())
        assert total > 0 and decided / total >= 0.9
