"""Tests for the QuditCircuit IR."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DimensionError, WireError
from repro.qudit.circuit import QuditCircuit, controlled
from repro.qudit.controls import Value
from repro.qudit.gates import XPerm, XPlus
from repro.qudit.operations import Operation, StarShiftOp
from repro.sim import apply_to_basis
from repro.utils.indexing import iterate_basis


def small_circuit(dim=3, wires=3):
    circuit = QuditCircuit(wires, dim)
    circuit.add_gate(XPlus(dim, 1), 0)
    circuit.add_gate(XPerm.transposition(dim, 0, 1), 1, [(0, Value(0))])
    circuit.append(StarShiftOp(0, 2, +1, [(1, Value(1))]))
    return circuit


class TestConstruction:
    def test_requires_valid_shape(self):
        with pytest.raises(DimensionError):
            QuditCircuit(2, 1)
        with pytest.raises(WireError):
            QuditCircuit(0, 3)

    def test_append_validates_wires(self):
        circuit = QuditCircuit(2, 3)
        with pytest.raises(WireError):
            circuit.add_gate(XPlus(3, 1), 5)

    def test_append_validates_dimension(self):
        circuit = QuditCircuit(2, 3)
        with pytest.raises(DimensionError):
            circuit.add_gate(XPlus(4, 1), 0)

    def test_compose_rejects_other_dimension(self):
        a = QuditCircuit(2, 3)
        b = QuditCircuit(2, 4)
        with pytest.raises(DimensionError):
            a.compose(b)

    def test_compose_extends_ops(self):
        a = small_circuit()
        b = QuditCircuit(3, 3)
        b.add_gate(XPlus(3, 2), 2)
        combined = a.copy().compose(b)
        assert combined.num_ops() == a.num_ops() + 1

    def test_controlled_helper(self):
        op = controlled(XPlus(3, 1), 1, 0, Value(2))
        assert op.controls == ((0, Value(2)),)


class TestQueries:
    def test_counts(self):
        circuit = small_circuit()
        assert circuit.num_ops() == 3
        assert circuit.single_qudit_count() == 1
        assert circuit.two_qudit_count() == 1
        assert circuit.multi_qudit_count() == 1
        assert circuit.max_span() == 3

    def test_used_and_targeted_wires(self):
        circuit = small_circuit()
        assert circuit.used_wires() == (0, 1, 2)
        assert circuit.targeted_wires() == (0, 1, 2)

    def test_depth(self):
        circuit = QuditCircuit(3, 3)
        circuit.add_gate(XPlus(3, 1), 0)
        circuit.add_gate(XPlus(3, 1), 1)
        assert circuit.depth() == 1
        circuit.add_gate(XPerm.transposition(3, 0, 1), 1, [(0, Value(0))])
        assert circuit.depth() == 2

    def test_label_histogram(self):
        histogram = small_circuit().label_histogram()
        assert sum(histogram.values()) == 3

    def test_is_permutation(self):
        assert small_circuit().is_permutation

    def test_g_circuit_detection(self):
        circuit = QuditCircuit(2, 3)
        circuit.add_gate(XPerm.transposition(3, 0, 1), 0)
        circuit.add_gate(XPerm.transposition(3, 0, 1), 1, [(0, Value(0))])
        assert circuit.is_g_circuit()
        assert circuit.g_gate_count() == 2


class TestInverseAndRemap:
    def test_inverse_undoes_circuit(self):
        circuit = small_circuit()
        undo = circuit.inverse()
        for state in iterate_basis(3, 3):
            forward = apply_to_basis(circuit, state)
            assert apply_to_basis(undo, forward) == state

    def test_remap_wires(self):
        circuit = small_circuit()
        remapped = circuit.remap_wires({0: 2, 1: 1, 2: 0})
        for state in iterate_basis(3, 3):
            direct = apply_to_basis(circuit, state)
            swapped_in = (state[2], state[1], state[0])
            swapped_out = apply_to_basis(remapped, swapped_in)
            assert swapped_out == (direct[2], direct[1], direct[0])

    def test_remap_requires_all_wires(self):
        with pytest.raises(WireError):
            small_circuit().remap_wires({0: 0, 1: 1})


class TestProperties:
    @given(st.integers(min_value=2, max_value=5), st.integers(min_value=1, max_value=3),
           st.data())
    @settings(max_examples=40, deadline=None)
    def test_inverse_roundtrip_random_circuits(self, dim, wires, data):
        circuit = QuditCircuit(wires, dim)
        num_ops = data.draw(st.integers(min_value=0, max_value=6))
        for _ in range(num_ops):
            target = data.draw(st.integers(min_value=0, max_value=wires - 1))
            shift = data.draw(st.integers(min_value=0, max_value=dim - 1))
            others = [w for w in range(wires) if w != target]
            if others and data.draw(st.booleans()):
                control = data.draw(st.sampled_from(others))
                val = data.draw(st.integers(min_value=0, max_value=dim - 1))
                circuit.add_gate(XPlus(dim, shift), target, [(control, Value(val))])
            else:
                circuit.add_gate(XPlus(dim, shift), target)
        undo = circuit.inverse()
        state = tuple(data.draw(st.integers(min_value=0, max_value=dim - 1)) for _ in range(wires))
        assert apply_to_basis(undo, apply_to_basis(circuit, state)) == state

    def test_inverse_reverses_op_order(self):
        circuit = small_circuit()
        assert circuit.inverse().num_ops() == circuit.num_ops()
