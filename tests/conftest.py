"""Shared pytest fixtures and helpers for the repro test suite."""

from __future__ import annotations

import random

import pytest

from repro.sim import apply_to_basis
from repro.utils.indexing import iterate_basis


@pytest.fixture
def rng():
    """A deterministic random generator for tests."""
    return random.Random(20230323)


def exhaustive_states(dim: int, num_wires: int, limit: int = 250_000):
    """All basis states if the space is small enough, else a deterministic sample."""
    total = dim**num_wires
    if total <= limit:
        yield from iterate_basis(dim, num_wires)
        return
    sampler = random.Random(99)
    for _ in range(2000):
        yield tuple(sampler.randrange(dim) for _ in range(num_wires))


def circuit_matches_function(circuit, spec, limit: int = 250_000) -> bool:
    """Return True if the circuit maps every (sampled) basis state per ``spec``."""
    for state in exhaustive_states(circuit.dim, circuit.num_wires, limit):
        if apply_to_basis(circuit, state) != tuple(spec(state)):
            return False
    return True
