"""Shared pytest fixtures and helpers for the repro test suite.

The samplers here are thin wrappers over the library's own seeded code
paths — :func:`repro.sim.verify.sample_basis_states` for basis-state
sampling and the ``assert_*`` verifiers for semantic checks — so the test
suite and the fuzzing subsystem (:mod:`repro.fuzz`) exercise one
implementation rather than each carrying a private sampler.
"""

from __future__ import annotations

import random

import pytest

from repro.exceptions import VerificationError
from repro.sim.verify import assert_implements_permutation, sample_basis_states
from repro.utils.indexing import iterate_basis

#: Seed of ``exhaustive_states``'s deterministic fallback sample (the
#: verifier-based helpers below use the verifiers' own default seeds).
SAMPLE_SEED = 99


@pytest.fixture
def rng():
    """A deterministic random generator for tests."""
    return random.Random(20230323)


def exhaustive_states(dim: int, num_wires: int, limit: int = 250_000):
    """All basis states if the space is small enough, else a seeded sample.

    The sampled branch goes through the same
    :func:`repro.sim.verify.sample_basis_states` code path the verifiers
    and the fuzz generators use.
    """
    total = dim**num_wires
    if total <= limit:
        yield from iterate_basis(dim, num_wires)
        return
    yield from sample_basis_states(dim, num_wires, 2000, SAMPLE_SEED)


def circuit_matches_function(circuit, spec, limit: int = 250_000) -> bool:
    """Return True if the circuit maps every (sampled) basis state per ``spec``.

    Delegates to :func:`repro.sim.verify.assert_implements_permutation`
    (exhaustive below ``limit`` basis states, seeded-sample fallback above).
    """
    try:
        assert_implements_permutation(circuit, spec, max_states=limit)
    except VerificationError:
        return False
    return True
