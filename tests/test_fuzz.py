"""Deterministic-seed tests of the differential fuzzing subsystem.

Everything here is seeded: the generator-determinism properties, a fixed
block of fuzz cases expected to pass every oracle, and — the critical
guarantee — that a deliberately injected engine bug *is* caught by the
oracles and shrunk to a few-op reproducer.
"""

import json
import random

import pytest

import repro.passes.optimize as optimize
from repro.exceptions import VerificationError
from repro.fuzz import (
    ORACLE_NAMES,
    SynthesisInstance,
    check_lowering_engines,
    check_pass_equivalence,
    check_table_round_trip,
    fuzz_run,
    random_circuit,
    random_pipeline,
    random_synthesis_instance,
    sample_basis_states,
    shrink_circuit,
    shrink_instance,
    supported_instances,
)
from repro.fuzz.oracles import describe_op_difference
from repro.passes import CancelAdjacentInverses, PassPipeline
from repro.qudit.circuit import QuditCircuit
from repro.qudit.gates import XPerm
from repro.qudit.operations import Operation
from repro.sim.verify import assert_implements_permutation


# ----------------------------------------------------------------------
# Generator determinism and constraints
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 7, 123])
def test_random_circuit_is_deterministic(seed):
    first = random_circuit(seed, num_wires=4, dim=3, num_ops=20)
    second = random_circuit(seed, num_wires=4, dim=3, num_ops=20)
    assert describe_op_difference(first, second) is None


def test_random_circuit_seeds_differ():
    first = random_circuit(0, num_wires=4, dim=3, num_ops=20)
    second = random_circuit(1, num_wires=4, dim=3, num_ops=20)
    assert describe_op_difference(first, second) is not None


@pytest.mark.parametrize("dim", [3, 4])
def test_lowerable_circuits_respect_engine_constraints(dim):
    for seed in range(5):
        circuit = random_circuit(
            seed, num_wires=4, dim=dim, num_ops=30, lowerable=True
        )
        assert circuit.is_permutation
        for op in circuit:
            assert len(op.controls) <= 2
        if dim % 2 == 0:
            # The even-d gadget must always find an idle wire to borrow.
            assert len(circuit.used_wires()) < circuit.num_wires


def test_sample_basis_states_is_seeded_and_respects_clean_wires():
    first = sample_basis_states(3, 5, 50, seed=11, clean_wires=(1, 3))
    second = sample_basis_states(3, 5, 50, seed=11, clean_wires=(1, 3))
    assert first == second
    assert all(state[1] == 0 and state[3] == 0 for state in first)
    assert sample_basis_states(3, 5, 50, seed=12) != first


def test_random_synthesis_instance_draws_supported_scenarios():
    from repro.synth import registry

    rng = random.Random(3)
    for _ in range(20):
        instance = random_synthesis_instance(rng)
        strategy = registry.get(instance.strategy)
        assert strategy.supports(instance.dim, instance.k)
    assert len(supported_instances()) > 50


def test_random_pipeline_is_runnable():
    rng = random.Random(5)
    circuit = random_circuit(5, num_wires=3, dim=3, num_ops=10)
    pipeline = random_pipeline(rng)
    assert 1 <= len(pipeline) <= 4
    pipeline.run(circuit)


# ----------------------------------------------------------------------
# The oracles agree on a deterministic block of cases
# ----------------------------------------------------------------------
def test_fuzz_block_has_zero_divergences():
    report = fuzz_run(seed=0, max_cases=8)
    assert report.cases == 8
    assert report.ok, json.dumps(report.to_json(), indent=2, ensure_ascii=False)
    for oracle in ORACLE_NAMES:
        # The backends oracle runs twice per case since PR-8: once on a
        # dense random state, once on the sparse low-occupancy instance.
        assert report.oracle_runs[oracle] == (16 if oracle == "backends" else 8)


def test_fuzz_oracle_subset_and_validation():
    report = fuzz_run(seed=3, max_cases=3, oracles=["round-trip", "inverse"])
    assert set(report.oracle_runs) == {"round-trip", "inverse"}
    assert report.ok
    with pytest.raises(ValueError):
        fuzz_run(seed=0, max_cases=1, oracles=["warp-drive"])
    with pytest.raises(ValueError):
        fuzz_run(seed=0)  # needs a budget


# ----------------------------------------------------------------------
# Injected bugs are caught and shrunk
# ----------------------------------------------------------------------
def _broken_ops_cancel(first, second):
    """The real ``_ops_cancel`` with its controls-equality guard disabled."""
    if isinstance(first, Operation) and isinstance(second, Operation):
        return first.target == second.target and optimize._gates_are_inverse(
            first.gate, second.gate
        )
    return False


def test_injected_cancel_guard_bug_is_caught_and_shrunk(monkeypatch):
    monkeypatch.setattr(optimize, "_ops_cancel", _broken_ops_cancel)
    pipeline = PassPipeline([CancelAdjacentInverses()], name="broken-cancel")

    failing = None
    for seed in range(200):
        circuit = random_circuit(
            seed, num_wires=4, dim=3, num_ops=25, lowerable=True
        )
        if check_pass_equivalence(circuit, pipeline) is not None:
            failing = circuit
            break
    assert failing is not None, "no seed triggered the injected cancel bug"

    shrunk = shrink_circuit(
        failing, lambda c: check_pass_equivalence(c, pipeline) is not None
    )
    assert shrunk.num_ops() <= 10
    assert check_pass_equivalence(shrunk, pipeline) is not None
    # With the guard restored the shrunk reproducer passes again.
    monkeypatch.undo()
    assert check_pass_equivalence(shrunk, pipeline) is None


def test_injected_table_kernel_bug_is_caught_via_fuzz_run(monkeypatch):
    from repro.ir import rewrite

    # Break the columnar drop-identities kernel: it silently drops the last
    # row of every table instead of only identity rows.
    def broken_drop_identities(table):
        if len(table):
            return table.select(slice(0, len(table) - 1))
        return table

    monkeypatch.setattr(rewrite, "drop_identities", broken_drop_identities)
    report = fuzz_run(seed=0, max_cases=12, oracles=["passes"], shrink=True)
    assert not report.ok, "the broken table kernel went unnoticed"
    divergence = report.divergences[0]
    assert divergence.oracle == "passes"
    assert divergence.circuit is not None
    assert divergence.circuit.num_ops() <= 10  # shrunk to a tiny reproducer


def test_shrink_reduces_to_single_offending_op():
    dim = 3
    x02 = XPerm.transposition(dim, 0, 2)
    circuit = random_circuit(2, num_wires=4, dim=dim, num_ops=30)
    circuit.append(Operation(x02, 1))

    def fails(candidate: QuditCircuit) -> bool:
        return any(
            isinstance(op, Operation) and op.gate == x02 and not op.controls
            for op in candidate.ops
        )

    shrunk = shrink_circuit(circuit, fails)
    assert shrunk.num_ops() == 1
    assert shrunk.num_wires <= 2
    with pytest.raises(ValueError):
        shrink_circuit(QuditCircuit(1, 3), fails)  # input must fail


def test_shrink_instance_walks_k_and_d_down():
    def fails(instance: SynthesisInstance) -> bool:
        return instance.strategy == "mct" and instance.dim >= 3

    shrunk = shrink_instance(SynthesisInstance("mct", 5, 9), fails)
    assert shrunk.k == 1
    assert shrunk.dim == 3


# ----------------------------------------------------------------------
# Sampled verification failures surface their seed
# ----------------------------------------------------------------------
def test_sampled_verification_error_reports_seed():
    circuit = QuditCircuit(7, 3, name="not-identity")
    circuit.add_gate(XPerm.transposition(3, 0, 1), 0)
    with pytest.raises(VerificationError, match=r"seed=41"):
        assert_implements_permutation(
            circuit, lambda state: state, max_states=10, samples=50, seed=41
        )


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_fuzz_smoke(tmp_path, capsys):
    from repro.__main__ import main

    report_path = tmp_path / "fuzz.json"
    code = main(
        [
            "fuzz",
            "--seed",
            "0",
            "--max-cases",
            "4",
            "--json",
            "--report",
            str(report_path),
        ]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["cases"] == 4
    assert json.loads(report_path.read_text())["ok"] is True


def test_cli_fuzz_table_output(capsys):
    from repro.__main__ import main

    assert main(["fuzz", "--seed", "1", "--max-cases", "2"]) == 0
    out = capsys.readouterr().out
    assert "Differential fuzz" in out and "OK" in out
