"""Tests for Grover, arithmetic, the lower bound and the Clifford+T model."""

import math

import numpy as np
import pytest

from repro.applications.arithmetic import (
    add_constant_ops,
    controlled_increment_ops,
    increment_reference,
    synthesize_increment,
)
from repro.applications.grover import (
    fourier_gate,
    grover_circuit,
    optimal_iterations,
    phase_flip_gate,
    run_grover,
)
from repro.applications.lower_bound import (
    distinct_g_gates,
    log2_reversible_function_count,
    reversible_lower_bound,
)
from repro.exceptions import DimensionError
from repro.qudit.circuit import QuditCircuit
from repro.resources.cliffordt import (
    CliffordTParams,
    clifford_t_cost,
    yeh_vdw_reversible_model,
    yeh_vdw_toffoli_model,
)
from repro.core.toffoli import synthesize_mct
from repro.sim import assert_permutation_equals_function


class TestArithmetic:
    @pytest.mark.parametrize("dim,n", [(3, 1), (3, 2), (3, 3), (4, 2), (4, 3), (5, 2)])
    def test_increment(self, dim, n):
        result = synthesize_increment(dim, n)
        assert_permutation_equals_function(
            result.circuit,
            lambda s: increment_reference(dim, n, s),
            list(range(n)),
            clean_wires=result.clean_wires(),
        )

    def test_add_constant(self):
        dim, n, constant = 3, 2, 5
        circuit = QuditCircuit(n, dim)
        circuit.extend(add_constant_ops(dim, list(range(n)), constant, None))
        assert_permutation_equals_function(
            circuit, lambda s: increment_reference(dim, n, s, constant), list(range(n))
        )

    def test_add_constant_wraps(self):
        dim, n = 3, 2
        circuit = QuditCircuit(n, dim)
        circuit.extend(add_constant_ops(dim, list(range(n)), 9, None))
        assert circuit.num_ops() == 0 or assert_permutation_equals_function(
            circuit, lambda s: s, list(range(n))
        ) is None

    def test_controlled_increment(self):
        dim, n = 3, 2
        circuit = QuditCircuit(n + 2, dim)
        circuit.extend(controlled_increment_ops(dim, 0, 1, [1, 2], 3))

        def spec(state):
            if state[0] != 1:
                return state
            incremented = increment_reference(dim, n, state[1:])
            return (state[0],) + incremented

        assert_permutation_equals_function(circuit, spec, [0, 1, 2], clean_wires=[3])

    def test_reference_wraps(self):
        assert increment_reference(3, 2, (2, 2)) == (0, 0)


class TestGrover:
    def test_fourier_gate_is_unitary(self):
        gate = fourier_gate(5)
        assert np.allclose(gate.matrix() @ gate.matrix().conj().T, np.eye(5), atol=1e-10)

    def test_phase_flip_gate(self):
        gate = phase_flip_gate(3, 1)
        assert np.allclose(np.diag(gate.matrix()), [1, -1, 1])

    def test_optimal_iterations(self):
        assert optimal_iterations(3, 2) == max(1, int(math.floor(math.pi / 4 * 3)))

    def test_two_qutrit_search_succeeds(self):
        outcome = run_grover(3, 2, (2, 1))
        assert outcome.success_probability > 0.6
        assert outcome.success_probability > 5 * outcome.uniform_probability

    def test_three_qutrit_search_succeeds(self):
        outcome = run_grover(3, 3, (1, 2, 0))
        assert outcome.success_probability > 0.5
        assert outcome.success_probability > 5 * outcome.uniform_probability

    def test_circuit_reports_clean_ancilla(self):
        result = grover_circuit(3, 3, (0, 1, 2), iterations=1)
        assert result.ancilla_count() == 1

    def test_rejects_single_wire(self):
        with pytest.raises(Exception):
            grover_circuit(3, 1, (0,))


class TestLowerBound:
    def test_distinct_g_gates(self):
        # 3 wires, d = 3: 3·2 controlled placements + 3·3 transpositions = 15.
        assert distinct_g_gates(3, 3) == 15

    def test_log2_function_count_matches_factorial(self):
        assert log2_reversible_function_count(3, 1) == pytest.approx(math.log2(math.factorial(3)))

    def test_lower_bound_monotone_in_n(self):
        bounds = [reversible_lower_bound(3, n).min_gates for n in (1, 2, 3, 4)]
        assert bounds == sorted(bounds)

    def test_lower_bound_report_row(self):
        report = reversible_lower_bound(3, 3)
        row = report.as_row()
        assert row["d"] == 3 and row["n"] == 3
        assert report.min_gates > 0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            reversible_lower_bound(1, 3)


class TestCliffordT:
    def test_cost_of_toffoli(self):
        result = synthesize_mct(3, 3)
        cost = clifford_t_cost(result.circuit)
        assert cost.t_count > 0
        assert cost.total() == cost.t_count + cost.clifford_count
        assert cost.g_gates == cost.controlled_gates + cost.single_qutrit_gates

    def test_rejects_non_qutrit(self):
        result = synthesize_mct(5, 2)
        with pytest.raises(DimensionError):
            clifford_t_cost(result.circuit)

    def test_custom_params_scale_linearly(self):
        result = synthesize_mct(3, 2)
        base = clifford_t_cost(result.circuit)
        doubled = clifford_t_cost(
            result.circuit,
            CliffordTParams(t_per_controlled_x01=78, clifford_per_controlled_x01=120, clifford_per_xij=2),
        )
        assert doubled.t_count == 2 * base.t_count

    def test_ours_beats_yeh_vdw_model_for_large_k(self):
        """E10: O(k) vs O(k^3.585) — the crossover is well below k = 20."""
        ours = []
        for k in (2, 4, 6):
            cost = clifford_t_cost(synthesize_mct(3, k).circuit)
            ours.append((k, cost.total()))
        # Fit a linear extrapolation for ours and compare at k = 20.
        (k1, c1), (k2, c2) = ours[0], ours[-1]
        slope = (c2 - c1) / (k2 - k1)
        ours_at_20 = c1 + slope * (20 - k1)
        assert ours_at_20 < yeh_vdw_toffoli_model(20)

    def test_reversible_model_growth(self):
        assert yeh_vdw_reversible_model(4) > yeh_vdw_reversible_model(3)
