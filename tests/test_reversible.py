"""Tests for Theorem IV.2: implementing classical reversible functions."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.applications.reversible import (
    function_to_index_permutation,
    index_permutation_to_two_cycles,
    random_reversible_function,
    synthesize_reversible_function,
    two_cycle_ops,
)
from repro.exceptions import SynthesisError
from repro.qudit.circuit import QuditCircuit
from repro.sim import assert_permutation_equals_function, assert_wires_preserved
from repro.utils.indexing import digits_to_index, index_to_digits


def table_function(table, dim, n):
    return lambda state: index_to_digits(table[digits_to_index(state, dim)], dim, n)


class TestNormalisation:
    def test_from_callable(self):
        swap_last = lambda s: (s[0], (s[1] + 1) % 3)  # noqa: E731
        table = function_to_index_permutation(swap_last, 3, 2)
        assert sorted(table) == list(range(9))

    def test_from_dict(self):
        mapping = {(0,): (1,), (1,): (0,), (2,): (2,)}
        assert function_to_index_permutation(mapping, 3, 1) == [1, 0, 2]

    def test_from_table(self):
        assert function_to_index_permutation([2, 0, 1], 3, 1) == [2, 0, 1]

    def test_rejects_non_bijection_table(self):
        with pytest.raises(SynthesisError):
            function_to_index_permutation([0, 0, 1], 3, 1)

    def test_rejects_non_bijection_function(self):
        with pytest.raises(SynthesisError):
            function_to_index_permutation(lambda s: (0,), 3, 1)

    def test_two_cycle_decomposition_recomposes(self):
        table = [2, 0, 1, 3]
        cycles = index_permutation_to_two_cycles(table)
        rebuilt = list(range(4))
        for a, b in cycles:
            rebuilt[a], rebuilt[b] = rebuilt[b], rebuilt[a]
        # applying the swaps in circuit order to the identity labels gives the
        # permutation: rebuilt[x] tracks where x ends up
        composed = list(range(4))
        for a, b in cycles:
            composed = [
                (b if v == a else a if v == b else v) for v in composed
            ]
        assert composed == table


class TestTwoCycleCircuit:
    @pytest.mark.parametrize("dim", [3, 4, 5])
    def test_swaps_exactly_two_states(self, dim):
        n = 2
        state_a, state_b = (0, 1), (2, 0)
        borrow = None
        circuit = QuditCircuit(n, dim)
        circuit.extend(two_cycle_ops(dim, list(range(n)), state_a, state_b, borrow))

        def spec(state):
            if state == state_a:
                return state_b
            if state == state_b:
                return state_a
            return state

        assert_permutation_equals_function(circuit, spec, list(range(n)))

    def test_identical_states_produce_nothing(self):
        assert two_cycle_ops(3, [0, 1], (0, 1), (0, 1), None) == []

    @pytest.mark.parametrize("dim", [3, 4])
    def test_three_variable_two_cycle(self, dim):
        n = 3
        state_a, state_b = (0, 2, 1), (1, 0, 1)  # differ in two positions, same last digit
        wires = list(range(n))
        num_wires = n + (1 if dim % 2 == 0 else 0)
        borrow = n if dim % 2 == 0 else None
        circuit = QuditCircuit(num_wires, dim)
        circuit.extend(two_cycle_ops(dim, wires, state_a, state_b, borrow))

        def spec(state):
            if state == state_a:
                return state_b
            if state == state_b:
                return state_a
            return state

        assert_permutation_equals_function(circuit, spec, wires)


class TestFullSynthesis:
    @pytest.mark.parametrize("dim,n", [(3, 1), (3, 2), (3, 3), (4, 2), (4, 3), (5, 2)])
    def test_random_function(self, dim, n):
        table = random_reversible_function(dim, n, seed=13 * dim + n)
        result = synthesize_reversible_function(dim, n, table)
        assert_permutation_equals_function(
            result.circuit, table_function(table, dim, n), list(range(n))
        )

    @pytest.mark.parametrize("dim,n,expected", [(3, 3, 0), (5, 2, 0), (4, 3, 1), (6, 3, 1), (4, 2, 0)])
    def test_ancilla_usage_matches_theorem(self, dim, n, expected):
        table = random_reversible_function(dim, n, seed=5)
        result = synthesize_reversible_function(dim, n, table)
        assert result.ancilla_count() == expected

    def test_borrowed_ancilla_restored_even_d(self):
        table = random_reversible_function(4, 3, seed=2)
        result = synthesize_reversible_function(4, 3, table)
        assert_wires_preserved(result.circuit, result.borrowed_wires())

    def test_identity_function_gives_empty_circuit(self):
        table = list(range(27))
        result = synthesize_reversible_function(3, 3, table)
        assert result.circuit.num_ops() == 0

    def test_single_transposition_function(self):
        table = list(range(9))
        table[0], table[8] = table[8], table[0]
        result = synthesize_reversible_function(3, 2, table)
        assert_permutation_equals_function(
            result.circuit, table_function(table, 3, 2), [0, 1]
        )

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=12, deadline=None)
    def test_property_random_permutations_d3_n2(self, seed):
        table = random_reversible_function(3, 2, seed=seed)
        result = synthesize_reversible_function(3, 2, table)
        assert_permutation_equals_function(
            result.circuit, table_function(table, 3, 2), [0, 1]
        )

    def test_gate_count_scales_with_n_dn(self):
        """The macro-op count stays within a small multiple of n·d^n (the
        paper's O(n d^n) bound)."""
        dim = 3
        for n in (2, 3):
            table = random_reversible_function(dim, n, seed=1)
            result = synthesize_reversible_function(dim, n, table)
            assert result.circuit.num_ops() <= 60 * n * dim**n
