"""Pinned regression reproducers found by the differential fuzzer.

Workflow: when ``python -m repro fuzz`` reports a divergence, it prints the
failing case seed and a shrunk few-op reproducer.  Check the reproducer in
here as a dedicated test (rebuild the circuit explicitly — do not depend on
the generator's op stream, which may drift as knobs are added) so the bug
stays fixed forever even if the generators change.

Development note: fuzzing the PR-3 engines during the construction of this
subsystem (seeds 0–499 across all oracles) surfaced no divergence — the
object/table lowering engines, pass kernels, simulation backends and the
analytic estimator agree on every generated artifact.  The seeded smoke
cases below pin that state; any future divergence lands next to them as a
minimal circuit.
"""

import json

from repro.fuzz import fuzz_case, fuzz_run, FuzzReport


def test_seeded_smoke_block_stays_clean():
    """Seeds 0–5, every oracle: the redundant engines must keep agreeing."""
    report = fuzz_run(seed=0, max_cases=6)
    assert report.ok, json.dumps(report.to_json(), indent=2, ensure_ascii=False)


def test_cache_oracle_seeded_block_stays_clean():
    """Seeds 0–11, cache oracle only: serialize→deserialize must stay lossless.

    Pins the PR-5 compile-cache serialization against the fuzz generator's
    full op/predicate mix (perm gates, XPlus shifts, dense unitaries, star
    macros, Value/Odd/EvenNonZero/InSet controls, >2-control overflow rows).
    """
    report = fuzz_run(seed=0, max_cases=12, oracles=["cache"])
    assert report.ok, json.dumps(report.to_json(), indent=2, ensure_ascii=False)
    assert report.oracle_runs == {"cache": 12}


def test_single_case_replay_matches_report_contract():
    """A case replays from its seed alone (the CI reproduction recipe)."""
    report = FuzzReport(seed=17)
    divergences = fuzz_case(17, ("round-trip", "backends", "inverse"), report)
    assert divergences == []
    # backends counts twice: dense random state + sparse low-occupancy case.
    assert report.oracle_runs == {"round-trip": 1, "backends": 2, "inverse": 1}


def test_backends_oracle_covers_every_registered_engine():
    """The oracle's path list is registry-driven, not a hard-coded tuple.

    A custom engine registered at runtime (here: streaming with a one-row
    tile budget, the harshest tiling configuration) must be fuzzed
    automatically by the ``backends`` oracle — per-op and fused paths both.
    """
    from repro.sim import StreamingBackend, register_backend, unregister_backend

    register_backend(StreamingBackend(4096), name="tiny-streaming")
    try:
        report = fuzz_run(seed=0, max_cases=8, oracles=["backends"])
        assert report.ok, json.dumps(report.to_json(), indent=2, ensure_ascii=False)
        assert report.oracle_runs == {"backends": 16}  # 2 runs per case since PR-8
    finally:
        unregister_backend("tiny-streaming")


def test_sparse_seeded_block_stays_clean():
    """Seeds 200-209, backends oracle, which now runs TWICE per case.

    Each case fuzzes every registered engine on a dense random state (the
    pre-PR-8 check) and then the sparse engine's O(nnz) fast path on a
    dedicated low-occupancy instance (superposition over a few sampled
    basis states) — permutation circuits compared bit-for-bit against
    dense, plus the SparseState-native entry point with its sorted-unique
    index invariant.  The doubled ``oracle_runs`` count pins that both
    halves actually executed.
    """
    report = fuzz_run(seed=200, max_cases=10, oracles=["backends"])
    assert report.ok, json.dumps(report.to_json(), indent=2, ensure_ascii=False)
    assert report.oracle_runs == {"backends": 20}


def test_streaming_seeded_block_stays_clean():
    """Seeds 0-7, backends oracle, streaming registered with a tiny budget.

    Pins the PR-6 segment-fusion + tiling kernels against the fuzz
    generator's full op mix: if tiling ever drifts from dense by a single
    bit, allclose(atol=1e-9) in the oracle still catches sign/permutation
    bugs, and the dedicated bit-for-bit suite in
    ``tests/test_streaming_backend.py`` catches rounding drift.
    """
    report = fuzz_run(seed=100, max_cases=8, oracles=["backends"])
    assert report.ok, json.dumps(report.to_json(), indent=2, ensure_ascii=False)
