"""Tests for singly-controlled gate lowering (Section II observations)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.single_controlled import (
    control_value_conjugation_ops,
    controlled_permutation_g_ops,
    controlled_transposition_g_ops,
    mapping_permutation,
)
from repro.exceptions import GateError
from repro.qudit.circuit import QuditCircuit
from repro.qudit.controls import EvenNonZero, Odd, Value
from repro.sim import assert_implements_permutation
from repro.utils import permutations as perm


def build(dim, ops, wires=2):
    circuit = QuditCircuit(wires, dim)
    circuit.extend(ops)
    return circuit


class TestMappingPermutation:
    @given(st.integers(min_value=3, max_value=7), st.data())
    @settings(max_examples=60, deadline=None)
    def test_maps_pair_to_01(self, dim, data):
        i = data.draw(st.integers(min_value=0, max_value=dim - 1))
        j = data.draw(st.integers(min_value=0, max_value=dim - 1).filter(lambda x: x != i))
        p = mapping_permutation(dim, i, j)
        assert perm.is_permutation(p)
        assert p[i] == 0 and p[j] == 1

    def test_rejects_equal_points(self):
        with pytest.raises(GateError):
            mapping_permutation(4, 2, 2)


class TestControlledTransposition:
    @pytest.mark.parametrize("dim", [3, 4, 5])
    @pytest.mark.parametrize("control_value", [0, 1, 2])
    @pytest.mark.parametrize("swap", [(0, 1), (0, 2), (1, 2)])
    def test_matches_spec_and_is_g(self, dim, control_value, swap):
        ops = controlled_transposition_g_ops(dim, 0, control_value, 1, *swap)
        circuit = build(dim, ops)
        assert circuit.is_g_circuit()

        def spec(state):
            out = list(state)
            if state[0] == control_value:
                if out[1] == swap[0]:
                    out[1] = swap[1]
                elif out[1] == swap[1]:
                    out[1] = swap[0]
            return out

        assert_implements_permutation(circuit, spec)

    def test_plain_g_gate_case_is_short(self):
        ops = controlled_transposition_g_ops(3, 0, 0, 1, 0, 1)
        assert len(ops) == 1


class TestControlledPermutation:
    @pytest.mark.parametrize("dim", [3, 4, 5])
    @pytest.mark.parametrize("predicate", [Value(0), Value(2), Odd(), EvenNonZero()])
    def test_shift_gate(self, dim, predicate):
        shift = perm.cycle_plus(dim, 1)
        ops = controlled_permutation_g_ops(dim, 0, predicate, 1, shift)
        circuit = build(dim, ops)
        assert circuit.is_g_circuit()

        def spec(state):
            out = list(state)
            if predicate.satisfied_by(state[0], dim):
                out[1] = (out[1] + 1) % dim
            return out

        assert_implements_permutation(circuit, spec)

    def test_identity_permutation_produces_no_ops(self):
        assert controlled_permutation_g_ops(4, 0, Value(0), 1, (0, 1, 2, 3)) == []


class TestControlValueConjugation:
    def test_non_zero_values_get_swaps(self):
        ops = control_value_conjugation_ops(4, [0, 1, 2], [0, 3, 1])
        assert len(ops) == 2

    def test_length_mismatch(self):
        with pytest.raises(GateError):
            control_value_conjugation_ops(3, [0, 1], [0])

    def test_value_out_of_range(self):
        with pytest.raises(GateError):
            control_value_conjugation_ops(3, [0], [5])
