"""The parallel workload runner and the ``batch`` / ``simulate`` CLI paths."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.exceptions import WorkloadError
from repro.exec import (
    CompileCache,
    WorkloadRequest,
    WorkloadSpec,
    plan_workload,
    run_workload,
)

SPEC = {
    "requests": [
        {"kind": "synthesize", "strategy": "mct", "d": 3, "k": 4},
        {"kind": "synthesize", "strategy": "mct", "d": 3, "k": 4},
        {"kind": "simulate", "strategy": "mct", "d": 3, "k": 4,
         "states": [[0, 0, 0, 0, 1], [1, 0, 0, 0, 1], [0, 0, 0, 0, 2]]},
        {"kind": "estimate", "strategy": "mct", "d": 3, "k": 1000},
        {"kind": "synthesize", "strategy": "mct", "d": 3, "k": 5},
    ]
}


# ----------------------------------------------------------------------
# Spec parsing and planning
# ----------------------------------------------------------------------
def test_spec_parses_and_round_trips(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(SPEC), encoding="utf-8")
    spec = WorkloadSpec.from_json(path)
    assert len(spec.requests) == 5
    assert spec.to_dict()["requests"][2]["states"] == SPEC["requests"][2]["states"]
    # Bare-list shorthand.
    assert len(WorkloadSpec.from_dict(SPEC["requests"]).requests) == 5


@pytest.mark.parametrize(
    "raw",
    [
        {"kind": "mystery", "strategy": "mct", "d": 3, "k": 4},
        {"kind": "synthesize", "d": 3, "k": 4},
        {"kind": "synthesize", "strategy": "mct", "d": "x", "k": 4},
        {"kind": "estimate", "strategy": "mct", "d": 3, "k": 4, "states": [[0]]},
        {"kind": "synthesize", "strategy": "mct", "d": 3, "k": 4, "bogus": 1},
    ],
)
def test_spec_rejects_malformed_requests(raw):
    with pytest.raises(WorkloadError):
        WorkloadSpec.from_dict({"requests": [raw]})


def test_planner_dedupes_shared_cache_keys():
    spec = WorkloadSpec.from_dict(SPEC)
    plan = plan_workload(spec)
    # k=4 synthesize x2 + k=4 simulate share one key; k=5 is separate;
    # estimate needs no compile.
    assert len(plan.compiles) == 2
    assert plan.dedup_savings == 2
    assert plan.request_keys[0] == plan.request_keys[1] == plan.request_keys[2]
    assert plan.request_keys[3] is None
    assert plan.request_keys[4] not in (None, plan.request_keys[0])


# ----------------------------------------------------------------------
# Execution: serial, pooled, warm
# ----------------------------------------------------------------------
def test_run_workload_serial_and_warm(tmp_path):
    spec = WorkloadSpec.from_dict(SPEC)
    cold = run_workload(spec, jobs=1, cache_dir=tmp_path / "cache")
    assert cold.ok and cold.unique_compiles == 2 and cold.warm_hits == 0
    # |00001⟩: controls all zero -> target flips 1 -> 0; a non-zero control blocks.
    assert cold.rows[2]["outputs"] == ["00000", "10001", "00002"]
    assert cold.rows[3]["g_gates"] > 0

    warm = run_workload(spec, jobs=1, cache_dir=tmp_path / "cache")
    assert warm.ok and warm.warm_hits == 2  # every unique compile came from disk
    assert warm.cache_stats["puts"] == 0  # nothing was rebuilt
    assert [row.get("outputs") for row in warm.rows] == [
        row.get("outputs") for row in cold.rows
    ]


def test_run_workload_pooled_matches_serial(tmp_path):
    spec = WorkloadSpec.from_dict(SPEC)
    serial = run_workload(spec, jobs=1, cache_dir=tmp_path / "serial")
    pooled = run_workload(spec, jobs=2, cache_dir=tmp_path / "pooled")
    assert pooled.ok and pooled.jobs == 2
    for left, right in zip(serial.rows, pooled.rows):
        assert left.get("outputs") == right.get("outputs")
        assert left.get("gates") == right.get("gates")
        assert left.get("g_gates") == right.get("g_gates")
    # Pooled stats are reconstructed from worker provenance, not the idle
    # parent cache: the cold pooled run built (and stored) both compiles.
    assert pooled.cache_stats["puts"] == 2
    # The pooled run persisted the same artifacts; a warm serial pass over
    # its directory must hit disk for every compile.
    warm = run_workload(spec, jobs=1, cache_dir=tmp_path / "pooled")
    assert warm.warm_hits == 2 and warm.cache_stats["puts"] == 0
    warm_pooled = run_workload(spec, jobs=2, cache_dir=tmp_path / "pooled")
    assert warm_pooled.cache_stats["puts"] == 0
    assert warm_pooled.cache_stats["disk_hits"] + warm_pooled.cache_stats["memo_hits"] > 0


def test_run_workload_pool_requires_cache_dir():
    spec = WorkloadSpec.from_dict(SPEC)
    with pytest.raises(WorkloadError):
        run_workload(spec, jobs=2)


def test_failing_request_is_reported_not_raised(tmp_path):
    spec = WorkloadSpec.from_dict(
        {"requests": [
            {"kind": "synthesize", "strategy": "no-such-strategy", "d": 3, "k": 4},
            {"kind": "synthesize", "strategy": "mct", "d": 3, "k": 3},
        ]}
    )
    report = run_workload(spec, jobs=1, cache_dir=tmp_path)
    assert not report.ok
    assert report.rows[0]["ok"] is False and "no-such-strategy" in report.rows[0]["error"]
    assert report.rows[1]["ok"] is True


def test_simulate_request_validates_states(tmp_path):
    bad_width = WorkloadSpec.from_dict(
        {"requests": [{"kind": "simulate", "strategy": "mct", "d": 3, "k": 4,
                       "states": [[0, 0]]}]}
    )
    report = run_workload(bad_width, jobs=1, cache_dir=tmp_path)
    assert not report.ok and "digits" in report.rows[0]["error"]
    bad_digit = WorkloadSpec.from_dict(
        {"requests": [{"kind": "simulate", "strategy": "mct", "d": 3, "k": 4,
                       "states": [[0, 0, 0, 0, 7]]}]}
    )
    report = run_workload(bad_digit, jobs=1, cache_dir=tmp_path)
    assert not report.ok and "out of range" in report.rows[0]["error"]


def test_memo_only_workload_without_cache_dir():
    spec = WorkloadSpec.from_dict({"requests": [
        {"kind": "synthesize", "strategy": "mct", "d": 3, "k": 3},
        {"kind": "synthesize", "strategy": "mct", "d": 3, "k": 3},
    ]})
    report = run_workload(spec, jobs=1)
    assert report.ok and report.unique_compiles == 1 and report.dedup_savings == 1


def test_request_compile_key_matches_service():
    from repro.exec import lowered_key

    request = WorkloadRequest(kind="simulate", strategy="mct", dim=3, k=4)
    assert request.compile_key() == lowered_key("mct", 3, 4)
    assert WorkloadRequest(kind="estimate", strategy="mct", dim=3, k=4).compile_key() is None


def test_planner_resolves_auto_to_the_dispatched_strategy():
    from repro.synth import registry

    winner = registry.auto_select(3, 6).strategy.name
    spec = WorkloadSpec.from_dict({"requests": [
        {"kind": "synthesize", "strategy": "auto", "d": 3, "k": 6},
        {"kind": "synthesize", "strategy": winner, "d": 3, "k": 6},
    ]})
    plan = plan_workload(spec)
    # "auto" and its resolved winner share one compile (and one cache key).
    assert len(plan.compiles) == 1 and plan.dedup_savings == 1
    assert plan.request_keys[0] == plan.request_keys[1]


def test_lower_cache_rejects_macro_stage_key(tmp_path):
    import pytest as _pytest

    from repro import lower_to_g_gates, synthesize_mct
    from repro.exceptions import SynthesisError
    from repro.exec import CompileCache, cache_key
    from repro.synth import registry as _registry

    cache = CompileCache(tmp_path)
    _registry.synthesize("mct", 3, 4, cache=cache)  # stores the macro table
    macro_key = cache_key("mct", 3, 4, stage="synth", engine="macro", salt=cache.salt)
    with _pytest.raises(SynthesisError):
        lower_to_g_gates(synthesize_mct(3, 4).circuit, cache=cache, cache_key=macro_key)


# ----------------------------------------------------------------------
# Regressions: pooled-path index threading, poisoned requests, honest stats
# ----------------------------------------------------------------------
def test_pooled_rows_carry_their_real_request_index(tmp_path):
    """The pool used to rebuild every request as index 0."""
    spec = WorkloadSpec.from_dict({"requests": [
        {"kind": "synthesize", "strategy": "mct", "d": 3, "k": 3},
        {"kind": "estimate", "strategy": "mct", "d": 3, "k": 100},
        {"kind": "synthesize", "strategy": "no-such-strategy", "d": 3, "k": 4},
        {"kind": "synthesize", "strategy": "mct", "d": 3, "k": 4},
    ]})
    report = run_workload(spec, jobs=2, cache_dir=tmp_path / "cache")
    assert [row["index"] for row in report.rows] == [0, 1, 2, 3]
    assert report.rows[2]["ok"] is False and "no-such-strategy" in report.rows[2]["error"]
    assert all(report.rows[i]["ok"] for i in (0, 1, 3))
    # Serial rows are indexed identically.
    serial = run_workload(spec, jobs=1, cache_dir=tmp_path / "serial")
    assert [row["index"] for row in serial.rows] == [0, 1, 2, 3]


def test_worker_execute_reports_parse_failures_at_the_real_index():
    """A raw dict the parser rejects becomes an ok=False row naming the real
    request — it used to raise out of the pool task (killing the workload)
    with any error message blaming request 0."""
    from repro.exec.workload import _worker_execute

    result = _worker_execute((5, {"kind": "synthesize", "d": 3, "k": 4}))
    row = result["row"]
    assert row["index"] == 5 and row["ok"] is False
    assert "request 5" in row["error"] and "missing field" in row["error"]


def test_poisoned_request_does_not_kill_the_workload(tmp_path, monkeypatch):
    """Non-ReproError exceptions (bad backend objects, numpy errors) must
    become ok=False rows, not abort pool.map for every sibling row."""
    from repro.synth import registry

    def poisoned(name, dim, k):
        raise ValueError(f"poisoned estimate for {name}")

    monkeypatch.setattr(registry, "estimate", poisoned)
    spec = WorkloadSpec.from_dict({"requests": [
        {"kind": "synthesize", "strategy": "mct", "d": 3, "k": 3},
        {"kind": "estimate", "strategy": "mct", "d": 3, "k": 100},
        {"kind": "synthesize", "strategy": "mct", "d": 3, "k": 4},
    ]})
    serial = run_workload(spec, jobs=1, cache_dir=tmp_path / "serial")
    assert not serial.ok
    assert serial.rows[1]["ok"] is False
    assert serial.rows[1]["error"].startswith("ValueError: poisoned")
    assert "ValueError" in serial.rows[1]["traceback"]  # class preserved
    assert serial.rows[0]["ok"] and serial.rows[2]["ok"]
    # The fork pool inherits the monkeypatch; before the broad catch the
    # ValueError escaped pool.map and run_workload itself raised.
    pooled = run_workload(spec, jobs=2, cache_dir=tmp_path / "pooled")
    assert not pooled.ok
    assert pooled.rows[1]["ok"] is False
    assert pooled.rows[1]["error"].startswith("ValueError: poisoned")
    assert pooled.rows[0]["ok"] and pooled.rows[2]["ok"]


def test_pooled_cache_stats_are_the_sum_of_worker_counters(tmp_path):
    """Pooled stats come from the workers' real CacheStats deltas.

    The old provenance reconstruction counted only rows that carried a
    ``"cache"`` source string: a request whose compile *failed* still did a
    real cache lookup (a miss) that never appeared, and evictions were
    hardcoded to zero."""
    spec = WorkloadSpec.from_dict(SPEC)
    serial = run_workload(spec, jobs=1, cache_dir=tmp_path / "serial")
    pooled = run_workload(spec, jobs=2, cache_dir=tmp_path / "pooled")
    # Same honest totals as a serial run over a fresh directory: the
    # memo/disk split differs per worker, the sums cannot.
    assert pooled.cache_stats["misses"] == serial.cache_stats["misses"]
    assert pooled.cache_stats["puts"] == serial.cache_stats["puts"]
    assert (
        pooled.cache_stats["memo_hits"] + pooled.cache_stats["disk_hits"]
        == serial.cache_stats["memo_hits"] + serial.cache_stats["disk_hits"]
    )
    assert pooled.cache_stats["evictions"] == serial.cache_stats["evictions"] == 0

    # A failing compile is a lookup without a put: visible only in the
    # honest counters (the provenance strings never mentioned it).
    failing = WorkloadSpec.from_dict({"requests": [
        {"kind": "synthesize", "strategy": "no-such-strategy", "d": 3, "k": 4},
        {"kind": "synthesize", "strategy": "mct", "d": 3, "k": 3},
    ]})
    report = run_workload(failing, jobs=2, cache_dir=tmp_path / "failing")
    # no-such-strategy: one miss in the compile phase and one in the
    # execute phase; mct: one miss (compile) + one hit (execute).
    assert report.cache_stats["misses"] == 3
    assert report.cache_stats["puts"] == 1
    assert report.cache_stats["memo_hits"] + report.cache_stats["disk_hits"] == 1


# ----------------------------------------------------------------------
# CLI: batch subcommand
# ----------------------------------------------------------------------
def test_cli_batch_cold_then_warm(tmp_path, capsys):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(SPEC), encoding="utf-8")
    cache_dir = str(tmp_path / "cache")
    report_path = tmp_path / "report.json"
    assert main(["batch", "--workload", str(path), "--cache-dir", cache_dir,
                 "--report", str(report_path)]) == 0
    out = capsys.readouterr().out
    assert "Batch workload" in out and "deduped" in out
    payload = json.loads(report_path.read_text(encoding="utf-8"))
    assert payload["ok"] and payload["unique_compiles"] == 2

    assert main(["batch", "--workload", str(path), "--cache-dir", cache_dir,
                 "--jobs", "2", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["warm_hits"] == 2
    assert all(row["cache"] in ("disk", "memo", "n/a") for row in payload["requests"])


def test_cli_batch_reports_failures_with_exit_one(tmp_path, capsys):
    path = tmp_path / "spec.json"
    path.write_text(
        json.dumps({"requests": [
            {"kind": "synthesize", "strategy": "no-such", "d": 3, "k": 4}]}),
        encoding="utf-8",
    )
    assert main(["batch", "--workload", str(path)]) == 1
    assert "no-such" in capsys.readouterr().out


def test_cli_batch_rejects_bad_spec(tmp_path, capsys):
    path = tmp_path / "bad.json"
    path.write_text("{not json", encoding="utf-8")
    assert main(["batch", "--workload", str(path)]) == 1
    assert "error:" in capsys.readouterr().err


# ----------------------------------------------------------------------
# CLI: simulate --state validation (satellite)
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "state,fragment",
    [
        ("0,0,5,0", "out of range"),
        ("0,0,x,0", "not an integer"),
        ("0,0,0", "needs 4 digits"),
        ("0,0,0,0,0", "needs 4 digits"),
        ("-1,0,0,0", "out of range"),
    ],
)
def test_cli_simulate_state_validation(state, fragment, capsys):
    assert main(["simulate", "mct", "3", "3", f"--state={state}"]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error:") and fragment in err


def test_cli_simulate_valid_state_still_works(capsys):
    assert main(["simulate", "mct", "3", "3", "--state", "0 0 0 1", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["input"] == "0001" and payload["output"] == "0000"
